"""Approximate-match neighbor index: metadata, search, healing, freeze."""

import numpy as np
import pytest

from repro.core.cache import PersistentPulseCache, PulseCache, _key_filename
from repro.library import PulseLibrary, load_manifest
from repro.library.neighbors import (
    NeighborIndex,
    context_token,
    decode_signature,
    encode_signature,
    signature_distance,
    target_metadata,
)
from repro.linalg import haar_random_unitary


def _unitary(seed: int, dim: int = 4) -> np.ndarray:
    return haar_random_unitary(dim, seed=np.random.default_rng(seed))


CTX = ("ctx", 0.5, 0.999)


def _name(i: int) -> str:
    return f"{i:040x}-{i:016x}.pulse"


def _put(library: PulseLibrary, i: int, target: np.ndarray, context=CTX) -> str:
    name = _name(i)
    library.put(name, b"payload", meta=target_metadata(target, context))
    return name


class TestSignatures:
    def test_roundtrip_precision(self):
        u = _unitary(0)
        decoded = decode_signature(encode_signature(u))
        # float32 storage: exact to ~1e-7, up to the canonical global phase.
        assert signature_distance(u, decoded) < 1e-6

    def test_phase_equivalent_unitaries_share_signature(self):
        u = _unitary(1)
        a = decode_signature(encode_signature(u))
        b = decode_signature(encode_signature(np.exp(0.7j) * u))
        # Canonicalization removes the global phase (float32 rounding only).
        assert np.abs(a - b).max() < 1e-6

    def test_distance_zero_up_to_phase(self):
        u = _unitary(2)
        # sqrt turns ~1e-16 trace rounding into ~1e-8; exact zero is not
        # representable, near-zero is.
        assert signature_distance(u, np.exp(-1.1j) * u) < 1e-6

    def test_distance_orders_by_closeness(self):
        u = _unitary(3)
        near = u @ np.diag(np.exp(1j * np.array([0.01, 0.0, 0.0, -0.01])))
        far = _unitary(4)
        assert signature_distance(u, near) < signature_distance(u, far)

    def test_damaged_payload_decodes_to_none(self):
        assert decode_signature("not base64!") is None
        assert decode_signature(encode_signature(_unitary(5))[:-8]) is None

    def test_context_token_is_stable_and_context_sensitive(self):
        assert context_token(CTX) == context_token(("ctx", 0.5, 0.999))
        assert context_token(CTX) != context_token(("ctx", 0.25, 0.999))


class TestIndexSearch:
    def test_put_metadata_is_searchable(self, tmp_path):
        library = PulseLibrary(tmp_path)
        target = _unitary(10)
        name = _put(library, 1, target)
        hit = NeighborIndex(library).find_nearest(_unitary(11), CTX, 1.0)
        assert hit is not None and hit.name == name

    def test_nearest_of_several_wins(self, tmp_path):
        library = PulseLibrary(tmp_path)
        base = _unitary(20)
        near = base @ np.diag(np.exp(1j * np.array([0.02, 0.0, -0.02, 0.0])))
        _put(library, 1, _unitary(21))
        near_name = _put(library, 2, near)
        hit = NeighborIndex(library).find_nearest(base, CTX, 1.0)
        assert hit.name == near_name
        assert hit.distance < 0.05

    def test_threshold_gates_the_match(self, tmp_path):
        library = PulseLibrary(tmp_path)
        _put(library, 1, _unitary(30))
        index = NeighborIndex(library)
        probe = _unitary(31)
        dist = index.find_nearest(probe, CTX, 1.0).distance
        assert index.find_nearest(probe, CTX, dist * 0.5) is None

    def test_bucketing_by_context_and_dim(self, tmp_path):
        library = PulseLibrary(tmp_path)
        target = _unitary(40)
        _put(library, 1, target, context=("other", 1.0, 0.9))
        _put(library, 2, _unitary(41, dim=2), context=CTX)
        assert NeighborIndex(library).find_nearest(target, CTX, 1.0) is None

    def test_exclude_blocks_self_seeding(self, tmp_path):
        library = PulseLibrary(tmp_path)
        target = _unitary(50)
        name = _put(library, 1, target)
        index = NeighborIndex(library)
        assert index.find_nearest(target, CTX, 1.0, exclude=name) is None

    def test_index_refreshes_on_new_puts(self, tmp_path):
        library = PulseLibrary(tmp_path)
        index = NeighborIndex(library)
        target = _unitary(60)
        assert index.find_nearest(target, CTX, 1.0) is None
        _put(library, 1, target)
        assert index.find_nearest(target @ np.diag([1, 1, 1, 1j]), CTX, 1.0)

    def test_overwrite_without_meta_keeps_metadata(self, tmp_path):
        library = PulseLibrary(tmp_path)
        target = _unitary(70)
        name = _put(library, 1, target)
        library.put(name, b"new payload")  # no meta
        record = load_manifest(library.shard_dir(name))["entries"][name]
        assert record["target"]["dim"] == 4


class TestHealing:
    def test_annotate_heals_legacy_entry(self, tmp_path):
        library = PulseLibrary(tmp_path)
        name = _name(1)
        library.put(name, b"legacy")  # pre-metadata entry
        index = NeighborIndex(library)
        target = _unitary(80)
        assert index.find_nearest(target, CTX, 1.0) is None
        assert index.annotate(name, target, CTX) is True
        assert index.annotated == 1
        # In-memory index updated in place, no rescan needed.
        hit = index.find_nearest(target @ np.diag([1j, 1, 1, 1]), CTX, 1.0)
        assert hit is not None and hit.name == name
        # And the manifest itself is durably healed.
        record = load_manifest(library.shard_dir(name))["entries"][name]
        assert record["target"]["ctx"] == context_token(CTX)

    def test_annotate_is_noop_when_already_annotated(self, tmp_path):
        library = PulseLibrary(tmp_path)
        target = _unitary(90)
        name = _put(library, 1, target)
        assert NeighborIndex(library).annotate(name, target, CTX) is False

    def test_annotate_unknown_entry_is_noop(self, tmp_path):
        library = PulseLibrary(tmp_path)
        assert NeighborIndex(library).annotate(_name(9), _unitary(91), CTX) is False


class TestFreeze:
    def test_frozen_index_ignores_later_puts(self, tmp_path):
        library = PulseLibrary(tmp_path)
        index = NeighborIndex(library)
        target = _unitary(100)
        index.freeze()
        try:
            _put(library, 1, target)
            assert index.find_nearest(target, CTX, 1.0) is None
        finally:
            index.thaw()
        assert index.find_nearest(target, CTX, 1.0) is not None

    def test_freeze_nests(self, tmp_path):
        library = PulseLibrary(tmp_path)
        index = NeighborIndex(library)
        target = _unitary(101)
        index.freeze()
        index.freeze()
        _put(library, 1, target)
        index.thaw()
        assert index.find_nearest(target, CTX, 1.0) is None  # still frozen
        index.thaw()
        assert index.find_nearest(target, CTX, 1.0) is not None

    def test_frozen_names_survive_pickling(self, tmp_path):
        """Process-pool workers must resolve the pre-pass candidate set."""
        import pickle

        library = PulseLibrary(tmp_path)
        index = NeighborIndex(library)
        pre = _unitary(102)
        pre_name = _put(library, 1, pre)
        index.freeze()
        _put(library, 2, _unitary(103))
        clone = pickle.loads(pickle.dumps(index))
        # The clone rebuilds its scan (seeing both disk entries) but the
        # frozen-name snapshot still pins search to the pre-freeze set.
        hit = clone.find_nearest(pre @ np.diag([1, 1j, 1, 1]), CTX, 1.0)
        assert hit is not None and hit.name == pre_name

    def test_memory_cache_freeze_ignores_later_puts(self):
        from repro.core.cache import CacheEntry

        cache = PulseCache()
        entry = CacheEntry(
            schedule=None, duration_ns=1.0, fidelity=1.0, converged=True,
            iterations=1,
        )
        context = CTX
        key_a = ("aa" * 20, context)
        key_b = ("bb" * 20, context)
        target = _unitary(110)
        cache.freeze_neighbors()
        try:
            cache.put(key_a, entry, target=target)
            assert cache.find_neighbor(key_b, target, 1.0) is None
        finally:
            cache.thaw_neighbors()
        assert cache.find_neighbor(key_b, target, 1.0) is not None


class TestPersistentCacheIntegration:
    def _entry(self):
        from repro.core.cache import CacheEntry

        return CacheEntry(
            schedule=None, duration_ns=2.0, fidelity=0.999, converged=True,
            iterations=7,
        )

    def test_neighbor_found_across_processes(self, tmp_path):
        target = _unitary(120)
        key = ("cd" * 20, CTX)
        writer = PersistentPulseCache(tmp_path)
        writer.put(key, self._entry(), target=target)

        # A cold cache on the same directory (fresh memory tier) finds the
        # near-miss through the durable index.
        reader = PersistentPulseCache(tmp_path)
        probe_key = ("ef" * 20, CTX)
        probe = target @ np.diag(np.exp(1j * np.array([0.01, 0, 0, -0.01])))
        match = reader.find_neighbor(probe_key, probe, 0.25)
        assert match is not None
        assert match.source == "library"
        assert match.name == _key_filename(key)
        assert match.entry.duration_ns == 2.0

    def test_wrong_context_never_matches(self, tmp_path):
        target = _unitary(121)
        cache = PersistentPulseCache(tmp_path)
        cache.put(("ab" * 20, CTX), self._entry(), target=target)
        other_ctx_key = ("cd" * 20, ("other", 1.0, 0.9))
        assert cache.find_neighbor(other_ctx_key, target, 1.0) is None

    def test_stats_surface_neighbor_telemetry(self, tmp_path):
        cache = PersistentPulseCache(tmp_path)
        cache.put(("ab" * 20, CTX), self._entry(), target=_unitary(122))
        cache.find_neighbor(("cd" * 20, CTX), _unitary(123), 1.0)
        stats = cache.stats()["neighbors"]
        assert stats["indexed_entries"] == 1
        assert stats["lookups"] >= 1
