"""PulseLibrary contracts: layout, index, locking, round trips."""

import json
import pickle
import threading

import pytest

from repro.errors import ReproError
from repro.library import (
    LIBRARY_LAYOUT_VERSION,
    FileLock,
    PulseLibrary,
    load_manifest,
)
from repro.library.store import VALID_SHARD_COUNTS


def _name(i: int) -> str:
    # Realistic entry names: 40 hex fingerprint chars + context digest.
    return f"{i:040x}-{i:016x}.pulse"


class TestLayout:
    def test_entries_land_in_prefix_shards(self, tmp_path):
        library = PulseLibrary(tmp_path, shards=16)
        library.put("ab12cd.pulse", b"x")
        assert (tmp_path / "a" / "ab12cd.pulse").read_bytes() == b"x"

    def test_two_char_prefix_at_256_shards(self, tmp_path):
        library = PulseLibrary(tmp_path, shards=256)
        library.put("ab12cd.pulse", b"x")
        assert (tmp_path / "ab" / "ab12cd.pulse").is_file()

    def test_descriptor_written_once(self, tmp_path):
        PulseLibrary(tmp_path, shards=256)
        descriptor = json.loads((tmp_path / "library.json").read_text())
        assert descriptor["layout_version"] == LIBRARY_LAYOUT_VERSION
        assert descriptor["shards"] == 256
        assert descriptor["prefix_len"] == 2

    def test_existing_layout_wins_over_arguments(self, tmp_path):
        PulseLibrary(tmp_path, shards=256)
        reopened = PulseLibrary(tmp_path, shards=16)
        assert reopened.shards == 256
        assert reopened.prefix_len == 2

    def test_invalid_shard_count_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            PulseLibrary(tmp_path, shards=7)

    def test_valid_shard_counts_are_hex_prefix_sized(self):
        assert VALID_SHARD_COUNTS == (16, 256, 4096)

    def test_non_hex_name_still_shards(self, tmp_path):
        library = PulseLibrary(tmp_path, shards=16)
        library.put("zz-not-hex.pulse", b"y")
        assert library.get("zz-not-hex.pulse") == b"y"
        shard = library.shard_name("zz-not-hex.pulse")
        assert len(shard) == 1 and shard in "0123456789abcdef"


class TestRoundTrip:
    def test_put_get_delete(self, tmp_path):
        library = PulseLibrary(tmp_path, shards=16)
        library.put(_name(1), b"payload-1")
        assert library.get(_name(1)) == b"payload-1"
        assert _name(1) in library
        assert library.delete(_name(1))
        assert library.get(_name(1)) is None
        assert _name(1) not in library

    def test_overwrite_replaces_payload(self, tmp_path):
        library = PulseLibrary(tmp_path, shards=16)
        library.put(_name(2), b"old")
        library.put(_name(2), b"new")
        assert library.get(_name(2)) == b"new"
        assert library.count() == 1

    def test_missing_entry_is_none(self, tmp_path):
        library = PulseLibrary(tmp_path, shards=16)
        assert library.get(_name(3)) is None

    def test_names_and_count(self, tmp_path):
        library = PulseLibrary(tmp_path, shards=16)
        for i in range(5):
            library.put(_name(i), b"x" * (i + 1))
        assert library.count() == 5
        assert library.names() == sorted(_name(i) for i in range(5))
        assert library.total_bytes() == sum(range(1, 6))

    def test_reopen_serves_existing_entries(self, tmp_path):
        PulseLibrary(tmp_path, shards=16).put(_name(4), b"durable")
        assert PulseLibrary(tmp_path).get(_name(4)) == b"durable"


class TestManifest:
    def test_put_indexes_entry(self, tmp_path):
        library = PulseLibrary(tmp_path, shards=16)
        library.put(_name(5), b"abcdef", schema_version=2)
        shard = library.shard_dir(_name(5))
        manifest = load_manifest(shard)
        record = manifest["entries"][_name(5)]
        assert record["size"] == 6
        assert record["schema_version"] == 2
        assert record["created"] <= record["last_used"]

    def test_get_bumps_last_used(self, tmp_path):
        library = PulseLibrary(tmp_path, shards=16)
        library.put(_name(6), b"x")
        shard = library.shard_dir(_name(6))
        before = load_manifest(shard)["entries"][_name(6)]["last_used"]
        # Stamps round to milliseconds; force a visible gap.
        import time

        time.sleep(0.005)
        library.get(_name(6))
        after = load_manifest(shard)["entries"][_name(6)]["last_used"]
        assert after >= before

    def test_overwrite_preserves_created_stamp(self, tmp_path):
        library = PulseLibrary(tmp_path, shards=16)
        library.put(_name(7), b"v1")
        shard = library.shard_dir(_name(7))
        created = load_manifest(shard)["entries"][_name(7)]["created"]
        library.put(_name(7), b"v2-longer")
        record = load_manifest(shard)["entries"][_name(7)]
        assert record["created"] == created
        assert record["size"] == len(b"v2-longer")

    def test_orphan_file_still_served(self, tmp_path):
        """Data files are the source of truth; the index is advisory."""
        library = PulseLibrary(tmp_path, shards=16)
        shard = tmp_path / "0"
        shard.mkdir()
        (shard / _name(8)).write_bytes(b"orphan")
        assert library.get(_name(8)) == b"orphan"

    def test_corrupt_manifest_tolerated(self, tmp_path):
        library = PulseLibrary(tmp_path, shards=16)
        library.put(_name(9), b"x")
        shard = library.shard_dir(_name(9))
        (shard / "manifest.json").write_text("{ not json")
        assert library.get(_name(9)) == b"x"
        # The next put rebuilds a valid manifest for its own entry.
        library.put(_name(9), b"y")
        assert load_manifest(shard)["entries"][_name(9)]["size"] == 1


class TestStats:
    def test_stats_shape(self, tmp_path):
        library = PulseLibrary(tmp_path, shards=16, budget_mb=5.0)
        for i in range(4):
            library.put(_name(i), b"x" * 100)
        library.get(_name(0))
        stats = library.stats()
        assert stats["entries"] == 4
        assert stats["indexed_entries"] == 4
        assert stats["shards"] == 16
        assert stats["total_bytes"] == 400
        assert stats["index_bytes"] > 0
        assert stats["nonempty_shards"] >= 1
        assert stats["budget_mb"] == 5.0
        assert stats["puts"] == 4
        assert stats["gets"] == 1 and stats["get_hits"] == 1
        assert stats["evictions"] == 0


class TestPickling:
    def test_library_crosses_process_boundary(self, tmp_path):
        """Block compilers (cache + library included) ship to pool workers."""
        library = PulseLibrary(tmp_path, shards=16)
        library.put(_name(10), b"shipped")
        clone = pickle.loads(pickle.dumps(library))
        assert clone.get(_name(10)) == b"shipped"
        clone.put(_name(11), b"from-clone")
        assert library.get(_name(11)) == b"from-clone"


class TestFileLock:
    def test_reentry_rejected(self, tmp_path):
        lock = FileLock(tmp_path / ".lock")
        with lock:
            assert lock.locked
            with pytest.raises(RuntimeError):
                lock.acquire()
        assert not lock.locked

    def test_mutual_exclusion_across_instances(self, tmp_path):
        """Two lock objects on one path (as two processes would hold) exclude."""
        path = tmp_path / ".lock"
        order = []

        def worker(tag):
            with FileLock(path):
                order.append(("enter", tag))
                import time

                time.sleep(0.02)
                order.append(("exit", tag))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Critical sections must never interleave.
        for i in range(0, len(order), 2):
            assert order[i][0] == "enter"
            assert order[i + 1] == ("exit", order[i][1])

    def test_pickles_unlocked(self, tmp_path):
        lock = FileLock(tmp_path / ".lock")
        with lock:
            clone = pickle.loads(pickle.dumps(lock))
        assert not clone.locked
        with clone:
            pass
