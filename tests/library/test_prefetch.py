"""Manifest-aware shard prefetch: bulk loads, coherence, telemetry."""

import pickle

from repro.library import PulseLibrary


def _name(i: int) -> str:
    return f"{i:040x}-{i:016x}.pulse"


def _seeded_library(tmp_path, entries: int = 5) -> PulseLibrary:
    writer = PulseLibrary(tmp_path, shards=16)
    for i in range(entries):
        writer.put(_name(i), b"payload-%d" % i)
    return writer


class TestPrefetch:
    def test_first_touch_bulk_loads_the_shard(self, tmp_path):
        _seeded_library(tmp_path)
        library = PulseLibrary(tmp_path, prefetch=True)
        assert library.get(_name(0)) == b"payload-0"
        stats = library.stats()
        # All five entries share the '0' prefix shard: one bulk load serves
        # the whole shard, and the triggering get already hits memory.
        assert stats["prefetches"] == 1
        assert stats["prefetch_hits"] == 1
        assert stats["prefetched_entries"] == 5
        for i in range(5):
            assert library.get(_name(i)) == b"payload-%d" % i
        assert library.stats()["prefetch_hits"] == 6
        assert library.stats()["prefetches"] == 1  # still one shard touch

    def test_disabled_by_default(self, tmp_path):
        _seeded_library(tmp_path)
        library = PulseLibrary(tmp_path)
        library.get(_name(0))
        stats = library.stats()
        assert stats["prefetch_enabled"] is False
        assert stats["prefetches"] == 0
        assert stats["prefetch_hits"] == 0

    def test_config_knob_enables_prefetch(self, tmp_path):
        from repro.config import set_pipeline_config

        set_pipeline_config(prefetch=True)
        try:
            library = PulseLibrary(tmp_path)
            assert library.prefetch_enabled is True
        finally:
            set_pipeline_config(prefetch=False)

    def test_miss_in_prefetched_shard_still_misses(self, tmp_path):
        _seeded_library(tmp_path)
        library = PulseLibrary(tmp_path, prefetch=True)
        assert library.get(_name(0x999)) is None

    def test_put_keeps_prefetched_shard_coherent(self, tmp_path):
        _seeded_library(tmp_path)
        library = PulseLibrary(tmp_path, prefetch=True)
        library.get(_name(0))  # prefetches the shard
        library.put(_name(0), b"updated")
        assert library.get(_name(0)) == b"updated"
        library.put(_name(0x77), b"brand-new")
        assert library.get(_name(0x77)) == b"brand-new"

    def test_delete_evicts_from_prefetch_layer(self, tmp_path):
        _seeded_library(tmp_path)
        library = PulseLibrary(tmp_path, prefetch=True)
        library.get(_name(1))
        assert library.delete(_name(1))
        assert library.get(_name(1)) is None

    def test_gc_eviction_evicts_from_prefetch_layer(self, tmp_path):
        library = PulseLibrary(tmp_path, shards=16, prefetch=True)
        for i in range(4):
            library.put(_name(i), b"x" * 1024)
        library.get(_name(3))  # prefetch the shard (and refresh its stamp)
        report = library.gc(budget_mb=1024 / (1024 * 1024))
        assert report.evicted == 3
        for name in report.evicted_names:
            assert library.get(name) is None

    def test_lru_stamps_still_recorded_for_prefetch_hits(self, tmp_path):
        import time

        library = PulseLibrary(tmp_path, shards=16, prefetch=True)
        for i in range(3):
            library.put(_name(i), b"x" * 1024)
            time.sleep(0.005)
        library.get(_name(0))  # oldest entry becomes most recently used
        report = library.gc(budget_mb=1024 / (1024 * 1024))
        assert report.evicted == 2
        assert library.get(_name(0)) is not None

    def test_buffer_is_byte_bounded_with_disk_fallback(self, tmp_path):
        library = PulseLibrary(tmp_path, shards=16, prefetch=True)
        library._prefetch_budget_bytes = 3 * 1024
        for i in range(6):
            library.put(_name(i), b"x" * 1024)
        library.get(_name(0))  # bulk load: only ~3 KiB may stay resident
        stats = library.stats()
        assert stats["prefetched_bytes"] <= 3 * 1024
        assert 0 < stats["prefetched_entries"] <= 3
        # Payloads dropped from the buffer still read through from disk.
        for i in range(6):
            assert library.get(_name(i)) == b"x" * 1024

    def test_library_budget_caps_the_buffer(self, tmp_path):
        budget_mb = 2 * 1024 / (1024 * 1024)
        library = PulseLibrary(
            tmp_path, shards=16, budget_mb=budget_mb, prefetch=True
        )
        assert library._prefetch_budget_bytes == 2 * 1024

    def test_pickle_drops_the_buffer_but_keeps_the_flag(self, tmp_path):
        _seeded_library(tmp_path)
        library = PulseLibrary(tmp_path, prefetch=True)
        library.get(_name(0))
        clone = pickle.loads(pickle.dumps(library))
        assert clone.prefetch_enabled is True
        assert clone.stats()["prefetched_entries"] == 0
        assert clone.get(_name(2)) == b"payload-2"  # re-prefetches on demand


class TestEmptyStats:
    def test_empty_stats_mirrors_live_stats_schema(self, tmp_path):
        """The zeroed snapshot for never-created directories must keep the
        exact key set of a live library's stats(), or the CLI's empty and
        populated reports drift apart."""
        live = PulseLibrary(tmp_path, shards=16).stats()
        empty = PulseLibrary.empty_stats(tmp_path / "elsewhere")
        assert set(empty) == set(live)
        assert empty["entries"] == 0
        assert not (tmp_path / "elsewhere").exists()


class TestPersistentCachePassthrough:
    def test_cache_exposes_prefetch_counters(self, tmp_path):
        from repro.core import PersistentPulseCache

        cache = PersistentPulseCache(tmp_path, prefetch=True)
        stats = cache.stats()
        assert stats["library"]["prefetch_enabled"] is True
        assert stats["library"]["prefetches"] == 0
