"""Garbage collection: LRU eviction, budgets, reconciliation, concurrency."""

import threading
import time

from repro.library import PulseLibrary, load_manifest


def _name(i: int) -> str:
    return f"{i:040x}-{i:016x}.pulse"


KIB = 1024


class TestEviction:
    def test_no_budget_means_no_eviction(self, tmp_path):
        library = PulseLibrary(tmp_path, shards=16)
        for i in range(4):
            library.put(_name(i), b"x" * KIB)
        report = library.gc()
        assert report.evicted == 0
        assert library.count() == 4
        assert report.budget_bytes is None

    def test_evicts_down_to_budget(self, tmp_path):
        library = PulseLibrary(tmp_path, shards=16)
        for i in range(8):
            library.put(_name(i), b"x" * KIB)
        report = library.gc(budget_mb=4 * KIB / (1024 * 1024))
        assert report.entries_before == 8
        assert report.evicted == 4
        assert report.bytes_after <= 4 * KIB
        assert library.count() == 4

    def test_least_recently_used_evicted_first(self, tmp_path):
        library = PulseLibrary(tmp_path, shards=16)
        for i in range(4):
            library.put(_name(i), b"x" * KIB)
            time.sleep(0.005)
        # Touch the two oldest: they become the most recently used.
        library.get(_name(0))
        library.get(_name(1))
        report = library.gc(budget_mb=2 * KIB / (1024 * 1024))
        assert report.evicted == 2
        survivors = set(library.names())
        assert _name(0) in survivors and _name(1) in survivors
        assert _name(2) not in survivors and _name(3) not in survivors

    def test_eviction_counter_accumulates_in_manifests(self, tmp_path):
        library = PulseLibrary(tmp_path, shards=16)
        for i in range(6):
            library.put(_name(i), b"x" * KIB)
        library.gc(budget_mb=3 * KIB / (1024 * 1024))
        assert library.stats()["evictions"] == 3
        library.gc(budget_mb=1 * KIB / (1024 * 1024))
        assert library.stats()["evictions"] == 5

    def test_instance_default_budget_used(self, tmp_path):
        library = PulseLibrary(
            tmp_path, shards=16, budget_mb=2 * KIB / (1024 * 1024)
        )
        for i in range(5):
            library.put(_name(i), b"x" * KIB)
        report = library.gc()
        assert report.evicted == 3


class TestReconciliation:
    def test_gc_adopts_orphans_and_drops_ghosts(self, tmp_path):
        library = PulseLibrary(tmp_path, shards=16)
        library.put(_name(1), b"indexed")
        shard = library.shard_dir(_name(1))
        # Orphan: file on disk, not in the index (crash between write+index).
        orphan = shard / _name(0x10001)
        assert orphan.parent == shard  # same first hex char by construction
        orphan.write_bytes(b"orphan")
        # Ghost: indexed, file deleted behind the library's back.
        library.put(_name(0x10002), b"ghost")
        library.path_for(_name(0x10002)).unlink()

        report = library.gc()
        assert report.orphans_adopted >= 1
        assert report.ghosts_dropped >= 1
        entries = load_manifest(shard)["entries"]
        assert _name(0x10001) in entries
        assert _name(0x10002) not in entries

    def test_gc_sweeps_stale_tmp_files(self, tmp_path, monkeypatch):
        library = PulseLibrary(tmp_path, shards=16)
        library.put(_name(2), b"x")
        shard = library.shard_dir(_name(2))
        stale = shard / ".deadbeef.pulse.123.abc.tmp"
        stale.write_bytes(b"crash debris")
        old = time.time() - 3600
        import os

        os.utime(stale, (old, old))
        fresh = shard / ".cafef00d.pulse.456.def.tmp"
        fresh.write_bytes(b"in flight")
        report = library.gc()
        assert report.stale_tmp_removed == 1
        assert not stale.exists()
        assert fresh.exists()  # recent temp files are presumed in flight


class TestDamagedManifests:
    def test_gc_survives_missing_and_null_last_used_stamps(self, tmp_path):
        """Regression: a reconciled/legacy-migrated record with a missing or
        ``None`` LRU stamp used to raise KeyError/TypeError mid-gc and abort
        eviction.  Damaged stamps heal from the file mtime, and the pass
        still enforces the budget."""
        import json

        library = PulseLibrary(tmp_path, shards=16)
        for i in range(4):
            library.put(_name(i), b"x" * KIB)
            time.sleep(0.005)
        # Hand-damage the manifests: drop one stamp, null another, and turn
        # a third record into non-dict junk.
        damaged = 0
        for shard in library.shard_dirs():
            path = shard / "manifest.json"
            manifest = json.loads(path.read_text())
            for name, record in manifest["entries"].items():
                if damaged == 0:
                    del record["last_used"]
                elif damaged == 1:
                    record["last_used"] = None
                elif damaged == 2:
                    manifest["entries"][name] = "junk"
                damaged += 1
            path.write_text(json.dumps(manifest))
        assert damaged >= 3

        report = library.gc(budget_mb=2 * KIB / (1024 * 1024))
        assert report.evicted == 2
        assert library.count() == 2
        # The healed index parses and carries numeric stamps everywhere.
        for shard in library.shard_dirs():
            for record in load_manifest(shard)["entries"].values():
                assert isinstance(record["last_used"], float)
                assert isinstance(record["created"], float)

    def test_put_over_damaged_record_does_not_crash(self, tmp_path):
        """Overwriting an entry whose manifest record is junk (or lacks a
        'created' stamp) must not raise out of put() — the write path gets
        the same tolerance as reconciliation."""
        import json

        library = PulseLibrary(tmp_path, shards=16)
        library.put(_name(0), b"original")
        library.put(_name(1), b"original")
        shard = library.shard_dir(_name(0))
        path = shard / "manifest.json"
        manifest = json.loads(path.read_text())
        manifest["entries"][_name(0)] = "junk"
        del manifest["entries"][_name(1)]["created"]
        path.write_text(json.dumps(manifest))

        library.put(_name(0), b"overwritten")
        library.put(_name(1), b"overwritten")
        assert library.get(_name(0)) == b"overwritten"
        record = load_manifest(shard)["entries"][_name(0)]
        assert isinstance(record["created"], float)

    def test_stats_tolerates_damaged_manifest(self, tmp_path):
        import json

        library = PulseLibrary(tmp_path, shards=16)
        library.put(_name(0), b"x" * KIB)
        shard = library.shard_dir(_name(0))
        manifest = json.loads((shard / "manifest.json").read_text())
        for record in manifest["entries"].values():
            record["last_used"] = None
        (shard / "manifest.json").write_text(json.dumps(manifest))
        stats = library.stats()
        assert stats["entries"] == 1


class TestConcurrency:
    def test_concurrent_gc_vs_put_under_lock(self, tmp_path):
        """Writers and collectors racing on one directory stay consistent.

        The invariants: no exceptions escape, manifests always parse, and
        after a final reconcile the index exactly matches the data files.
        """
        library = PulseLibrary(
            tmp_path, shards=16, budget_mb=8 * KIB / (1024 * 1024)
        )
        errors = []
        stop = threading.Event()

        def writer(base):
            try:
                writer_library = PulseLibrary(tmp_path)  # own handle, as a
                for i in range(30):  # separate process would hold
                    writer_library.put(_name(base + i), b"x" * KIB)
                    if i % 7 == 0:
                        writer_library.get(_name(base + i))
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        def collector():
            try:
                collector_library = PulseLibrary(tmp_path)
                while not stop.is_set():
                    collector_library.gc()
                    time.sleep(0.001)
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(base,))
            for base in (0x100000, 0x200000, 0x300000)
        ]
        gc_thread = threading.Thread(target=collector)
        gc_thread.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stop.set()
        gc_thread.join()
        assert not errors

        final = library.gc()  # one clean reconcile pass
        assert final.entries_after == library.count()
        indexed = set()
        for shard in library.shard_dirs():
            indexed.update(load_manifest(shard)["entries"])
        assert indexed == set(library.names())

    def test_concurrent_eviction_pressure_respects_budget(self, tmp_path):
        """gc under a tight budget while puts keep landing never corrupts."""
        budget_mb = 4 * KIB / (1024 * 1024)
        library = PulseLibrary(tmp_path, shards=16, budget_mb=budget_mb)
        errors = []

        def writer():
            try:
                handle = PulseLibrary(tmp_path)
                for i in range(60):
                    handle.put(_name(0x500000 + i), b"x" * KIB)
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        for _ in range(10):
            library.gc()
        writer_thread.join()
        assert not errors
        report = library.gc()
        assert report.bytes_after <= budget_mb * 1024 * 1024
        # Every surviving file is readable.
        for name in library.names():
            assert library.get(name) is not None
