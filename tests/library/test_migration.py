"""Legacy flat-directory migration: every entry preserved, bit-identically."""

import pickle

import numpy as np

from repro.core.cache import (
    CACHE_SCHEMA_VERSION,
    CacheEntry,
    PersistentPulseCache,
    _key_filename,
)
from repro.library import PulseLibrary, load_manifest
from repro.pulse.device import GmonDevice
from repro.pulse.hamiltonian import build_control_set
from repro.pulse.schedule import PulseSchedule
from repro.transpile.topology import line_topology


def _entry(duration_ns: float = 0.5) -> CacheEntry:
    schedule = PulseSchedule(qubits=(0,), dt_ns=0.1, controls=np.ones((2, 5)))
    return CacheEntry(schedule, duration_ns, 0.999, True, 100)


def _key(cache, dim: int = 2, dt: float = 0.2):
    device = GmonDevice(line_topology(max(2, dim.bit_length())))
    control_set = build_control_set(device, [0])
    return cache.key(np.eye(dim), control_set, dt, 0.99)


def _populate_flat(directory, count: int) -> dict:
    """A legacy (pre-library) flat cache directory with ``count`` entries."""
    rng = np.random.default_rng(3)
    payloads = {}
    for i in range(count):
        name = f"{rng.bytes(20).hex()}-{i:016x}.pulse"
        blob = pickle.dumps(
            {"schema_version": CACHE_SCHEMA_VERSION, "entry": _entry(float(i))}
        )
        (directory / name).write_bytes(blob)
        payloads[name] = blob
    return payloads


class TestLibraryMigration:
    def test_flat_entries_move_into_shards_bit_identically(self, tmp_path):
        payloads = _populate_flat(tmp_path, 12)
        library = PulseLibrary(tmp_path, shards=16)
        assert library.migrated_entries == 12
        # Nothing left flat, every payload identical through the library.
        assert not list(tmp_path.glob("*.pulse"))
        for name, blob in payloads.items():
            assert library.get(name) == blob
            assert library.path_for(name).parent.name == name[0]

    def test_migration_builds_manifest_entries(self, tmp_path):
        payloads = _populate_flat(tmp_path, 6)
        library = PulseLibrary(tmp_path, shards=16)
        indexed = set()
        for shard in library.shard_dirs():
            indexed.update(load_manifest(shard)["entries"])
        assert indexed == set(payloads)

    def test_migration_runs_once(self, tmp_path):
        _populate_flat(tmp_path, 4)
        first = PulseLibrary(tmp_path, shards=16)
        second = PulseLibrary(tmp_path)
        assert first.migrated_entries == 4
        assert second.migrated_entries == 0
        assert second.count() == 4

    def test_unmigrated_flat_entry_still_served(self, tmp_path):
        """A flat file appearing *after* init (old-layout writer sharing the
        directory) is readable before any migration pass adopts it."""
        library = PulseLibrary(tmp_path, shards=16)
        (tmp_path / "feed.pulse").write_bytes(b"late")
        assert library.get("feed.pulse") == b"late"
        # The next gc adopts it into its shard.
        library.gc()
        assert (tmp_path / "f" / "feed.pulse").is_file()
        assert not (tmp_path / "feed.pulse").exists()


class TestCacheMigration:
    def test_legacy_cache_directory_round_trips(self, tmp_path):
        """A directory written by the pre-library PersistentPulseCache keeps
        serving every entry after the sharded library adopts it."""
        reference = PersistentPulseCache(tmp_path / "reference")
        keys = [_key(reference, dim, dt) for dim in (2, 4) for dt in (0.1, 0.2)]
        flat = tmp_path / "legacy"
        flat.mkdir()
        for i, key in enumerate(keys):
            blob = pickle.dumps(
                {"schema_version": CACHE_SCHEMA_VERSION, "entry": _entry(float(i))}
            )
            (flat / _key_filename(key)).write_bytes(blob)

        cache = PersistentPulseCache(flat)
        assert cache.library.migrated_entries == len(keys)
        for i, key in enumerate(keys):
            entry = cache.get(key)
            assert entry is not None
            assert entry.duration_ns == float(i)
        assert cache.disk_hits == len(keys)
        assert cache.stats()["library"]["migrated_entries"] == len(keys)

    def test_migrated_schema_mismatch_still_graceful(self, tmp_path):
        """v1 (bare pickle) files survive migration and still invalidate as
        schema mismatches, not disk errors."""
        warm = PersistentPulseCache(tmp_path / "seed")
        key = _key(warm)
        flat = tmp_path / "legacy"
        flat.mkdir()
        (flat / _key_filename(key)).write_bytes(pickle.dumps(_entry()))

        cache = PersistentPulseCache(flat)
        assert cache.library.migrated_entries == 1
        assert cache.get(key) is None
        assert cache.schema_mismatches == 1
        assert cache.disk_errors == 0
        # Recompute-and-overwrite heals in place, inside the shard.
        cache.put(key, _entry(0.7))
        cold = PersistentPulseCache(flat)
        assert cold.get(key).duration_ns == 0.7
        assert cold.schema_mismatches == 0

    def test_migrated_corrupt_file_counts_disk_error(self, tmp_path):
        warm = PersistentPulseCache(tmp_path / "seed")
        key = _key(warm)
        flat = tmp_path / "legacy"
        flat.mkdir()
        (flat / _key_filename(key)).write_bytes(b"truncated garbage")
        cache = PersistentPulseCache(flat)
        assert cache.get(key) is None
        assert cache.disk_errors == 1
        assert cache.schema_mismatches == 0

    def test_migration_preserves_persisted_stats(self, tmp_path):
        payloads = _populate_flat(tmp_path, 9)
        cache = PersistentPulseCache(tmp_path)
        assert cache.persisted_count() == 9
        assert cache.persisted_bytes() == sum(len(b) for b in payloads.values())
