"""Tests for presets and global configuration."""

import pytest

from repro.config import (
    GATE_DURATIONS_NS,
    available_presets,
    get_preset,
    set_preset,
)
from repro.errors import ReproError


class TestPresets:
    def test_available(self):
        assert set(available_presets()) == {"ci", "paper"}

    def test_paper_preset_values(self):
        paper = get_preset("paper")
        assert paper.dt_ns == 0.05
        assert paper.target_fidelity == 0.999
        assert paper.max_block_qubits == 4
        assert paper.time_search_precision_ns == 0.3

    def test_unknown_preset(self):
        with pytest.raises(ReproError):
            get_preset("turbo")

    def test_set_preset_roundtrip(self):
        original = get_preset().name
        try:
            assert set_preset("paper").name == "paper"
            assert get_preset().name == "paper"
        finally:
            set_preset(original)


class TestPipelineCacheConfig:
    def test_defaults(self):
        from repro.config import PipelineConfig

        config = PipelineConfig()
        assert config.cache_shards == 16
        assert config.cache_budget_mb is None

    def test_invalid_shard_count_rejected(self):
        from repro.config import PipelineConfig

        with pytest.raises(ReproError):
            PipelineConfig(cache_shards=100)

    def test_nonpositive_budget_rejected(self):
        from repro.config import PipelineConfig

        with pytest.raises(ReproError):
            PipelineConfig(cache_budget_mb=0)

    def test_set_pipeline_config_roundtrip(self):
        from repro.config import get_pipeline_config, set_pipeline_config

        original = get_pipeline_config()
        try:
            updated = set_pipeline_config(cache_shards=256, cache_budget_mb=64.0)
            assert updated.cache_shards == 256
            assert updated.cache_budget_mb == 64.0
            # Unpassed fields keep their values.
            assert updated.executor == original.executor
        finally:
            set_pipeline_config(
                cache_shards=original.cache_shards,
                cache_budget_mb=original.cache_budget_mb,
            )

    def test_env_parsing_tolerates_garbage(self, monkeypatch):
        from repro.config import _pipeline_config_from_env

        monkeypatch.setenv("REPRO_CACHE_SHARDS", "7")
        monkeypatch.setenv("REPRO_CACHE_BUDGET_MB", "not-a-number")
        with pytest.warns(UserWarning):
            config = _pipeline_config_from_env()
        assert config.cache_shards == 16
        assert config.cache_budget_mb is None

    def test_env_parsing_accepts_valid_values(self, monkeypatch):
        from repro.config import _pipeline_config_from_env

        monkeypatch.setenv("REPRO_CACHE_SHARDS", "256")
        monkeypatch.setenv("REPRO_CACHE_BUDGET_MB", "32.5")
        config = _pipeline_config_from_env()
        assert config.cache_shards == 256
        assert config.cache_budget_mb == 32.5

    def test_prefetch_defaults_off(self):
        from repro.config import PipelineConfig

        assert PipelineConfig().prefetch is False

    @pytest.mark.parametrize(
        "raw,expected",
        [("1", True), ("true", True), ("ON", True), ("0", False), ("off", False)],
    )
    def test_prefetch_env_parsing(self, monkeypatch, raw, expected):
        from repro.config import _pipeline_config_from_env

        monkeypatch.setenv("REPRO_PREFETCH", raw)
        assert _pipeline_config_from_env().prefetch is expected

    def test_prefetch_env_garbage_warns_and_defaults_off(self, monkeypatch):
        from repro.config import _pipeline_config_from_env

        monkeypatch.setenv("REPRO_PREFETCH", "maybe")
        with pytest.warns(UserWarning):
            config = _pipeline_config_from_env()
        assert config.prefetch is False

    def test_set_pipeline_config_prefetch_roundtrip(self):
        from repro.config import get_pipeline_config, set_pipeline_config

        original = get_pipeline_config()
        try:
            assert set_pipeline_config(prefetch=True).prefetch is True
            # Unpassed fields keep their values on the next update.
            assert set_pipeline_config(cache_shards=256).prefetch is True
        finally:
            set_pipeline_config(
                prefetch=original.prefetch, cache_shards=original.cache_shards
            )


class TestGateDurations:
    def test_table1_values(self):
        assert GATE_DURATIONS_NS["rz"] == 0.4
        assert GATE_DURATIONS_NS["rx"] == 2.5
        assert GATE_DURATIONS_NS["h"] == 1.4
        assert GATE_DURATIONS_NS["cx"] == 3.8
        assert GATE_DURATIONS_NS["swap"] == 7.4

    def test_all_durations_nonnegative(self):
        assert all(v >= 0 for v in GATE_DURATIONS_NS.values())
