"""Tests for presets and global configuration."""

import pytest

from repro.config import (
    GATE_DURATIONS_NS,
    available_presets,
    get_preset,
    set_preset,
)
from repro.errors import ReproError


class TestPresets:
    def test_available(self):
        assert set(available_presets()) == {"ci", "paper"}

    def test_paper_preset_values(self):
        paper = get_preset("paper")
        assert paper.dt_ns == 0.05
        assert paper.target_fidelity == 0.999
        assert paper.max_block_qubits == 4
        assert paper.time_search_precision_ns == 0.3

    def test_unknown_preset(self):
        with pytest.raises(ReproError):
            get_preset("turbo")

    def test_set_preset_roundtrip(self):
        original = get_preset().name
        try:
            assert set_preset("paper").name == "paper"
            assert get_preset().name == "paper"
        finally:
            set_preset(original)


class TestGateDurations:
    def test_table1_values(self):
        assert GATE_DURATIONS_NS["rz"] == 0.4
        assert GATE_DURATIONS_NS["rx"] == 2.5
        assert GATE_DURATIONS_NS["h"] == 1.4
        assert GATE_DURATIONS_NS["cx"] == 3.8
        assert GATE_DURATIONS_NS["swap"] == 7.4

    def test_all_durations_nonnegative(self):
        assert all(v >= 0 for v in GATE_DURATIONS_NS.values())
