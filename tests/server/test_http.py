"""HTTP frontend contracts: happy paths, error mapping, drain, tickets.

The satellite error-path matrix from the issue, verified against a live
server on an ephemeral port: malformed JSON → 400, oversized body → 413,
unknown strategy → 400, saturation under ``queue_depth=1`` → 429, and
draining → 503.  Plus the sync and ticket compile modes, both required to
return pulses bit-identical to an in-process ``service.compile``.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ServiceSaturated
from repro.server import (
    CompilationServer,
    RemoteCompileError,
    ServerClient,
    ServerError,
    ServerUnavailable,
)
from repro.server.wire import encode_request
from repro.pulse.grape.engine import GrapeHyperparameters, GrapeSettings
from repro.service import CompilationService, ServiceConfig

SETTINGS = GrapeSettings(dt_ns=0.5, target_fidelity=0.95)
HYPER = GrapeHyperparameters(
    learning_rate=0.05, decay_rate=0.002, max_iterations=80
)


class TestHealthAndStats:
    def test_healthz_ok(self, client):
        assert client.healthz() == {"status": "ok"}

    def test_stats_shape_and_counters(self, client, make_request):
        client.compile(make_request("gate"))
        stats = client.stats()
        assert set(stats) >= {"server", "service"}
        server_stats = stats["server"]
        assert server_stats["draining"] is False
        assert server_stats["responses_by_code"].get("200", 0) >= 1
        assert server_stats["requests_by_route"].get("/v1/compile", 0) == 1
        assert "tickets" in server_stats
        # The service section is the ordinary stats() dict, JSON-projected.
        assert "requests" in stats["service"]

    def test_unknown_route_404_and_wrong_method_405(self, client, raw_post):
        with pytest.raises(ServerError) as exc_info:
            client._roundtrip("GET", "/v1/teleport")
        assert exc_info.value.status == 404
        with pytest.raises(ServerError) as exc_info:
            client._roundtrip("GET", "/v1/compile")
        assert exc_info.value.status == 405
        status, payload = raw_post(client.url + "/healthz", b"{}")
        assert status == 405
        assert "error" in payload


class TestCompileModes:
    def test_sync_compile_bit_identical_to_inline(
        self, service, client, make_request, programs_identical
    ):
        request = make_request("strict-partial", max_block_width=2)
        remote = client.compile(request)
        inline = service.compile(request)
        assert remote.strategy == "strict-partial"
        assert remote.request is request
        assert programs_identical(
            remote.compiled.program, inline.compiled.program
        )

    def test_ticket_flow(self, client, make_request, programs_identical):
        request = make_request("gate")
        ticket = client.submit(request)
        result = client.result(ticket, request=request, timeout_s=300)
        assert result.strategy == "gate"
        # The ticket is consumed by the successful fetch.
        with pytest.raises(ServerError) as exc_info:
            client.job(ticket)
        assert exc_info.value.status == 404
        # And an outright unknown ticket is also a 404.
        with pytest.raises(ServerError) as exc_info:
            client.job("no-such-ticket")
        assert exc_info.value.status == 404


class TestErrorPaths:
    def test_malformed_json_is_400(self, client, raw_post):
        status, payload = raw_post(
            client.url + "/v1/compile", b'{"circuit": '
        )
        assert status == 400
        assert "malformed JSON" in payload["error"]

    def test_unknown_strategy_is_400(self, client, make_request):
        payload = encode_request(make_request("gate"))
        payload["strategy"] = "quantum-vibes"
        payload["mode"] = "sync"
        with pytest.raises(RemoteCompileError) as exc_info:
            client._roundtrip("POST", "/v1/compile", payload)
        assert exc_info.value.status == 400
        assert "quantum-vibes" in str(exc_info.value)

    def test_unknown_mode_is_400(self, client, make_request):
        payload = encode_request(make_request("gate"))
        payload["mode"] = "telepathy"
        with pytest.raises(RemoteCompileError, match="unknown mode"):
            client._roundtrip("POST", "/v1/compile", payload)

    def test_oversized_body_is_413_before_reading(self, service, raw_post):
        with CompilationServer(service, port=0, max_body_bytes=512).start() as srv:
            status, payload = raw_post(
                srv.url + "/v1/compile", b"x" * 4096
            )
            assert status == 413
            assert "512-byte limit" in payload["error"]
            assert srv.stats()["responses_by_code"].get("413") == 1

    def test_saturated_admission_is_429(self, make_request):
        config = ServiceConfig(
            executor="serial", queue_depth=1, warm_start=False
        )
        with CompilationService(
            config=config, settings=SETTINGS, hyperparameters=HYPER
        ) as service:
            with CompilationServer(service, port=0).start() as srv:
                client = ServerClient(srv.url, retries=0)
                # Hold the single admission slot so the HTTP submit must
                # fail-fast — deterministic, no timing games.
                assert service._admission.acquire(blocking=False)
                try:
                    with pytest.raises(ServiceSaturated, match="queue is full"):
                        client.compile(make_request("gate"))
                finally:
                    service._admission.release()
                assert srv.stats()["responses_by_code"].get("429") == 1
                # With the slot back, the same request sails through.
                result = client.compile(make_request("gate"))
                assert result.compiled is not None

    def test_draining_server_rejects_with_503(self, client, server, make_request):
        assert client.healthz() == {"status": "ok"}
        server.begin_drain()
        with pytest.raises(ServerUnavailable, match="draining"):
            client.healthz()
        with pytest.raises(ServerUnavailable, match="draining"):
            client.compile(make_request("gate"))
        # Reads still work so admitted tickets stay fetchable.
        assert client.stats()["server"]["draining"] is True

    def test_unreachable_server_raises_server_unavailable(self):
        client = ServerClient(
            "http://127.0.0.1:9", timeout_s=1, retries=1, backoff_s=0.01
        )
        with pytest.raises(ServerUnavailable, match="cannot reach"):
            client.healthz()


class TestDrainLifecycle:
    def test_drain_waits_for_inflight_then_idles(self, service):
        with CompilationServer(service, port=0).start() as srv:
            assert srv.drain(grace_s=5.0) is True
            assert srv.draining is True

    def test_ticket_remains_fetchable_after_drain(
        self, client, server, make_request
    ):
        ticket = client.submit(make_request("gate"))
        server.begin_drain()
        result = client.result(ticket, timeout_s=300)
        assert result.compiled is not None


def test_raw_body_content_length_required(client):
    import http.client

    conn = http.client.HTTPConnection(client.url[len("http://"):], timeout=30)
    try:
        conn.putrequest("POST", "/v1/compile")
        conn.putheader("Content-Type", "application/json")
        conn.endheaders()
        response = conn.getresponse()
        payload = json.loads(response.read())
        assert response.status == 400
        assert "Content-Length" in payload["error"]
    finally:
        conn.close()
