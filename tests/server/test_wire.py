"""Wire-codec contracts: fingerprint stability and bit-identical results.

The two load-bearing properties of :mod:`repro.server.wire`:

* a circuit that crosses the wire keeps its exact
  ``content_fingerprint()`` — numeric angles by bit-exact float value,
  symbolic angles by their parameter skeleton — so the server hits the
  same cache slots an in-process caller would;
* a compile result round-trips with bit-identical control samples.

Plus the rejection surface: malformed payloads, unknown gates, live-object
options, and wire-version mismatches must raise :class:`WireError` (the
server's 400), never a bare ``KeyError``/``TypeError``.
"""

from __future__ import annotations

import json

import pytest

from repro.circuits import Parameter, QuantumCircuit
from repro.server import WireError, decode_request, encode_request
from repro.server.wire import (
    WIRE_VERSION,
    decode_circuit,
    decode_result,
    encode_circuit,
    encode_result,
)
from repro.service import CompileRequest


def _roundtrip(payload):
    """Force a real JSON round-trip — what the network actually does."""
    return json.loads(json.dumps(payload))


def _symbolic_circuit() -> QuantumCircuit:
    """Constants, bare parameters, and a linear expression in one circuit."""
    theta0, theta1 = Parameter("theta_0"), Parameter("theta_1")
    circuit = QuantumCircuit(2, name="symbolic")
    circuit.h(0)
    circuit.rz(0.1234567891234567, 0)  # full double precision survives
    circuit.rz(theta0, 0)
    circuit.cx(0, 1)
    circuit.rz(2.0 * theta1 + 0.5, 1)
    return circuit


class TestCircuitCodec:
    def test_fingerprint_stable_across_the_wire(self, workload):
        circuit, _ = workload
        decoded = decode_circuit(_roundtrip(encode_circuit(circuit)))
        assert decoded.content_fingerprint() == circuit.content_fingerprint()
        assert decoded.num_qubits == circuit.num_qubits
        assert decoded.count_ops() == circuit.count_ops()

    def test_symbolic_angles_round_trip(self):
        circuit = _symbolic_circuit()
        decoded = decode_circuit(_roundtrip(encode_circuit(circuit)))
        assert decoded.content_fingerprint() == circuit.content_fingerprint()
        assert decoded.parameters == circuit.parameters
        # Parameter interning: both rz gates bind through the same objects
        # a locally-built ansatz would share.
        assert len(decoded.parameters) == 2

    @pytest.mark.parametrize(
        "payload",
        [
            {"gates": []},  # missing width
            {"width": 0, "gates": []},  # non-positive width
            {"width": 2, "gates": [{"qubits": [0]}]},  # missing gate name
            {"width": 2, "gates": [{"gate": "warp", "qubits": [0]}]},
            {"width": 2, "gates": [{"gate": "cx", "qubits": [0, 5]}]},
            {
                "width": 2,
                "gates": [{"gate": "rz", "qubits": [0], "params": [["?", 1]]}],
            },
        ],
        ids=[
            "missing-width",
            "zero-width",
            "missing-gate",
            "unknown-gate",
            "qubit-out-of-range",
            "bad-angle-tag",
        ],
    )
    def test_malformed_circuits_raise_wire_error(self, payload):
        with pytest.raises(WireError):
            decode_circuit(payload)


class TestRequestCodec:
    def test_full_round_trip(self, make_request):
        request = make_request(
            "strict-partial", max_block_width=2, options={"tag": "t"}
        )
        decoded = decode_request(_roundtrip(encode_request(request)))
        assert decoded.strategy == request.strategy
        assert decoded.max_block_width == 2
        assert decoded.use_cache is True
        assert decoded.options == {"tag": "t"}
        assert list(decoded.normalized_values()) == list(
            request.normalized_values()
        )
        assert (
            decoded.circuit.content_fingerprint()
            == request.circuit.content_fingerprint()
        )
        assert decoded.settings == request.settings
        assert decoded.hyperparameters == request.hyperparameters

    def test_mapping_values_are_not_wirable(self, workload):
        circuit, _ = workload
        name = circuit.parameters[0].name
        request = CompileRequest(circuit, {name: 0.3}, strategy="gate")
        with pytest.raises(WireError, match="mapping-form values"):
            encode_request(request)

    def test_unwirable_options_rejected(self, make_request):
        payload = encode_request(make_request("gate"))
        payload["options"] = {"probe_executor": "serial"}
        with pytest.raises(WireError, match="live object"):
            decode_request(payload)

    def test_wire_version_mismatch_rejected(self, make_request):
        payload = encode_request(make_request("gate"))
        payload["wire_version"] = WIRE_VERSION + 1
        with pytest.raises(WireError, match="wire version mismatch"):
            decode_request(payload)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda p: p.pop("circuit"),
            lambda p: p.pop("strategy"),
            lambda p: p.update(values={"theta": 1.0}),
            lambda p: p.update(values=["x"]),
            lambda p: p.update(options=[1, 2]),
            lambda p: p.update(max_block_width="wide"),
            lambda p: p.update(settings={"regularization": {"bogus": 1}}),
            lambda p: p.update(hyperparameters={"optimizer": "sgd9000"}),
        ],
        ids=[
            "no-circuit",
            "no-strategy",
            "dict-values",
            "non-numeric-values",
            "list-options",
            "string-block-width",
            "bad-settings",
            "bad-hyperparameters",
        ],
    )
    def test_malformed_requests_raise_wire_error(self, make_request, mutate):
        payload = encode_request(make_request("gate"))
        mutate(payload)
        with pytest.raises(WireError):
            decode_request(payload)

    def test_non_object_body_rejected(self):
        with pytest.raises(WireError):
            decode_request([1, 2, 3])


class TestResultCodec:
    def test_result_round_trips_bit_identical(
        self, service, make_request, programs_identical
    ):
        request = make_request("strict-partial", max_block_width=2)
        result = service.compile(request)
        decoded = decode_result(
            _roundtrip(encode_result(result)), request=request
        )
        assert decoded.strategy == result.strategy
        assert decoded.request is request
        assert programs_identical(
            decoded.compiled.program, result.compiled.program
        )
        assert (
            decoded.compiled.pulse_duration_ns
            == result.compiled.pulse_duration_ns
        )
        assert decoded.compiled.method == result.compiled.method

    def test_precompile_report_survives(self, service, make_request):
        request = make_request("strict-partial", max_block_width=2)
        result = service.compile(request)
        decoded = decode_result(_roundtrip(encode_result(result)))
        report = decoded.precompile_report
        assert report is not None
        assert report.method == result.precompile_report.method
        assert (
            report.blocks_precompiled
            == result.precompile_report.blocks_precompiled
        )
        # Plan compilers stay server-side.
        assert decoded.compiler is None

    def test_bad_result_payload_raises_wire_error(self):
        with pytest.raises(WireError):
            decode_result({"compiled": {"schedules": "nope"}})
