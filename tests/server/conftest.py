"""Shared fixtures for the HTTP compilation frontend tests.

Every fixture pins ``warm_start=False``: warm starting is the one
deliberately order-sensitive knob, and these tests assert bit-identity
between compilation venues (in-process vs HTTP vs fleet-served HTTP).
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.pulse.grape.engine import GrapeHyperparameters, GrapeSettings
from repro.qaoa import maxcut_problem, qaoa_circuit
from repro.server import CompilationServer, ServerClient
from repro.service import CompilationService, CompileRequest, ServiceConfig
from repro.transpile import transpile

SETTINGS = GrapeSettings(dt_ns=0.5, target_fidelity=0.95)
HYPER = GrapeHyperparameters(
    learning_rate=0.05, decay_rate=0.002, max_iterations=80
)


@pytest.fixture(scope="module")
def workload():
    """A small parametrized circuit (QAOA MAXCUT K4, p=1) plus one θ."""
    problem = maxcut_problem("clique", 4, seed=0)
    circuit = transpile(qaoa_circuit(problem, p=1))
    return circuit, [0.4, 0.9]


@pytest.fixture
def make_request(workload):
    """CompileRequest factory bound to the shared workload."""
    circuit, theta = workload

    def build(strategy: str = "gate", **kwargs) -> CompileRequest:
        kwargs.setdefault("settings", SETTINGS)
        kwargs.setdefault("hyperparameters", HYPER)
        return CompileRequest(circuit, theta, strategy=strategy, **kwargs)

    return build


@pytest.fixture
def service():
    """A serial in-process service with warm start pinned off."""
    with CompilationService(
        config=ServiceConfig(executor="serial", warm_start=False),
        settings=SETTINGS,
        hyperparameters=HYPER,
    ) as svc:
        yield svc


@pytest.fixture
def server(service):
    """An HTTP frontend on an ephemeral port over the serial service."""
    with CompilationServer(service, port=0).start() as srv:
        yield srv


@pytest.fixture
def client(server):
    return ServerClient(server.url, timeout_s=300.0, retries=1, backoff_s=0.05)


@pytest.fixture(scope="session")
def programs_identical():
    """Bit-identity check for pulse programs: durations + control samples."""

    def check(a, b) -> bool:
        if a.duration_ns != b.duration_ns:
            return False
        schedules_a, schedules_b = list(a.schedules), list(b.schedules)
        if len(schedules_a) != len(schedules_b):
            return False
        return all(
            x.controls.shape == y.controls.shape
            and np.array_equal(x.controls, y.controls)
            for x, y in zip(schedules_a, schedules_b)
        )

    return check


@pytest.fixture(scope="session")
def raw_post():
    """POST arbitrary bytes to a URL, returning (status, decoded payload).

    The typed client refuses to send malformed payloads, so the HTTP
    error-path tests need this lower-level escape hatch.
    """

    def post(url: str, body: bytes, content_type: str = "application/json"):
        request = urllib.request.Request(
            url,
            data=body,
            method="POST",
            headers={"Content-Type": content_type},
        )
        try:
            with urllib.request.urlopen(request, timeout=60) as response:
                return response.status, json.loads(response.read() or b"{}")
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read() or b"{}")

    return post
