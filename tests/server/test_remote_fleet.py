"""End-to-end: HTTP compile served by fleet workers in other processes.

The issue's acceptance path — ``POST /v1/compile`` lands on a service
whose queue dispatcher ships the block jobs to a worker *process*, and
the pulses that come back over the wire are bit-identical to an inline
``service.compile`` — plus the CLI pair that operators actually run:
``python -m repro serve`` (SIGTERM drains) and
``python -m repro remote-compile --verify-local``.
"""

from __future__ import annotations

import signal
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.fleet.dispatcher import _WORKER_BOOTSTRAP
from repro.pulse.grape.engine import GrapeHyperparameters, GrapeSettings
from repro.server import CompilationServer, ServerClient
from repro.service import CompilationService, ServiceConfig

SETTINGS = GrapeSettings(dt_ns=0.5, target_fidelity=0.95)
HYPER = GrapeHyperparameters(
    learning_rate=0.05, decay_rate=0.002, max_iterations=80
)

SRC_ROOT = Path(repro.__file__).resolve().parent.parent


class TestFleetServedCompile:
    def test_http_compile_bit_identical_to_inline(
        self, tmp_path, make_request, programs_identical
    ):
        """One request through HTTP + queue dispatcher + worker process;
        the same request inline through a serial service; same bits."""
        request = make_request("strict-partial", max_block_width=2)
        fleet_cfg = ServiceConfig(
            dispatcher="queue",
            fleet_dir=str(tmp_path / "fleet"),
            fleet_workers=1,
            warm_start=False,
        )
        with CompilationService(
            config=fleet_cfg, settings=SETTINGS, hyperparameters=HYPER
        ) as fleet_service:
            with CompilationServer(fleet_service, port=0).start() as srv:
                client = ServerClient(srv.url, timeout_s=600.0)
                remote = client.compile(request)
                stats = client.stats()
        with CompilationService(
            config=ServiceConfig(executor="serial", warm_start=False),
            settings=SETTINGS,
            hyperparameters=HYPER,
        ) as serial_service:
            inline = serial_service.compile(request)
        assert programs_identical(
            remote.compiled.program, inline.compiled.program
        )
        # The work demonstrably left the server's address space.
        executor_stats = stats["service"]["executor"]
        assert executor_stats["executor"] == "queue"
        assert executor_stats["completed_jobs"] >= 1
        assert executor_stats["completions_by_worker"]
        # And the host-aware fleet section rode along on /v1/stats.
        fleet_stats = stats["service"]["fleet"]
        assert fleet_stats["mode"] == "fixed"
        assert fleet_stats["pending_jobs"] == 0


def _terminate(proc: subprocess.Popen) -> None:
    if proc.poll() is None:
        proc.kill()
        proc.wait(timeout=30)


@pytest.fixture
def serve_process():
    """A real ``python -m repro serve`` child on an ephemeral port."""
    cmd = [
        sys.executable,
        "-c",
        _WORKER_BOOTSTRAP,
        str(SRC_ROOT),
        "serve",
        "--host",
        "127.0.0.1",
        "--port",
        "0",
        "--executor",
        "serial",
        "--grace",
        "30",
    ]
    proc = subprocess.Popen(
        cmd,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        banner = proc.stderr.readline()
        assert "serving on http://" in banner, banner
        url = banner.split("serving on ", 1)[1].split(" ", 1)[0]
        yield proc, url
    finally:
        _terminate(proc)


class TestServeCli:
    def test_remote_compile_verifies_against_local(self, serve_process):
        proc, url = serve_process
        done = subprocess.run(
            [
                sys.executable,
                "-c",
                _WORKER_BOOTSTRAP,
                str(SRC_ROOT),
                "remote-compile",
                "--url",
                url,
                "--benchmark",
                "qaoa:clique:4:1",
                "--method",
                "strict",
                "--iterations",
                "80",
                "--verify-local",
            ],
            capture_output=True,
            text=True,
            timeout=560,
        )
        assert done.returncode == 0, done.stderr
        assert "bit-identical to local compile" in done.stdout
        assert "True" in done.stdout

    def test_sigterm_drains_and_exits_cleanly(self, serve_process):
        proc, url = serve_process
        client = ServerClient(url, timeout_s=30.0)
        assert client.healthz() == {"status": "ok"}
        proc.send_signal(signal.SIGTERM)
        remainder = proc.stderr.read()
        assert proc.wait(timeout=60) == 0
        assert "draining in-flight requests" in remainder
