"""Repository hygiene checks.

Cheap structural guarantees of the "production-quality" claims: every
module is documented, nothing ships with placeholder markers, and the
packaging metadata stays consistent with the code.
"""

import ast
import re
from pathlib import Path

import pytest

REPO = Path(__file__).parent.parent
SRC_MODULES = sorted((REPO / "src").rglob("*.py"))


@pytest.mark.parametrize("path", SRC_MODULES, ids=lambda p: str(p.relative_to(REPO)))
def test_every_module_has_docstring(path):
    tree = ast.parse(path.read_text())
    assert ast.get_docstring(tree), f"{path} lacks a module docstring"


@pytest.mark.parametrize("path", SRC_MODULES, ids=lambda p: str(p.relative_to(REPO)))
def test_no_placeholder_markers(path):
    # NotImplementedError is allowed: it is the idiom for abstract base
    # methods (Gate.matrix / Gate.inverse), not a stub marker.
    source = path.read_text()
    for marker in ("TODO", "FIXME", "XXX"):
        assert marker not in source, f"{path} contains placeholder {marker!r}"


def test_no_debugging_leftovers():
    for path in SRC_MODULES:
        source = path.read_text()
        assert "breakpoint()" not in source, path
        assert "pdb.set_trace" not in source, path


def test_version_consistent_with_pyproject():
    import repro

    pyproject = (REPO / "pyproject.toml").read_text()
    match = re.search(r'^version = "([^"]+)"', pyproject, re.MULTILINE)
    assert match and match.group(1) == repro.__version__


def test_every_subpackage_reachable_from_root():
    import repro

    for sub in ("analysis", "blocking", "circuits", "core", "fleet",
                "linalg", "pipeline", "pulse", "qaoa", "service", "sim",
                "transpile", "vqe"):
        assert hasattr(repro, sub)


def test_docs_exist_and_nonempty():
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "LICENSE"):
        path = REPO / name
        assert path.exists() and path.stat().st_size > 100, name


def test_bench_files_use_benchmark_fixture():
    """Every bench module must contain at least one pytest-benchmark test."""
    for path in sorted((REPO / "benchmarks").glob("bench_*.py")):
        source = path.read_text()
        assert "benchmark" in source, path
        assert "def test" in source, path
