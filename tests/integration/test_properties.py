"""Cross-module property-based tests.

Each property here spans at least two subsystems — the invariants a
downstream user relies on when composing the library: transpilation
preserves semantics, simulators agree with each other, serialization is
lossless, routing composes with scheduling.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit
from repro.circuits.parameters import Parameter
from repro.circuits.qasm import from_qasm, to_qasm
from repro.linalg.unitaries import unitaries_equal_up_to_phase
from repro.sim.statevector import simulate
from repro.sim.unitary import circuit_unitary
from repro.transpile import transpile
from repro.transpile.basis import BASIS_GATES, decompose_to_basis
from repro.transpile.optimize import optimize_circuit
from repro.transpile.schedule import asap_schedule

MAX_QUBITS = 4

_GATE_POOL = (
    "h", "x", "y", "z", "s", "sdg", "t", "tdg",
    "rx", "ry", "rz", "cx", "cz", "swap", "iswap", "rzz",
)


def _random_circuit(seed: int, num_qubits: int, num_gates: int) -> QuantumCircuit:
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits)
    for _ in range(num_gates):
        name = _GATE_POOL[int(rng.integers(len(_GATE_POOL)))]
        if name in ("cx", "cz", "swap", "iswap", "rzz") and num_qubits >= 2:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            if name == "rzz":
                circuit.rzz(float(rng.uniform(-3, 3)), int(a), int(b))
            else:
                getattr(circuit, name)(int(a), int(b))
        elif name in ("rx", "ry", "rz"):
            getattr(circuit, name)(float(rng.uniform(-3, 3)), int(rng.integers(num_qubits)))
        elif name not in ("cx", "cz", "swap", "iswap", "rzz"):
            getattr(circuit, name)(int(rng.integers(num_qubits)))
    return circuit


circuit_seeds = st.integers(min_value=0, max_value=100_000)
widths = st.integers(min_value=1, max_value=MAX_QUBITS)


@settings(max_examples=40, deadline=None)
@given(circuit_seeds, widths)
def test_basis_decomposition_preserves_unitary(seed, width):
    """transpile/basis x sim: decomposition never changes the semantics."""
    circuit = _random_circuit(seed, width, 12)
    decomposed = decompose_to_basis(circuit)
    assert all(inst.gate.name in BASIS_GATES for inst in decomposed)
    assert unitaries_equal_up_to_phase(
        circuit_unitary(decomposed), circuit_unitary(circuit), atol=1e-7
    )


@settings(max_examples=40, deadline=None)
@given(circuit_seeds, widths)
def test_optimizer_preserves_unitary(seed, width):
    """transpile/optimize x sim: peephole passes are semantics-preserving."""
    circuit = decompose_to_basis(_random_circuit(seed, width, 14))
    optimized = optimize_circuit(circuit)
    assert len(optimized) <= len(circuit)
    assert unitaries_equal_up_to_phase(
        circuit_unitary(optimized), circuit_unitary(circuit), atol=1e-7
    )


@settings(max_examples=30, deadline=None)
@given(circuit_seeds, widths)
def test_full_pipeline_preserves_unitary(seed, width):
    """transpile (full default pipeline) x sim, without routing."""
    circuit = _random_circuit(seed, width, 10)
    out = transpile(circuit)
    assert unitaries_equal_up_to_phase(
        circuit_unitary(out), circuit_unitary(circuit), atol=1e-7
    )


@settings(max_examples=30, deadline=None)
@given(circuit_seeds, st.integers(min_value=2, max_value=MAX_QUBITS))
def test_statevector_agrees_with_unitary_simulator(seed, width):
    """sim/statevector x sim/unitary on the |0…0⟩ state."""
    circuit = _random_circuit(seed, width, 10)
    state = simulate(circuit).data
    column = circuit_unitary(circuit)[:, 0]
    fidelity = abs(np.vdot(column, state))
    assert fidelity == pytest.approx(1.0, abs=1e-9)


@settings(max_examples=30, deadline=None)
@given(circuit_seeds, widths)
def test_qasm_roundtrip(seed, width):
    """circuits/qasm: export → import is semantics-preserving."""
    circuit = _random_circuit(seed, width, 8)
    rebuilt = from_qasm(to_qasm(circuit))
    assert rebuilt.num_qubits == circuit.num_qubits
    assert unitaries_equal_up_to_phase(
        circuit_unitary(rebuilt), circuit_unitary(circuit), atol=1e-7
    )


@settings(max_examples=30, deadline=None)
@given(circuit_seeds, widths)
def test_inverse_composes_to_identity(seed, width):
    """circuits: U · U⁻¹ = 1 for any circuit."""
    circuit = _random_circuit(seed, width, 8)
    identity = circuit.copy()
    for inst in circuit.inverse():
        identity.append(inst.gate, inst.qubits)
    assert unitaries_equal_up_to_phase(
        circuit_unitary(identity), np.eye(2**width), atol=1e-7
    )


@settings(max_examples=30, deadline=None)
@given(circuit_seeds, widths)
def test_schedule_duration_bounds(seed, width):
    """transpile/schedule: critical path ≤ serial sum, ≥ longest gate."""
    circuit = decompose_to_basis(_random_circuit(seed, width, 12))
    if len(circuit) == 0:
        return
    schedule = asap_schedule(circuit)
    serial = sum(e.duration_ns for e in schedule.entries)
    longest = max(e.duration_ns for e in schedule.entries)
    assert longest - 1e-9 <= schedule.duration_ns <= serial + 1e-9


@settings(max_examples=25, deadline=None)
@given(circuit_seeds, widths)
def test_schedule_never_overlaps_qubits(seed, width):
    """transpile/schedule: a qubit is never driven by two gates at once."""
    circuit = decompose_to_basis(_random_circuit(seed, width, 12))
    schedule = asap_schedule(circuit)
    per_qubit: dict = {}
    for entry in schedule.entries:
        for q in entry.instruction.qubits:
            per_qubit.setdefault(q, []).append((entry.start_ns, entry.end_ns))
    for intervals in per_qubit.values():
        intervals.sort()
        for (s1, e1), (s2, _) in zip(intervals, intervals[1:]):
            assert s2 >= e1 - 1e-9


@settings(max_examples=25, deadline=None)
@given(
    circuit_seeds,
    st.integers(min_value=1, max_value=3),
    st.floats(min_value=-math.pi, max_value=math.pi, allow_nan=False),
)
def test_parameter_binding_commutes_with_transpile(seed, num_params, value):
    """circuits/parameters x transpile: bind∘transpile == transpile∘bind.

    This is the invariant partial compilation rests on: the parameter tags
    survive the pipeline, so binding afterwards lands on the same circuit.
    """
    rng = np.random.default_rng(seed)
    params = [Parameter(f"t{i}") for i in range(num_params)]
    circuit = QuantumCircuit(2)
    for i in range(6):
        circuit.h(int(rng.integers(2)))
        circuit.cx(0, 1)
        circuit.rz(params[i % num_params] * float(rng.choice([1.0, -1.0, 0.5])), 1)
    values = {p: value for p in params}

    bound_then_transpiled = transpile(circuit.bind_parameters(values))
    transpiled_then_bound = transpile(circuit).bind_parameters(values)
    assert unitaries_equal_up_to_phase(
        circuit_unitary(bound_then_transpiled),
        circuit_unitary(transpiled_then_bound),
        atol=1e-7,
    )


@settings(max_examples=20, deadline=None)
@given(circuit_seeds)
def test_compose_is_associative_in_unitary(seed):
    """circuits/compose x sim: (A∘B)∘C == A∘(B∘C) as unitaries."""
    a = _random_circuit(seed, 2, 5)
    b = _random_circuit(seed + 1, 2, 5)
    c = _random_circuit(seed + 2, 2, 5)
    left = a.copy().compose(b).compose(c)
    right = a.copy().compose(b.copy().compose(c))
    assert unitaries_equal_up_to_phase(
        circuit_unitary(left), circuit_unitary(right), atol=1e-8
    )


@settings(max_examples=20, deadline=None)
@given(circuit_seeds, st.integers(min_value=2, max_value=MAX_QUBITS))
def test_measurement_probabilities_normalized(seed, width):
    """sim: output state stays normalized through any circuit."""
    circuit = _random_circuit(seed, width, 15)
    state = simulate(circuit).data
    assert np.sum(np.abs(state) ** 2) == pytest.approx(1.0, abs=1e-9)
