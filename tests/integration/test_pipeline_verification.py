"""Integration: compiled pulse programs are physically correct.

Closes the loop between the compiler stack and the device model: every
GRAPE-sourced schedule in a compiled program must realize its block's
unitary on the gmon Hamiltonian at the configured fidelity.
"""

import numpy as np
import pytest

from repro.blocking.aggregate import aggregate_blocks
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import ghz_circuit
from repro.core.compiler import BlockPulseCompiler
from repro.pulse.device import GmonDevice
from repro.pulse.grape.engine import GrapeHyperparameters, GrapeSettings
from repro.pulse.verify import verify_block
from repro.transpile.basis import decompose_to_basis
from repro.transpile.topology import line_topology

SETTINGS = GrapeSettings(dt_ns=0.25, target_fidelity=0.99)
HYPER = GrapeHyperparameters(learning_rate=0.05, decay_rate=0.002, max_iterations=200)


class TestCompiledProgramsVerify:
    def test_ghz_blocks_verify_on_device(self):
        device = GmonDevice(line_topology(3))
        circuit = decompose_to_basis(ghz_circuit(3))
        compiler = BlockPulseCompiler(device, SETTINGS, HYPER)
        blocked = aggregate_blocks(circuit, 2)
        for block in blocked.blocks:
            sub, device_qubits = blocked.local_circuit(block)
            outcome = compiler.compile_block(sub, device_qubits)
            if outcome.schedule.source in ("grape", "cache"):
                check = verify_block(device, outcome.schedule, sub)
                assert check.fidelity >= SETTINGS.target_fidelity - 1e-9

    def test_grape_block_duration_at_most_gate_based(self):
        device = GmonDevice(line_topology(2))
        compiler = BlockPulseCompiler(device, SETTINGS, HYPER)
        circuit = QuantumCircuit(2).h(0).cx(0, 1).rz(0.7, 1).cx(0, 1)
        outcome = compiler.compile_block(decompose_to_basis(circuit), (0, 1))
        assert outcome.duration_ns <= outcome.gate_based_ns + 1e-9

    def test_cache_returns_identical_pulse(self):
        from repro.core.cache import PulseCache

        device = GmonDevice(line_topology(2))
        cache = PulseCache()
        compiler = BlockPulseCompiler(device, SETTINGS, HYPER, cache)
        circuit = decompose_to_basis(QuantumCircuit(1).h(0))
        first = compiler.compile_block(circuit, (0,))
        second = compiler.compile_block(circuit, (0,))
        assert second.cache_hit
        # The cache must reproduce the fresh decision exactly — including
        # the fallback choice when GRAPE did not beat the lookup table.
        assert second.schedule.source in ("cache", "fallback")
        assert np.isclose(first.duration_ns, second.duration_ns)
        if first.schedule.source == "grape":
            assert np.allclose(first.schedule.controls, second.schedule.controls)

    def test_cache_shared_across_translated_blocks(self):
        # Identical subcircuits on different (but physically equivalent)
        # qubit pairs share one GRAPE result.
        from repro.core.cache import PulseCache

        device = GmonDevice(line_topology(4))
        cache = PulseCache()
        compiler = BlockPulseCompiler(device, SETTINGS, HYPER, cache)
        circuit = decompose_to_basis(QuantumCircuit(2).h(0).cx(0, 1))
        first = compiler.compile_block(circuit, (0, 1))
        second = compiler.compile_block(circuit, (2, 3))
        assert second.cache_hit
        assert np.isclose(first.duration_ns, second.duration_ns)
