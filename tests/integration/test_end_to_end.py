"""Integration tests: the paper's claims, end to end, at reduced scale."""

import numpy as np
import pytest

from repro.analysis.speedup import SpeedupRow
from repro.core import (
    FlexiblePartialCompiler,
    FullGrapeCompiler,
    GateBasedCompiler,
    StrictPartialCompiler,
)
from repro.pulse.device import GmonDevice
from repro.pulse.grape.engine import GrapeHyperparameters, GrapeSettings
from repro.qaoa import QAOADriver, maxcut_problem, qaoa_circuit
from repro.transpile.passes import transpile
from repro.transpile.topology import line_topology
from repro.vqe import VQEDriver, get_molecule, h2_hamiltonian

SETTINGS = GrapeSettings(dt_ns=0.25, target_fidelity=0.99)
HYPER = GrapeHyperparameters(learning_rate=0.05, decay_rate=0.002, max_iterations=150)


@pytest.fixture(scope="module")
def qaoa_k4():
    """The 4-node clique QAOA p=1 circuit, transpiled — Figure 2's workload."""
    problem = maxcut_problem("clique", 4, seed=0)
    return transpile(qaoa_circuit(problem, 1))


@pytest.fixture(scope="module")
def device():
    return GmonDevice(line_topology(4))


@pytest.fixture(scope="module")
def theta(qaoa_k4):
    rng = np.random.default_rng(0)
    return list(rng.uniform(0.2, 1.2, size=len(qaoa_k4.parameters)))


class TestCompilationOrdering:
    """Table 4's invariant: gate ≥ strict ≥ flexible, GRAPE ≤ strict."""

    @pytest.fixture(scope="class")
    def durations(self, qaoa_k4, device, theta):
        gate = GateBasedCompiler().compile_parametrized(qaoa_k4, theta)
        grape = FullGrapeCompiler(
            device=device, settings=SETTINGS, hyperparameters=HYPER, max_block_width=3
        ).compile_parametrized(qaoa_k4, theta)
        strict = StrictPartialCompiler.precompile(
            qaoa_k4, device=device, settings=SETTINGS, hyperparameters=HYPER,
            max_block_width=3,
        )
        flexible = FlexiblePartialCompiler.precompile(
            qaoa_k4, device=device, settings=SETTINGS, hyperparameters=HYPER,
            max_block_width=3, tuning_samples=1,
            learning_rates=(0.05,), decay_rates=(0.002,),
        )
        return {
            "gate": gate,
            "grape": grape,
            "strict": strict.compile(theta),
            "flexible": flexible.compile(theta),
            "grape_obj": grape,
        }

    def test_speedup_ordering(self, durations):
        row = SpeedupRow(
            "qaoa_k4",
            durations["gate"].pulse_duration_ns,
            durations["strict"].pulse_duration_ns,
            durations["flexible"].pulse_duration_ns,
            durations["grape"].pulse_duration_ns,
        )
        assert row.ordering_holds(tolerance_ns=0.5)

    def test_grape_speedup_significant(self, durations):
        speedup = (
            durations["gate"].pulse_duration_ns / durations["grape"].pulse_duration_ns
        )
        assert speedup > 1.3  # paper reports ~2x at p=1 on K4

    def test_flexible_latency_below_full_grape(self, durations):
        assert (
            durations["flexible"].runtime_iterations
            < durations["grape"].runtime_iterations
        )

    def test_strict_zero_runtime_iterations(self, durations):
        assert durations["strict"].runtime_iterations == 0


class TestVariationalLoops:
    def test_vqe_with_strict_compiler_in_loop(self):
        molecule = get_molecule("H2")
        ansatz = transpile(molecule.ansatz())
        strict = StrictPartialCompiler.precompile(
            ansatz, device=GmonDevice(line_topology(2)), settings=SETTINGS,
            hyperparameters=HYPER, max_block_width=2,
        )
        driver = VQEDriver(
            h2_hamiltonian(), ansatz, max_iterations=60, seed=3, compiler=strict
        )
        result = driver.run()
        # Compilation inside the loop must be essentially free.
        assert result.compile_latency_s < 0.1
        assert len(result.compile_pulse_ns) == result.iterations
        assert result.optimal_energy < -1.0

    def test_qaoa_with_gate_compiler_in_loop(self):
        problem = maxcut_problem("clique", 4, seed=0)
        driver = QAOADriver(problem, p=1, max_iterations=60, seed=0,
                            compiler=GateBasedCompiler())
        result = driver.run()
        assert result.approximation_ratio > 0.5


class TestTable2Shape:
    def test_vqe_runtime_grows_with_molecule_size(self):
        from repro.circuits.dag import critical_path_ns

        h2 = critical_path_ns(transpile(get_molecule("H2").ansatz()))
        lih = critical_path_ns(transpile(get_molecule("LiH").ansatz()))
        assert lih > 5 * h2  # paper: 35 ns vs 872 ns
