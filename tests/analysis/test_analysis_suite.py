"""Tests for analysis helpers: decoherence, speedups, table rendering."""

import math

import numpy as np
import pytest

from repro.analysis.decoherence import decoherence_advantage, success_probability
from repro.analysis.speedup import SpeedupRow, speedup_table
from repro.analysis.tables import format_table
from repro.errors import ReproError


class TestDecoherence:
    def test_zero_duration_certain_success(self):
        assert success_probability(0.0) == 1.0

    def test_exponential_decay(self):
        assert np.isclose(success_probability(20_000.0, 20_000.0), math.exp(-1))

    def test_negative_duration_rejected(self):
        with pytest.raises(ReproError):
            success_probability(-1.0)

    def test_invalid_coherence(self):
        with pytest.raises(ReproError):
            success_probability(1.0, 0.0)

    def test_advantage_greater_than_one_for_speedup(self):
        assert decoherence_advantage(1000.0, 500.0) > 1.0

    def test_advantage_exponential_in_time_saved(self):
        a = decoherence_advantage(2000.0, 1000.0, coherence_ns=1000.0)
        assert np.isclose(a, math.exp(1.0))


class TestSpeedupRow:
    def test_speedup_computation(self):
        row = SpeedupRow("x", gate_ns=100.0, strict_ns=50.0, flexible_ns=40.0, grape_ns=40.0)
        assert row.speedup("strict") == 2.0
        assert row.speedup("flexible") == 2.5

    def test_missing_value_none(self):
        row = SpeedupRow("x", gate_ns=100.0)
        assert row.speedup("grape") is None

    def test_unknown_method(self):
        row = SpeedupRow("x", gate_ns=100.0)
        with pytest.raises(ReproError):
            row.speedup("magic")

    def test_ordering_holds(self):
        row = SpeedupRow("x", 100.0, 90.0, 80.0, 75.0)
        assert row.ordering_holds()

    def test_ordering_violated(self):
        row = SpeedupRow("x", 100.0, 110.0, 80.0, 75.0)
        assert not row.ordering_holds()

    def test_table_records(self):
        rows = [SpeedupRow("a", 100.0, 50.0, 40.0, 40.0)]
        table = speedup_table(rows)
        assert table[0]["strict_speedup"] == 2.0


class TestFormatTable:
    def test_contains_headers_and_values(self):
        text = format_table(["name", "value"], [["x", 1.25]], precision=2)
        assert "name" in text and "1.25" in text

    def test_none_rendered_as_dash(self):
        text = format_table(["a"], [[None]])
        assert "-" in text

    def test_title_included(self):
        text = format_table(["a"], [[1]], title="Table 9")
        assert text.startswith("Table 9")
