"""Tests for the ASCII chart renderer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.charts import render_chart
from repro.errors import ReproError


class TestRenderChart:
    def test_basic_render_contains_markers_and_legend(self):
        text = render_chart(
            {"gate": [(1, 10), (2, 20)], "grape": [(1, 5), (2, 6)]},
            width=30,
            height=8,
        )
        assert "o gate" in text and "x grape" in text
        assert "o" in text.splitlines()[1]

    def test_title_included(self):
        text = render_chart({"s": [(0, 0), (1, 1)]}, title="Figure 2")
        assert text.startswith("Figure 2")

    def test_axis_ranges_reported(self):
        text = render_chart({"s": [(1, 100), (8, 700)]}, x_label="p", y_label="ns")
        assert "p: 1 … 8" in text
        assert "top = 700" in text

    def test_monotone_series_renders_monotone(self):
        """Higher y must land on an earlier (higher) grid row."""
        text = render_chart({"s": [(0, 0), (1, 10)]}, width=20, height=10)
        rows = [i for i, line in enumerate(text.splitlines()) if "s" not in line and "o" in line]
        # The y=10 point is plotted above the y=0 point.
        assert rows == sorted(rows)

    def test_constant_series_does_not_crash(self):
        text = render_chart({"flat": [(0, 5), (1, 5), (2, 5)]})
        assert "flat" in text

    def test_single_point(self):
        assert "only" not in render_chart({"p": [(3, 3)]})

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            render_chart({})
        with pytest.raises(ReproError):
            render_chart({"s": []})

    def test_tiny_area_rejected(self):
        with pytest.raises(ReproError):
            render_chart({"s": [(0, 0)]}, width=2, height=2)

    def test_many_series_reuse_markers(self):
        series = {f"s{i}": [(0, i)] for i in range(10)}
        text = render_chart(series)
        assert "s9" in text


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            st.floats(min_value=-100, max_value=100, allow_nan=False),
        ),
        min_size=1,
        max_size=12,
    )
)
def test_all_points_land_inside_plot_area(points):
    """Property: every marker stays within the bordered plot area."""
    width, height = 40, 10
    text = render_chart({"s": points}, width=width, height=height)
    plot_lines = [l for l in text.splitlines() if l.startswith("|")]
    assert len(plot_lines) == height
    for line in plot_lines:
        assert len(line) <= width + 1
