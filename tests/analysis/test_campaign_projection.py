"""Tests for the section-8.4 campaign projection."""

import pytest

from repro.analysis.aggregate import (
    KANDALA_BEH2_ITERATIONS,
    project_campaign,
)
from repro.errors import ReproError


class TestCampaignProjection:
    def test_total_includes_precompute(self):
        proj = project_campaign("strict", 0.001, 100.0, iterations=1000,
                                precompute_s=3600.0)
        assert proj.total_compile_s == pytest.approx(3600.0 + 1.0)

    def test_full_grape_dominates(self):
        # The paper's 8.4 argument: minutes per iteration × 3500 iterations.
        grape = project_campaign("grape", 600.0, 50.0)
        strict = project_campaign("strict", 1e-4, 60.0, precompute_s=3600.0)
        assert grape.total_compile_days > 20  # "over 2 years" at 5h/iter
        assert strict.speedup_over(grape) > 100

    def test_default_iterations_is_kandala(self):
        proj = project_campaign("gate", 0.0, 10.0)
        assert proj.iterations == KANDALA_BEH2_ITERATIONS

    def test_invalid_iterations(self):
        with pytest.raises(ReproError):
            project_campaign("gate", 0.0, 10.0, iterations=0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ReproError):
            project_campaign("gate", -1.0, 10.0)

    def test_zero_cost_speedup_infinite(self):
        free = project_campaign("gate", 0.0, 10.0)
        costly = project_campaign("grape", 1.0, 10.0)
        assert free.speedup_over(costly) == float("inf")
