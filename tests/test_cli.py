"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_compile_requires_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compile"])

    def test_compile_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["compile", "--benchmark", "vqe:H2", "--method", "qiskit"]
            )

    def test_qaoa_defaults(self):
        args = build_parser().parse_args(["qaoa-info"])
        assert args.kind == "3regular" and args.nodes == 6 and args.p == 1

    def test_library_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["library"])

    def test_library_gc_accepts_budget(self):
        args = build_parser().parse_args(
            ["library", "gc", "--dir", "/tmp/x", "--budget-mb", "10"]
        )
        assert args.budget_mb == 10.0

    def test_compile_batch_defaults(self):
        args = build_parser().parse_args(
            ["compile-batch", "--benchmark", "vqe:H2"]
        )
        assert args.batch == 3 and args.seed == 0 and args.rounds == 1

    def test_compile_batch_rejects_nonpositive_rounds(self, capsys):
        assert (
            main(
                ["compile-batch", "--benchmark", "vqe:H2", "--rounds", "0"]
            )
            == 2
        )
        assert "--rounds must be >= 1" in capsys.readouterr().err

    def test_compile_batch_rejects_nonpositive_batch(self, capsys):
        assert (
            main(
                ["compile-batch", "--benchmark", "vqe:H2", "--batch", "0"]
            )
            == 2
        )
        assert "--batch must be >= 1" in capsys.readouterr().err


class TestCommands:
    def test_molecules_lists_table2(self, capsys):
        assert main(["molecules"]) == 0
        out = capsys.readouterr().out
        for molecule in ("H2", "LiH", "BeH2", "NaH", "H2O"):
            assert molecule in out

    def test_gate_table_lists_basis_durations(self, capsys):
        assert main(["gate-table"]) == 0
        out = capsys.readouterr().out
        assert "rz" in out and "0.4" in out
        assert "swap" in out and "7.4" in out

    def test_qaoa_info(self, capsys):
        assert main(["qaoa-info", "--kind", "3regular", "--nodes", "6", "--p", "1"]) == 0
        out = capsys.readouterr().out
        assert "optimal cut" in out
        assert "gate-based runtime" in out

    def test_compile_gate_method(self, capsys):
        assert main(["compile", "--benchmark", "vqe:H2", "--method", "gate"]) == 0
        out = capsys.readouterr().out
        assert "pulse duration" in out

    def test_compile_bad_benchmark_spec(self, capsys):
        assert main(["compile", "--benchmark", "nonsense"]) == 2
        assert "bad benchmark spec" in capsys.readouterr().err

    def test_compile_qaoa_spec(self, capsys):
        code = main(
            ["compile", "--benchmark", "qaoa:erdosrenyi:6:1", "--method", "gate"]
        )
        assert code == 0
        assert "qaoa:erdosrenyi:6:1" in capsys.readouterr().out

    def test_library_stats_missing_dir_reports_empty(self, capsys, tmp_path):
        """A library directory that was never created is an empty library,
        not an error — and inspecting it must not create it."""
        missing = tmp_path / "never-created"
        assert main(["library", "stats", "--dir", str(missing)]) == 0
        out = capsys.readouterr().out
        assert "empty" in out and "entries" in out
        assert not missing.exists()

    def test_cache_stats_missing_dir_reports_empty(self, capsys, tmp_path):
        missing = tmp_path / "never-created"
        assert main(["cache-stats", "--dir", str(missing)]) == 0
        out = capsys.readouterr().out
        assert "empty" in out
        assert "persisted entries" in out
        assert "prefetches / prefetch hits" in out
        assert not missing.exists()

    def test_library_stats_and_gc(self, capsys, tmp_path):
        from repro.library import PulseLibrary

        library = PulseLibrary(tmp_path, shards=16)
        for i in range(3):
            library.put(f"{i:040x}-0.pulse", b"x" * 1024)
        assert main(["library", "stats", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and "shards" in out
        assert (
            main(
                [
                    "library", "gc", "--dir", str(tmp_path),
                    "--budget-mb", str(1024 / (1024 * 1024)),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "evicted" in out
        assert library.count() == 1

    def test_cache_stats_reports_shards(self, capsys, tmp_path):
        from repro.core import PersistentPulseCache

        PersistentPulseCache(tmp_path)  # creates the library layout
        assert main(["cache-stats", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "shards" in out
        assert "evictions" in out
        assert "migrated legacy entries" in out

    def test_compile_step_method(self, capsys):
        assert main(["compile", "--benchmark", "vqe:H2", "--method", "step"]) == 0
        out = capsys.readouterr().out
        assert "step-function" in out

    def test_config_show_defaults(self, capsys, monkeypatch):
        for name in (
            "REPRO_EXECUTOR",
            "REPRO_MAX_WORKERS",
            "REPRO_CACHE_DIR",
            "REPRO_CACHE_SHARDS",
            "REPRO_CACHE_BUDGET_MB",
            "REPRO_PREFETCH",
            "REPRO_PRESET",
            "REPRO_SCHEDULER_STATE",
        ):
            monkeypatch.delenv(name, raising=False)
        assert main(["config", "show"]) == 0
        out = capsys.readouterr().out
        assert "executor" in out and "scheduler_state_path" in out
        assert "default" in out
        assert "env" not in out.replace("env < CLI", "")

    def test_config_show_reports_env_and_cli_sources(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_SHARDS", "256")
        assert main(["config", "show", "--executor", "thread", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        lines = {
            line.split("|")[0].strip(): line
            for line in out.splitlines()
            if "|" in line
        }
        assert "env" in lines["cache_shards"]
        assert "CLI" in lines["executor"]
        assert "CLI" in lines["max_workers"]
        assert "default" in lines["cache_dir"]

    def test_config_show_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["config"])

    @pytest.mark.slow
    def test_compile_batch_rounds_stream_through_one_session(self, capsys):
        code = main(
            [
                "compile-batch", "--benchmark", "qaoa:3regular:4:1",
                "--batch", "1", "--rounds", "2",
                "--iterations", "60", "--fidelity", "0.9",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "reused blocks (cross-call)" in out
        assert "round 0" in out and "round 1" in out

    @pytest.mark.slow
    def test_compile_batch_reports_dedup(self, capsys):
        code = main(
            [
                "compile-batch", "--benchmark", "qaoa:3regular:4:1",
                "--batch", "2", "--iterations", "60", "--fidelity", "0.9",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "unique blocks compiled" in out
        assert "deduplicated blocks" in out

    @pytest.mark.slow
    def test_compile_strict_method(self, capsys):
        code = main(
            [
                "compile", "--benchmark", "vqe:H2", "--method", "strict",
                "--dt", "0.5", "--fidelity", "0.9", "--iterations", "80",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # Strict partial compilation has zero runtime GRAPE iterations.
        import re

        assert re.search(r"runtime GRAPE iterations \|\s+0\b", out)


class TestFleetCli:
    """The worker entrypoint, ``fleet status``, and the dispatcher knobs."""

    def test_worker_requires_fleet_dir(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["worker"])

    def test_worker_defaults(self):
        args = build_parser().parse_args(["worker", "--fleet-dir", "/tmp/q"])
        assert args.lease_ttl == 30.0
        assert args.poll == 0.2
        assert args.max_jobs is None
        assert args.idle_exit is None
        assert args.worker_id is None
        assert args.cache_dir is None

    def test_fleet_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet"])

    def test_compile_batch_accepts_dispatcher_knobs(self):
        args = build_parser().parse_args(
            [
                "compile-batch", "--benchmark", "vqe:H2",
                "--dispatcher", "queue", "--fleet-dir", "/tmp/q",
                "--fleet-workers", "2", "--queue-depth", "8",
            ]
        )
        assert args.dispatcher == "queue"
        assert args.fleet_dir == "/tmp/q"
        assert args.fleet_workers == 2
        assert args.queue_depth == 8

    def test_compile_batch_rejects_unknown_dispatcher(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                [
                    "compile-batch", "--benchmark", "vqe:H2",
                    "--dispatcher", "carrier-pigeon",
                ]
            )

    def test_fleet_status_missing_dir_reports_empty(self, capsys, tmp_path):
        """A queue directory nobody has written to is an empty queue, and
        inspecting it must not create it."""
        missing = tmp_path / "never-created"
        assert main(["fleet", "status", "--dir", str(missing)]) == 0
        out = capsys.readouterr().out
        assert "empty" in out and "pending jobs" in out
        assert not missing.exists()

    def test_fleet_status_reports_leases_and_workers(self, capsys, tmp_path):
        from repro.fleet import FleetQueue

        queue = FleetQueue(tmp_path)
        queue.enqueue("a")
        queue.enqueue("b")
        assert queue.claim("w1") is not None
        queue.write_worker_heartbeat("w1", "busy", 0)

        assert main(["fleet", "status", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        lines = {
            line.split("|")[0].strip(): line
            for line in out.splitlines()
            if "|" in line
        }
        # Pending counts every job file still queued, leased ones included.
        assert "2" in lines["pending jobs"]
        assert "1" in lines["leased jobs"]
        lease_row = next(v for k, v in lines.items() if k.startswith("lease "))
        assert "worker=w1" in lease_row and "live" in lease_row
        assert "state=busy" in lines["worker w1"]

    def test_worker_idle_exit_through_main(self, tmp_path):
        """The CLI entrypoint runs a real worker loop to clean idle exit."""
        import signal

        previous = {
            sig: signal.getsignal(sig) for sig in (signal.SIGTERM, signal.SIGINT)
        }
        try:
            code = main(
                [
                    "worker", "--fleet-dir", str(tmp_path),
                    "--poll", "0.05", "--idle-exit", "0.2",
                ]
            )
        finally:
            for sig, handler in previous.items():
                signal.signal(sig, handler)
        assert code == 0

    def test_config_show_reports_fleet_knobs(self, capsys, monkeypatch):
        for name in (
            "REPRO_DISPATCHER",
            "REPRO_FLEET_DIR",
            "REPRO_FLEET_WORKERS",
            "REPRO_QUEUE_DEPTH",
        ):
            monkeypatch.delenv(name, raising=False)
        assert (
            main(
                [
                    "config", "show", "--dispatcher", "queue",
                    "--fleet-dir", "/tmp/q", "--fleet-workers", "3",
                    "--queue-depth", "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        lines = {
            line.split("|")[0].strip(): line
            for line in out.splitlines()
            if "|" in line
        }
        for field in ("dispatcher", "fleet_dir", "fleet_workers", "queue_depth"):
            assert "CLI" in lines[field], field

    @pytest.mark.slow
    def test_compile_batch_through_fleet_dispatcher(self, capsys, tmp_path):
        code = main(
            [
                "compile-batch", "--benchmark", "qaoa:3regular:4:1",
                "--batch", "2", "--iterations", "50", "--fidelity", "0.9",
                "--dispatcher", "queue", "--fleet-dir", str(tmp_path / "q"),
                "--fleet-workers", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "unique blocks compiled" in out


class TestServerCli:
    """The ``serve`` / ``remote-compile`` parsers and the new fleet flags."""

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host is None and args.port is None  # config decides
        assert args.grace == 30.0
        assert args.fleet_autoscale is None
        assert args.fleet_min_workers is None
        assert args.fleet_max_workers is None

    def test_serve_autoscale_flags(self):
        args = build_parser().parse_args(
            [
                "serve", "--autoscale", "--min-workers", "1",
                "--max-workers", "3", "--queue-depth", "8",
            ]
        )
        assert args.fleet_autoscale is True
        assert args.fleet_min_workers == 1
        assert args.fleet_max_workers == 3
        assert args.queue_depth == 8
        assert (
            build_parser()
            .parse_args(["serve", "--no-autoscale"])
            .fleet_autoscale
            is False
        )

    def test_remote_compile_requires_url_and_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["remote-compile", "--url", "http://x"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["remote-compile", "--benchmark", "vqe:H2"]
            )

    def test_remote_compile_defaults(self):
        args = build_parser().parse_args(
            ["remote-compile", "--url", "http://h:1", "--benchmark", "vqe:H2"]
        )
        assert args.method == "grape"
        assert args.ticket is False
        assert args.verify_local is False
        assert args.timeout == 600.0

    def test_worker_announce_and_host_label_flags(self):
        args = build_parser().parse_args(
            [
                "worker", "--fleet-dir", "/tmp/q", "--heartbeat", "2.5",
                "--host-label", "simhost-a", "--announce",
            ]
        )
        assert args.heartbeat == 2.5
        assert args.host_label == "simhost-a"
        assert args.announce is True

    def test_worker_heartbeat_must_undercut_lease_ttl(self, tmp_path):
        code = main(
            [
                "worker", "--fleet-dir", str(tmp_path),
                "--lease-ttl", "1.0", "--heartbeat", "5.0",
            ]
        )
        assert code == 2

    def test_fleet_status_json_flag(self):
        args = build_parser().parse_args(
            ["fleet", "status", "--dir", "/tmp/q", "--json"]
        )
        assert args.json is True

    def test_config_show_reports_server_knobs(self, capsys, monkeypatch):
        for name in (
            "REPRO_FLEET_LEASE_TTL", "REPRO_FLEET_HEARTBEAT",
            "REPRO_FLEET_AUTOSCALE", "REPRO_FLEET_MIN_WORKERS",
            "REPRO_FLEET_MAX_WORKERS", "REPRO_SERVER_HOST",
            "REPRO_SERVER_PORT", "REPRO_SERVER_MAX_BODY_MB",
            "REPRO_SERVER_TICKET_TTL",
        ):
            monkeypatch.delenv(name, raising=False)
        assert (
            main(
                [
                    "config", "show",
                    "--fleet-lease-ttl", "20", "--fleet-heartbeat", "4",
                    "--fleet-autoscale", "--fleet-min-workers", "1",
                    "--fleet-max-workers", "3",
                    "--server-host", "0.0.0.0", "--server-port", "9001",
                    "--server-max-body-mb", "8",
                    "--server-ticket-ttl", "300",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        lines = {
            line.split("|")[0].strip(): line
            for line in out.splitlines()
            if "|" in line
        }
        for field in (
            "fleet_lease_ttl_s", "fleet_heartbeat_s", "fleet_autoscale",
            "fleet_min_workers", "fleet_max_workers", "server_host",
            "server_port", "server_max_body_mb", "server_ticket_ttl_s",
        ):
            assert "CLI" in lines[field], field

    def test_config_show_rejects_inconsistent_cli_combo(self, capsys):
        """CLI overrides go through constructor validation, not the
        tolerant env path: heartbeat >= TTL is a hard error."""
        code = main(
            [
                "config", "show",
                "--fleet-lease-ttl", "5", "--fleet-heartbeat", "30",
            ]
        )
        assert code == 2
        assert "shorter than" in capsys.readouterr().err
