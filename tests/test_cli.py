"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_compile_requires_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compile"])

    def test_compile_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["compile", "--benchmark", "vqe:H2", "--method", "qiskit"]
            )

    def test_qaoa_defaults(self):
        args = build_parser().parse_args(["qaoa-info"])
        assert args.kind == "3regular" and args.nodes == 6 and args.p == 1


class TestCommands:
    def test_molecules_lists_table2(self, capsys):
        assert main(["molecules"]) == 0
        out = capsys.readouterr().out
        for molecule in ("H2", "LiH", "BeH2", "NaH", "H2O"):
            assert molecule in out

    def test_gate_table_lists_basis_durations(self, capsys):
        assert main(["gate-table"]) == 0
        out = capsys.readouterr().out
        assert "rz" in out and "0.4" in out
        assert "swap" in out and "7.4" in out

    def test_qaoa_info(self, capsys):
        assert main(["qaoa-info", "--kind", "3regular", "--nodes", "6", "--p", "1"]) == 0
        out = capsys.readouterr().out
        assert "optimal cut" in out
        assert "gate-based runtime" in out

    def test_compile_gate_method(self, capsys):
        assert main(["compile", "--benchmark", "vqe:H2", "--method", "gate"]) == 0
        out = capsys.readouterr().out
        assert "pulse duration" in out

    def test_compile_bad_benchmark_spec(self, capsys):
        assert main(["compile", "--benchmark", "nonsense"]) == 2
        assert "bad benchmark spec" in capsys.readouterr().err

    def test_compile_qaoa_spec(self, capsys):
        code = main(
            ["compile", "--benchmark", "qaoa:erdosrenyi:6:1", "--method", "gate"]
        )
        assert code == 0
        assert "qaoa:erdosrenyi:6:1" in capsys.readouterr().out

    @pytest.mark.slow
    def test_compile_strict_method(self, capsys):
        code = main(
            [
                "compile", "--benchmark", "vqe:H2", "--method", "strict",
                "--dt", "0.5", "--fidelity", "0.9", "--iterations", "80",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "runtime GRAPE iterations" in out
        # Strict partial compilation has zero runtime GRAPE iterations.
        assert "| 0" in out.replace("|      0", "| 0")
