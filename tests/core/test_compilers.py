"""Tests for the four compilation strategies on a small variational circuit.

These are the behavioural contracts of the paper:

* gate-based duration = scheduled Table-1 critical path;
* full GRAPE ≤ gate-based (never worse, via fallback);
* strict ≤ gate-based with *zero* runtime GRAPE iterations;
* flexible ≤ strict (deeper slices) with far fewer runtime iterations
  than full GRAPE.
"""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.parameters import Parameter
from repro.core.compiler import BlockPulseCompiler
from repro.core.flexible import FlexiblePartialCompiler
from repro.core.full_grape import FullGrapeCompiler
from repro.core.gate_based import GateBasedCompiler
from repro.core.strict import StrictPartialCompiler
from repro.errors import CompilationError
from repro.pulse.device import GmonDevice
from repro.pulse.grape.engine import GrapeHyperparameters, GrapeSettings
from repro.transpile.schedule import asap_schedule
from repro.transpile.topology import line_topology

SETTINGS = GrapeSettings(dt_ns=0.25, target_fidelity=0.99)
HYPER = GrapeHyperparameters(learning_rate=0.05, decay_rate=0.002, max_iterations=150)
THETA = [0.7, -1.3]


@pytest.fixture(scope="module")
def ansatz():
    t0, t1 = Parameter("theta_0"), Parameter("theta_1")
    qc = QuantumCircuit(2, name="tiny_ansatz")
    qc.h(0).h(1).cx(0, 1)
    qc.rz(t0, 1)
    qc.cx(0, 1)
    qc.rz(t1, 0)
    qc.h(0)
    return qc


@pytest.fixture(scope="module")
def device():
    return GmonDevice(line_topology(2))


@pytest.fixture(scope="module")
def gate_result(ansatz):
    return GateBasedCompiler().compile_parametrized(ansatz, THETA)


@pytest.fixture(scope="module")
def grape_result(ansatz, device):
    compiler = FullGrapeCompiler(
        device=device, settings=SETTINGS, hyperparameters=HYPER, max_block_width=2
    )
    return compiler.compile_parametrized(ansatz, THETA)


@pytest.fixture(scope="module")
def strict_compiler(ansatz, device):
    return StrictPartialCompiler.precompile(
        ansatz, device=device, settings=SETTINGS, hyperparameters=HYPER,
        max_block_width=2,
    )


class TestGateBased:
    def test_duration_matches_schedule(self, ansatz, gate_result):
        bound = ansatz.bind_parameters(THETA)
        assert np.isclose(gate_result.pulse_duration_ns, asap_schedule(bound).duration_ns)

    def test_zero_grape_iterations(self, gate_result):
        assert gate_result.runtime_iterations == 0

    def test_rejects_unbound(self, ansatz):
        with pytest.raises(CompilationError):
            GateBasedCompiler().compile(ansatz)

    def test_method_tag(self, gate_result):
        assert gate_result.method == "gate"


class TestFullGrape:
    def test_beats_or_ties_gate_based(self, gate_result, grape_result):
        assert grape_result.pulse_duration_ns <= gate_result.pulse_duration_ns + 1e-9

    def test_runs_grape(self, grape_result):
        assert grape_result.runtime_iterations > 0

    def test_rejects_unbound(self, ansatz, device):
        compiler = FullGrapeCompiler(device=device, settings=SETTINGS)
        with pytest.raises(CompilationError):
            compiler.compile(ansatz)

    def test_cache_accelerates_second_compile(self, ansatz, device):
        compiler = FullGrapeCompiler(
            device=device, settings=SETTINGS, hyperparameters=HYPER, max_block_width=2
        )
        first = compiler.compile(ansatz.bind_parameters(THETA), use_cache=True)
        second = compiler.compile(ansatz.bind_parameters(THETA), use_cache=True)
        assert second.cache_hits == second.blocks_compiled
        assert second.runtime_iterations == 0
        assert np.isclose(second.pulse_duration_ns, first.pulse_duration_ns)


class TestStrict:
    def test_not_worse_than_gate_based(self, strict_compiler, gate_result):
        result = strict_compiler.compile(THETA)
        assert result.pulse_duration_ns <= gate_result.pulse_duration_ns + 1e-9

    def test_zero_runtime_iterations(self, strict_compiler):
        result = strict_compiler.compile(THETA)
        assert result.runtime_iterations == 0

    def test_runtime_latency_negligible(self, strict_compiler):
        result = strict_compiler.compile(THETA)
        assert result.runtime_latency_s < 0.05

    def test_precompute_recorded(self, strict_compiler):
        assert strict_compiler.report.blocks_precompiled > 0
        assert strict_compiler.report.wall_time_s > 0

    def test_duration_independent_of_theta(self, strict_compiler):
        # Strict runtime duration uses fixed lookup Rz pulses: any θ gives
        # the same critical path.
        a = strict_compiler.compile([0.1, 0.2]).pulse_duration_ns
        b = strict_compiler.compile([2.9, -2.9]).pulse_duration_ns
        assert np.isclose(a, b)

    def test_missing_parameters_rejected(self, strict_compiler):
        with pytest.raises(CompilationError):
            strict_compiler.compile({})

    def test_binding_by_sequence_matches_dict(self, strict_compiler, ansatz):
        params = ansatz.parameters
        by_seq = strict_compiler.compile(THETA).pulse_duration_ns
        by_map = strict_compiler.compile(dict(zip(params, THETA))).pulse_duration_ns
        assert np.isclose(by_seq, by_map)


class TestFlexible:
    @pytest.fixture(scope="class")
    def flexible_compiler(self, ansatz, device):
        return FlexiblePartialCompiler.precompile(
            ansatz,
            device=device,
            settings=SETTINGS,
            hyperparameters=HYPER,
            max_block_width=2,
            tuning_samples=2,
            learning_rates=(0.03, 0.1),
            decay_rates=(0.0, 0.01),
        )

    def test_not_worse_than_strict(self, flexible_compiler, strict_compiler):
        flex = flexible_compiler.compile(THETA)
        strict = strict_compiler.compile(THETA)
        assert flex.pulse_duration_ns <= strict.pulse_duration_ns + 1e-9

    def test_fewer_runtime_iterations_than_full_grape(
        self, flexible_compiler, grape_result
    ):
        flex = flexible_compiler.compile(THETA)
        assert 0 < flex.runtime_iterations < grape_result.runtime_iterations

    def test_hyperopt_ran(self, flexible_compiler):
        assert flexible_compiler.report.hyperopt_trials > 0
        assert flexible_compiler.report.parametrized_blocks > 0

    def test_missing_parameters_rejected(self, flexible_compiler):
        with pytest.raises(CompilationError):
            flexible_compiler.compile({})


class TestBlockCompiler:
    def test_empty_block(self, device):
        compiler = BlockPulseCompiler(device, SETTINGS, HYPER)
        outcome = compiler.compile_block(QuantumCircuit(1), (0,))
        assert outcome.duration_ns == 0.0

    def test_parameterized_block_rejected(self, device):
        compiler = BlockPulseCompiler(device, SETTINGS, HYPER)
        qc = QuantumCircuit(1).rz(Parameter("theta_0"), 0)
        with pytest.raises(CompilationError):
            compiler.compile_block(qc, (0,))

    def test_grape_beats_gate_based_on_h_chain(self, device):
        compiler = BlockPulseCompiler(device, SETTINGS, HYPER)
        qc = QuantumCircuit(1).h(0).z(0).h(0)
        from repro.transpile.basis import decompose_to_basis

        outcome = compiler.compile_block(decompose_to_basis(qc), (0,))
        assert outcome.duration_ns <= outcome.gate_based_ns + 1e-9
