"""Tests for the derivative-free hyperparameter search strategies."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.circuits.parameters import Parameter
from repro.core.hyperopt import TuningResult, sample_targets
from repro.core.search import (
    SearchSpace,
    random_search,
    rbf_search,
    successive_halving,
    tune_with_strategy,
)
from repro.errors import CompilationError
from repro.pulse.device import GmonDevice
from repro.pulse.grape import GrapeSettings
from repro.pulse.hamiltonian import build_control_set
from repro.transpile import line_topology

SETTINGS = GrapeSettings(dt_ns=0.5, target_fidelity=0.95)


@pytest.fixture(scope="module")
def problem():
    """A cheap single-qubit single-θ tuning problem."""
    theta = Parameter("theta")
    circuit = QuantumCircuit(1)
    circuit.h(0)
    circuit.rz(theta, 0)
    circuit.h(0)
    control_set = build_control_set(GmonDevice(line_topology(1)), [0])
    targets = sample_targets(circuit, 2, seed=3)
    return control_set, targets


class TestSearchSpace:
    def test_sample_within_bounds(self):
        space = SearchSpace()
        rng = np.random.default_rng(0)
        for _ in range(50):
            lr, decay = space.sample(rng)
            lo, hi = space.learning_rate_bounds
            assert lo <= lr <= hi
            dlo, dhi = space.decay_rate_bounds
            assert dlo <= decay <= dhi

    def test_zero_decay_sampled(self):
        space = SearchSpace(zero_decay_probability=1.0)
        rng = np.random.default_rng(0)
        assert space.sample(rng)[1] == 0.0

    def test_log_uniform_learning_rate(self):
        """Median of log-uniform samples sits near the geometric mean."""
        space = SearchSpace(learning_rate_bounds=(1e-3, 1.0))
        rng = np.random.default_rng(1)
        lrs = [space.sample(rng)[0] for _ in range(400)]
        geometric_mean = np.sqrt(1e-3 * 1.0)
        assert geometric_mean / 3 < np.median(lrs) < geometric_mean * 3

    def test_invalid_lr_bounds_rejected(self):
        with pytest.raises(CompilationError):
            SearchSpace(learning_rate_bounds=(0.0, 0.1))
        with pytest.raises(CompilationError):
            SearchSpace(learning_rate_bounds=(0.3, 0.1))

    def test_invalid_decay_bounds_rejected(self):
        with pytest.raises(CompilationError):
            SearchSpace(decay_rate_bounds=(-0.1, 0.1))


class TestRandomSearch:
    def test_finds_converging_configuration(self, problem):
        control_set, targets = problem
        result = random_search(
            control_set, targets, 10, settings=SETTINGS,
            num_trials=8, iteration_budget=120, seed=0,
        )
        assert isinstance(result, TuningResult)
        assert result.best_trial.all_converged
        assert len(result.trials) == 8

    def test_reproducible(self, problem):
        control_set, targets = problem
        kwargs = dict(settings=SETTINGS, num_trials=4, iteration_budget=80, seed=5)
        a = random_search(control_set, targets, 10, **kwargs)
        b = random_search(control_set, targets, 10, **kwargs)
        assert [(t.learning_rate, t.decay_rate) for t in a.trials] == [
            (t.learning_rate, t.decay_rate) for t in b.trials
        ]

    def test_counts_iterations(self, problem):
        control_set, targets = problem
        result = random_search(
            control_set, targets, 10, settings=SETTINGS,
            num_trials=3, iteration_budget=60, seed=1,
        )
        assert result.total_iterations > 0

    def test_empty_targets_rejected(self, problem):
        control_set, _ = problem
        with pytest.raises(CompilationError):
            random_search(control_set, [], 10, settings=SETTINGS)


class TestSuccessiveHalving:
    def test_finds_converging_configuration(self, problem):
        control_set, targets = problem
        result = successive_halving(
            control_set, targets, 10, settings=SETTINGS,
            num_configs=9, eta=3, iteration_budget=120, seed=0,
        )
        assert result.best_trial.all_converged

    def test_cheaper_than_flat_random_at_same_coverage(self, problem):
        """Racing must spend fewer GRAPE iterations than evaluating every
        configuration at the full budget."""
        control_set, targets = problem
        halving = successive_halving(
            control_set, targets, 10, settings=SETTINGS,
            num_configs=9, eta=3, iteration_budget=120, seed=2,
        )
        flat = random_search(
            control_set, targets, 10, settings=SETTINGS,
            num_trials=9, iteration_budget=120, seed=2,
        )
        assert halving.total_iterations < flat.total_iterations

    def test_rejects_bad_eta(self, problem):
        control_set, targets = problem
        with pytest.raises(CompilationError):
            successive_halving(
                control_set, targets, 10, settings=SETTINGS, eta=1
            )

    def test_single_config_degenerates_gracefully(self, problem):
        control_set, targets = problem
        result = successive_halving(
            control_set, targets, 10, settings=SETTINGS,
            num_configs=1, iteration_budget=80, seed=0,
        )
        assert len(result.trials) >= 1


class TestRBFSearch:
    def test_finds_converging_configuration(self, problem):
        control_set, targets = problem
        result = rbf_search(
            control_set, targets, 10, settings=SETTINGS,
            num_initial=4, num_iterations=4, iteration_budget=120, seed=0,
        )
        assert result.best_trial.all_converged
        assert len(result.trials) == 8

    def test_surrogate_trials_cover_space(self, problem):
        """The proposals must not collapse onto a single point."""
        control_set, targets = problem
        result = rbf_search(
            control_set, targets, 10, settings=SETTINGS,
            num_initial=4, num_iterations=4, iteration_budget=80, seed=1,
        )
        lrs = {round(t.learning_rate, 6) for t in result.trials}
        assert len(lrs) >= 4


class TestDispatch:
    def test_grid_dispatch(self, problem):
        control_set, targets = problem
        result = tune_with_strategy(
            "grid", control_set, targets, 10, settings=SETTINGS,
            learning_rates=(0.03, 0.1), decay_rates=(0.0,),
            iteration_budget=80,
        )
        assert len(result.trials) == 2

    @pytest.mark.parametrize("name", ["random", "halving", "rbf"])
    def test_named_strategies_dispatch(self, problem, name):
        control_set, targets = problem
        kwargs = {"iteration_budget": 60, "seed": 0}
        if name == "random":
            kwargs["num_trials"] = 2
        elif name == "halving":
            kwargs["num_configs"] = 3
        else:
            kwargs.update(num_initial=3, num_iterations=1)
        result = tune_with_strategy(
            name, control_set, targets, 10, settings=SETTINGS, **kwargs
        )
        assert isinstance(result, TuningResult)

    def test_unknown_strategy_rejected(self, problem):
        control_set, targets = problem
        with pytest.raises(CompilationError):
            tune_with_strategy("bayes", control_set, targets, 10)


class TestFlexibleIntegration:
    def test_flexible_precompile_with_random_strategy(self):
        """End-to-end: flexible compiler accepts a search strategy."""
        from repro.core import FlexiblePartialCompiler

        theta = Parameter("t0")
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.rz(theta, 1)
        circuit.cx(0, 1)
        compiler = FlexiblePartialCompiler.precompile(
            circuit,
            settings=SETTINGS,
            tuning_samples=1,
            tuning_strategy="random",
            max_block_width=2,
        )
        compiled = compiler.compile([0.4])
        assert compiled.pulse_duration_ns > 0
