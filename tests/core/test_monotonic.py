"""Unit tests for parameter-monotonicity analysis."""

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.parameters import Parameter
from repro.core.monotonic import (
    is_parameter_grouped,
    is_parameter_monotonic,
    parameter_appearance_order,
    parametrized_gate_sequence,
)
from repro.errors import CompilationError

T = [Parameter(f"theta_{i}") for i in range(4)]


def _circuit(order):
    qc = QuantumCircuit(1)
    for param in order:
        qc.rz(param, 0)
    return qc


class TestMonotonicity:
    def test_paper_positive_example(self):
        # [θ1, θ1, θ2, θ3] is monotonic.
        assert is_parameter_monotonic(_circuit([T[1], T[1], T[2], T[3]]))

    def test_paper_negative_example(self):
        # [θ1, θ2, θ3, θ1] is not.
        assert not is_parameter_monotonic(_circuit([T[1], T[2], T[3], T[1]]))

    def test_empty_circuit_monotonic(self):
        assert is_parameter_monotonic(QuantumCircuit(1).h(0))

    def test_transformed_angles_keep_tags(self):
        qc = QuantumCircuit(1)
        qc.rz(-T[0] / 2, 0)
        qc.rz(2 * T[1], 0)
        assert is_parameter_monotonic(qc)

    def test_grouped_but_not_monotonic(self):
        # θ2 before θ1, each grouped: grouped passes, monotonic fails.
        qc = _circuit([T[2], T[2], T[1]])
        assert is_parameter_grouped(qc)
        assert not is_parameter_monotonic(qc)

    def test_not_grouped(self):
        assert not is_parameter_grouped(_circuit([T[1], T[2], T[1]]))


class TestSequence:
    def test_sequence_indices(self):
        qc = QuantumCircuit(2).h(0).rz(T[0], 0).cx(0, 1).rz(T[1], 1)
        seq = parametrized_gate_sequence(qc)
        assert [idx for idx, _ in seq] == [1, 3]
        assert [p.name for _, p in seq] == ["theta_0", "theta_1"]

    def test_multi_parameter_gate_rejected(self):
        qc = QuantumCircuit(1).rz(T[0] + T[1], 0)
        with pytest.raises(CompilationError):
            parametrized_gate_sequence(qc)

    def test_appearance_order(self):
        qc = _circuit([T[2], T[0], T[2]])
        assert parameter_appearance_order(qc) == [T[2], T[0]]
