"""Property-based tests: slicing and blocking reconstruct the circuit.

The correctness backbone of partial compilation: cutting a circuit into
slices/blocks and replaying them must reproduce the original unitary for
every parametrization.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocking.aggregate import aggregate_blocks
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.parameters import Parameter
from repro.core.slicing import flexible_slices, strict_slices
from repro.linalg.unitaries import unitaries_equal_up_to_phase
from repro.sim.unitary import circuit_unitary


def _random_monotone_circuit(seed: int, num_qubits: int = 3, num_params: int = 3):
    """A random parametrized circuit with monotone parameter order."""
    rng = np.random.default_rng(seed)
    params = [Parameter(f"theta_{i}") for i in range(num_params)]
    qc = QuantumCircuit(num_qubits, name=f"prop_{seed}")
    for k, theta in enumerate(params):
        for _ in range(int(rng.integers(1, 5))):
            choice = rng.integers(3)
            if choice == 0 and num_qubits >= 2:
                a, b = rng.choice(num_qubits, size=2, replace=False)
                qc.cx(int(a), int(b))
            elif choice == 1:
                qc.h(int(rng.integers(num_qubits)))
            else:
                qc.rx(float(rng.uniform(0, np.pi)), int(rng.integers(num_qubits)))
        qc.rz(theta if rng.random() < 0.5 else -theta / 2, int(rng.integers(num_qubits)))
    qc.h(int(rng.integers(num_qubits)))
    return qc, params


def _replay_slices(circuit, slices):
    out = QuantumCircuit(circuit.num_qubits)
    for piece in slices:
        for inst in piece.circuit:
            out.append(inst.gate, inst.qubits)
    return out


class TestSlicingReconstruction:
    @given(st.integers(0, 60))
    @settings(max_examples=25, deadline=None)
    def test_strict_slices_replay_exactly(self, seed):
        circuit, params = _random_monotone_circuit(seed)
        replay = _replay_slices(circuit, strict_slices(circuit))
        values = list(np.random.default_rng(seed).uniform(-np.pi, np.pi, len(params)))
        assert unitaries_equal_up_to_phase(
            circuit_unitary(replay.bind_parameters(values)),
            circuit_unitary(circuit.bind_parameters(values)),
        )

    @given(st.integers(0, 60))
    @settings(max_examples=25, deadline=None)
    def test_flexible_slices_replay_exactly(self, seed):
        circuit, params = _random_monotone_circuit(seed)
        replay = _replay_slices(circuit, flexible_slices(circuit))
        values = list(np.random.default_rng(seed + 1).uniform(-np.pi, np.pi, len(params)))
        assert unitaries_equal_up_to_phase(
            circuit_unitary(replay.bind_parameters(values)),
            circuit_unitary(circuit.bind_parameters(values)),
        )

    @given(st.integers(0, 40), st.integers(2, 3))
    @settings(max_examples=20, deadline=None)
    def test_isolated_blocking_replays_exactly(self, seed, width):
        circuit, params = _random_monotone_circuit(seed)
        isolate = {i for i, inst in enumerate(circuit) if inst.parameters}
        blocked = aggregate_blocks(circuit, width, isolate=isolate)
        values = list(np.random.default_rng(seed + 2).uniform(-np.pi, np.pi, len(params)))
        assert unitaries_equal_up_to_phase(
            circuit_unitary(blocked.flattened().bind_parameters(values)),
            circuit_unitary(circuit.bind_parameters(values)),
        )

    @given(st.integers(0, 40))
    @settings(max_examples=20, deadline=None)
    def test_isolated_blocks_are_singletons(self, seed):
        circuit, _ = _random_monotone_circuit(seed)
        isolate = {i for i, inst in enumerate(circuit) if inst.parameters}
        blocked = aggregate_blocks(circuit, 3, isolate=isolate)
        for block in blocked.blocks:
            indices = set(block.instruction_indices)
            if indices & isolate:
                assert len(indices) == 1

    @given(st.integers(0, 40))
    @settings(max_examples=15, deadline=None)
    def test_flexible_slice_count_equals_parameters(self, seed):
        circuit, params = _random_monotone_circuit(seed)
        slices = flexible_slices(circuit)
        assert len(slices) == len(params)
