"""Unit tests for strict and flexible slicing (paper Figure 3)."""

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.parameters import Parameter
from repro.core.slicing import (
    flexible_slices,
    parametrized_gate_fraction,
    slice_parameter_counts,
    strict_slices,
)
from repro.errors import CompilationError

T0, T1, T2 = Parameter("theta_0"), Parameter("theta_1"), Parameter("theta_2")


def figure_3a_circuit():
    """The paper's running example: parametrized-gate sequence
    [θ0, θ0, θ1, θ2] with fixed gates between."""
    qc = QuantumCircuit(2, name="fig3a")
    qc.h(0).h(1).cx(0, 1)
    qc.rz(T0, 1)
    qc.cx(0, 1).h(0)
    qc.rz(T0, 0)
    qc.cx(0, 1)
    qc.rz(T1, 1)
    qc.h(1).cx(0, 1)
    qc.rz(T2, 0)
    qc.h(0)
    return qc


class TestStrictSlices:
    def test_alternation_pattern(self):
        slices = strict_slices(figure_3a_circuit())
        kinds = [s.kind for s in slices]
        # Fixed, Rz(θ0), Fixed, Rz(θ0), Fixed, Rz(θ1), Fixed, Rz(θ2), Fixed
        assert kinds == [
            "fixed", "parametrized", "fixed", "parametrized", "fixed",
            "parametrized", "fixed", "parametrized", "fixed",
        ]

    def test_parametrized_slices_single_gate(self):
        for s in strict_slices(figure_3a_circuit()):
            if s.kind == "parametrized":
                assert s.num_gates == 1
                assert s.parameter is not None

    def test_all_gates_covered_in_order(self):
        qc = figure_3a_circuit()
        slices = strict_slices(qc)
        indices = [i for s in slices for i in s.instruction_indices]
        assert indices == list(range(len(qc)))

    def test_unparametrized_circuit_single_fixed_slice(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1)
        slices = strict_slices(qc)
        assert len(slices) == 1
        assert slices[0].kind == "fixed"

    def test_multi_parameter_gate_rejected(self):
        qc = QuantumCircuit(1).rz(T0 + T1, 0)
        with pytest.raises(CompilationError):
            strict_slices(qc)

    def test_counts_helper(self):
        counts = slice_parameter_counts(strict_slices(figure_3a_circuit()))
        assert counts == {"fixed": 5, "parametrized": 4}


class TestFlexibleSlices:
    def test_one_slice_per_parameter(self):
        slices = flexible_slices(figure_3a_circuit())
        assert [s.parameter.name for s in slices] == ["theta_0", "theta_1", "theta_2"]

    def test_prefix_joins_first_slice(self):
        slices = flexible_slices(figure_3a_circuit())
        assert slices[0].instruction_indices[0] == 0

    def test_suffix_joins_last_slice(self):
        qc = figure_3a_circuit()
        slices = flexible_slices(qc)
        assert slices[-1].instruction_indices[-1] == len(qc) - 1

    def test_slices_deeper_than_strict(self):
        qc = figure_3a_circuit()
        strict_fixed_max = max(
            s.num_gates for s in strict_slices(qc) if s.kind == "fixed"
        )
        flexible_min = min(s.num_gates for s in flexible_slices(qc))
        assert flexible_min >= strict_fixed_max - 1  # θ0 slice has 7 gates

    def test_gates_covered_in_order(self):
        qc = figure_3a_circuit()
        indices = [i for s in flexible_slices(qc) for i in s.instruction_indices]
        assert indices == list(range(len(qc)))

    def test_each_slice_single_parameter_dependency(self):
        for s in flexible_slices(figure_3a_circuit()):
            assert len(s.circuit.parameters) <= 1

    def test_unparametrized_circuit(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1)
        slices = flexible_slices(qc)
        assert len(slices) == 1 and slices[0].kind == "fixed"

    def test_empty_circuit(self):
        assert flexible_slices(QuantumCircuit(1)) == []

    def test_non_monotonic_rejected(self):
        qc = QuantumCircuit(1).rz(T0, 0).rz(T1, 0).rz(T0, 0)
        with pytest.raises(CompilationError):
            flexible_slices(qc)


class TestParametrizedFraction:
    def test_fraction_value(self):
        qc = QuantumCircuit(1).h(0).rz(T0, 0).h(0).h(0)
        assert parametrized_gate_fraction(qc) == 0.25

    def test_empty_circuit(self):
        assert parametrized_gate_fraction(QuantumCircuit(1)) == 0.0
