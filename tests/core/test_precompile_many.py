"""Batch precompile entry points: fixed blocks shared across ansätze."""

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.parameters import Parameter
from repro.core import FlexiblePartialCompiler, PulseCache, StrictPartialCompiler
from repro.pipeline import SchedulerState
from repro.pulse.device import GmonDevice
from repro.pulse.grape.engine import GrapeHyperparameters, GrapeSettings
from repro.transpile.topology import line_topology

SETTINGS = GrapeSettings(dt_ns=0.5, target_fidelity=0.95)
HYPER = GrapeHyperparameters(0.05, 0.002, max_iterations=120)


class CountingCache(PulseCache):
    def __init__(self):
        super().__init__()
        self.put_keys = []

    def put(self, key, entry, target=None):
        self.put_keys.append(key)
        super().put(key, entry, target=target)


def _ansatz(parameter_name: str) -> QuantumCircuit:
    """One fixed entangler + one θ gate — all variants share the entangler."""
    circuit = QuantumCircuit(2)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.rz(Parameter(parameter_name), 1)
    circuit.cx(0, 1)
    return circuit


class TestStrictPrecompileMany:
    def test_fixed_blocks_shared_across_ansatze(self):
        cache = CountingCache()
        compilers = StrictPartialCompiler.precompile_many(
            [_ansatz("a"), _ansatz("b"), _ansatz("c")],
            device=GmonDevice(line_topology(2)),
            settings=SETTINGS,
            hyperparameters=HYPER,
            max_block_width=2,
            cache=cache,
        )
        assert len(compilers) == 3
        scheduler = compilers[0].report.metadata["scheduler"]
        # Each ansatz isolates to h+cx | Rz(θ) | cx: the h+cx and cx fixed
        # blocks are identical across all three ansätze.
        assert scheduler["circuits"] == 3
        assert scheduler["deduped_blocks"] > 0
        # GRAPE ran once per *unique* fixed block across the whole batch.
        assert len(cache.put_keys) == len(set(cache.put_keys))
        assert len(cache.put_keys) == scheduler["unique_blocks"]

    def test_batch_compilers_compile_like_solo_precompiles(self):
        batch = StrictPartialCompiler.precompile_many(
            [_ansatz("a"), _ansatz("b")],
            device=GmonDevice(line_topology(2)),
            settings=SETTINGS,
            hyperparameters=HYPER,
            max_block_width=2,
        )
        solo = StrictPartialCompiler.precompile(
            _ansatz("a"),
            device=GmonDevice(line_topology(2)),
            settings=SETTINGS,
            hyperparameters=HYPER,
            max_block_width=2,
        )
        assert batch[0].compile([0.4]).pulse_duration_ns == pytest.approx(
            solo.compile([0.4]).pulse_duration_ns
        )

    def test_shared_state_extends_dedup_across_calls(self):
        state = SchedulerState()
        device = GmonDevice(line_topology(2))
        first = StrictPartialCompiler.precompile_many(
            [_ansatz("a")],
            device=device,
            settings=SETTINGS,
            hyperparameters=HYPER,
            max_block_width=2,
            state=state,
        )
        assert first[0].report.metadata["scheduler"]["reused_blocks"] == 0
        second = StrictPartialCompiler.precompile_many(
            [_ansatz("b")],
            device=device,
            settings=SETTINGS,
            hyperparameters=HYPER,
            max_block_width=2,
            state=state,
        )
        scheduler = second[0].report.metadata["scheduler"]
        assert scheduler["reused_blocks"] > 0
        assert scheduler["unique_blocks"] == 0

    def test_empty_batch(self):
        assert StrictPartialCompiler.precompile_many([]) == []


class TestFlexiblePrecompileMany:
    def test_batch_returns_working_compilers(self):
        compilers = FlexiblePartialCompiler.precompile_many(
            [_ansatz("a"), _ansatz("b")],
            device=GmonDevice(line_topology(2)),
            settings=SETTINGS,
            hyperparameters=HYPER,
            max_block_width=2,
            tuning_samples=1,
        )
        assert len(compilers) == 2
        scheduler = compilers[0].report.metadata["scheduler"]
        assert scheduler["circuits"] == 2
        # Each parametrized block still tunes per circuit.
        assert all(c.report.parametrized_blocks >= 1 for c in compilers)
        result = compilers[1].compile([0.2])
        assert result.pulse_duration_ns > 0

    def test_empty_batch(self):
        assert FlexiblePartialCompiler.precompile_many([]) == []
