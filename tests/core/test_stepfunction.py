"""Tests for the step-function gate-to-pulse lookup baseline."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit
from repro.circuits.parameters import Parameter
from repro.config import GATE_DURATIONS_NS
from repro.core.gate_based import GateBasedCompiler
from repro.core.stepfunction import (
    AngleRange,
    StepFunctionGateCompiler,
    StepFunctionTable,
    default_step_table,
)
from repro.errors import CompilationError


class TestAngleRange:
    def test_contains(self):
        r = AngleRange(-1.0, 1.0, 2.0)
        assert r.contains(0.0) and r.contains(-1.0)
        assert not r.contains(1.0)  # half-open

    def test_empty_range_rejected(self):
        with pytest.raises(CompilationError):
            AngleRange(1.0, 1.0, 2.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(CompilationError):
            AngleRange(0.0, 1.0, -0.1)


class TestStepFunctionTable:
    def test_tiling_validation_gap(self):
        with pytest.raises(CompilationError):
            StepFunctionTable(
                {"rz": (AngleRange(-math.pi, 0.0, 1.0), AngleRange(0.5, math.pi, 1.0))}
            )

    def test_tiling_validation_bounds(self):
        with pytest.raises(CompilationError):
            StepFunctionTable({"rz": (AngleRange(-1.0, math.pi, 1.0),)})

    def test_empty_ranges_rejected(self):
        with pytest.raises(CompilationError):
            StepFunctionTable({"rz": ()})

    def test_wrap(self):
        assert StepFunctionTable.wrap(0.1) == pytest.approx(0.1)
        assert StepFunctionTable.wrap(2 * math.pi + 0.1) == pytest.approx(0.1)
        assert StepFunctionTable.wrap(-math.pi) == pytest.approx(math.pi)
        assert StepFunctionTable.wrap(3 * math.pi) == pytest.approx(math.pi)

    def test_lookup_hits_right_range(self):
        table = default_step_table()
        assert table.duration_ns("rz", 0.1) == 0.0  # virtual Z
        assert table.duration_ns("rz", 1.0) == GATE_DURATIONS_NS["rz"]
        assert table.duration_ns("rx", 1.0) == GATE_DURATIONS_NS["rx"] / 2
        assert table.duration_ns("rx", 3.0) == GATE_DURATIONS_NS["rx"]

    def test_boundary_angle_pi(self):
        table = default_step_table()
        assert table.duration_ns("rz", math.pi) == GATE_DURATIONS_NS["rz"]

    def test_unrefined_gate_falls_back_to_table1(self):
        table = default_step_table()
        assert table.duration_ns("cx") == GATE_DURATIONS_NS["cx"]
        assert table.duration_ns("h", 0.0) == GATE_DURATIONS_NS["h"]

    def test_unknown_gate_rejected(self):
        with pytest.raises(CompilationError):
            default_step_table().duration_ns("frob")

    def test_refined_gates_listing(self):
        assert default_step_table().refined_gates == ("rx", "rz")


class TestStepFunctionCompiler:
    def _circuit(self):
        theta = Parameter("t")
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.rz(theta, 1)
        circuit.cx(0, 1)
        return circuit

    def test_zero_runtime_iterations(self):
        compiled = StepFunctionGateCompiler().compile_parametrized(
            self._circuit(), [0.9]
        )
        assert compiled.runtime_iterations == 0
        assert compiled.method == "step-function"

    def test_small_angles_compile_shorter(self):
        """The defining behavior: near-zero angles skip their pulses."""
        compiler = StepFunctionGateCompiler()
        small = compiler.compile_parametrized(self._circuit(), [0.01])
        large = compiler.compile_parametrized(self._circuit(), [2.0])
        assert small.pulse_duration_ns < large.pulse_duration_ns

    def test_never_worse_than_flat_gate_based(self):
        """Each range duration ≤ Table 1, so the program can only shrink."""
        circuit = self._circuit()
        flat = GateBasedCompiler()
        step = StepFunctionGateCompiler()
        for angle in (-3.0, -1.0, -0.1, 0.0, 0.2, 1.4, 3.1):
            a = step.compile_parametrized(circuit, [angle]).pulse_duration_ns
            b = flat.compile_parametrized(circuit, [angle]).pulse_duration_ns
            assert a <= b + 1e-9

    def test_angle_wrapping_in_compile(self):
        compiler = StepFunctionGateCompiler()
        a = compiler.compile_parametrized(self._circuit(), [0.1])
        b = compiler.compile_parametrized(self._circuit(), [0.1 + 2 * math.pi])
        assert a.pulse_duration_ns == pytest.approx(b.pulse_duration_ns)

    def test_unbound_circuit_rejected(self):
        with pytest.raises(CompilationError):
            StepFunctionGateCompiler().compile_bound(self._circuit())

    def test_dict_values_accepted(self):
        circuit = self._circuit()
        (theta,) = circuit.parameters
        compiled = StepFunctionGateCompiler().compile_parametrized(
            circuit, {theta: 0.5}
        )
        assert compiled.pulse_duration_ns > 0

    def test_all_virtual_circuit_has_zero_duration(self):
        circuit = QuantumCircuit(1)
        circuit.rz(0.1, 0)
        circuit.rz(-0.2, 0)
        compiled = StepFunctionGateCompiler().compile_bound(circuit)
        assert compiled.pulse_duration_ns == 0.0


@settings(max_examples=40, deadline=None)
@given(st.floats(min_value=-10.0, max_value=10.0, allow_nan=False))
def test_wrap_is_idempotent_and_in_range(angle):
    """Property: wrapping lands in (-π, π] and is idempotent."""
    wrapped = StepFunctionTable.wrap(angle)
    assert -math.pi < wrapped <= math.pi
    assert StepFunctionTable.wrap(wrapped) == pytest.approx(wrapped)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.floats(min_value=-math.pi, max_value=math.pi, allow_nan=False),
        min_size=1,
        max_size=6,
    )
)
def test_step_function_dominates_flat_lookup(angles):
    """Property: the step-function program never exceeds plain gate-based."""
    params = [Parameter(f"t{i}") for i in range(len(angles))]
    circuit = QuantumCircuit(2)
    for i, p in enumerate(params):
        circuit.rz(p, i % 2)
        if i % 2 == 0:
            circuit.cx(0, 1)
    step = StepFunctionGateCompiler().compile_parametrized(circuit, angles)
    flat = GateBasedCompiler().compile_parametrized(circuit, angles)
    assert step.pulse_duration_ns <= flat.pulse_duration_ns + 1e-9
