"""Unit tests for GRAPE hyperparameter tuning."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.parameters import Parameter
from repro.core.hyperopt import (
    HyperparameterTrial,
    learning_rate_sweep,
    sample_targets,
    tune_hyperparameters,
)
from repro.errors import CompilationError
from repro.pulse.device import GmonDevice
from repro.pulse.grape.engine import GrapeSettings
from repro.pulse.hamiltonian import build_control_set
from repro.transpile.topology import line_topology

SETTINGS = GrapeSettings(dt_ns=0.25, target_fidelity=0.99)


@pytest.fixture(scope="module")
def control_set():
    return build_control_set(GmonDevice(line_topology(2)), [0])


@pytest.fixture(scope="module")
def subcircuit():
    theta = Parameter("theta_0")
    qc = QuantumCircuit(1).h(0).rz(theta, 0).h(0)
    return qc


class TestSampleTargets:
    def test_count_and_shape(self, subcircuit):
        targets = sample_targets(subcircuit, 3, seed=0)
        assert len(targets) == 3
        assert all(t.shape == (2, 2) for t in targets)

    def test_seeded(self, subcircuit):
        a = sample_targets(subcircuit, 2, seed=1)
        b = sample_targets(subcircuit, 2, seed=1)
        assert all(np.allclose(x, y) for x, y in zip(a, b))


class TestTuning:
    def test_returns_best_trial(self, control_set, subcircuit):
        targets = sample_targets(subcircuit, 2, seed=0)
        result = tune_hyperparameters(
            control_set,
            targets,
            num_steps=12,
            settings=SETTINGS,
            learning_rates=(0.01, 0.1),
            decay_rates=(0.0,),
            iteration_budget=120,
        )
        assert len(result.trials) == 2
        assert result.best.learning_rate in (0.01, 0.1)
        assert result.total_iterations > 0

    def test_empty_targets_rejected(self, control_set):
        with pytest.raises(CompilationError):
            tune_hyperparameters(control_set, [], num_steps=10)

    def test_trial_score_penalizes_nonconvergence(self):
        good = HyperparameterTrial(0.1, 0.0, 50.0, 0.999, True)
        bad = HyperparameterTrial(0.1, 0.0, 50.0, 0.5, False)
        assert bad.score > good.score


class TestLearningRateSweep:
    def test_error_matrix_shape(self, control_set, subcircuit):
        targets = sample_targets(subcircuit, 2, seed=3)
        errors = learning_rate_sweep(
            control_set, targets, num_steps=10,
            learning_rates=(0.01, 0.05), iterations=40, settings=SETTINGS,
        )
        assert errors.shape == (2, 2)
        assert np.all(errors >= 0.0) and np.all(errors <= 1.0)

    def test_figure4_robustness_property(self, control_set, subcircuit):
        # The argmin learning rate should agree across different θ values —
        # the observation flexible partial compilation is built on.
        targets = sample_targets(subcircuit, 3, seed=4)
        lrs = (0.002, 0.05)
        errors = learning_rate_sweep(
            control_set, targets, num_steps=10, learning_rates=lrs,
            iterations=60, settings=SETTINGS,
        )
        argmins = set(int(np.argmin(row)) for row in errors)
        assert len(argmins) == 1
