"""Unit tests for the pulse cache."""

import numpy as np

from repro.core.cache import (
    CacheEntry,
    PulseCache,
    control_context_key,
    unitary_fingerprint,
)
from repro.linalg.random import haar_random_unitary
from repro.pulse.device import GmonDevice
from repro.pulse.hamiltonian import build_control_set
from repro.pulse.schedule import PulseSchedule
from repro.transpile.topology import line_topology


class TestFingerprint:
    def test_deterministic(self):
        u = haar_random_unitary(4, seed=0)
        assert unitary_fingerprint(u) == unitary_fingerprint(u.copy())

    def test_phase_invariant(self):
        u = haar_random_unitary(4, seed=1)
        assert unitary_fingerprint(u) == unitary_fingerprint(np.exp(0.3j) * u)

    def test_different_unitaries_differ(self):
        a = haar_random_unitary(4, seed=2)
        b = haar_random_unitary(4, seed=3)
        assert unitary_fingerprint(a) != unitary_fingerprint(b)

    def test_small_perturbation_changes_hash(self):
        u = np.eye(4, dtype=complex)
        v = u.copy()
        v[0, 0] = np.exp(0.01j)
        assert unitary_fingerprint(u) != unitary_fingerprint(v)


class TestContextKey:
    def test_translation_invariant(self):
        # Blocks on qubits (0,1) and (3,4) of a line have identical local
        # physics: their context keys must match so pulses are shared.
        device = GmonDevice(line_topology(6))
        a = build_control_set(device, [0, 1])
        b = build_control_set(device, [3, 4])
        assert control_context_key(a, 0.2, 0.999) == control_context_key(b, 0.2, 0.999)

    def test_dt_changes_key(self):
        device = GmonDevice(line_topology(2))
        cs = build_control_set(device, [0])
        assert control_context_key(cs, 0.2, 0.99) != control_context_key(cs, 0.1, 0.99)


class TestPulseCache:
    def _entry(self):
        sched = PulseSchedule(qubits=(0,), dt_ns=0.1, controls=np.zeros((1, 5)))
        return CacheEntry(sched, 0.5, 0.999, True, 100)

    def test_miss_then_hit(self):
        cache = PulseCache()
        device = GmonDevice(line_topology(2))
        cs = build_control_set(device, [0])
        key = cache.key(np.eye(2), cs, 0.2, 0.99)
        assert cache.get(key) is None
        cache.put(key, self._entry())
        assert cache.get(key) is not None
        assert cache.hits == 1 and cache.misses == 1

    def test_hit_rate(self):
        cache = PulseCache()
        assert cache.hit_rate == 0.0
        device = GmonDevice(line_topology(2))
        cs = build_control_set(device, [0])
        key = cache.key(np.eye(2), cs, 0.2, 0.99)
        cache.put(key, self._entry())
        cache.get(key)
        assert cache.hit_rate == 1.0

    def test_len(self):
        cache = PulseCache()
        device = GmonDevice(line_topology(2))
        cs = build_control_set(device, [0])
        cache.put(cache.key(np.eye(2), cs, 0.2, 0.99), self._entry())
        assert len(cache) == 1
