"""Unit tests for the gate library."""

import math

import numpy as np
import pytest

from repro.circuits.gates import (
    CXGate,
    CZGate,
    Gate,
    HGate,
    IGate,
    ISwapGate,
    RXGate,
    RYGate,
    RZGate,
    RZZGate,
    SGate,
    SdgGate,
    SwapGate,
    TGate,
    TdgGate,
    XGate,
    YGate,
    ZGate,
    gate_from_name,
)
from repro.circuits.parameters import Parameter
from repro.errors import CircuitError, ParameterError
from repro.linalg.operators import is_unitary

ALL_FIXED = [
    IGate(),
    XGate(),
    YGate(),
    ZGate(),
    HGate(),
    SGate(),
    SdgGate(),
    TGate(),
    TdgGate(),
    CXGate(),
    CZGate(),
    SwapGate(),
    ISwapGate(),
]
ALL_PARAM = [RXGate(0.7), RYGate(-1.2), RZGate(2.3), RZZGate(0.5)]


class TestMatrices:
    @pytest.mark.parametrize("gate", ALL_FIXED + ALL_PARAM, ids=lambda g: repr(g))
    def test_all_matrices_unitary(self, gate):
        assert is_unitary(gate.matrix())

    @pytest.mark.parametrize("gate", ALL_FIXED + ALL_PARAM, ids=lambda g: repr(g))
    def test_matrix_dimension_matches_qubits(self, gate):
        dim = 2**gate.num_qubits
        assert gate.matrix().shape == (dim, dim)

    def test_x_flips(self):
        assert np.allclose(XGate().matrix() @ [1, 0], [0, 1])

    def test_h_creates_superposition(self):
        out = HGate().matrix() @ [1, 0]
        assert np.allclose(np.abs(out) ** 2, [0.5, 0.5])

    def test_rx_pi_is_x_up_to_phase(self):
        assert np.allclose(RXGate(math.pi).matrix(), -1j * XGate().matrix())

    def test_rz_pi_is_z_up_to_phase(self):
        assert np.allclose(RZGate(math.pi).matrix(), -1j * ZGate().matrix())

    def test_s_squared_is_z(self):
        s = SGate().matrix()
        assert np.allclose(s @ s, ZGate().matrix())

    def test_t_squared_is_s(self):
        t = TGate().matrix()
        assert np.allclose(t @ t, SGate().matrix())

    def test_cx_action_on_basis(self):
        cx = CXGate().matrix()
        # |10> -> |11>
        state = np.zeros(4)
        state[2] = 1.0
        assert np.allclose(cx @ state, np.eye(4)[3])

    def test_swap_action(self):
        swap = SwapGate().matrix()
        state = np.zeros(4)
        state[1] = 1.0  # |01>
        assert np.allclose(swap @ state, np.eye(4)[2])

    def test_iswap_phase(self):
        out = ISwapGate().matrix() @ np.eye(4)[1]
        assert np.allclose(out, 1j * np.eye(4)[2])

    def test_rzz_diagonal(self):
        m = RZZGate(0.8).matrix()
        assert np.allclose(m, np.diag(np.diag(m)))


class TestInverses:
    @pytest.mark.parametrize("gate", ALL_FIXED + ALL_PARAM, ids=lambda g: repr(g))
    def test_inverse_matrix(self, gate):
        product = gate.inverse().matrix() @ gate.matrix()
        assert np.allclose(product, np.eye(2**gate.num_qubits), atol=1e-12)

    def test_s_inverse_is_sdg(self):
        assert isinstance(SGate().inverse(), SdgGate)

    def test_rx_inverse_negates_angle(self):
        inv = RXGate(0.4).inverse()
        assert math.isclose(inv.params[0], -0.4)


class TestParameterization:
    def test_symbolic_gate_is_parameterized(self):
        theta = Parameter("theta_0")
        assert RZGate(theta).is_parameterized()

    def test_numeric_gate_not_parameterized(self):
        assert not RZGate(0.5).is_parameterized()

    def test_matrix_of_unbound_raises(self):
        theta = Parameter("theta_0")
        with pytest.raises(ParameterError):
            RZGate(theta).matrix()

    def test_bind_produces_numeric_gate(self):
        theta = Parameter("theta_0")
        bound = RZGate(2 * theta).bind({theta: 0.25})
        assert not bound.is_parameterized()
        assert math.isclose(bound.params[0], 0.5)

    def test_partial_bind_keeps_symbolic(self):
        a, b = Parameter("theta_0"), Parameter("theta_1")
        bound = RZGate(a + b).bind({a: 1.0})
        assert bound.is_parameterized()

    def test_inverse_of_symbolic(self):
        theta = Parameter("theta_0")
        inv = RZGate(theta).inverse()
        assert inv.params[0].coefficient(theta) == -1.0


class TestDurations:
    def test_table1_durations(self):
        assert RZGate(0.1).duration_ns == 0.4
        assert RXGate(0.1).duration_ns == 2.5
        assert HGate().duration_ns == 1.4
        assert CXGate().duration_ns == 3.8
        assert SwapGate().duration_ns == 7.4

    def test_unknown_gate_duration_raises(self):
        class Mystery(Gate):
            name = "mystery"

            def matrix(self):
                return np.eye(2)

        with pytest.raises(CircuitError):
            _ = Mystery().duration_ns


class TestEqualityAndFactory:
    def test_same_gate_equal(self):
        assert RZGate(0.5) == RZGate(0.5)

    def test_different_angle_unequal(self):
        assert RZGate(0.5) != RZGate(0.6)

    def test_symbolic_equality(self):
        theta = Parameter("theta_0")
        assert RZGate(2 * theta) == RZGate(theta + theta)

    def test_gate_from_name(self):
        assert isinstance(gate_from_name("cx"), CXGate)

    def test_gate_from_name_with_params(self):
        gate = gate_from_name("rx", [0.3])
        assert math.isclose(gate.params[0], 0.3)

    def test_gate_from_name_unknown(self):
        with pytest.raises(CircuitError):
            gate_from_name("frobnicate")
