"""Unit tests for symbolic parameters and linear expressions."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.parameters import (
    Parameter,
    ParameterExpression,
    angle_parameters,
    parameter_value,
)
from repro.errors import ParameterError


@pytest.fixture
def theta():
    return Parameter("theta_0")


@pytest.fixture
def phi():
    return Parameter("theta_1")


class TestParameter:
    def test_index_parsed_from_name(self):
        assert Parameter("theta_7").index == 7

    def test_explicit_index(self):
        assert Parameter("gamma", index=3).index == 3

    def test_no_digits_defaults_zero(self):
        assert Parameter("alpha").index == 0

    def test_equality_by_name_and_index(self):
        assert Parameter("theta_1") == Parameter("theta_1")
        assert Parameter("theta_1") != Parameter("theta_2")

    def test_ordering_by_index(self):
        params = [Parameter(f"theta_{i}") for i in (3, 1, 2)]
        assert [p.index for p in sorted(params)] == [1, 2, 3]

    def test_hashable(self, theta):
        assert {theta: 1}[Parameter("theta_0")] == 1

    def test_str(self, theta):
        assert str(theta) == "theta_0"


class TestExpressionArithmetic:
    def test_negation(self, theta):
        expr = -theta
        assert expr.coefficient(theta) == -1.0

    def test_scalar_multiplication(self, theta):
        expr = 2.5 * theta
        assert expr.coefficient(theta) == 2.5

    def test_division(self, theta):
        expr = theta / 2
        assert expr.coefficient(theta) == 0.5

    def test_addition_of_parameters(self, theta, phi):
        expr = theta + phi
        assert expr.parameters == frozenset({theta, phi})

    def test_addition_with_constant(self, theta):
        expr = theta + math.pi
        assert math.isclose(expr.constant, math.pi)

    def test_subtraction_cancels(self, theta):
        expr = theta - theta
        assert expr.is_constant()
        assert expr.to_float() == 0.0

    def test_rsub(self, theta):
        expr = 1.0 - theta
        assert expr.coefficient(theta) == -1.0
        assert expr.constant == 1.0

    def test_nonlinear_multiplication_rejected(self, theta, phi):
        with pytest.raises(ParameterError):
            (1.0 * theta) * (1.0 * phi)

    def test_division_by_expression_rejected(self, theta, phi):
        with pytest.raises(ParameterError):
            (1.0 * theta) / (1.0 * phi)

    def test_equality_of_equivalent_expressions(self, theta):
        assert theta + theta == 2 * theta

    def test_equality_with_scalar(self, theta):
        assert (theta - theta + 3.0) == 3.0

    def test_str_rendering(self, theta):
        assert "theta_0" in str(2 * theta + 1)


class TestBinding:
    def test_full_bind(self, theta, phi):
        expr = 2 * theta - phi + 1.0
        bound = expr.bind({theta: 0.5, phi: 2.0})
        assert bound.is_constant()
        assert math.isclose(bound.to_float(), 2 * 0.5 - 2.0 + 1.0)

    def test_partial_bind(self, theta, phi):
        expr = theta + phi
        bound = expr.bind({theta: 1.0})
        assert bound.parameters == frozenset({phi})
        assert math.isclose(bound.constant, 1.0)

    def test_bind_ignores_absent_parameters(self, theta, phi):
        expr = 1.0 * theta
        bound = expr.bind({phi: 9.0})
        assert bound.parameters == frozenset({theta})

    def test_to_float_unbound_raises(self, theta):
        with pytest.raises(ParameterError):
            (1.0 * theta).to_float()

    @given(st.floats(-10, 10), st.floats(-10, 10), st.floats(-10, 10))
    @settings(max_examples=30, deadline=None)
    def test_binding_is_linear(self, a, b, value):
        theta = Parameter("theta_0")
        expr = a * theta + b
        bound = expr.bind({theta: value}).to_float()
        assert math.isclose(bound, a * value + b, abs_tol=1e-9)


class TestHelpers:
    def test_parameter_value_float(self):
        assert parameter_value(1.5) == 1.5

    def test_parameter_value_constant_expr(self, theta):
        assert parameter_value(theta - theta + 2.0) == 2.0

    def test_parameter_value_unbound_raises(self, theta):
        with pytest.raises(ParameterError):
            parameter_value(theta)

    def test_angle_parameters_of_float(self):
        assert angle_parameters(0.3) == frozenset()

    def test_angle_parameters_of_parameter(self, theta):
        assert angle_parameters(theta) == frozenset({theta})

    def test_angle_parameters_of_expression(self, theta, phi):
        assert angle_parameters(theta + 2 * phi) == frozenset({theta, phi})
