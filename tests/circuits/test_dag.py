"""Unit tests for the circuit dependency DAG and critical paths."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import CircuitDag, circuit_layers, critical_path_ns
from repro.circuits.library import random_circuit


class TestDagStructure:
    def test_chain_dependencies(self):
        qc = QuantumCircuit(1).h(0).x(0).z(0)
        dag = CircuitDag(qc)
        assert list(dag.successors(0)) == [1]
        assert list(dag.successors(1)) == [2]

    def test_parallel_gates_independent(self):
        qc = QuantumCircuit(2).h(0).h(1)
        dag = CircuitDag(qc)
        assert list(dag.successors(0)) == []

    def test_two_qubit_gate_joins(self):
        qc = QuantumCircuit(2).h(0).h(1).cx(0, 1)
        dag = CircuitDag(qc)
        assert set(dag.predecessors(2)) == {0, 1}

    def test_topological_order_valid(self):
        qc = random_circuit(4, 30, seed=0)
        dag = CircuitDag(qc)
        position = {idx: i for i, idx in enumerate(dag.topological_order())}
        for src, dst in dag.graph.edges:
            assert position[src] < position[dst]


class TestLayers:
    def test_single_layer(self):
        qc = QuantumCircuit(3).h(0).h(1).h(2)
        assert len(circuit_layers(qc)) == 1

    def test_layer_count_equals_depth(self):
        qc = random_circuit(4, 40, seed=1)
        assert len(circuit_layers(qc)) == qc.depth()

    def test_layers_cover_all_instructions(self):
        qc = random_circuit(3, 25, seed=2)
        total = sum(len(layer) for layer in circuit_layers(qc))
        assert total == len(qc)


class TestCriticalPath:
    def test_empty_circuit(self):
        assert critical_path_ns(QuantumCircuit(2)) == 0.0

    def test_serial_sum(self):
        qc = QuantumCircuit(1).h(0).rx(0.3, 0)
        assert np.isclose(critical_path_ns(qc), 1.4 + 2.5)

    def test_parallel_max(self):
        qc = QuantumCircuit(2).rx(0.3, 0).rz(0.3, 1)
        assert np.isclose(critical_path_ns(qc), 2.5)

    def test_mixed(self):
        qc = QuantumCircuit(2).h(0).h(1).cx(0, 1).rz(0.1, 1)
        assert np.isclose(critical_path_ns(qc), 1.4 + 3.8 + 0.4)

    def test_weighted_critical_path_custom(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1)
        dag = CircuitDag(qc)
        assert dag.weighted_critical_path(lambda i: 1.0) == 2.0
