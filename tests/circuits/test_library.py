"""Unit tests for circuit constructors."""

import numpy as np
import pytest

from repro.circuits.library import ghz_circuit, random_circuit
from repro.errors import CircuitError
from repro.sim.statevector import simulate


class TestGHZ:
    def test_state_is_ghz(self):
        probs = simulate(ghz_circuit(4)).probabilities()
        assert np.isclose(probs[0], 0.5)
        assert np.isclose(probs[-1], 0.5)

    def test_minimum_size(self):
        with pytest.raises(CircuitError):
            ghz_circuit(1)


class TestRandomCircuit:
    def test_gate_count(self):
        assert len(random_circuit(3, 25, seed=0)) == 25

    def test_reproducible(self):
        assert random_circuit(3, 20, seed=5) == random_circuit(3, 20, seed=5)

    def test_single_qubit_register(self):
        qc = random_circuit(1, 10, seed=0)
        assert all(len(i.qubits) == 1 for i in qc)

    def test_rejects_zero_qubits(self):
        with pytest.raises(CircuitError):
            random_circuit(0, 5)
