"""Satellite: content-fingerprint stability.

The fingerprint is the plan cache's key material, and will eventually key
on-disk state, so it must be stable across bindings of one ansatz (keyed
pre-binding), across pickling, and across process restarts — and must
separate structurally different circuits.
"""

import os
import pickle
import subprocess
import sys
from pathlib import Path

from repro.circuits import Parameter, QuantumCircuit
from repro.qaoa import maxcut_problem, qaoa_circuit
from repro.transpile import transpile

SRC = str(Path(__file__).resolve().parents[2] / "src")


def _ansatz():
    theta = Parameter("theta_0")
    phi = Parameter("theta_1")
    circuit = QuantumCircuit(3, name="ansatz")
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.rz(theta, 1)
    circuit.rx(phi / 2, 2)
    circuit.rzz(2 * theta, 1, 2)
    return circuit


class TestStability:
    def test_deterministic_across_calls(self):
        assert _ansatz().content_fingerprint() == _ansatz().content_fingerprint()

    def test_same_ansatz_different_bindings_same_key(self):
        """The symbolic ansatz keeps one key no matter what gets bound to it
        (plans are keyed on the pre-binding circuit)."""
        ansatz = _ansatz()
        before = ansatz.content_fingerprint()
        ansatz.bind_parameters([0.4, 0.9])
        ansatz.bind_parameters([1.1, -0.3])
        assert ansatz.content_fingerprint() == before

    def test_name_does_not_matter(self):
        a, b = _ansatz(), _ansatz()
        b.name = "renamed"
        assert a.content_fingerprint() == b.content_fingerprint()

    def test_survives_pickle(self):
        ansatz = _ansatz()
        clone = pickle.loads(pickle.dumps(ansatz))
        assert clone.content_fingerprint() == ansatz.content_fingerprint()

    def test_survives_process_restart(self):
        """A fresh interpreter computes the same digest — no dependence on
        hash randomization or object identity."""
        ansatz = _ansatz()
        script = (
            "import sys; sys.path.insert(0, sys.argv[1])\n"
            "from tests.circuits.test_fingerprint import _ansatz\n"
            "print(_ansatz().content_fingerprint())"
        )
        env = dict(os.environ, PYTHONPATH=SRC)
        out = subprocess.run(
            [sys.executable, "-c", script, SRC],
            capture_output=True,
            text=True,
            check=True,
            cwd=str(Path(__file__).resolve().parents[2]),
            env=env,
        )
        assert out.stdout.strip() == ansatz.content_fingerprint()

    def test_qaoa_workload_fingerprint_is_stable(self):
        problem = maxcut_problem("clique", 4, seed=0)
        a = transpile(qaoa_circuit(problem, p=1))
        b = transpile(qaoa_circuit(problem, p=1))
        assert a.content_fingerprint() == b.content_fingerprint()


class TestSeparation:
    def test_different_gate(self):
        a = QuantumCircuit(2).h(0).cx(0, 1)
        b = QuantumCircuit(2).h(0).cz(0, 1)
        assert a.content_fingerprint() != b.content_fingerprint()

    def test_different_qubits(self):
        a = QuantumCircuit(3).cx(0, 1)
        b = QuantumCircuit(3).cx(0, 2)
        assert a.content_fingerprint() != b.content_fingerprint()

    def test_different_width(self):
        a = QuantumCircuit(2).h(0)
        b = QuantumCircuit(3).h(0)
        assert a.content_fingerprint() != b.content_fingerprint()

    def test_different_numeric_angle(self):
        """Bound angles are content: rz(0.3) and rz(0.7) have different
        unitaries, so they must never share a plan."""
        a = QuantumCircuit(1).rz(0.3, 0)
        b = QuantumCircuit(1).rz(0.7, 0)
        assert a.content_fingerprint() != b.content_fingerprint()

    def test_different_parameter_skeleton(self):
        theta = Parameter("theta_0")
        a = QuantumCircuit(1).rz(theta, 0)
        b = QuantumCircuit(1).rz(2 * theta, 0)
        c = QuantumCircuit(1).rz(Parameter("theta_1"), 0)
        keys = {
            a.content_fingerprint(),
            b.content_fingerprint(),
            c.content_fingerprint(),
        }
        assert len(keys) == 3

    def test_gate_order_matters(self):
        a = QuantumCircuit(2).h(0).x(1)
        b = QuantumCircuit(2).x(1).h(0)
        assert a.content_fingerprint() != b.content_fingerprint()

    def test_binding_changes_the_bound_circuits_key(self):
        """Two different bindings are different content (their plans would
        cache different dedup keys); only the symbolic parent is shared."""
        ansatz = _ansatz()
        a = ansatz.bind_parameters([0.4, 0.9])
        b = ansatz.bind_parameters([1.1, -0.3])
        assert a.content_fingerprint() != b.content_fingerprint()
        assert a.content_fingerprint() != ansatz.content_fingerprint()
