"""Unit tests for OpenQASM export/import."""

import math

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import random_circuit
from repro.circuits.parameters import Parameter
from repro.circuits.qasm import from_qasm, to_qasm
from repro.errors import CircuitError
from repro.linalg.unitaries import unitaries_equal_up_to_phase
from repro.sim.unitary import circuit_unitary


class TestExport:
    def test_header(self):
        text = to_qasm(QuantumCircuit(3))
        assert "OPENQASM 2.0;" in text
        assert "qreg q[3];" in text

    def test_gate_lines(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1).rz(0.5, 1)
        text = to_qasm(qc)
        assert "h q[0];" in text
        assert "cx q[0],q[1];" in text
        assert "rz(0.5) q[1];" in text

    def test_symbolic_parameters(self):
        theta = Parameter("theta_0")
        qc = QuantumCircuit(1).rz(2 * theta, 0)
        text = to_qasm(qc)
        assert "theta_0" in text


class TestRoundTrip:
    def test_bound_circuit_roundtrip(self):
        qc = random_circuit(3, 30, seed=0)
        restored = from_qasm(to_qasm(qc))
        assert unitaries_equal_up_to_phase(
            circuit_unitary(restored), circuit_unitary(qc)
        )

    def test_symbolic_roundtrip(self):
        theta = Parameter("theta_0")
        qc = QuantumCircuit(2).h(0).rz(2 * theta, 0).cx(0, 1)
        restored = from_qasm(to_qasm(qc))
        assert len(restored.parameters) == 1
        for value in (0.3, -1.2):
            assert unitaries_equal_up_to_phase(
                circuit_unitary(restored.bind_parameters([value])),
                circuit_unitary(qc.bind_parameters([value])),
            )

    def test_all_gate_names_roundtrip(self):
        qc = QuantumCircuit(2)
        qc.x(0).y(0).z(1).h(0).s(1).sdg(0).t(1).tdg(0)
        qc.rx(0.1, 0).ry(0.2, 1).rz(0.3, 0)
        qc.cx(0, 1).cz(0, 1).swap(0, 1).iswap(0, 1).rzz(0.4, 0, 1)
        restored = from_qasm(to_qasm(qc))
        assert len(restored) == len(qc)


class TestImport:
    def test_pi_expressions(self):
        qc = from_qasm("qreg q[1];\nrz(pi/2) q[0];\n")
        assert math.isclose(qc[0].gate.params[0], math.pi / 2)

    def test_comments_and_blanks_ignored(self):
        text = "// header\n\nqreg q[1];\nh q[0]; // gate\n"
        assert len(from_qasm(text)) == 1

    def test_measure_and_barrier_skipped(self):
        text = "qreg q[1];\ncreg c[1];\nh q[0];\nbarrier q;\nmeasure q[0] -> c[0];\n"
        assert len(from_qasm(text)) == 1

    def test_gate_before_qreg_rejected(self):
        with pytest.raises(CircuitError):
            from_qasm("h q[0];")

    def test_missing_qreg_rejected(self):
        with pytest.raises(CircuitError):
            from_qasm("OPENQASM 2.0;")

    def test_garbage_rejected(self):
        with pytest.raises(CircuitError):
            from_qasm("qreg q[1];\n???;")
