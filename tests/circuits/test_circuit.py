"""Unit tests for QuantumCircuit."""

import math

import numpy as np
import pytest

from repro.circuits.circuit import Instruction, QuantumCircuit
from repro.circuits.gates import CXGate, HGate, RZGate, XGate
from repro.circuits.parameters import Parameter
from repro.errors import CircuitError
from repro.linalg.unitaries import unitaries_equal_up_to_phase
from repro.sim.unitary import circuit_unitary


class TestConstruction:
    def test_empty_circuit(self):
        qc = QuantumCircuit(3)
        assert len(qc) == 0
        assert qc.num_qubits == 3

    def test_zero_qubits_rejected(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(0)

    def test_append_chains(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1)
        assert [i.gate.name for i in qc] == ["h", "cx"]

    def test_out_of_range_qubit(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(2).h(2)

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(2).cx(1, 1)

    def test_wrong_arity_rejected(self):
        with pytest.raises(CircuitError):
            Instruction(CXGate(), (0,))

    def test_all_convenience_methods(self):
        qc = QuantumCircuit(3)
        qc.i(0).x(0).y(0).z(0).h(0).s(0).sdg(0).t(0).tdg(0)
        qc.rx(0.1, 0).ry(0.2, 1).rz(0.3, 2)
        qc.cx(0, 1).cz(1, 2).swap(0, 2).iswap(0, 1).rzz(0.4, 1, 2)
        assert len(qc) == 17


class TestQueries:
    def test_count_ops(self):
        qc = QuantumCircuit(2).h(0).h(1).cx(0, 1)
        assert qc.count_ops() == {"h": 2, "cx": 1}

    def test_depth_parallel_gates(self):
        qc = QuantumCircuit(2).h(0).h(1)
        assert qc.depth() == 1

    def test_depth_serial_gates(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1).h(1)
        assert qc.depth() == 3

    def test_active_qubits(self):
        qc = QuantumCircuit(4).h(1).cx(1, 3)
        assert qc.active_qubits() == (1, 3)

    def test_parameters_sorted_by_index(self):
        p2, p0 = Parameter("theta_2"), Parameter("theta_0")
        qc = QuantumCircuit(1).rz(p2, 0).rz(p0, 0)
        assert qc.parameters == (p0, p2)

    def test_is_parameterized(self):
        qc = QuantumCircuit(1).rz(Parameter("theta_0"), 0)
        assert qc.is_parameterized()
        assert not QuantumCircuit(1).h(0).is_parameterized()


class TestTransformations:
    def test_copy_independent(self):
        qc = QuantumCircuit(1).h(0)
        clone = qc.copy()
        clone.x(0)
        assert len(qc) == 1 and len(clone) == 2

    def test_compose_identity_mapping(self):
        a = QuantumCircuit(2).h(0)
        b = QuantumCircuit(2).cx(0, 1)
        combined = a.compose(b)
        assert [i.gate.name for i in combined] == ["h", "cx"]

    def test_compose_with_mapping(self):
        a = QuantumCircuit(3)
        b = QuantumCircuit(2).cx(0, 1)
        combined = a.compose(b, qubits=[2, 0])
        assert combined[0].qubits == (2, 0)

    def test_compose_width_mismatch(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(1).compose(QuantumCircuit(2))

    def test_inverse_reverses_and_inverts(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1).rz(0.3, 1)
        identity = qc.compose(qc.inverse())
        assert unitaries_equal_up_to_phase(
            circuit_unitary(identity), np.eye(4)
        )

    def test_bind_by_sequence(self):
        theta = Parameter("theta_0")
        qc = QuantumCircuit(1).rz(theta, 0)
        bound = qc.bind_parameters([0.5])
        assert math.isclose(bound[0].gate.params[0], 0.5)

    def test_bind_by_mapping(self):
        theta = Parameter("theta_0")
        qc = QuantumCircuit(1).rz(2 * theta, 0)
        bound = qc.bind_parameters({theta: 0.25})
        assert math.isclose(bound[0].gate.params[0], 0.5)

    def test_bind_wrong_count(self):
        qc = QuantumCircuit(1).rz(Parameter("theta_0"), 0)
        with pytest.raises(CircuitError):
            qc.bind_parameters([0.1, 0.2])

    def test_remap_qubits(self):
        qc = QuantumCircuit(2).cx(0, 1)
        mapped = qc.remap_qubits({0: 2, 1: 0}, num_qubits=3)
        assert mapped[0].qubits == (2, 0)

    def test_remap_missing_qubit(self):
        qc = QuantumCircuit(2).cx(0, 1)
        with pytest.raises(CircuitError):
            qc.remap_qubits({0: 1})

    def test_sub_circuit(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1).x(1)
        sub = qc.sub_circuit([0, 2])
        assert [i.gate.name for i in sub] == ["h", "x"]

    def test_slice_indexing(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1).x(1)
        tail = qc[1:]
        assert [i.gate.name for i in tail] == ["cx", "x"]


class TestEquality:
    def test_equal_circuits(self):
        a = QuantumCircuit(2).h(0).cx(0, 1)
        b = QuantumCircuit(2).h(0).cx(0, 1)
        assert a == b

    def test_different_order_unequal(self):
        a = QuantumCircuit(2).h(0).cx(0, 1)
        b = QuantumCircuit(2).cx(0, 1).h(0)
        assert a != b

    def test_draw_contains_gates(self):
        text = QuantumCircuit(1).h(0).draw()
        assert "h" in text
