"""Tests for QAOA graphs, MAXCUT, circuits, and driver."""

import numpy as np
import pytest

from repro.core.monotonic import is_parameter_monotonic
from repro.core.slicing import parametrized_gate_fraction
from repro.errors import QAOAError
from repro.qaoa.circuits import qaoa_circuit
from repro.qaoa.driver import QAOADriver
from repro.qaoa.graphs import benchmark_graph, clique_graph, graph_edges
from repro.qaoa.maxcut import cut_value, exact_maxcut, maxcut_hamiltonian, maxcut_problem
from repro.sim.statevector import Statevector
from repro.transpile.passes import transpile
from repro.circuits.dag import critical_path_ns


class TestGraphs:
    def test_3regular_degree(self):
        g = benchmark_graph("3regular", 6, seed=0)
        assert all(d == 3 for _, d in g.degree)

    def test_3regular_odd_nodes_rejected(self):
        with pytest.raises(QAOAError):
            benchmark_graph("3regular", 5)

    def test_erdos_renyi_connected(self):
        for seed in range(5):
            g = benchmark_graph("erdosrenyi", 6, seed=seed)
            import networkx as nx

            assert nx.is_connected(g)

    def test_seeded_reproducibility(self):
        a = benchmark_graph("3regular", 8, seed=3)
        b = benchmark_graph("3regular", 8, seed=3)
        assert graph_edges(a) == graph_edges(b)

    def test_clique_edge_count(self):
        assert len(graph_edges(clique_graph(4))) == 6

    def test_unknown_kind(self):
        with pytest.raises(QAOAError):
            benchmark_graph("smallworld", 6)


class TestMaxCut:
    def test_cut_value_counts_edges(self):
        g = clique_graph(3)
        assert cut_value(g, "011") == 2

    def test_cut_value_length_check(self):
        with pytest.raises(QAOAError):
            cut_value(clique_graph(3), "01")

    def test_exact_maxcut_clique4(self):
        # Best cut of K4: 2+2 partition cuts 4 edges.
        assert exact_maxcut(clique_graph(4)) == 4

    def test_hamiltonian_ground_energy_is_negative_maxcut(self):
        problem = maxcut_problem("3regular", 6, seed=1)
        assert np.isclose(
            problem.hamiltonian.ground_state_energy(), -problem.optimal_cut
        )

    def test_hamiltonian_expectation_matches_cut(self):
        g = clique_graph(3)
        h = maxcut_hamiltonian(g)
        state = Statevector.computational_basis(3, "011")
        assert np.isclose(-h.expectation(state), cut_value(g, "011"))

    def test_problem_name(self):
        problem = maxcut_problem("erdosrenyi", 6, seed=2)
        assert "erdosrenyi" in problem.name


class TestQAOACircuit:
    def test_parameter_count_is_2p(self):
        problem = maxcut_problem("3regular", 6, seed=0)
        for p in (1, 3):
            qc = qaoa_circuit(problem, p)
            assert len(qc.parameters) == 2 * p

    def test_monotonic_before_and_after_transpile(self):
        problem = maxcut_problem("erdosrenyi", 6, seed=0)
        qc = qaoa_circuit(problem, 3)
        assert is_parameter_monotonic(qc)
        assert is_parameter_monotonic(transpile(qc))

    def test_runtime_linear_in_p(self):
        # Table 3 property: gate-based runtime increases linearly in p.
        problem = maxcut_problem("3regular", 6, seed=0)
        runtimes = [critical_path_ns(transpile(qaoa_circuit(problem, p))) for p in (1, 2, 3, 4)]
        increments = np.diff(runtimes)
        assert np.allclose(increments, increments[0], rtol=0.05)

    def test_parametrized_fraction_higher_than_vqe(self):
        # Paper: 15-28 % for QAOA (vs 5-8 % for VQE).
        problem = maxcut_problem("3regular", 6, seed=0)
        fraction = parametrized_gate_fraction(transpile(qaoa_circuit(problem, 2)))
        assert fraction > 0.12

    def test_invalid_p(self):
        problem = maxcut_problem("3regular", 6, seed=0)
        with pytest.raises(QAOAError):
            qaoa_circuit(problem, 0)

    def test_uniform_superposition_at_zero_parameters(self):
        problem = maxcut_problem("3regular", 6, seed=0)
        qc = qaoa_circuit(problem, 1).bind_parameters([0.0, 0.0])
        from repro.sim.statevector import simulate

        probs = simulate(qc).probabilities()
        assert np.allclose(probs, 1.0 / 64.0)


class TestQAOADriver:
    def test_p1_beats_random_guessing(self):
        problem = maxcut_problem("3regular", 6, seed=0)
        result = QAOADriver(problem, p=1, max_iterations=300, seed=0, restarts=3).run()
        # Random assignment cuts half the edges on average; Farhi's bound
        # guarantees ≥ 0.69 of optimal at p=1 for 3-regular graphs.
        assert result.expected_cut > 0.5 * len(problem.edges)
        assert result.approximation_ratio >= 0.69

    def test_ratio_improves_with_p(self):
        problem = maxcut_problem("erdosrenyi", 6, seed=1)
        r1 = QAOADriver(problem, p=1, max_iterations=100, seed=0).run()
        r2 = QAOADriver(problem, p=2, max_iterations=200, seed=0).run()
        assert r2.approximation_ratio >= r1.approximation_ratio - 0.05

    def test_wrong_parameter_count(self):
        problem = maxcut_problem("3regular", 6, seed=0)
        with pytest.raises(QAOAError):
            QAOADriver(problem, p=2).run(initial_parameters=[0.1])
