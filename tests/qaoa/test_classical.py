"""Tests for the classical MAXCUT baselines (GW, greedy, random)."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QAOAError
from repro.qaoa import benchmark_graph, clique_graph, cut_value
from repro.qaoa.classical import (
    GW_ALPHA,
    ClassicalCutResult,
    goemans_williamson,
    greedy_local_search,
    random_cut,
    sdp_relaxation_vectors,
)
from repro.qaoa.maxcut import exact_maxcut


def _graphs():
    return [
        ("3regular-n6", benchmark_graph("3regular", 6, seed=0)),
        ("erdosrenyi-n6", benchmark_graph("erdosrenyi", 6, seed=0)),
        ("3regular-n8", benchmark_graph("3regular", 8, seed=1)),
        ("clique-n4", clique_graph(4)),
        ("path-n5", nx.path_graph(5)),
    ]


class TestSDPRelaxation:
    @pytest.mark.parametrize("name,graph", _graphs(), ids=lambda v: v if isinstance(v, str) else "")
    def test_relaxation_upper_bounds_optimum(self, name, graph):
        _, relaxation = sdp_relaxation_vectors(graph, seed=0)
        assert relaxation >= exact_maxcut(graph) - 1e-6

    def test_vectors_are_unit_norm(self):
        vectors, _ = sdp_relaxation_vectors(benchmark_graph("3regular", 6), seed=0)
        assert np.allclose(np.linalg.norm(vectors, axis=1), 1.0, atol=1e-9)

    def test_relaxation_close_to_sdp_on_bipartite(self):
        """On a bipartite graph the SDP is tight: relaxation == |E|."""
        graph = nx.complete_bipartite_graph(3, 3)
        _, relaxation = sdp_relaxation_vectors(graph, iterations=800, seed=0)
        assert relaxation >= graph.number_of_edges() - 0.01

    def test_rejects_empty_graph(self):
        with pytest.raises(QAOAError):
            sdp_relaxation_vectors(nx.empty_graph(3))


class TestGoemansWilliamson:
    @pytest.mark.parametrize("name,graph", _graphs(), ids=lambda v: v if isinstance(v, str) else "")
    def test_gw_meets_approximation_guarantee(self, name, graph):
        result = goemans_williamson(graph, num_rounds=64, seed=0)
        optimum = exact_maxcut(graph)
        assert result.cut >= GW_ALPHA * optimum - 1e-9

    def test_gw_finds_optimum_on_small_graphs(self):
        """With 64 hyperplanes on ≤8-node graphs the best cut is optimal."""
        graph = benchmark_graph("3regular", 6, seed=0)
        result = goemans_williamson(graph, num_rounds=64, seed=0)
        assert result.cut == exact_maxcut(graph)

    def test_expected_cut_ge_alpha_times_relaxation(self):
        """E[rounded cut] ≥ α · SDP value (the GW theorem), statistically."""
        graph = benchmark_graph("erdosrenyi", 8, seed=2)
        result = goemans_williamson(graph, num_rounds=256, seed=0)
        assert result.expected_cut >= GW_ALPHA * result.relaxation_value * 0.95

    def test_bitstring_matches_cut(self):
        graph = benchmark_graph("3regular", 6, seed=0)
        result = goemans_williamson(graph, seed=0)
        assert cut_value(graph, result.bitstring) == result.cut

    def test_deterministic_for_fixed_seed(self):
        graph = benchmark_graph("erdosrenyi", 6, seed=1)
        a = goemans_williamson(graph, seed=9)
        b = goemans_williamson(graph, seed=9)
        assert a.bitstring == b.bitstring and a.cut == b.cut

    def test_approximation_ratio_accessor(self):
        graph = clique_graph(4)
        result = goemans_williamson(graph, seed=0)
        ratio = result.approximation_ratio(exact_maxcut(graph))
        assert 0 < ratio <= 1.0

    def test_ratio_rejects_nonpositive_optimum(self):
        graph = clique_graph(4)
        result = goemans_williamson(graph, seed=0)
        with pytest.raises(QAOAError):
            result.approximation_ratio(0)


class TestGreedyLocalSearch:
    @pytest.mark.parametrize("name,graph", _graphs(), ids=lambda v: v if isinstance(v, str) else "")
    def test_half_approximation_guarantee(self, name, graph):
        result = greedy_local_search(graph, seed=0)
        assert result.cut >= graph.number_of_edges() / 2

    def test_local_optimality(self):
        """No single flip improves the returned assignment."""
        graph = benchmark_graph("erdosrenyi", 8, seed=0)
        result = greedy_local_search(graph, seed=3)
        base = result.cut
        for v in range(graph.number_of_nodes()):
            flipped = list(result.bitstring)
            flipped[v] = "1" if flipped[v] == "0" else "0"
            assert cut_value(graph, "".join(flipped)) <= base


class TestRandomCut:
    def test_expected_cut_near_half_edges(self):
        graph = benchmark_graph("erdosrenyi", 8, seed=0)
        result = random_cut(graph, num_samples=512, seed=0)
        expected = graph.number_of_edges() / 2
        assert abs(result.expected_cut - expected) < 0.15 * expected

    def test_best_cut_at_least_expected(self):
        graph = benchmark_graph("3regular", 6, seed=0)
        result = random_cut(graph, num_samples=64, seed=0)
        assert result.cut >= result.expected_cut

    def test_result_type(self):
        graph = clique_graph(4)
        assert isinstance(random_cut(graph, seed=0), ClassicalCutResult)


class TestBaselineOrdering:
    @pytest.mark.parametrize("seed", range(3))
    def test_gw_at_least_as_good_as_random(self, seed):
        """GW's best cut must dominate the random baseline's best cut."""
        graph = benchmark_graph("erdosrenyi", 8, seed=seed)
        gw = goemans_williamson(graph, num_rounds=64, seed=seed)
        rand = random_cut(graph, num_samples=64, seed=seed)
        assert gw.cut >= rand.expected_cut


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=0, max_value=500),
    st.sampled_from(["3regular", "erdosrenyi"]),
)
def test_gw_guarantee_property(seed, kind):
    """Property: GW respects the 0.878 guarantee on any benchmark graph."""
    graph = benchmark_graph(kind, 6, seed=seed)
    if graph.number_of_edges() == 0:
        return
    result = goemans_williamson(graph, num_rounds=32, seed=seed)
    assert result.cut >= GW_ALPHA * exact_maxcut(graph) - 1e-9
