"""Unit tests for GRAPE building blocks: controls, ADAM, cost."""

import numpy as np
import pytest

from repro.errors import GrapeError
from repro.pulse.grape.adam import AdamOptimizer
from repro.pulse.grape.controls import clip_controls, envelope_window, initial_controls
from repro.pulse.grape.cost import GrapeCost, RegularizationSettings
from repro.pulse.hamiltonian import build_control_set
from repro.pulse.device import GmonDevice
from repro.transpile.topology import line_topology


class TestInitialControls:
    def test_shape(self):
        u = initial_controls(3, 50, np.ones(3), seed=0)
        assert u.shape == (3, 50)

    def test_respects_scale(self):
        bounds = np.array([1.0, 2.0])
        u = initial_controls(2, 40, bounds, seed=1, scale=0.25)
        assert np.abs(u[0]).max() <= 0.25 + 1e-12
        assert np.abs(u[1]).max() <= 0.5 + 1e-12

    def test_reproducible(self):
        a = initial_controls(2, 30, np.ones(2), seed=3)
        b = initial_controls(2, 30, np.ones(2), seed=3)
        assert np.allclose(a, b)

    def test_invalid_steps(self):
        with pytest.raises(GrapeError):
            initial_controls(1, 0, np.ones(1))


class TestClipAndWindow:
    def test_clip(self):
        u = np.array([[3.0, -3.0], [0.1, 0.2]])
        clipped = clip_controls(u, np.array([1.0, 5.0]))
        assert np.allclose(clipped[0], [1.0, -1.0])
        assert np.allclose(clipped[1], [0.1, 0.2])

    def test_window_edges_near_zero(self):
        w = envelope_window(50)
        assert w[0] < 0.05 and w[-1] < 0.05
        assert np.isclose(w[25], 1.0)

    def test_window_tiny(self):
        w = envelope_window(3)
        assert len(w) == 3

    def test_window_invalid(self):
        with pytest.raises(GrapeError):
            envelope_window(0)


class TestAdam:
    def test_descends_quadratic(self):
        opt = AdamOptimizer(learning_rate=0.1)
        x = np.array([[5.0]])
        for _ in range(200):
            x = opt.step(x, 2 * x)
        assert abs(x[0, 0]) < 0.1

    def test_decay_shrinks_steps(self):
        fast = AdamOptimizer(learning_rate=0.1, decay_rate=0.0)
        slow = AdamOptimizer(learning_rate=0.1, decay_rate=1.0)
        x0 = np.array([[1.0]])
        g = np.array([[1.0]])
        for _ in range(10):
            xf = fast.step(x0, g)
            xs = slow.step(x0, g)
        assert abs(1.0 - xs[0, 0]) < abs(1.0 - xf[0, 0])

    def test_reset(self):
        opt = AdamOptimizer(learning_rate=0.1)
        opt.step(np.zeros((1, 1)), np.ones((1, 1)))
        opt.reset()
        assert opt._t == 0

    def test_per_row_scale(self):
        opt = AdamOptimizer(learning_rate=0.1)
        x = np.zeros((2, 1))
        out = opt.step(x, np.ones((2, 1)), scale=np.array([1.0, 10.0]))
        assert abs(out[1, 0]) > abs(out[0, 0])


class TestGrapeCost:
    @pytest.fixture
    def cost(self):
        device = GmonDevice(line_topology(2))
        cs = build_control_set(device, [0, 1])
        target = np.array(
            [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
        )
        return GrapeCost(cs, target, dt_ns=0.25)

    def test_gradient_matches_finite_differences(self, cost):
        rng = np.random.default_rng(0)
        u = rng.normal(size=(5, 8)) * 0.3
        _, grad, _ = cost.cost_and_gradient(u)
        eps = 1e-6
        for _ in range(6):
            i, j = rng.integers(5), rng.integers(8)
            up, um = u.copy(), u.copy()
            up[i, j] += eps
            um[i, j] -= eps
            cp, _, _ = cost.cost_and_gradient(up)
            cm, _, _ = cost.cost_and_gradient(um)
            fd = (cp - cm) / (2 * eps)
            assert abs(fd - grad[i, j]) < 1e-5 * max(1.0, abs(fd))

    def test_fidelity_bounds(self, cost):
        u = np.zeros((5, 10))
        f = cost.fidelity(u)
        assert 0.0 <= f <= 1.0

    def test_propagate_unitary(self, cost):
        rng = np.random.default_rng(2)
        u = rng.normal(size=(5, 12)) * 0.2
        total = cost.propagate(u)
        assert np.allclose(total @ total.conj().T, np.eye(4), atol=1e-10)

    def test_cost_and_fidelity_consistent(self, cost):
        rng = np.random.default_rng(3)
        u = rng.normal(size=(5, 10)) * 0.2
        c, _, f = cost.cost_and_gradient(u)
        assert np.isclose(c, 1.0 - f)
        assert np.isclose(f, cost.fidelity(u))

    def test_wrong_target_shape(self):
        device = GmonDevice(line_topology(2))
        cs = build_control_set(device, [0, 1])
        with pytest.raises(GrapeError):
            GrapeCost(cs, np.eye(2), dt_ns=0.25)

    def test_wrong_control_rows(self, cost):
        with pytest.raises(GrapeError):
            cost.cost_and_gradient(np.zeros((3, 10)))

    def test_regularization_increases_cost(self):
        device = GmonDevice(line_topology(2))
        cs = build_control_set(device, [0])
        target = np.eye(2, dtype=complex)
        plain = GrapeCost(cs, target, dt_ns=0.25)
        reg = GrapeCost(
            cs,
            target,
            dt_ns=0.25,
            regularization=RegularizationSettings(amplitude_weight=1.0),
        )
        u = np.ones((2, 10)) * 0.3
        c_plain, _, _ = plain.cost_and_gradient(u)
        c_reg, _, _ = reg.cost_and_gradient(u)
        assert c_reg > c_plain

    def test_regularization_gradient_finite_difference(self):
        device = GmonDevice(line_topology(2))
        cs = build_control_set(device, [0])
        target = np.array([[0, 1], [1, 0]], dtype=complex)
        cost = GrapeCost(
            cs,
            target,
            dt_ns=0.25,
            regularization=RegularizationSettings(
                amplitude_weight=0.1, slope_weight=0.2, curvature_weight=0.05
            ),
        )
        rng = np.random.default_rng(4)
        u = rng.normal(size=(2, 9)) * 0.3
        _, grad, _ = cost.cost_and_gradient(u)
        eps = 1e-6
        for _ in range(5):
            i, j = rng.integers(2), rng.integers(9)
            up, um = u.copy(), u.copy()
            up[i, j] += eps
            um[i, j] -= eps
            cp, _, _ = cost.cost_and_gradient(up)
            cm, _, _ = cost.cost_and_gradient(um)
            fd = (cp - cm) / (2 * eps)
            assert abs(fd - grad[i, j]) < 1e-4 * max(1.0, abs(fd))

    def test_qutrit_cost_gradient(self):
        device = GmonDevice(line_topology(2), levels=3)
        cs = build_control_set(device, [0])
        target = np.array([[0, 1], [1, 0]], dtype=complex)
        cost = GrapeCost(cs, target, dt_ns=0.25)
        rng = np.random.default_rng(5)
        u = rng.normal(size=(2, 8)) * 0.3
        _, grad, _ = cost.cost_and_gradient(u)
        eps = 1e-6
        i, j = 1, 3
        up, um = u.copy(), u.copy()
        up[i, j] += eps
        um[i, j] -= eps
        cp, _, _ = cost.cost_and_gradient(up)
        cm, _, _ = cost.cost_and_gradient(um)
        fd = (cp - cm) / (2 * eps)
        assert abs(fd - grad[i, j]) < 1e-5 * max(1.0, abs(fd))
