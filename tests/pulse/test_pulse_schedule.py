"""Unit tests for pulse schedules and programs."""

import numpy as np
import pytest

from repro.errors import PulseError
from repro.pulse.schedule import PulseProgram, PulseSchedule, lookup_schedule


def _schedule(qubits, steps, dt=0.5):
    return PulseSchedule(
        qubits=qubits, dt_ns=dt, controls=np.ones((2, steps)), channel_names=("a", "b")
    )


class TestPulseSchedule:
    def test_duration(self):
        assert _schedule((0,), 10, dt=0.5).duration_ns == 5.0

    def test_invalid_dt(self):
        with pytest.raises(PulseError):
            PulseSchedule(qubits=(0,), dt_ns=0.0, controls=np.ones((1, 4)))

    def test_invalid_shape(self):
        with pytest.raises(PulseError):
            PulseSchedule(qubits=(0,), dt_ns=0.1, controls=np.ones(4))

    def test_max_amplitude(self):
        sched = PulseSchedule(qubits=(0,), dt_ns=0.1, controls=np.array([[1.0, -3.0]]))
        assert sched.max_amplitude() == 3.0

    def test_resample_longer(self):
        sched = _schedule((0,), 4)
        longer = sched.resampled(8)
        assert longer.num_steps == 8
        assert np.allclose(longer.controls, 1.0)

    def test_resample_shorter_preserves_range(self):
        sched = PulseSchedule(
            qubits=(0,), dt_ns=0.1, controls=np.linspace(0, 1, 10)[None, :]
        )
        shorter = sched.resampled(5)
        assert shorter.num_steps == 5
        assert shorter.controls.min() >= 0.0 and shorter.controls.max() <= 1.0

    def test_resample_invalid(self):
        with pytest.raises(PulseError):
            _schedule((0,), 4).resampled(0)


class TestPulseProgram:
    def test_disjoint_blocks_overlap(self):
        program = PulseProgram.sequence([_schedule((0,), 10), _schedule((1,), 10)])
        assert program.duration_ns == 5.0  # parallel

    def test_shared_qubit_serializes(self):
        program = PulseProgram.sequence([_schedule((0,), 10), _schedule((0,), 10)])
        assert program.duration_ns == 10.0

    def test_partial_overlap(self):
        program = PulseProgram.sequence(
            [_schedule((0, 1), 10), _schedule((1, 2), 10), _schedule((0,), 2)]
        )
        # Block 2 waits for block 1; block 3 (qubit 0) starts right after
        # block 1 -> total = max(5+5, 5+1).
        assert program.duration_ns == 10.0

    def test_empty_program(self):
        assert PulseProgram.sequence([]).duration_ns == 0.0

    def test_len_and_schedules(self):
        program = PulseProgram.sequence([_schedule((0,), 4)])
        assert len(program) == 1
        assert len(program.schedules) == 1


class TestLookupSchedule:
    def test_duration_preserved(self):
        sched = lookup_schedule((0, 1), 3.8)
        assert np.isclose(sched.duration_ns, 3.8)

    def test_source_tag(self):
        assert lookup_schedule((0,), 1.0).source == "lookup"
