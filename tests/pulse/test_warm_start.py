"""Warm-started GRAPE: KAK seeds, neighbor seeding, and the best-of guard."""

import numpy as np
import pytest
import scipy.linalg

from repro.circuits.circuit import QuantumCircuit
from repro.core import PulseCache
from repro.core.compiler import BlockPulseCompiler, circuit_unitary
from repro.perf import get_perf_registry
from repro.pulse.device import GmonDevice
from repro.pulse.grape import GrapeHyperparameters, GrapeSettings
from repro.pulse.grape.seeding import (
    kak_seed_controls,
    kak_seed_schedule,
    warm_start_telemetry,
)
from repro.pulse.hamiltonian import build_control_set
from repro.pulse.schedule import PulseSchedule
from repro.linalg import haar_random_unitary
from repro.transpile.topology import line_topology

SETTINGS = GrapeSettings(dt_ns=0.5, target_fidelity=0.95)
HYPER = GrapeHyperparameters(
    learning_rate=0.05, decay_rate=0.002, max_iterations=120
)


@pytest.fixture
def pair_cs():
    return build_control_set(GmonDevice(line_topology(2)), [0, 1])


def _propagate(control_set, controls: np.ndarray, dt_ns: float) -> np.ndarray:
    """Exact piecewise-constant propagator of a control array."""
    dim = control_set.dim
    u = np.eye(dim, dtype=complex)
    for k in range(controls.shape[1]):
        h = control_set.drift.astype(complex).copy()
        for c in range(control_set.num_controls):
            h += controls[c, k] * control_set.operators[c]
        u = scipy.linalg.expm(-1j * dt_ns * h) @ u
    return u


def _seed_fidelity(control_set, target, num_steps, dt_ns) -> float:
    controls = kak_seed_controls(control_set, target, num_steps, dt_ns)
    assert controls is not None
    u = _propagate(control_set, controls, dt_ns)
    dim = control_set.dim
    return abs(np.trace(target.conj().T @ u)) / dim


class TestKAKSeed:
    @pytest.mark.parametrize("seed", range(4))
    def test_seed_lands_near_target(self, pair_cs, seed):
        """The analytic seed must replay to the target almost exactly —
        it is a decomposition, not a guess."""
        target = haar_random_unitary(4, seed=np.random.default_rng(seed))
        assert _seed_fidelity(pair_cs, target, 200, 0.5) > 0.999

    def test_seed_respects_amplitude_bounds(self, pair_cs):
        target = haar_random_unitary(4, seed=np.random.default_rng(9))
        controls = kak_seed_controls(pair_cs, target, 120, 0.5)
        for row, bound in zip(controls, pair_cs.max_amplitudes):
            assert np.abs(row).max() <= bound + 1e-9

    def test_seed_shape_matches_request(self, pair_cs):
        target = haar_random_unitary(4, seed=np.random.default_rng(10))
        controls = kak_seed_controls(pair_cs, target, 75, 0.5)
        assert controls.shape == (pair_cs.num_controls, 75)

    def test_schedule_wrapper_tags_source(self, pair_cs):
        target = haar_random_unitary(4, seed=np.random.default_rng(11))
        schedule = kak_seed_schedule(pair_cs, target, 80, 0.5)
        assert isinstance(schedule, PulseSchedule)
        assert schedule.source == "kak-seed"
        assert schedule.dt_ns == 0.5

    def test_single_qubit_has_no_kak_seed(self):
        cs = build_control_set(GmonDevice(line_topology(2)), [0])
        target = haar_random_unitary(2, seed=np.random.default_rng(12))
        assert kak_seed_controls(cs, target, 50, 0.5) is None


def _block(angle: float) -> QuantumCircuit:
    circuit = QuantumCircuit(2).h(0).cx(0, 1)
    circuit.rz(angle, 1)
    return circuit


def _compiler(**kwargs) -> BlockPulseCompiler:
    return BlockPulseCompiler(
        GmonDevice(line_topology(2)), SETTINGS, HYPER, PulseCache(), **kwargs
    )


class TestNeighborSeeding:
    def test_near_miss_block_seeds_from_cached_neighbor(self):
        compiler = _compiler()
        perf = get_perf_registry()
        compiler.compile_block(_block(0.3), (0, 1))
        before = perf.counter("grape.warm_start.neighbor_seeds")
        outcome = compiler.compile_block(_block(0.31), (0, 1))
        assert perf.counter("grape.warm_start.neighbor_seeds") == before + 1
        assert outcome.schedule is not None

    def test_neighbor_seed_cuts_iterations(self):
        """The acceptance bar: a neighbor-seeded compile converges in no
        more iterations than the same block cold."""
        warm = _compiler()
        warm.compile_block(_block(0.3), (0, 1))
        seeded = warm.compile_block(_block(0.32), (0, 1))

        cold = _compiler(warm_start=False)
        cold.compile_block(_block(0.3), (0, 1))
        unseeded = cold.compile_block(_block(0.32), (0, 1))

        assert seeded.iterations <= unseeded.iterations
        assert seeded.fidelity >= SETTINGS.target_fidelity

    def test_distance_threshold_respected(self):
        compiler = _compiler(warm_start_max_dist=1e-6)
        perf = get_perf_registry()
        compiler.compile_block(_block(0.3), (0, 1))
        before = perf.counter("grape.warm_start.neighbor_seeds")
        # 0.3 vs 1.2 rad is far outside a 1e-6 distance budget.
        compiler.compile_block(_block(1.2), (0, 1))
        assert perf.counter("grape.warm_start.neighbor_seeds") == before

    def test_disabled_compiler_never_looks_up(self):
        compiler = _compiler(warm_start=False)
        perf = get_perf_registry()
        before = perf.counter("grape.warm_start.lookups")
        compiler.compile_block(_block(0.3), (0, 1))
        compiler.compile_block(_block(0.31), (0, 1))
        assert perf.counter("grape.warm_start.lookups") == before


class TestBestOfGuard:
    def test_bad_seed_never_beats_cold(self, monkeypatch):
        """The asserted guard: force a terrible seed and the final pulse
        must still match what a cold compile achieves."""
        reference = _compiler(warm_start=False).compile_block(
            _block(0.3), (0, 1)
        )

        compiler = _compiler()

        def junk_seed(key, target, control_set, gate_ns):
            steps = 4  # absurdly short, content-free
            return PulseSchedule(
                qubits=control_set.qubits,
                dt_ns=SETTINGS.dt_ns,
                controls=np.zeros((control_set.num_controls, steps)),
                channel_names=tuple(ch.name for ch in control_set.channels),
                source="junk",
            )

        monkeypatch.setattr(compiler, "_find_seed", junk_seed)
        outcome = compiler.compile_block(_block(0.3), (0, 1))
        assert outcome.fidelity >= reference.fidelity - 1e-9
        assert outcome.duration_ns <= reference.duration_ns + 1e-9

    def test_rejection_is_counted(self, monkeypatch):
        perf = get_perf_registry()
        compiler = _compiler()

        def junk_seed(key, target, control_set, gate_ns):
            return PulseSchedule(
                qubits=control_set.qubits,
                dt_ns=SETTINGS.dt_ns,
                controls=np.zeros((control_set.num_controls, 1)),
                channel_names=tuple(ch.name for ch in control_set.channels),
                source="junk",
            )

        monkeypatch.setattr(compiler, "_find_seed", junk_seed)
        accepted = perf.counter("grape.warm_start.accepted")
        rejected = perf.counter("grape.warm_start.rejected")
        compiler.compile_block(_block(0.3), (0, 1))
        moved = (
            perf.counter("grape.warm_start.accepted")
            + perf.counter("grape.warm_start.rejected")
            - accepted
            - rejected
        )
        assert moved == 1


class TestTelemetry:
    def test_warm_start_telemetry_keys(self):
        data = warm_start_telemetry()
        assert set(data) == {
            "lookups",
            "neighbor_seeds",
            "kak_seeds",
            "no_seed",
            "accepted",
            "rejected",
            "seeded_iterations",
            "cold_rerun_iterations",
            "healed_entries",
        }

    def test_service_stats_include_warm_start(self):
        from repro.service import CompilationService

        with CompilationService() as service:
            assert "warm_start" in service.stats()

    def test_scheduler_report_counts_warm_starts(self):
        from repro.pipeline import SerialExecutor
        from repro.pipeline.scheduler import BlockScheduler
        from repro.pipeline.strategies import full_grape_pipeline

        device = GmonDevice(line_topology(2))
        compiler = BlockPulseCompiler(device, SETTINGS, HYPER, PulseCache())
        pipeline = full_grape_pipeline(compiler, 2)
        scheduler = BlockScheduler(compiler, SerialExecutor())
        _, report = pipeline.run_many([_block(0.3)], scheduler=scheduler)
        # A fresh 2-qubit block always warm-starts (KAK seed at minimum).
        assert report.warm_started_blocks == 1
        assert report.as_dict()["warm_started_blocks"] == 1


class TestExecutorInvariance:
    def test_warm_start_results_do_not_depend_on_executor(self):
        """Two near-miss blocks in one circuit: a serial map would let the
        second seed from the first without the freeze.  Pulses must be
        identical under serial and threaded executors."""
        from repro.pipeline import SerialExecutor, ThreadPoolBlockExecutor
        from repro.pipeline.strategies import full_grape_pipeline

        def compile_with(executor):
            device = GmonDevice(line_topology(4))
            compiler = BlockPulseCompiler(device, SETTINGS, HYPER, PulseCache())
            pipeline = full_grape_pipeline(compiler, 2, executor=executor)
            circuit = QuantumCircuit(4)
            circuit.h(0)
            circuit.cx(0, 1)
            circuit.rz(0.3, 1)
            circuit.h(2)
            circuit.cx(2, 3)
            circuit.rz(0.31, 3)
            return pipeline.run(circuit).program

        serial = compile_with(SerialExecutor())
        threaded = compile_with(ThreadPoolBlockExecutor(max_workers=2))
        assert serial.duration_ns == threaded.duration_ns
        for ours, theirs in zip(serial.schedules, threaded.schedules):
            assert np.array_equal(ours.controls, theirs.controls)
