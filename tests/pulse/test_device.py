"""Unit tests for the gmon device model."""

import math

import pytest

from repro.errors import DeviceError
from repro.pulse.device import (
    MAX_CHARGE_AMP,
    MAX_COUPLING_AMP,
    MAX_FLUX_AMP,
    ControlChannel,
    GmonDevice,
)
from repro.transpile.topology import Topology, line_topology


class TestAmplitudeBounds:
    def test_paper_appendix_a_values(self):
        # 2π × {0.1, 1.5, 0.05} GHz in rad/ns.
        assert math.isclose(MAX_CHARGE_AMP, 2 * math.pi * 0.1)
        assert math.isclose(MAX_FLUX_AMP, 2 * math.pi * 1.5)
        assert math.isclose(MAX_COUPLING_AMP, 2 * math.pi * 0.05)

    def test_flux_charge_asymmetry_is_15x(self):
        assert math.isclose(MAX_FLUX_AMP / MAX_CHARGE_AMP, 15.0)


class TestGmonDevice:
    def test_grid_for_covers_width(self):
        device = GmonDevice.grid_for(5)
        assert device.num_qubits >= 5

    def test_levels_validation(self):
        with pytest.raises(DeviceError):
            GmonDevice(line_topology(2), levels=4)

    def test_channels_single_qubit(self):
        device = GmonDevice(line_topology(2))
        channels = device.channels_for([0])
        kinds = [c.kind for c in channels]
        assert kinds == ["charge", "flux"]

    def test_channels_connected_pair(self):
        device = GmonDevice(line_topology(2))
        channels = device.channels_for([0, 1])
        kinds = sorted(c.kind for c in channels)
        assert kinds == ["charge", "charge", "coupling", "flux", "flux"]

    def test_channels_bridge_disconnected_block(self):
        # Qubits 0 and 2 are not adjacent on a 3-line; a bridging coupler is
        # synthesized so GRAPE always has an entangling resource.
        device = GmonDevice(line_topology(3))
        channels = device.channels_for([0, 2])
        couplers = [c for c in channels if c.kind == "coupling"]
        assert len(couplers) == 1
        assert couplers[0].qubits == (0, 2)

    def test_channels_out_of_range(self):
        device = GmonDevice(line_topology(2))
        with pytest.raises(DeviceError):
            device.channels_for([5])

    def test_channel_names(self):
        channel = ControlChannel("coupling", (1, 2), 0.3)
        assert channel.name == "coupling[1,2]"

    def test_channel_amplitudes_match_device(self):
        device = GmonDevice(line_topology(2))
        channels = device.channels_for([0, 1])
        by_kind = {c.kind: c.max_amplitude for c in channels}
        assert math.isclose(by_kind["charge"], device.max_charge)
        assert math.isclose(by_kind["flux"], device.max_flux)
        assert math.isclose(by_kind["coupling"], device.max_coupling)
