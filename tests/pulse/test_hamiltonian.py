"""Unit tests for block Hamiltonian construction."""

import numpy as np
import pytest

from repro.errors import DeviceError
from repro.linalg.operators import is_hermitian, pauli_matrix
from repro.pulse.device import GmonDevice
from repro.pulse.hamiltonian import (
    build_control_set,
    computational_indices,
    embed_target_unitary,
)
from repro.transpile.topology import line_topology


@pytest.fixture
def device():
    return GmonDevice(line_topology(3))


class TestControlSet:
    def test_operator_count(self, device):
        cs = build_control_set(device, [0, 1])
        # 2 charge + 2 flux + 1 coupler.
        assert cs.num_controls == 5
        assert cs.operators.shape == (5, 4, 4)

    def test_all_operators_hermitian(self, device):
        cs = build_control_set(device, [0, 1, 2])
        for op in cs.operators:
            assert is_hermitian(op)

    def test_charge_operator_is_x(self, device):
        cs = build_control_set(device, [0])
        charge = cs.operators[0]
        assert np.allclose(charge, pauli_matrix("X"))

    def test_flux_operator_is_number(self, device):
        cs = build_control_set(device, [0])
        flux = cs.operators[1]
        assert np.allclose(flux, np.diag([0, 1]))

    def test_coupling_operator_is_xx(self, device):
        cs = build_control_set(device, [0, 1])
        coupler = cs.operators[-1]
        assert np.allclose(coupler, pauli_matrix("XX"))

    def test_qubit_drift_is_zero(self, device):
        cs = build_control_set(device, [0, 1])
        assert np.allclose(cs.drift, 0.0)

    def test_qutrit_drift_has_anharmonicity(self):
        device = GmonDevice(line_topology(2), levels=3)
        cs = build_control_set(device, [0])
        # Anharmonicity term (α/2)·n(n-1): zero on |0>,|1>, α on |2>.
        assert np.isclose(cs.drift[2, 2].real, device.anharmonicity)
        assert np.isclose(cs.drift[0, 0], 0) and np.isclose(cs.drift[1, 1], 0)

    def test_qutrit_dimensions(self):
        device = GmonDevice(line_topology(2), levels=3)
        cs = build_control_set(device, [0, 1])
        assert cs.dim == 9

    def test_empty_block_rejected(self, device):
        with pytest.raises(DeviceError):
            build_control_set(device, [])

    def test_qubit_order_sorted(self, device):
        cs = build_control_set(device, [2, 0])
        assert cs.qubits == (0, 2)


class TestTargetEmbedding:
    def test_qubit_passthrough(self):
        target = pauli_matrix("X")
        assert np.allclose(embed_target_unitary(target, 1, 2), target)

    def test_qutrit_embedding_identity_on_leakage(self):
        target = pauli_matrix("X")
        embedded = embed_target_unitary(target, 1, 3)
        assert embedded.shape == (3, 3)
        assert np.isclose(embedded[2, 2], 1.0)
        assert np.allclose(embedded[:2, :2], target)

    def test_two_qubit_embedding_block(self):
        target = pauli_matrix("XZ")
        embedded = embed_target_unitary(target, 2, 3)
        idx = computational_indices(2, 3)
        assert np.allclose(embedded[np.ix_(idx, idx)], target)

    def test_computational_indices_qubit(self):
        assert list(computational_indices(2, 2)) == [0, 1, 2, 3]

    def test_computational_indices_qutrit(self):
        # Big-endian base-3 digits restricted to {0,1}: 00,01,10,11 -> 0,1,3,4.
        assert list(computational_indices(2, 3)) == [0, 1, 3, 4]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DeviceError):
            embed_target_unitary(np.eye(3), 1, 3)
