"""Tests for the eQASM-style pulse assembly layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit
from repro.circuits.parameters import Parameter
from repro.errors import PulseError
from repro.pulse.assembly import (
    MicroinstructionTable,
    ParametricRzOp,
    PulseAssembly,
    PulseOp,
    assembly_from_strict_plan,
)
from repro.pulse.schedule import PulseSchedule


def _schedule(qubits=(0,), steps=4, dt=0.25, value=0.1, source="grape"):
    controls = np.full((2, steps), value)
    return PulseSchedule(
        qubits=qubits, dt_ns=dt, controls=controls,
        channel_names=("c0", "c1"), source=source,
    )


class TestMicroinstructionTable:
    def test_define_and_get(self):
        table = MicroinstructionTable()
        table.define("x90", _schedule())
        assert "x90" in table
        assert table.get("x90").num_steps == 4

    def test_redefinition_rejected(self):
        table = MicroinstructionTable()
        table.define("u0", _schedule())
        with pytest.raises(PulseError):
            table.define("u0", _schedule())

    def test_undefined_lookup_rejected(self):
        with pytest.raises(PulseError):
            MicroinstructionTable().get("nope")

    def test_intern_deduplicates_identical_waveforms(self):
        table = MicroinstructionTable()
        a = table.intern(_schedule(value=0.1))
        b = table.intern(_schedule(value=0.1))
        c = table.intern(_schedule(value=0.2))
        assert a == b
        assert a != c
        assert len(table) == 2

    def test_intern_distinguishes_qubits(self):
        table = MicroinstructionTable()
        a = table.intern(_schedule(qubits=(0,)))
        b = table.intern(_schedule(qubits=(1,)))
        assert a != b


class TestParametricRzOp:
    def test_angle_linear_form(self):
        op = ParametricRzOp(
            qubits=(0,), gate_name="rz",
            coefficients=(("t0", 2.0), ("t1", -0.5)), offset=0.25,
        )
        assert op.angle({"t0": 1.0, "t1": 2.0}) == pytest.approx(2.0 - 1.0 + 0.25)

    def test_missing_parameter_rejected(self):
        op = ParametricRzOp((0,), "rz", (("t0", 1.0),), 0.0)
        with pytest.raises(PulseError):
            op.angle({})


class TestLinking:
    def _assembly(self):
        assembly = PulseAssembly(
            table=MicroinstructionTable(), parameter_names=("t0",)
        )
        assembly.append_pulse(_schedule(qubits=(0, 1), steps=8))
        assembly.append_rz((1,), "rz", (("t0", 1.0),))
        assembly.append_pulse(_schedule(qubits=(0, 1), steps=8))
        return assembly

    def test_link_produces_program(self):
        program = self._assembly().link({"t0": 0.7})
        assert len(program) == 3
        assert program.duration_ns > 0

    def test_link_with_sequence_values(self):
        assembly = self._assembly()
        assert assembly.link([0.7]).duration_ns == assembly.link({"t0": 0.7}).duration_ns

    def test_link_duration_is_angle_independent(self):
        """The lookup Rz pulse duration does not depend on the bound angle."""
        assembly = self._assembly()
        assert (
            assembly.link({"t0": 0.01}).duration_ns
            == assembly.link({"t0": 3.1}).duration_ns
        )

    def test_link_missing_value_rejected(self):
        with pytest.raises(PulseError):
            self._assembly().link({})

    def test_format_listing(self):
        text = self._assembly().format()
        assert ".table" in text and ".program" in text
        assert "pulse u0" in text
        assert "rz q1" in text


class TestSerialization:
    def _assembly(self):
        assembly = PulseAssembly(
            table=MicroinstructionTable(), parameter_names=("t0", "t1")
        )
        assembly.append_pulse(_schedule(qubits=(0, 1), steps=6, value=0.3))
        assembly.append_rz((0,), "rz", (("t0", -0.5),), offset=0.1)
        assembly.append_pulse(_schedule(qubits=(0, 1), steps=6, value=0.3))
        assembly.append_rz((1,), "rz", (("t1", 1.0),))
        return assembly

    def test_roundtrip_preserves_program(self):
        original = self._assembly()
        rebuilt = PulseAssembly.from_json(original.to_json())
        assert rebuilt.parameter_names == original.parameter_names
        assert len(rebuilt.ops) == len(original.ops)
        for a, b in zip(rebuilt.ops, original.ops):
            assert type(a) is type(b)

    def test_roundtrip_preserves_waveforms(self):
        original = self._assembly()
        rebuilt = PulseAssembly.from_json(original.to_json())
        for name in original.table.names:
            np.testing.assert_allclose(
                rebuilt.table.get(name).controls, original.table.get(name).controls
            )

    def test_roundtrip_link_equivalence(self):
        original = self._assembly()
        rebuilt = PulseAssembly.from_json(original.to_json())
        values = {"t0": 0.4, "t1": -1.2}
        assert rebuilt.link(values).duration_ns == pytest.approx(
            original.link(values).duration_ns
        )

    def test_bad_json_rejected(self):
        with pytest.raises(PulseError):
            PulseAssembly.from_json("{not json")

    def test_unknown_format_rejected(self):
        with pytest.raises(PulseError):
            PulseAssembly.from_json('{"format": "other/9"}')

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=12),
                st.floats(min_value=-0.6, max_value=0.6, allow_nan=False),
            ),
            min_size=1,
            max_size=5,
        )
    )
    def test_roundtrip_property(self, blocks):
        """Property: serialize → parse is lossless for any block sequence."""
        assembly = PulseAssembly(
            table=MicroinstructionTable(), parameter_names=("t0",)
        )
        for steps, value in blocks:
            assembly.append_pulse(_schedule(qubits=(0,), steps=steps, value=value))
            assembly.append_rz((0,), "rz", (("t0", 1.0),))
        rebuilt = PulseAssembly.from_json(assembly.to_json())
        assert rebuilt.link({"t0": 0.3}).duration_ns == pytest.approx(
            assembly.link({"t0": 0.3}).duration_ns
        )
        assert len(rebuilt.table) == len(assembly.table)


class TestStrictPlanExport:
    def test_export_matches_strict_compile(self):
        """assembly.link must reproduce the strict compiler's program."""
        from repro.core import StrictPartialCompiler
        from repro.pulse.grape import GrapeHyperparameters, GrapeSettings

        theta = Parameter("t0")
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.rz(theta, 1)
        circuit.cx(0, 1)
        compiler = StrictPartialCompiler.precompile(
            circuit,
            settings=GrapeSettings(dt_ns=0.5, target_fidelity=0.95),
            hyperparameters=GrapeHyperparameters(0.05, 0.002, max_iterations=150),
            max_block_width=2,
        )
        assembly = assembly_from_strict_plan(compiler)
        assert assembly.parameter_names == ("t0",)
        linked = assembly.link({"t0": 0.9})
        # Compare against the raw plan program (pre-fallback): same number
        # of schedules, same total duration.
        compiled = compiler.compile({theta: 0.9})
        assert len(linked) == compiled.blocks_compiled
        text = assembly.format()
        assert "rz" in text

    def test_export_roundtrips_through_json(self):
        from repro.core import StrictPartialCompiler
        from repro.pulse.grape import GrapeHyperparameters, GrapeSettings

        theta = Parameter("a")
        circuit = QuantumCircuit(1)
        circuit.h(0)
        circuit.rz(theta * 0.5, 0)
        circuit.h(0)
        compiler = StrictPartialCompiler.precompile(
            circuit,
            settings=GrapeSettings(dt_ns=0.5, target_fidelity=0.95),
            hyperparameters=GrapeHyperparameters(0.05, 0.002, max_iterations=150),
            max_block_width=1,
        )
        assembly = assembly_from_strict_plan(compiler)
        rebuilt = PulseAssembly.from_json(assembly.to_json())
        assert rebuilt.link({"a": 1.0}).duration_ns == pytest.approx(
            assembly.link({"a": 1.0}).duration_ns
        )
