"""Tests for end-to-end pulse verification."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.errors import PulseError
from repro.pulse.device import GmonDevice
from repro.pulse.grape import GrapeSettings, optimize_pulse
from repro.pulse.hamiltonian import build_control_set
from repro.pulse.schedule import PulseSchedule
from repro.pulse.verify import propagate_schedule, verify_block
from repro.sim.unitary import circuit_unitary
from repro.transpile.topology import line_topology


@pytest.fixture
def device():
    return GmonDevice(line_topology(2))


class TestPropagation:
    def test_zero_controls_give_identity(self, device):
        sched = PulseSchedule(qubits=(0,), dt_ns=0.2, controls=np.zeros((2, 10)))
        assert np.allclose(propagate_schedule(device, sched), np.eye(2))

    def test_wrong_channel_count_rejected(self, device):
        sched = PulseSchedule(qubits=(0, 1), dt_ns=0.2, controls=np.zeros((2, 10)))
        with pytest.raises(PulseError):
            propagate_schedule(device, sched)

    def test_constant_flux_gives_phase(self, device):
        # Flux drive at amplitude Ω for time T applies Rz-like phase ΩT.
        omega, steps, dt = 1.0, 10, 0.2
        controls = np.zeros((2, steps))
        controls[1, :] = omega
        sched = PulseSchedule(qubits=(0,), dt_ns=dt, controls=controls)
        u = propagate_schedule(device, sched)
        expected = np.diag([1.0, np.exp(-1j * omega * steps * dt)])
        assert np.allclose(u, expected, atol=1e-9)


class TestVerifyBlock:
    def test_grape_pulse_verifies_against_circuit(self, device, fast_settings):
        qc = QuantumCircuit(1).h(0)
        control_set = build_control_set(device, [0])
        result = optimize_pulse(
            control_set, circuit_unitary(qc), num_steps=10, settings=fast_settings
        )
        assert result.converged
        check = verify_block(device, result.schedule, qc)
        assert check.fidelity >= fast_settings.target_fidelity - 1e-9

    def test_wrong_circuit_fails_verification(self, device, fast_settings):
        h_circuit = QuantumCircuit(1).h(0)
        x_circuit = QuantumCircuit(1).x(0)
        control_set = build_control_set(device, [0])
        result = optimize_pulse(
            control_set, circuit_unitary(h_circuit), num_steps=10,
            settings=fast_settings,
        )
        check = verify_block(device, result.schedule, x_circuit)
        assert check.fidelity < 0.9

    def test_two_qubit_block(self, device, fast_settings, fast_hyper):
        qc = QuantumCircuit(2).cx(0, 1)
        control_set = build_control_set(device, [0, 1])
        result = optimize_pulse(
            control_set, circuit_unitary(qc), num_steps=20,
            hyperparameters=fast_hyper, settings=fast_settings,
        )
        check = verify_block(device, result.schedule, qc)
        assert check.fidelity == pytest.approx(result.fidelity, abs=1e-9)

    def test_qutrit_projection(self, fast_settings):
        device3 = GmonDevice(line_topology(2), levels=3)
        qc = QuantumCircuit(1).x(0)
        control_set = build_control_set(device3, [0])
        result = optimize_pulse(
            control_set, circuit_unitary(qc), num_steps=14, settings=fast_settings
        )
        check = verify_block(device3, result.schedule, qc)
        assert check.fidelity == pytest.approx(result.fidelity, abs=1e-6)
