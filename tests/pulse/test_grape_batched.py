"""Cross-block batched GRAPE: bit-exact equivalence with the serial path.

The batched kernel's whole contract is that stacking N same-shape blocks
changes *nothing* about the numbers — every test here compares against
the per-block serial functions and asserts agreement at ≤1e-10 (observed
exact on this BLAS).
"""

import numpy as np
import pytest

from repro.errors import GrapeError
from repro.perf import get_perf_registry
from repro.pulse.device import GmonDevice
from repro.pulse.grape.batched import (
    BatchedGrapeCost,
    batch_telemetry,
    minimum_time_pulse_batch,
    optimize_pulse_batch,
)
from repro.pulse.grape.cost import GrapeCost
from repro.pulse.grape.engine import (
    GrapeHyperparameters,
    GrapeSettings,
    optimize_pulse,
)
from repro.pulse.grape.time_search import minimum_time_pulse
from repro.pulse.hamiltonian import build_control_set
from repro.transpile.topology import line_topology

X = np.array([[0, 1], [1, 0]], dtype=complex)
H = np.array([[1, 1], [1, -1]], dtype=complex) / np.sqrt(2)
RZ90 = np.diag([np.exp(-0.25j * np.pi), np.exp(0.25j * np.pi)])

HYPER = GrapeHyperparameters(learning_rate=0.05, decay_rate=0.002, max_iterations=120)


@pytest.fixture
def single_qubit_cs():
    return build_control_set(GmonDevice(line_topology(2)), [0])


class TestBatchedCostMatchesSerial:
    def test_stacked_cost_and_gradient_identical(self, single_qubit_cs, fast_settings):
        """One batched call == N serial calls, same controls in, ≤1e-10 out."""
        dt = fast_settings.resolved_dt()
        targets = [X, H, RZ90]
        costs = [
            GrapeCost(single_qubit_cs, t, dt, fast_settings.regularization)
            for t in targets
        ]
        rng = np.random.default_rng(5)
        stack = rng.normal(
            scale=0.01, size=(3, single_qubit_cs.num_controls, 12)
        )
        batched = BatchedGrapeCost(costs)
        b_costs, b_grads, b_fids = batched.cost_and_gradient(stack)
        for b, cost in enumerate(costs):
            s_cost, s_grad, s_fid = cost.cost_and_gradient(stack[b])
            assert abs(b_costs[b] - s_cost) <= 1e-10
            assert abs(b_fids[b] - s_fid) <= 1e-10
            assert np.abs(b_grads[b] - s_grad).max() <= 1e-10

    def test_indices_select_a_sub_batch(self, single_qubit_cs, fast_settings):
        dt = fast_settings.resolved_dt()
        costs = [
            GrapeCost(single_qubit_cs, t, dt, fast_settings.regularization)
            for t in (X, H, RZ90)
        ]
        batched = BatchedGrapeCost(costs)
        rng = np.random.default_rng(9)
        stack = rng.normal(scale=0.01, size=(3, single_qubit_cs.num_controls, 10))
        full = batched.cost_and_gradient(stack)
        sub = batched.cost_and_gradient(stack[[0, 2]], indices=[0, 2])
        assert np.array_equal(sub[0], full[0][[0, 2]])
        assert np.array_equal(sub[1], full[1][[0, 2]])
        assert np.array_equal(sub[2], full[2][[0, 2]])

    def test_mismatched_dim_rejected(self, fast_settings):
        device = GmonDevice(line_topology(3))
        dt = fast_settings.resolved_dt()
        one_q = build_control_set(device, [0])
        two_q = build_control_set(device, (0, 1))
        with pytest.raises(GrapeError):
            BatchedGrapeCost(
                [
                    GrapeCost(one_q, X, dt, fast_settings.regularization),
                    GrapeCost(
                        two_q, np.eye(4, dtype=complex), dt,
                        fast_settings.regularization,
                    ),
                ]
            )

    def test_empty_batch_rejected(self):
        with pytest.raises(GrapeError):
            BatchedGrapeCost([])


class TestOptimizePulseBatch:
    def test_single_block_degenerates_to_serial(self, single_qubit_cs, fast_settings):
        serial = optimize_pulse(
            single_qubit_cs, X, num_steps=14, hyperparameters=HYPER,
            settings=fast_settings,
        )
        [batched] = optimize_pulse_batch(
            [single_qubit_cs], [X], num_steps=14, hyperparameters=HYPER,
            settings=fast_settings,
        )
        assert batched.converged == serial.converged
        assert batched.iterations == serial.iterations
        assert abs(batched.fidelity - serial.fidelity) <= 1e-10
        assert np.array_equal(batched.schedule.controls, serial.schedule.controls)

    def test_mixed_targets_with_freeze_out(self, single_qubit_cs, fast_settings):
        """Four targets converging at different iterations: blocks freeze
        out of the stack one by one, and each still reproduces its serial
        run exactly — same iteration count, same history, same controls."""
        targets = [X, H, RZ90, X @ H]
        serial = [
            optimize_pulse(
                single_qubit_cs, t, num_steps=14, hyperparameters=HYPER,
                settings=fast_settings,
            )
            for t in targets
        ]
        batched = optimize_pulse_batch(
            [single_qubit_cs] * 4, targets, num_steps=14,
            hyperparameters=HYPER, settings=fast_settings,
        )
        # The freeze-out machinery must actually engage: convergence
        # iterations differ across these targets.
        assert len({r.iterations for r in serial}) > 1
        for s, b in zip(serial, batched):
            assert b.converged == s.converged
            assert b.iterations == s.iterations
            assert abs(b.fidelity - s.fidelity) <= 1e-10
            assert b.fidelity_history == pytest.approx(
                s.fidelity_history, abs=1e-10
            )
            assert np.array_equal(b.schedule.controls, s.schedule.controls)
            assert b.schedule.qubits == s.schedule.qubits
            assert b.schedule.channel_names == s.schedule.channel_names

    def test_warm_starts_respected(self, single_qubit_cs, fast_settings):
        warm = np.full((single_qubit_cs.num_controls, 10), 0.01)
        serial = optimize_pulse(
            single_qubit_cs, H, num_steps=10, hyperparameters=HYPER,
            settings=fast_settings, initial=warm,
        )
        [batched] = optimize_pulse_batch(
            [single_qubit_cs], [H], num_steps=10, hyperparameters=HYPER,
            settings=fast_settings, initials=[warm],
        )
        assert batched.iterations == serial.iterations
        assert np.array_equal(batched.schedule.controls, serial.schedule.controls)

    def test_empty_batch(self, fast_settings):
        assert optimize_pulse_batch([], [], num_steps=10, settings=fast_settings) == []

    def test_shape_validation(self, single_qubit_cs, fast_settings):
        with pytest.raises(GrapeError):
            optimize_pulse_batch(
                [single_qubit_cs], [X, H], num_steps=10, settings=fast_settings
            )
        with pytest.raises(GrapeError):
            optimize_pulse_batch(
                [single_qubit_cs], [X], num_steps=0, settings=fast_settings
            )
        with pytest.raises(GrapeError):
            optimize_pulse_batch(
                [single_qubit_cs], [X], num_steps=10, settings=fast_settings,
                initials=[np.zeros((2, 3)), None],
            )


class TestMinimumTimeBatch:
    def test_batched_search_replays_serial_decisions(
        self, single_qubit_cs, fast_settings
    ):
        """Every block's probe sequence, durations, and iteration totals
        must match the sequential per-block search exactly."""
        targets = [X, H, RZ90, X @ H]
        ubs = [5.0, 3.0, 2.0, 5.0]
        serial = [
            minimum_time_pulse(
                single_qubit_cs, t, upper_bound_ns=ub, hyperparameters=HYPER,
                settings=fast_settings, precision_ns=0.25,
            )
            for t, ub in zip(targets, ubs)
        ]
        batched = minimum_time_pulse_batch(
            [single_qubit_cs] * 4, targets, ubs, hyperparameters=HYPER,
            settings=fast_settings, precision_ns=0.25,
        )
        for s, b in zip(serial, batched):
            assert b.converged == s.converged
            assert b.duration_ns == pytest.approx(s.duration_ns, abs=1e-12)
            assert b.grape_calls == s.grape_calls
            assert b.total_iterations == s.total_iterations
            assert abs(b.fidelity - s.fidelity) <= 1e-10
            assert len(b.probes) == len(s.probes)
            for bp, sp in zip(b.probes, s.probes):
                assert bp[0] == pytest.approx(sp[0], abs=1e-12)
                assert abs(bp[1] - sp[1]) <= 1e-10
                assert bp[2] == sp[2]
            assert np.array_equal(b.schedule.controls, s.schedule.controls)

    def test_length_mismatch_rejected(self, single_qubit_cs, fast_settings):
        with pytest.raises(GrapeError):
            minimum_time_pulse_batch(
                [single_qubit_cs], [X], [2.0, 3.0], settings=fast_settings
            )

    def test_max_group_one_forces_singleton_path(
        self, single_qubit_cs, fast_settings
    ):
        """Capping groups at one block routes every probe through the
        per-block kernel — results unchanged, no stacked groups recorded."""
        perf = get_perf_registry()
        groups_before = perf.counter("grape.batch.groups")
        singles_before = perf.counter("grape.batch.singleton_probes")
        capped = minimum_time_pulse_batch(
            [single_qubit_cs] * 2, [X, H], [4.0, 4.0], hyperparameters=HYPER,
            settings=fast_settings, precision_ns=0.25, max_group=1,
        )
        assert perf.counter("grape.batch.groups") == groups_before
        assert perf.counter("grape.batch.singleton_probes") > singles_before
        serial = [
            minimum_time_pulse(
                single_qubit_cs, t, upper_bound_ns=4.0, hyperparameters=HYPER,
                settings=fast_settings, precision_ns=0.25,
            )
            for t in (X, H)
        ]
        for s, b in zip(serial, capped):
            assert b.duration_ns == pytest.approx(s.duration_ns, abs=1e-12)
            assert b.total_iterations == s.total_iterations


class TestCompilerBatchedBlocks:
    def _compiler(self):
        from repro.core import PulseCache
        from repro.core.compiler import BlockPulseCompiler

        # Warm start off: fresh 2-qubit blocks would all get KAK seeds and
        # (deliberately) leave the batch, starving the path under test.
        return BlockPulseCompiler(
            GmonDevice(line_topology(4)),
            GrapeSettings(dt_ns=0.5, target_fidelity=0.95),
            HYPER,
            PulseCache(),
            warm_start=False,
        )

    def _blocks(self):
        from repro.circuits.circuit import QuantumCircuit

        pair_a = QuantumCircuit(2).h(0).cx(0, 1)
        pair_b = QuantumCircuit(2).h(0).cx(0, 1)
        pair_b.rz(0.3, 1)
        single = QuantumCircuit(1).h(0)
        return [(pair_a, (0, 1)), (pair_b, (2, 3)), (single, (0,))]

    def test_mixed_shape_groups_match_per_block_path(self):
        """Two dim-9 blocks batch as one group; the dim-3 block stays a
        singleton; every outcome equals the serial compile_block result."""
        blocks = self._blocks()
        outcomes, stats = self._compiler().compile_blocks_batched(blocks)
        assert stats == {"batched_groups": 1, "batched_blocks": 2}
        serial_compiler = self._compiler()
        for (subcircuit, qubits), outcome in zip(blocks, outcomes):
            reference = serial_compiler.compile_block(subcircuit, qubits)
            assert outcome.duration_ns == pytest.approx(
                reference.duration_ns, abs=1e-12
            )
            assert outcome.fidelity == pytest.approx(
                reference.fidelity, abs=1e-10
            )
            assert np.array_equal(
                outcome.schedule.controls, reference.schedule.controls
            )

    def test_batched_results_land_in_the_cache(self):
        compiler = self._compiler()
        compiler.compile_blocks_batched(self._blocks())
        # A second pass over the same blocks must be all cache hits.
        outcomes, stats = compiler.compile_blocks_batched(self._blocks())
        assert stats == {"batched_groups": 0, "batched_blocks": 0}
        assert all(o.schedule is not None for o in outcomes)


class TestBatchTelemetry:
    def test_counters_accumulate(self, single_qubit_cs, fast_settings):
        before = batch_telemetry()
        minimum_time_pulse_batch(
            [single_qubit_cs] * 3, [X, H, RZ90], [3.0, 3.0, 3.0],
            hyperparameters=HYPER, settings=fast_settings, precision_ns=0.25,
        )
        after = batch_telemetry()
        assert after["groups"] > before["groups"]
        assert after["batched_blocks"] >= before["batched_blocks"] + 3
        assert after["stacked_calls"] > before["stacked_calls"]
        assert after["blocks_per_group"] is not None
        assert after["gemm_matrices"] is not None
        assert set(after) == {
            "groups",
            "batched_blocks",
            "singleton_probes",
            "stacked_calls",
            "blocks_per_group",
            "gemm_matrices",
        }
