"""Tests for the L-BFGS control-field optimizer."""

import numpy as np
import pytest

from repro.errors import GrapeError
from repro.pulse.grape import (
    GrapeHyperparameters,
    GrapeSettings,
    LBFGSOptimizer,
    optimize_pulse,
)
from repro.pulse.device import GmonDevice
from repro.pulse.hamiltonian import build_control_set
from repro.transpile import line_topology


class TestLBFGSOnQuadratic:
    """Sanity on a convex quadratic: f(x) = ½ xᵀ A x - bᵀ x."""

    def _minimize(self, optimizer, a, b, x0, iterations=200):
        x = x0.copy()
        for _ in range(iterations):
            gradient = a @ x - b
            x = optimizer.step(x, gradient)
        return x

    def test_converges_to_minimum(self):
        rng = np.random.default_rng(0)
        m = rng.normal(size=(6, 6))
        a = m @ m.T + 0.5 * np.eye(6)
        b = rng.normal(size=6)
        solution = np.linalg.solve(a, b)
        opt = LBFGSOptimizer(learning_rate=0.5)
        x = self._minimize(opt, a, b, np.zeros(6))
        assert np.linalg.norm(x - solution) < 1e-3

    def test_beats_plain_gradient_descent(self):
        """On an ill-conditioned quadratic the curvature model must help."""
        a = np.diag([100.0, 1.0, 0.01])
        b = np.array([1.0, 1.0, 1.0])
        solution = np.linalg.solve(a, b)

        lbfgs = LBFGSOptimizer(learning_rate=0.5)
        x_lbfgs = self._minimize(lbfgs, a, b, np.zeros(3), iterations=150)

        x_gd = np.zeros(3)
        for _ in range(150):
            x_gd = x_gd - 0.009 * (a @ x_gd - b)  # near-largest stable lr

        assert np.linalg.norm(x_lbfgs - solution) < np.linalg.norm(x_gd - solution)

    def test_reset_clears_state(self):
        opt = LBFGSOptimizer(learning_rate=0.1)
        x = np.ones(4)
        for _ in range(3):
            x = opt.step(x, x.copy())
        assert len(opt._pairs) > 0
        opt.reset()
        assert len(opt._pairs) == 0
        assert opt._prev_params is None

    def test_skips_non_curvature_pairs(self):
        """Pairs violating s·y > 0 must not enter the memory."""
        opt = LBFGSOptimizer(learning_rate=0.1)
        x = np.array([1.0, 0.0])
        x = opt.step(x, np.array([1.0, 0.0]))
        # Feed a gradient that moved the opposite way (negative curvature).
        opt.step(x, np.array([5.0, 0.0]))
        for s, y, rho in opt._pairs:
            assert s @ y > 0

    def test_memory_is_bounded(self):
        opt = LBFGSOptimizer(learning_rate=0.05, memory=3)
        x = np.ones(5)
        rng = np.random.default_rng(1)
        for _ in range(20):
            x = opt.step(x, x + 0.1 * rng.normal(size=5))
        assert len(opt._pairs) <= 3

    def test_per_channel_scale_broadcast(self):
        opt = LBFGSOptimizer(learning_rate=0.1)
        params = np.zeros((2, 4))
        gradient = np.ones((2, 4))
        scale = np.array([1.0, 10.0])
        out = opt.step(params, gradient, scale=scale)
        # The recursion runs in bound-normalized space: the gradient picks
        # up one factor of scale (chain rule) and the returned step another,
        # so row 1 moves 100x row 0 on the first (diagonal-scaling) step.
        assert np.allclose(out[1], 100 * out[0])
        # Scale-invariance of the normalized space: scaling params and
        # bounds together is a no-op up to the output rescale.
        opt2 = LBFGSOptimizer(learning_rate=0.1)
        uniform = opt2.step(np.zeros((2, 4)), np.ones((2, 4)) / 3.0, scale=3.0)
        opt3 = LBFGSOptimizer(learning_rate=0.1)
        reference = opt3.step(np.zeros((2, 4)), np.ones((2, 4)))
        assert np.allclose(uniform, 3.0 * reference)


class TestLBFGSInGrape:
    @pytest.fixture(scope="class")
    def control_set(self):
        device = GmonDevice(line_topology(1))
        return build_control_set(device, [0])

    def _x_gate(self):
        return np.array([[0, 1], [1, 0]], dtype=complex)

    def test_lbfgs_reaches_target_fidelity(self, control_set):
        # L-BFGS is more learning-rate sensitive than ADAM; 0.2 is in
        # its stable band for this control problem (see the hyperopt
        # strategies for how flexible compilation finds such values).
        hyper = GrapeHyperparameters(
            learning_rate=0.2, decay_rate=0.001, max_iterations=300,
            optimizer="lbfgs",
        )
        settings = GrapeSettings(dt_ns=0.25, target_fidelity=0.99)
        result = optimize_pulse(control_set, self._x_gate(), 16, hyper, settings)
        assert result.converged
        assert result.fidelity >= 0.99

    def test_lbfgs_comparable_to_adam(self, control_set):
        settings = GrapeSettings(dt_ns=0.25, target_fidelity=0.99)
        results = {}
        for name, lr in (("adam", 0.05), ("lbfgs", 0.2)):
            hyper = GrapeHyperparameters(
                learning_rate=lr, decay_rate=0.001, max_iterations=400,
                optimizer=name,
            )
            results[name] = optimize_pulse(
                control_set, self._x_gate(), 16, hyper, settings
            )
        assert results["lbfgs"].converged and results["adam"].converged
        # Neither optimizer should need an order of magnitude more steps.
        assert results["lbfgs"].iterations <= 10 * results["adam"].iterations

    def test_unknown_optimizer_rejected(self):
        with pytest.raises(GrapeError):
            GrapeHyperparameters(optimizer="sgd")

    def test_make_optimizer_dispatch(self):
        adam = GrapeHyperparameters(optimizer="adam").make_optimizer()
        lbfgs = GrapeHyperparameters(optimizer="lbfgs").make_optimizer()
        assert type(adam).__name__ == "AdamOptimizer"
        assert isinstance(lbfgs, LBFGSOptimizer)
