"""Tests for the GRAPE optimizer loop and the minimum-time search."""

import numpy as np
import pytest

from repro.errors import GrapeError
from repro.pulse.device import GmonDevice
from repro.pulse.grape.cost import RegularizationSettings
from repro.pulse.grape.engine import GrapeHyperparameters, GrapeSettings, optimize_pulse
from repro.pulse.grape.time_search import minimum_time_pulse
from repro.pulse.hamiltonian import build_control_set
from repro.transpile.topology import line_topology

X = np.array([[0, 1], [1, 0]], dtype=complex)
H = np.array([[1, 1], [1, -1]], dtype=complex) / np.sqrt(2)
RZ90 = np.diag([np.exp(-0.25j * np.pi), np.exp(0.25j * np.pi)])


@pytest.fixture
def single_qubit_cs():
    return build_control_set(GmonDevice(line_topology(2)), [0])


class TestOptimizePulse:
    def test_x_gate_converges(self, single_qubit_cs, fast_settings):
        result = optimize_pulse(single_qubit_cs, X, num_steps=14, settings=fast_settings)
        assert result.converged
        assert result.fidelity >= fast_settings.target_fidelity

    def test_h_gate_converges(self, single_qubit_cs, fast_settings):
        result = optimize_pulse(single_qubit_cs, H, num_steps=10, settings=fast_settings)
        assert result.converged

    def test_rz_converges_fast(self, single_qubit_cs, fast_settings):
        result = optimize_pulse(
            single_qubit_cs, RZ90, num_steps=3, settings=fast_settings
        )
        assert result.converged

    def test_schedule_respects_amplitude_bounds(self, single_qubit_cs, fast_settings):
        result = optimize_pulse(single_qubit_cs, X, num_steps=14, settings=fast_settings)
        bounds = single_qubit_cs.max_amplitudes
        for row, bound in zip(result.schedule.controls, bounds):
            assert np.abs(row).max() <= bound + 1e-9

    def test_infeasible_time_does_not_converge(self, single_qubit_cs, fast_settings):
        # X needs ~2.5 ns; 2 steps of 0.25 ns cannot reach it.
        result = optimize_pulse(single_qubit_cs, X, num_steps=2, settings=fast_settings)
        assert not result.converged
        assert result.fidelity < fast_settings.target_fidelity

    def test_warm_start_shape_validation(self, single_qubit_cs, fast_settings):
        with pytest.raises(GrapeError):
            optimize_pulse(
                single_qubit_cs,
                X,
                num_steps=10,
                settings=fast_settings,
                initial=np.zeros((2, 5)),
            )

    def test_non_finite_initial_rejected(self, single_qubit_cs, fast_settings):
        bad = np.zeros((single_qubit_cs.num_controls, 10))
        bad[0, 3] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            optimize_pulse(
                single_qubit_cs, X, num_steps=10,
                settings=fast_settings, initial=bad,
            )
        bad[0, 3] = np.inf
        with pytest.raises(ValueError, match="non-finite"):
            optimize_pulse(
                single_qubit_cs, X, num_steps=10,
                settings=fast_settings, initial=bad,
            )

    def test_overdriven_initial_rejected(self, single_qubit_cs, fast_settings):
        """A wrongly-scaled warm start (amps past the channel bounds) must
        fail loudly, not silently clip into a different pulse."""
        bad = np.zeros((single_qubit_cs.num_controls, 10))
        bad[0, :] = single_qubit_cs.max_amplitudes[0] * 10.0
        with pytest.raises(ValueError, match="exceed channel amplitude bounds"):
            optimize_pulse(
                single_qubit_cs, X, num_steps=10,
                settings=fast_settings, initial=bad,
            )

    def test_initial_at_the_bound_is_accepted(self, single_qubit_cs, fast_settings):
        at_bound = np.full(
            (single_qubit_cs.num_controls, 14), 0.0
        )
        at_bound[0, :] = single_qubit_cs.max_amplitudes[0]
        result = optimize_pulse(
            single_qubit_cs, X, num_steps=14,
            settings=fast_settings, initial=at_bound,
        )
        assert result.iterations >= 1

    def test_zero_steps_rejected(self, single_qubit_cs):
        with pytest.raises(GrapeError):
            optimize_pulse(single_qubit_cs, X, num_steps=0)

    def test_history_recorded(self, single_qubit_cs, fast_settings):
        result = optimize_pulse(single_qubit_cs, X, num_steps=14, settings=fast_settings)
        assert len(result.fidelity_history) == result.iterations

    def test_envelope_mode_zeroes_edges(self, single_qubit_cs):
        settings = GrapeSettings(
            dt_ns=0.25,
            target_fidelity=0.95,
            regularization=RegularizationSettings(enforce_envelope=True),
        )
        result = optimize_pulse(single_qubit_cs, X, num_steps=20, settings=settings)
        assert abs(result.schedule.controls[0, 0]) < 1e-6
        assert abs(result.schedule.controls[0, -1]) < 1e-6

    def test_two_qubit_cx(self, fast_settings, fast_hyper):
        cs = build_control_set(GmonDevice(line_topology(2)), [0, 1])
        cx = np.array(
            [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
        )
        result = optimize_pulse(
            cs, cx, num_steps=18, hyperparameters=fast_hyper, settings=fast_settings
        )
        assert result.fidelity > 0.9  # convergence direction, fast settings


class TestMinimumTime:
    def test_x_minimum_near_analytic(self, single_qubit_cs, fast_settings):
        # Analytic minimum: θ/(2·Ω_max) = π/(2·2π·0.1) = 2.5 ns.
        result = minimum_time_pulse(
            single_qubit_cs, X, upper_bound_ns=5.0, settings=fast_settings,
            precision_ns=0.25,
        )
        assert result.converged
        assert 2.2 <= result.duration_ns <= 3.5

    def test_rz_much_faster_than_x(self, single_qubit_cs, fast_settings):
        rz = minimum_time_pulse(
            single_qubit_cs, RZ90, upper_bound_ns=2.0, settings=fast_settings,
            precision_ns=0.25,
        )
        x = minimum_time_pulse(
            single_qubit_cs, X, upper_bound_ns=5.0, settings=fast_settings,
            precision_ns=0.25,
        )
        # The 15x flux/charge asymmetry: Z rotations are far faster.
        assert rz.duration_ns < x.duration_ns

    def test_doubles_infeasible_upper_bound(self, single_qubit_cs, fast_settings):
        result = minimum_time_pulse(
            single_qubit_cs, X, upper_bound_ns=1.0, settings=fast_settings,
            precision_ns=0.25,
        )
        assert result.converged
        assert result.duration_ns >= 2.0

    def test_iterations_accumulated(self, single_qubit_cs, fast_settings):
        result = minimum_time_pulse(
            single_qubit_cs, X, upper_bound_ns=5.0, settings=fast_settings,
            precision_ns=0.25,
        )
        assert result.total_iterations > 0
        assert result.grape_calls >= 2
        assert len(result.probes) == result.grape_calls

    def test_invalid_upper_bound(self, single_qubit_cs):
        with pytest.raises(GrapeError):
            minimum_time_pulse(single_qubit_cs, X, upper_bound_ns=0.0)

    def test_result_fidelity_meets_target(self, single_qubit_cs, fast_settings):
        result = minimum_time_pulse(
            single_qubit_cs, H, upper_bound_ns=3.0, settings=fast_settings,
            precision_ns=0.25,
        )
        assert result.fidelity >= fast_settings.target_fidelity


class TestParallelFeasibilityProbes:
    """The feasibility doublings parallelize; the binary search stays serial."""

    def test_feasible_first_probe_identical_to_sequential(
        self, single_qubit_cs, fast_settings
    ):
        """When the initial bound converges no doubling happens at all, so
        the speculative path must be bit-identical to the sequential one."""
        sequential = minimum_time_pulse(
            single_qubit_cs, X, upper_bound_ns=5.0, settings=fast_settings,
            precision_ns=0.25,
        )
        speculative = minimum_time_pulse(
            single_qubit_cs, X, upper_bound_ns=5.0, settings=fast_settings,
            precision_ns=0.25, probe_executor="thread",
        )
        assert speculative.duration_ns == sequential.duration_ns
        assert speculative.grape_calls == sequential.grape_calls
        assert speculative.total_iterations == sequential.total_iterations

    def test_infeasible_bound_converges_through_parallel_doublings(
        self, single_qubit_cs, fast_settings
    ):
        result = minimum_time_pulse(
            single_qubit_cs, X, upper_bound_ns=1.0, settings=fast_settings,
            precision_ns=0.25, probe_executor="thread",
        )
        assert result.converged
        assert result.duration_ns >= 2.0
        # The speculative phase probes every doubling: 1.0 and 0.5 ns fail
        # sequentially, then 2/4/8 ns all run.
        probe_durations = [round(d, 2) for d, _, _ in result.probes[:5]]
        assert probe_durations == [1.0, 0.5, 2.0, 4.0, 8.0]
        assert result.total_iterations > 0

    def test_serial_executor_spec_also_speculates(
        self, single_qubit_cs, fast_settings
    ):
        """Any executor spec opts into speculation; only None stays lazy."""
        result = minimum_time_pulse(
            single_qubit_cs, X, upper_bound_ns=1.0, settings=fast_settings,
            precision_ns=0.25, probe_executor="serial",
        )
        assert result.converged
        assert [round(d, 2) for d, _, _ in result.probes[:5]] == [
            1.0, 0.5, 2.0, 4.0, 8.0,
        ]

    def test_flexible_precompile_accepts_probe_executor(self):
        """End to end: the probe executor threads through the tuning handler."""
        from repro.circuits.circuit import QuantumCircuit
        from repro.circuits.parameters import Parameter
        from repro.core import FlexiblePartialCompiler

        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.rz(Parameter("t0"), 0)
        circuit.cx(0, 1)
        compiler = FlexiblePartialCompiler.precompile(
            circuit,
            settings=GrapeSettings(dt_ns=0.5, target_fidelity=0.9),
            hyperparameters=GrapeHyperparameters(0.05, 0.002, max_iterations=60),
            max_block_width=2,
            tuning_samples=1,
            probe_executor="thread",
        )
        pulse = compiler.compile([0.4])
        assert pulse.program is not None
