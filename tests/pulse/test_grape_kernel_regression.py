"""Regression guard for the vectorized GRAPE kernel.

The kernel rewrite (batched divided differences, fused contractions,
prepared operand layouts, reused scan buffers) must be a pure performance
change: on fixed seeds it has to reproduce the pre-rewrite ``(cost,
gradient, fidelity)`` to ≤1e-10.  The frozen pre-rewrite kernel lives in
``benchmarks/grape_reference.py`` (one copy, shared with the perf
harness), and one configuration is additionally pinned to golden numbers
so *any* future kernel change that moves the numerics shows up.
"""

import sys
from pathlib import Path

import numpy as np
import pytest

from repro.linalg.expm import _divided_differences, expm_hermitian
from repro.pulse.grape.cost import RegularizationSettings

BENCH_DIR = str(Path(__file__).resolve().parents[2] / "benchmarks")
if BENCH_DIR not in sys.path:
    sys.path.insert(0, BENCH_DIR)
from grape_reference import (  # noqa: E402
    kernel_fixture as _fixture,
    reference_cost_and_gradient as _reference_cost_and_gradient,
)

TOLERANCE = 1e-10


class TestKernelMatchesPreRewrite:
    @pytest.mark.parametrize(
        "n_qubits,levels,n_steps",
        [(1, 2, 8), (2, 2, 16), (2, 3, 12), (3, 2, 10), (3, 3, 6)],
    )
    def test_fixed_seed_equivalence(self, n_qubits, levels, n_steps):
        cost, controls = _fixture(n_qubits, levels, n_steps)
        ref_cost, ref_grad, ref_fid = _reference_cost_and_gradient(cost, controls)
        new_cost, new_grad, new_fid = cost.cost_and_gradient(controls)
        assert abs(new_cost - ref_cost) <= TOLERANCE
        assert abs(new_fid - ref_fid) <= TOLERANCE
        assert np.abs(new_grad - ref_grad).max() <= TOLERANCE

    def test_with_realistic_regularization(self):
        cost, controls = _fixture(
            2, 2, 20, regularization=RegularizationSettings.realistic()
        )
        ref = _reference_cost_and_gradient(cost, controls)
        new = cost.cost_and_gradient(controls)
        assert abs(new[0] - ref[0]) <= TOLERANCE
        assert np.abs(new[1] - ref[1]).max() <= TOLERANCE

    def test_golden_values_pinned(self):
        """Absolute numbers for one fixed configuration (dt=0.2, seeds 7/42)."""
        cost, controls = _fixture(2, 2, 16)
        value, gradient, fidelity = cost.cost_and_gradient(controls)
        assert value == pytest.approx(0.9444796133993676, abs=TOLERANCE)
        assert fidelity == pytest.approx(0.05552038660063236, abs=TOLERANCE)
        assert float(np.sum(gradient)) == pytest.approx(
            -0.727636398095886, abs=TOLERANCE
        )
        assert float(np.abs(gradient).sum()) == pytest.approx(
            0.9788734937252378, abs=TOLERANCE
        )
        np.testing.assert_allclose(
            gradient[0, :3],
            [-0.031077768007969797, -0.03233770420748866, -0.03257005343216679],
            atol=TOLERANCE,
        )

    def test_repeated_calls_are_bit_identical(self):
        """Reused scan buffers must not leak state between iterations."""
        cost, controls = _fixture(2, 3, 14)
        first = cost.cost_and_gradient(controls)
        second = cost.cost_and_gradient(controls)
        assert first[0] == second[0] and first[2] == second[2]
        assert np.array_equal(first[1], second[1])

    def test_changing_step_count_reuses_cost_object(self):
        """Minimum-time search probes several lengths on one GrapeCost."""
        cost, controls = _fixture(2, 2, 16)
        short = controls[:, :9]
        ref = _reference_cost_and_gradient(cost, short)
        new = cost.cost_and_gradient(short)
        assert abs(new[0] - ref[0]) <= TOLERANCE
        assert np.abs(new[1] - ref[1]).max() <= TOLERANCE
        # ... and going back to the original length still matches.
        again = cost.cost_and_gradient(controls)
        ref_full = _reference_cost_and_gradient(cost, controls)
        assert abs(again[0] - ref_full[0]) <= TOLERANCE


class TestSharedPropagatorPath:
    def test_propagate_uses_expm_hermitian(self):
        """``propagate`` and the kernel share one propagator code path."""
        from repro.linalg.scan import forward_partial_products

        cost, controls = _fixture(2, 2, 12)
        total = cost.propagate(controls)
        hams = cost._step_hamiltonians(controls)
        props = expm_hermitian(hams, cost.dt_ns)
        # The blocked scan is the single propagation path everywhere:
        # ``propagate`` must match it exactly, and the sequential product
        # to float reassociation accuracy.
        np.testing.assert_array_equal(total, forward_partial_products(props)[-1])
        expected = np.eye(props.shape[-1], dtype=complex)
        for k in range(props.shape[0]):
            expected = props[k] @ expected
        np.testing.assert_allclose(total, expected, atol=TOLERANCE)
        # And the product is unitary.
        np.testing.assert_allclose(
            total @ total.conj().T, np.eye(total.shape[0]), atol=1e-12
        )


class TestBatchedDividedDifferences:
    def test_matches_per_step_loop(self):
        rng = np.random.default_rng(5)
        eigvals = rng.normal(size=(7, 6))
        eigvals[2, 3] = eigvals[2, 4]  # exact degeneracy in one slice
        dt = 0.31
        phases = np.exp(-1j * dt * eigvals)
        batched = _divided_differences(eigvals, phases, dt)
        assert batched.shape == (7, 6, 6)
        for k in range(7):
            single = _divided_differences(eigvals[k], phases[k], dt)
            np.testing.assert_array_equal(batched[k], single)

    def test_degenerate_diagonal_is_derivative(self):
        eigvals = np.array([[1.0, 1.0, 2.0]])
        dt = 0.2
        phases = np.exp(-1j * dt * eigvals)
        gamma = _divided_differences(eigvals, phases, dt)
        expected = -1j * dt * phases[0, 0]
        assert gamma[0, 0, 0] == pytest.approx(expected)
        assert gamma[0, 0, 1] == pytest.approx(expected)  # degenerate pair
        assert gamma[0, 1, 0] == pytest.approx(expected)
