"""Unit tests for circuit blocking."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocking.aggregate import aggregate_blocks
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import ghz_circuit, random_circuit
from repro.errors import BlockingError
from repro.linalg.unitaries import unitaries_equal_up_to_phase
from repro.sim.unitary import circuit_unitary


class TestAggregation:
    def test_width_bound_respected(self):
        qc = random_circuit(6, 60, seed=0)
        blocked = aggregate_blocks(qc, 3)
        for block in blocked.blocks:
            assert len(block.qubits) <= 3

    def test_all_instructions_covered(self):
        qc = random_circuit(5, 40, seed=1)
        blocked = aggregate_blocks(qc, 4)
        covered = sorted(
            i for b in blocked.blocks for i in b.instruction_indices
        )
        assert covered == list(range(len(qc)))

    @given(st.integers(0, 30), st.integers(2, 4))
    @settings(max_examples=15, deadline=None)
    def test_flattened_preserves_unitary(self, seed, width):
        qc = random_circuit(4, 30, seed=seed)
        blocked = aggregate_blocks(qc, width)
        assert unitaries_equal_up_to_phase(
            circuit_unitary(blocked.flattened()), circuit_unitary(qc)
        )

    def test_single_qubit_width(self):
        qc = QuantumCircuit(2).h(0).h(1).h(0)
        blocked = aggregate_blocks(qc, 1)
        assert all(len(b.qubits) == 1 for b in blocked.blocks)

    def test_two_qubit_gate_overflows_width_one(self):
        qc = QuantumCircuit(2).cx(0, 1)
        with pytest.raises(BlockingError):
            aggregate_blocks(qc, 1)

    def test_invalid_width(self):
        with pytest.raises(BlockingError):
            aggregate_blocks(QuantumCircuit(1).h(0), 0)

    def test_ghz_blocks_chain(self):
        blocked = aggregate_blocks(ghz_circuit(6), 3)
        # Greedy aggregation along the CX chain: ~ceil(5/2)=3 blocks.
        assert len(blocked) <= 4

    def test_aggregation_groups_gates(self):
        qc = QuantumCircuit(2).h(0).h(1).cx(0, 1).rz(0.3, 1).cx(0, 1)
        blocked = aggregate_blocks(qc, 2)
        assert len(blocked) == 1

    def test_local_circuit_remaps(self):
        qc = QuantumCircuit(4).cx(2, 3).h(3)
        blocked = aggregate_blocks(qc, 2)
        sub, order = blocked.local_circuit(blocked.blocks[0])
        assert order == (2, 3)
        assert sub[0].qubits == (0, 1)

    def test_gate_based_duration(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1)
        blocked = aggregate_blocks(qc, 2)
        assert np.isclose(
            blocked.gate_based_duration_ns(blocked.blocks[0]), 1.4 + 3.8
        )

    def test_blocks_topologically_ordered(self):
        qc = random_circuit(5, 50, seed=3)
        blocked = aggregate_blocks(qc, 3)
        # Per-qubit instruction order must be non-decreasing across blocks.
        position = {}
        for pos, block in enumerate(blocked.blocks):
            for idx in block.instruction_indices:
                position[idx] = pos
        last: dict = {}
        for idx, inst in enumerate(qc):
            for q in inst.qubits:
                if q in last:
                    assert position[last[q]] <= position[idx]
                last[q] = idx

    def test_parametrized_circuit_blocks(self):
        from repro.circuits.parameters import Parameter

        theta = Parameter("theta_0")
        qc = QuantumCircuit(2).h(0).rz(theta, 0).cx(0, 1)
        blocked = aggregate_blocks(qc, 2)
        assert blocked.flattened().parameters == qc.parameters
