"""Smoke tests for the example scripts.

Every example must at least byte-compile and define a ``main``; the
cheaper ones are executed end-to-end (the expensive GRAPE-driven studies
are exercised through their library entry points elsewhere in the suite).
"""

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))

#: Examples cheap enough to execute in CI (< ~1 min each).
RUNNABLE = ["hyperparameter_study.py", "quickstart.py", "pulse_assembly_export.py"]


def test_examples_directory_populated():
    """The deliverable requires at least three example applications."""
    assert len(ALL_EXAMPLES) >= 3


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
def test_example_has_main_guard(path):
    source = path.read_text()
    assert '__main__' in source, f"{path.name} is not runnable as a script"
    assert '"""' in source.split("\n\n")[0] or source.startswith(
        ("#!", '"""')
    ), f"{path.name} lacks a module docstring"


@pytest.mark.slow
@pytest.mark.parametrize("name", RUNNABLE)
def test_example_runs(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), f"{name} produced no output"
