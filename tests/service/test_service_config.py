"""Tests for the typed service configuration and its env consolidation."""

from pathlib import Path

import pytest

from repro.errors import ReproError
from repro.service import ServiceConfig
from repro.service.config import CACHE_SHARD_CHOICES, EXECUTOR_CHOICES

REPO = Path(__file__).parent.parent.parent
SRC_MODULES = sorted((REPO / "src").rglob("*.py"))
ENV_READER = REPO / "src" / "repro" / "service" / "config.py"


class TestEnvConsolidation:
    """Acceptance criterion: every REPRO_* env read routes through
    ``ServiceConfig.from_env()`` — grep-enforced."""

    @pytest.mark.parametrize(
        "path", SRC_MODULES, ids=lambda p: str(p.relative_to(REPO))
    )
    def test_only_service_config_touches_the_environment(self, path):
        if path == ENV_READER:
            return
        source = path.read_text()
        for marker in ("os.environ", "getenv", "environb"):
            assert marker not in source, (
                f"{path.relative_to(REPO)} reads the environment directly; "
                "route REPRO_* lookups through ServiceConfig.from_env()"
            )

    def test_the_one_reader_covers_every_documented_variable(self):
        source = ENV_READER.read_text()
        for name in (
            "REPRO_EXECUTOR",
            "REPRO_MAX_WORKERS",
            "REPRO_SUBMIT_WORKERS",
            "REPRO_CACHE_DIR",
            "REPRO_CACHE_SHARDS",
            "REPRO_CACHE_BUDGET_MB",
            "REPRO_PREFETCH",
            "REPRO_PRESET",
            "REPRO_SCHEDULER_STATE",
            "REPRO_GRAPE_BATCH",
            "REPRO_GRAPE_BATCH_SIZE",
            "REPRO_WARM_START",
            "REPRO_WARM_START_MAX_DIST",
            "REPRO_SCAN_BLOCK",
            "REPRO_DISPATCHER",
            "REPRO_FLEET_DIR",
            "REPRO_FLEET_WORKERS",
            "REPRO_QUEUE_DEPTH",
            "REPRO_FLEET_LEASE_TTL",
            "REPRO_FLEET_HEARTBEAT",
            "REPRO_FLEET_AUTOSCALE",
            "REPRO_FLEET_MIN_WORKERS",
            "REPRO_FLEET_MAX_WORKERS",
            "REPRO_SERVER_HOST",
            "REPRO_SERVER_PORT",
            "REPRO_SERVER_MAX_BODY_MB",
            "REPRO_SERVER_TICKET_TTL",
        ):
            assert name in source


class TestFromEnv:
    def test_defaults_without_env(self, monkeypatch):
        for name in (
            "REPRO_EXECUTOR",
            "REPRO_MAX_WORKERS",
            "REPRO_SUBMIT_WORKERS",
            "REPRO_CACHE_DIR",
            "REPRO_CACHE_SHARDS",
            "REPRO_CACHE_BUDGET_MB",
            "REPRO_PREFETCH",
            "REPRO_PRESET",
            "REPRO_SCHEDULER_STATE",
            "REPRO_GRAPE_BATCH",
            "REPRO_GRAPE_BATCH_SIZE",
            "REPRO_WARM_START",
            "REPRO_WARM_START_MAX_DIST",
            "REPRO_SCAN_BLOCK",
            "REPRO_DISPATCHER",
            "REPRO_FLEET_DIR",
            "REPRO_FLEET_WORKERS",
            "REPRO_QUEUE_DEPTH",
            "REPRO_FLEET_LEASE_TTL",
            "REPRO_FLEET_HEARTBEAT",
            "REPRO_FLEET_AUTOSCALE",
            "REPRO_FLEET_MIN_WORKERS",
            "REPRO_FLEET_MAX_WORKERS",
            "REPRO_SERVER_HOST",
            "REPRO_SERVER_PORT",
            "REPRO_SERVER_MAX_BODY_MB",
            "REPRO_SERVER_TICKET_TTL",
        ):
            monkeypatch.delenv(name, raising=False)
        config, sources = ServiceConfig.from_env_with_sources()
        assert config == ServiceConfig()
        assert set(sources.values()) == {"default"}

    def test_env_values_and_sources(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "thread-persistent")
        monkeypatch.setenv("REPRO_MAX_WORKERS", "3")
        monkeypatch.setenv("REPRO_SUBMIT_WORKERS", "6")
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/pulses")
        monkeypatch.setenv("REPRO_CACHE_SHARDS", "256")
        monkeypatch.setenv("REPRO_CACHE_BUDGET_MB", "32.5")
        monkeypatch.setenv("REPRO_PREFETCH", "yes")
        monkeypatch.setenv("REPRO_PRESET", "paper")
        monkeypatch.setenv("REPRO_SCHEDULER_STATE", "/tmp/state.json")
        monkeypatch.setenv("REPRO_GRAPE_BATCH", "off")
        monkeypatch.setenv("REPRO_GRAPE_BATCH_SIZE", "8")
        monkeypatch.setenv("REPRO_WARM_START", "no")
        monkeypatch.setenv("REPRO_WARM_START_MAX_DIST", "0.4")
        monkeypatch.setenv("REPRO_SCAN_BLOCK", "32")
        monkeypatch.setenv("REPRO_DISPATCHER", "queue")
        monkeypatch.setenv("REPRO_FLEET_DIR", "/tmp/fleet")
        monkeypatch.setenv("REPRO_FLEET_WORKERS", "2")
        monkeypatch.setenv("REPRO_QUEUE_DEPTH", "16")
        monkeypatch.setenv("REPRO_FLEET_LEASE_TTL", "12.5")
        monkeypatch.setenv("REPRO_FLEET_HEARTBEAT", "2.5")
        monkeypatch.setenv("REPRO_FLEET_AUTOSCALE", "yes")
        monkeypatch.setenv("REPRO_FLEET_MIN_WORKERS", "1")
        monkeypatch.setenv("REPRO_FLEET_MAX_WORKERS", "6")
        monkeypatch.setenv("REPRO_SERVER_HOST", "0.0.0.0")
        monkeypatch.setenv("REPRO_SERVER_PORT", "9001")
        monkeypatch.setenv("REPRO_SERVER_MAX_BODY_MB", "8.0")
        monkeypatch.setenv("REPRO_SERVER_TICKET_TTL", "120")
        config, sources = ServiceConfig.from_env_with_sources()
        assert config.executor == "thread-persistent"
        assert config.max_workers == 3
        assert config.submit_workers == 6
        assert config.cache_dir == "/tmp/pulses"
        assert config.cache_shards == 256
        assert config.cache_budget_mb == 32.5
        assert config.prefetch is True
        assert config.preset == "paper"
        assert config.scheduler_state_path == "/tmp/state.json"
        assert config.grape_batch is False
        assert config.grape_batch_size == 8
        assert config.warm_start is False
        assert config.warm_start_max_dist == 0.4
        assert config.scan_block == 32
        assert config.dispatcher == "queue"
        assert config.fleet_dir == "/tmp/fleet"
        assert config.fleet_workers == 2
        assert config.queue_depth == 16
        assert config.fleet_lease_ttl_s == 12.5
        assert config.fleet_heartbeat_s == 2.5
        assert config.fleet_autoscale is True
        assert config.fleet_min_workers == 1
        assert config.fleet_max_workers == 6
        assert config.server_host == "0.0.0.0"
        assert config.server_port == 9001
        assert config.server_max_body_mb == 8.0
        assert config.server_ticket_ttl_s == 120.0
        assert set(sources.values()) == {"env"}

    def test_garbage_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "quantum-annealer")
        monkeypatch.setenv("REPRO_MAX_WORKERS", "-2")
        monkeypatch.setenv("REPRO_SUBMIT_WORKERS", "zero")
        monkeypatch.setenv("REPRO_CACHE_SHARDS", "7")
        monkeypatch.setenv("REPRO_CACHE_BUDGET_MB", "lots")
        monkeypatch.setenv("REPRO_PREFETCH", "maybe")
        monkeypatch.setenv("REPRO_GRAPE_BATCH", "sometimes")
        monkeypatch.setenv("REPRO_GRAPE_BATCH_SIZE", "0")
        monkeypatch.setenv("REPRO_WARM_START", "perhaps")
        monkeypatch.setenv("REPRO_WARM_START_MAX_DIST", "2.0")
        monkeypatch.setenv("REPRO_SCAN_BLOCK", "none")
        monkeypatch.setenv("REPRO_DISPATCHER", "carrier-pigeon")
        monkeypatch.setenv("REPRO_FLEET_WORKERS", "-1")
        monkeypatch.setenv("REPRO_QUEUE_DEPTH", "0")
        monkeypatch.setenv("REPRO_FLEET_LEASE_TTL", "-3")
        monkeypatch.setenv("REPRO_FLEET_HEARTBEAT", "soon")
        monkeypatch.setenv("REPRO_FLEET_AUTOSCALE", "sometimes")
        monkeypatch.setenv("REPRO_FLEET_MIN_WORKERS", "-1")
        monkeypatch.setenv("REPRO_FLEET_MAX_WORKERS", "0")
        monkeypatch.setenv("REPRO_SERVER_PORT", "70000")
        monkeypatch.setenv("REPRO_SERVER_MAX_BODY_MB", "huge")
        monkeypatch.setenv("REPRO_SERVER_TICKET_TTL", "0")
        with pytest.warns(UserWarning):
            config, sources = ServiceConfig.from_env_with_sources()
        assert config == ServiceConfig()
        assert set(sources.values()) == {"default"}


class TestValidation:
    def test_unknown_executor_rejected(self):
        with pytest.raises(ReproError):
            ServiceConfig(executor="fpga")

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ReproError):
            ServiceConfig(max_workers=0)

    def test_bad_submit_worker_count_rejected(self):
        with pytest.raises(ReproError):
            ServiceConfig(submit_workers=0)

    def test_submit_workers_default_is_bounded(self):
        import os

        assert ServiceConfig().submit_workers == min(8, os.cpu_count() or 1)

    def test_bad_shards_rejected(self):
        with pytest.raises(ReproError):
            ServiceConfig(cache_shards=100)

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ReproError):
            ServiceConfig(cache_budget_mb=0)

    def test_bad_grape_batch_size_rejected(self):
        with pytest.raises(ReproError):
            ServiceConfig(grape_batch_size=0)

    def test_bad_warm_start_max_dist_rejected(self):
        with pytest.raises(ReproError):
            ServiceConfig(warm_start_max_dist=0.0)
        with pytest.raises(ReproError):
            ServiceConfig(warm_start_max_dist=1.5)

    def test_bad_scan_block_rejected(self):
        with pytest.raises(ReproError):
            ServiceConfig(scan_block=0)

    def test_choices_match_config_module(self):
        from repro import config as legacy

        assert legacy.EXECUTOR_CHOICES is EXECUTOR_CHOICES
        assert legacy.CACHE_SHARD_CHOICES is CACHE_SHARD_CHOICES


class TestFleetServerValidation:
    """Constructor validation for the fleet/server knobs (CLI and direct
    construction paths — the env path is tolerant instead, see below)."""

    @pytest.mark.parametrize(
        "overrides",
        [
            {"fleet_lease_ttl_s": 0},
            {"fleet_lease_ttl_s": -1.0},
            {"fleet_heartbeat_s": 0.0},
            {"fleet_heartbeat_s": 30.0},  # == lease TTL: every beat stale
            {"fleet_heartbeat_s": 45.0, "fleet_lease_ttl_s": 30.0},
            {"fleet_min_workers": -1},
            {"fleet_max_workers": 0},
            {"fleet_min_workers": 5, "fleet_max_workers": 2},
            {"server_port": -1},
            {"server_port": 65536},
            {"server_max_body_mb": 0},
            {"server_ticket_ttl_s": 0},
        ],
        ids=[
            "zero-ttl", "negative-ttl", "zero-heartbeat",
            "heartbeat-equals-ttl", "heartbeat-exceeds-ttl",
            "negative-min", "zero-max", "min-exceeds-max",
            "negative-port", "port-too-high", "zero-body", "zero-ticket-ttl",
        ],
    )
    def test_bad_values_rejected(self, overrides):
        with pytest.raises(ReproError):
            ServiceConfig(**overrides)

    def test_good_values_accepted(self):
        config = ServiceConfig(
            fleet_lease_ttl_s=10.0,
            fleet_heartbeat_s=2.0,
            fleet_autoscale=True,
            fleet_min_workers=1,
            fleet_max_workers=3,
            server_port=0,
            server_max_body_mb=1.0,
            server_ticket_ttl_s=60.0,
        )
        assert config.fleet_heartbeat_s == 2.0
        assert config.fleet_autoscale is True


class TestEnvCrossFieldFixups:
    """Cross-field constraints must not crash ``import repro``: the env
    reader falls back to defaults with a warning instead."""

    def test_heartbeat_not_shorter_than_ttl_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLEET_LEASE_TTL", "10")
        monkeypatch.setenv("REPRO_FLEET_HEARTBEAT", "60")
        with pytest.warns(UserWarning, match="REPRO_FLEET_HEARTBEAT"):
            config, sources = ServiceConfig.from_env_with_sources()
        assert config.fleet_lease_ttl_s == 10.0
        assert config.fleet_heartbeat_s is None
        assert sources["fleet_lease_ttl_s"] == "env"
        assert sources["fleet_heartbeat_s"] == "default"

    def test_min_exceeding_max_drops_both(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLEET_MIN_WORKERS", "8")
        monkeypatch.setenv("REPRO_FLEET_MAX_WORKERS", "2")
        with pytest.warns(UserWarning, match="min exceeds max"):
            config, sources = ServiceConfig.from_env_with_sources()
        assert config.fleet_min_workers == 0
        assert config.fleet_max_workers == 4
        assert sources["fleet_min_workers"] == "default"
        assert sources["fleet_max_workers"] == "default"


class TestUtilities:
    def test_replace_revalidates(self):
        config = ServiceConfig()
        assert config.replace(executor="thread").executor == "thread"
        with pytest.raises(ReproError):
            config.replace(executor="fpga")

    def test_as_dict_field_order(self):
        keys = list(ServiceConfig().as_dict())
        assert keys[0] == "executor"
        assert "scheduler_state_path" in keys

    def test_frozen(self):
        with pytest.raises(Exception):
            ServiceConfig().executor = "thread"


class TestLegacyWrappers:
    def test_pipeline_config_from_env_routes_through_service_config(
        self, monkeypatch
    ):
        from repro.config import _pipeline_config_from_env

        monkeypatch.setenv("REPRO_EXECUTOR", "thread")
        monkeypatch.setenv("REPRO_CACHE_SHARDS", "4096")
        config = _pipeline_config_from_env()
        assert config.executor == "thread"
        assert config.cache_shards == 4096
