"""Tests for the typed service configuration and its env consolidation."""

from pathlib import Path

import pytest

from repro.errors import ReproError
from repro.service import ServiceConfig
from repro.service.config import CACHE_SHARD_CHOICES, EXECUTOR_CHOICES

REPO = Path(__file__).parent.parent.parent
SRC_MODULES = sorted((REPO / "src").rglob("*.py"))
ENV_READER = REPO / "src" / "repro" / "service" / "config.py"


class TestEnvConsolidation:
    """Acceptance criterion: every REPRO_* env read routes through
    ``ServiceConfig.from_env()`` — grep-enforced."""

    @pytest.mark.parametrize(
        "path", SRC_MODULES, ids=lambda p: str(p.relative_to(REPO))
    )
    def test_only_service_config_touches_the_environment(self, path):
        if path == ENV_READER:
            return
        source = path.read_text()
        for marker in ("os.environ", "getenv", "environb"):
            assert marker not in source, (
                f"{path.relative_to(REPO)} reads the environment directly; "
                "route REPRO_* lookups through ServiceConfig.from_env()"
            )

    def test_the_one_reader_covers_every_documented_variable(self):
        source = ENV_READER.read_text()
        for name in (
            "REPRO_EXECUTOR",
            "REPRO_MAX_WORKERS",
            "REPRO_SUBMIT_WORKERS",
            "REPRO_CACHE_DIR",
            "REPRO_CACHE_SHARDS",
            "REPRO_CACHE_BUDGET_MB",
            "REPRO_PREFETCH",
            "REPRO_PRESET",
            "REPRO_SCHEDULER_STATE",
            "REPRO_GRAPE_BATCH",
            "REPRO_GRAPE_BATCH_SIZE",
            "REPRO_WARM_START",
            "REPRO_WARM_START_MAX_DIST",
            "REPRO_SCAN_BLOCK",
            "REPRO_DISPATCHER",
            "REPRO_FLEET_DIR",
            "REPRO_FLEET_WORKERS",
            "REPRO_QUEUE_DEPTH",
        ):
            assert name in source


class TestFromEnv:
    def test_defaults_without_env(self, monkeypatch):
        for name in (
            "REPRO_EXECUTOR",
            "REPRO_MAX_WORKERS",
            "REPRO_SUBMIT_WORKERS",
            "REPRO_CACHE_DIR",
            "REPRO_CACHE_SHARDS",
            "REPRO_CACHE_BUDGET_MB",
            "REPRO_PREFETCH",
            "REPRO_PRESET",
            "REPRO_SCHEDULER_STATE",
            "REPRO_GRAPE_BATCH",
            "REPRO_GRAPE_BATCH_SIZE",
            "REPRO_WARM_START",
            "REPRO_WARM_START_MAX_DIST",
            "REPRO_SCAN_BLOCK",
            "REPRO_DISPATCHER",
            "REPRO_FLEET_DIR",
            "REPRO_FLEET_WORKERS",
            "REPRO_QUEUE_DEPTH",
        ):
            monkeypatch.delenv(name, raising=False)
        config, sources = ServiceConfig.from_env_with_sources()
        assert config == ServiceConfig()
        assert set(sources.values()) == {"default"}

    def test_env_values_and_sources(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "thread-persistent")
        monkeypatch.setenv("REPRO_MAX_WORKERS", "3")
        monkeypatch.setenv("REPRO_SUBMIT_WORKERS", "6")
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/pulses")
        monkeypatch.setenv("REPRO_CACHE_SHARDS", "256")
        monkeypatch.setenv("REPRO_CACHE_BUDGET_MB", "32.5")
        monkeypatch.setenv("REPRO_PREFETCH", "yes")
        monkeypatch.setenv("REPRO_PRESET", "paper")
        monkeypatch.setenv("REPRO_SCHEDULER_STATE", "/tmp/state.json")
        monkeypatch.setenv("REPRO_GRAPE_BATCH", "off")
        monkeypatch.setenv("REPRO_GRAPE_BATCH_SIZE", "8")
        monkeypatch.setenv("REPRO_WARM_START", "no")
        monkeypatch.setenv("REPRO_WARM_START_MAX_DIST", "0.4")
        monkeypatch.setenv("REPRO_SCAN_BLOCK", "32")
        monkeypatch.setenv("REPRO_DISPATCHER", "queue")
        monkeypatch.setenv("REPRO_FLEET_DIR", "/tmp/fleet")
        monkeypatch.setenv("REPRO_FLEET_WORKERS", "2")
        monkeypatch.setenv("REPRO_QUEUE_DEPTH", "16")
        config, sources = ServiceConfig.from_env_with_sources()
        assert config.executor == "thread-persistent"
        assert config.max_workers == 3
        assert config.submit_workers == 6
        assert config.cache_dir == "/tmp/pulses"
        assert config.cache_shards == 256
        assert config.cache_budget_mb == 32.5
        assert config.prefetch is True
        assert config.preset == "paper"
        assert config.scheduler_state_path == "/tmp/state.json"
        assert config.grape_batch is False
        assert config.grape_batch_size == 8
        assert config.warm_start is False
        assert config.warm_start_max_dist == 0.4
        assert config.scan_block == 32
        assert config.dispatcher == "queue"
        assert config.fleet_dir == "/tmp/fleet"
        assert config.fleet_workers == 2
        assert config.queue_depth == 16
        assert set(sources.values()) == {"env"}

    def test_garbage_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "quantum-annealer")
        monkeypatch.setenv("REPRO_MAX_WORKERS", "-2")
        monkeypatch.setenv("REPRO_SUBMIT_WORKERS", "zero")
        monkeypatch.setenv("REPRO_CACHE_SHARDS", "7")
        monkeypatch.setenv("REPRO_CACHE_BUDGET_MB", "lots")
        monkeypatch.setenv("REPRO_PREFETCH", "maybe")
        monkeypatch.setenv("REPRO_GRAPE_BATCH", "sometimes")
        monkeypatch.setenv("REPRO_GRAPE_BATCH_SIZE", "0")
        monkeypatch.setenv("REPRO_WARM_START", "perhaps")
        monkeypatch.setenv("REPRO_WARM_START_MAX_DIST", "2.0")
        monkeypatch.setenv("REPRO_SCAN_BLOCK", "none")
        monkeypatch.setenv("REPRO_DISPATCHER", "carrier-pigeon")
        monkeypatch.setenv("REPRO_FLEET_WORKERS", "-1")
        monkeypatch.setenv("REPRO_QUEUE_DEPTH", "0")
        with pytest.warns(UserWarning):
            config, sources = ServiceConfig.from_env_with_sources()
        assert config == ServiceConfig()
        assert set(sources.values()) == {"default"}


class TestValidation:
    def test_unknown_executor_rejected(self):
        with pytest.raises(ReproError):
            ServiceConfig(executor="fpga")

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ReproError):
            ServiceConfig(max_workers=0)

    def test_bad_submit_worker_count_rejected(self):
        with pytest.raises(ReproError):
            ServiceConfig(submit_workers=0)

    def test_submit_workers_default_is_bounded(self):
        import os

        assert ServiceConfig().submit_workers == min(8, os.cpu_count() or 1)

    def test_bad_shards_rejected(self):
        with pytest.raises(ReproError):
            ServiceConfig(cache_shards=100)

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ReproError):
            ServiceConfig(cache_budget_mb=0)

    def test_bad_grape_batch_size_rejected(self):
        with pytest.raises(ReproError):
            ServiceConfig(grape_batch_size=0)

    def test_bad_warm_start_max_dist_rejected(self):
        with pytest.raises(ReproError):
            ServiceConfig(warm_start_max_dist=0.0)
        with pytest.raises(ReproError):
            ServiceConfig(warm_start_max_dist=1.5)

    def test_bad_scan_block_rejected(self):
        with pytest.raises(ReproError):
            ServiceConfig(scan_block=0)

    def test_choices_match_config_module(self):
        from repro import config as legacy

        assert legacy.EXECUTOR_CHOICES is EXECUTOR_CHOICES
        assert legacy.CACHE_SHARD_CHOICES is CACHE_SHARD_CHOICES


class TestUtilities:
    def test_replace_revalidates(self):
        config = ServiceConfig()
        assert config.replace(executor="thread").executor == "thread"
        with pytest.raises(ReproError):
            config.replace(executor="fpga")

    def test_as_dict_field_order(self):
        keys = list(ServiceConfig().as_dict())
        assert keys[0] == "executor"
        assert "scheduler_state_path" in keys

    def test_frozen(self):
        with pytest.raises(Exception):
            ServiceConfig().executor = "thread"


class TestLegacyWrappers:
    def test_pipeline_config_from_env_routes_through_service_config(
        self, monkeypatch
    ):
        from repro.config import _pipeline_config_from_env

        monkeypatch.setenv("REPRO_EXECUTOR", "thread")
        monkeypatch.setenv("REPRO_CACHE_SHARDS", "4096")
        config = _pipeline_config_from_env()
        assert config.executor == "thread"
        assert config.cache_shards == 4096
