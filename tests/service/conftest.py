"""Shared fixtures for the service-facade tests.

Deliberately coarse GRAPE settings (0.5 ns slices, 0.95 fidelity, small
iteration budgets) keep the five-strategy equivalence and concurrency
tests fast; the physics is identical, only the resolution differs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.pulse.grape.engine import GrapeHyperparameters, GrapeSettings
from repro.qaoa import maxcut_problem, qaoa_circuit
from repro.transpile import transpile


@pytest.fixture(scope="module")
def workload():
    """A small parametrized circuit (QAOA MAXCUT K4, p=1) plus one θ."""
    problem = maxcut_problem("clique", 4, seed=0)
    circuit = transpile(qaoa_circuit(problem, p=1))
    return circuit, [0.4, 0.9]


@pytest.fixture
def coarse_settings():
    return GrapeSettings(dt_ns=0.5, target_fidelity=0.95)


@pytest.fixture
def coarse_hyper():
    return GrapeHyperparameters(
        learning_rate=0.05, decay_rate=0.002, max_iterations=80
    )


def _program_controls(program) -> list:
    """Every schedule's control array, in program order."""
    return [np.asarray(schedule.controls) for schedule in program.schedules]


@pytest.fixture(scope="session")
def programs_identical():
    """Bit-identity check for pulse programs: durations + control samples."""

    def check(a, b) -> bool:
        if a.duration_ns != b.duration_ns:
            return False
        controls_a, controls_b = _program_controls(a), _program_controls(b)
        if len(controls_a) != len(controls_b):
            return False
        return all(
            x.shape == y.shape and np.array_equal(x, y)
            for x, y in zip(controls_a, controls_b)
        )

    return check
