"""The hot variational loop through the service front door.

Tentpole acceptance: compiling one ansatz at many parametrizations runs
the blocking pass exactly once — iterations ≥2 replay the cached
:class:`~repro.pipeline.plan.CompilationPlan` and jump straight to
scheduler dispatch, visible in ``stats()["plan_cache"]`` and in each
result's ``metadata["plan_cache"]`` marker.
"""

import pytest

from repro.service import CompilationService, CompileRequest


THETAS = [[0.4, 0.9], [0.1, 1.2], [0.7, 0.3]]


@pytest.fixture()
def loop_results(workload, coarse_settings, coarse_hyper):
    circuit, _ = workload
    with CompilationService(
        settings=coarse_settings, hyperparameters=coarse_hyper
    ) as service:
        results = [
            service.compile(
                CompileRequest(
                    circuit, theta, strategy="full-grape", max_block_width=2
                )
            )
            for theta in THETAS
        ]
        stats = service.stats()
    return results, stats


def test_blocking_runs_once_per_ansatz(loop_results):
    _, stats = loop_results
    plan = stats["plan_cache"]
    assert plan["plan_misses"] == 1
    assert plan["plan_hits"] == len(THETAS) - 1
    assert plan["blocking_passes_skipped"] == len(THETAS) - 1
    assert plan["entries"] == 1


def test_results_carry_plan_markers(loop_results):
    results, _ = loop_results
    assert results[0].metadata["plan_cache"] == "miss"
    for result in results[1:]:
        assert result.metadata["plan_cache"] == "hit"


def test_replayed_iterations_still_compile(loop_results):
    """A plan hit skips blocking, not compilation: every iteration still
    produces a full program with the same block structure."""
    results, _ = loop_results
    blocks = {result.metadata["blocks"] for result in results}
    assert len(blocks) == 1
    reference = results[0].compiled.blocks_compiled
    for result in results:
        assert result.program.duration_ns > 0
        assert result.compiled.blocks_compiled == reference


def test_cache_off_bypasses_plans(workload, coarse_settings, coarse_hyper):
    """``use_cache=False`` requests measure the honest cold path — they
    must not read or populate the service plan cache."""
    circuit, _ = workload
    with CompilationService(
        settings=coarse_settings, hyperparameters=coarse_hyper
    ) as service:
        for theta in THETAS[:2]:
            service.compile(
                CompileRequest(
                    circuit,
                    theta,
                    strategy="full-grape",
                    max_block_width=2,
                    use_cache=False,
                )
            )
        plan = service.stats()["plan_cache"]
    assert plan == {
        "entries": 0,
        "plan_hits": 0,
        "plan_misses": 0,
        "blocking_passes_skipped": 0,
        "evictions": 0,
    }
