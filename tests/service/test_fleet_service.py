"""CompilationService on the fleet: queue dispatch parity and admission.

The milestone-1 service-level contracts:

* every strategy compiled through ``dispatcher="queue"`` with real worker
  processes is bit-identical to the serial in-process executor (warm
  start pinned off — it is the one deliberately order-sensitive knob);
* ``queue_depth`` bounds admission — extra ``submit()`` calls block and
  are counted — without losing or erroring any request;
* the fleet directory falls back to ``<cache_dir>/fleet``, and a queue
  dispatcher without either knob is a configuration error.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.errors import ReproError, ServiceSaturated
from repro.service import CompilationService, CompileRequest, ServiceConfig

#: (strategy, extra request options) — flexible-partial's tuning loop is
#: cut to one sample to keep the fleet round-trip fast.
STRATEGIES = [
    ("gate", {}),
    ("step-function", {}),
    ("full-grape", {}),
    ("strict-partial", {}),
    ("flexible-partial", {"tuning_samples": 1}),
]


class TestQueueDispatchParity:
    def test_all_strategies_bit_identical_to_serial(
        self, tmp_path, workload, coarse_settings, coarse_hyper, programs_identical
    ):
        """One serial service and one 2-worker fleet service compile the
        same five requests; every program must match bit-for-bit."""
        circuit, theta = workload
        serial_cfg = ServiceConfig(executor="serial", warm_start=False)
        fleet_cfg = ServiceConfig(
            dispatcher="queue",
            fleet_dir=str(tmp_path / "fleet"),
            fleet_workers=2,
            warm_start=False,
        )
        results: dict = {}
        for label, cfg in (("serial", serial_cfg), ("fleet", fleet_cfg)):
            with CompilationService(
                config=cfg,
                settings=coarse_settings,
                hyperparameters=coarse_hyper,
            ) as service:
                results[label] = [
                    service.compile(
                        CompileRequest(
                            circuit, theta, strategy=name, options=dict(options)
                        )
                    )
                    for name, options in STRATEGIES
                ]
        for (name, _), serial, fleet in zip(
            STRATEGIES, results["serial"], results["fleet"]
        ):
            assert programs_identical(serial.program, fleet.program), name
            assert fleet.strategy == name

    def test_fleet_dir_derived_from_cache_dir(self, tmp_path):
        config = ServiceConfig(
            dispatcher="queue", cache_dir=str(tmp_path / "cache")
        )
        with CompilationService(config=config) as service:
            assert service.executor.queue.directory == (
                Path(tmp_path) / "cache" / "fleet"
            )
            assert service.stats()["executor"]["executor"] == "queue"

    def test_queue_dispatcher_without_directory_is_an_error(self):
        with pytest.raises(ReproError, match="REPRO_FLEET_DIR"):
            CompilationService(config=ServiceConfig(dispatcher="queue"))


class TestBoundedAdmission:
    def test_queue_depth_bounds_and_counts_backpressure(
        self, workload, coarse_settings, coarse_hyper
    ):
        """Three submissions through a depth-1 gate: all complete, and at
        least two had to wait for a slot."""
        circuit, theta = workload
        config = ServiceConfig(
            executor="serial",
            submit_workers=2,
            queue_depth=1,
            warm_start=False,
        )
        with CompilationService(
            config=config,
            settings=coarse_settings,
            hyperparameters=coarse_hyper,
        ) as service:
            futures = [
                service.submit(CompileRequest(circuit, theta, strategy="gate"))
                for _ in range(3)
            ]
            durations = {f.result(timeout=300).program.duration_ns for f in futures}
            stats = service.stats()["requests"]
        assert len(durations) == 1  # identical requests, identical programs
        assert stats["submitted"] == 3
        assert stats["queue_depth"] == 1
        assert stats["backpressure_waits"] >= 1

    def test_nonblocking_submit_raises_when_saturated(
        self, workload, coarse_settings, coarse_hyper
    ):
        """``submit(block=False)`` on a full depth-1 queue fails fast with
        ServiceSaturated (the HTTP frontend's 429) instead of waiting."""
        circuit, theta = workload
        config = ServiceConfig(
            executor="serial", queue_depth=1, warm_start=False
        )
        with CompilationService(
            config=config,
            settings=coarse_settings,
            hyperparameters=coarse_hyper,
        ) as service:
            request = CompileRequest(circuit, theta, strategy="gate")
            # Hold the only admission slot so saturation is deterministic.
            assert service._admission.acquire(blocking=False)
            try:
                with pytest.raises(ServiceSaturated, match="queue is full"):
                    service.submit(request, block=False)
            finally:
                service._admission.release()
            stats = service.stats()["requests"]
            assert stats["backpressure_waits"] == 1
            assert stats["submitted"] == 0  # the refusal admitted nothing
            # With the slot back, the non-blocking path admits normally.
            future = service.submit(request, block=False)
            assert future.result(timeout=300).compiled is not None

    def test_nonblocking_submit_without_bound_always_admits(
        self, workload, coarse_settings, coarse_hyper
    ):
        circuit, theta = workload
        with CompilationService(
            config=ServiceConfig(executor="serial", warm_start=False),
            settings=coarse_settings,
            hyperparameters=coarse_hyper,
        ) as service:
            future = service.submit(
                CompileRequest(circuit, theta, strategy="gate"), block=False
            )
            future.result(timeout=300)
            assert service.stats()["requests"]["backpressure_waits"] == 0

    def test_unbounded_admission_never_waits(
        self, workload, coarse_settings, coarse_hyper
    ):
        circuit, theta = workload
        with CompilationService(
            config=ServiceConfig(executor="serial", warm_start=False),
            settings=coarse_settings,
            hyperparameters=coarse_hyper,
        ) as service:
            future = service.submit(
                CompileRequest(circuit, theta, strategy="gate")
            )
            future.result(timeout=300)
            stats = service.stats()["requests"]
        assert stats["queue_depth"] is None
        assert stats["backpressure_waits"] == 0
