"""Satellite: concurrent ``service.submit()`` from ≥4 threads.

Results must be bit-identical to a serial ``compile()`` of the same
requests, exactly one pool/library/scheduler may be instantiated, and the
stats counters must stay consistent.  Strategy execution runs *outside*
the facade lock, so these tests exercise genuine overlap — the module
fixture arms a faulthandler guard that dumps every thread's stack and
kills the run if a deadlock ever sneaks in, instead of hanging to the CI
timeout.
"""

import faulthandler
import threading

import pytest

from repro.core.cache import PulseCache
from repro.pipeline.scheduler import SchedulerState
from repro.service import CompilationService, CompileRequest, ServiceConfig


THREADS = 4


@pytest.fixture(autouse=True)
def deadlock_guard():
    """Fail loud on hangs: dump all stacks and exit after 300 s."""
    faulthandler.dump_traceback_later(300, exit=True)
    yield
    faulthandler.cancel_dump_traceback_later()


@pytest.fixture(scope="module")
def thetas():
    return [[0.4, 0.9], [0.1, 1.2], [0.7, 0.3], [1.0, 0.5]]


def _requests(circuit, thetas):
    return [
        CompileRequest(circuit, theta, strategy="full-grape", max_block_width=2)
        for theta in thetas
    ]


# Warm start off for the bit-identity tests: cross-request neighbor
# seeding makes request N's pulses depend on which earlier requests have
# already cached theirs — sequential compiles see every predecessor,
# barrier-synced submits see none.  Both orderings are correct (seeds are
# re-optimized and best-of guarded) but not bit-identical, so equivalence
# of the *concurrency machinery* is asserted with seeding disabled.
_EXACT_CONFIG = ServiceConfig(warm_start=False)


class _InstanceCounter:
    """Counts constructions of a class via an ``__init__`` wrapper."""

    def __init__(self, monkeypatch, cls):
        self.count = 0
        original = cls.__init__

        def counting(obj, *args, **kwargs):
            self.count += 1
            original(obj, *args, **kwargs)

        monkeypatch.setattr(cls, "__init__", counting)


def test_concurrent_submit_matches_serial(
    monkeypatch, workload, thetas, coarse_settings, coarse_hyper, programs_identical
):
    circuit, _ = workload

    # Serial reference: one service, sequential compile() calls.
    with CompilationService(
        config=_EXACT_CONFIG, settings=coarse_settings, hyperparameters=coarse_hyper
    ) as serial_service:
        serial = [
            serial_service.compile(request)
            for request in _requests(circuit, thetas)
        ]

    # Concurrent run on a fresh service, instrumented: constructing the
    # service builds exactly one scheduler state and one cache, and the
    # concurrent phase must not build any more.
    schedulers = _InstanceCounter(monkeypatch, SchedulerState)
    caches = _InstanceCounter(monkeypatch, PulseCache)
    service = CompilationService(
        config=_EXACT_CONFIG, settings=coarse_settings, hyperparameters=coarse_hyper
    )
    assert schedulers.count == 1
    assert caches.count == 1

    futures = [None] * THREADS
    barrier = threading.Barrier(THREADS)
    requests = _requests(circuit, thetas)

    def submit(index):
        barrier.wait()  # all four threads hit submit() together
        futures[index] = service.submit(requests[index])

    threads = [
        threading.Thread(target=submit, args=(i,)) for i in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    concurrent = [future.result(timeout=300) for future in futures]

    # Bit-identical programs, request-for-request.
    for serial_result, concurrent_result in zip(serial, concurrent):
        assert programs_identical(
            serial_result.program, concurrent_result.program
        )

    # Exactly one scheduler/cache for the whole concurrent phase, and the
    # shared instances are the ones every request went through.
    assert schedulers.count == 1
    assert caches.count == 1
    assert all(result.metadata["scheduler"] is not None for result in concurrent)

    # Counter consistency: every submission accounted for, once.
    stats = service.stats()
    assert stats["requests"]["total"] == THREADS
    assert stats["requests"]["submitted"] == THREADS
    assert stats["requests"]["by_strategy"] == {"full-grape": THREADS}
    assert stats["scheduler"]["batches"] == THREADS
    # The later requests reuse the first request's θ-independent blocks.
    assert stats["scheduler"]["cross_call_hits"] > 0
    service.close()


def test_stress_submit_bit_identical_and_deadlock_free(
    workload, thetas, coarse_settings, coarse_hyper, programs_identical
):
    """2×THREADS barrier-synced submits, duplicate requests included.

    Threads ``i`` and ``i + THREADS`` submit the *same* request, so the
    single-flight scheduler-state path runs under maximum contention:
    identical keys claimed by one pass while concurrent passes wait for
    its record.  Every result must still be bit-identical to the serial
    reference; the module's ``deadlock_guard`` turns any hang into a
    stack dump instead of a silent timeout.
    """
    circuit, _ = workload
    stress_thetas = thetas + thetas
    with CompilationService(
        config=_EXACT_CONFIG, settings=coarse_settings, hyperparameters=coarse_hyper
    ) as serial_service:
        serial = [
            serial_service.compile(request)
            for request in _requests(circuit, stress_thetas)
        ]

    service = CompilationService(
        config=_EXACT_CONFIG, settings=coarse_settings, hyperparameters=coarse_hyper
    )
    requests = _requests(circuit, stress_thetas)
    futures = [None] * len(requests)
    barrier = threading.Barrier(len(requests))

    def submit(index):
        barrier.wait()
        futures[index] = service.submit(requests[index])

    threads = [
        threading.Thread(target=submit, args=(i,))
        for i in range(len(requests))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    concurrent = [future.result(timeout=300) for future in futures]

    for serial_result, concurrent_result in zip(serial, concurrent):
        assert programs_identical(
            serial_result.program, concurrent_result.program
        )

    stats = service.stats()
    assert stats["requests"]["total"] == len(requests)
    assert stats["scheduler"]["batches"] == len(requests)
    assert stats["scheduler"]["cross_call_hits"] > 0
    service.close()


def test_shared_persistent_pool_created_once(
    workload, thetas, coarse_settings, coarse_hyper
):
    """Under a persistent executor, the whole concurrent run amortizes one
    worker pool (the "one pool" half of the satellite)."""
    circuit, _ = workload
    service = CompilationService(
        config=ServiceConfig(executor="thread-persistent", max_workers=2),
        settings=coarse_settings,
        hyperparameters=coarse_hyper,
    )
    pools_before = service.executor.pools_created
    futures = [service.submit(request) for request in _requests(circuit, thetas)]
    results = [future.result(timeout=300) for future in futures]
    assert len(results) == THREADS
    assert service.executor.pools_created - pools_before <= 1
    executors = {id(service.executor)}
    assert len(executors) == 1
    service.close()
