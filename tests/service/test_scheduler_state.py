"""SchedulerState disk spill/resume and the service's use of it."""

import json

import numpy as np
import pytest

from repro.errors import PipelineError
from repro.pipeline.scheduler import (
    SCHEDULER_STATE_SCHEMA_VERSION,
    SchedulerState,
)
from repro.service import CompilationService, CompileRequest, ServiceConfig



def _populated_state(workload, coarse_settings, coarse_hyper):
    """Run one compile through a service to fill its scheduler state."""
    circuit, theta = workload
    service = CompilationService(
        settings=coarse_settings, hyperparameters=coarse_hyper
    )
    result = service.compile(
        CompileRequest(circuit, theta, strategy="full-grape", max_block_width=2)
    )
    return service, result


class TestSaveLoad:
    def test_round_trip_bit_identical(
        self, tmp_path, workload, coarse_settings, coarse_hyper
    ):
        service, _ = _populated_state(workload, coarse_settings, coarse_hyper)
        state = service.scheduler_state
        assert len(state) > 0
        path = tmp_path / "state.json"
        written = state.save(path)
        assert written == len(state)

        loaded = SchedulerState.load(path)
        assert set(loaded.seen) == set(state.seen)
        assert loaded.max_entries == state.max_entries
        assert loaded.batches == state.batches
        for key, block in state.seen.items():
            restored = loaded.seen[key]
            assert np.array_equal(
                restored.outcome.schedule.controls, block.outcome.schedule.controls
            )
            assert restored.outcome.duration_ns == block.outcome.duration_ns
            assert restored.outcome.used_grape == block.outcome.used_grape
            if block.cache_entry is not None:
                assert np.array_equal(
                    restored.cache_entry.schedule.controls,
                    block.cache_entry.schedule.controls,
                )
        service.close()

    def test_schema_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "state.json"
        SchedulerState().save(path)
        payload = json.loads(path.read_text())
        payload["schema_version"] = SCHEDULER_STATE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(payload))
        with pytest.raises(PipelineError, match="schema version"):
            SchedulerState.load(path)

    def test_malformed_entries_rejected_as_pipeline_error(self, tmp_path):
        """Right schema version but broken entries must not escape as
        KeyError — tolerant callers catch PipelineError only."""
        path = tmp_path / "state.json"
        path.write_text(
            json.dumps(
                {
                    "schema_version": SCHEDULER_STATE_SCHEMA_VERSION,
                    "entries": [{}],
                }
            )
        )
        with pytest.raises(PipelineError, match="malformed entries"):
            SchedulerState.load(path)

    def test_service_comes_up_over_malformed_entries(self, tmp_path):
        path = tmp_path / "state.json"
        path.write_text(
            json.dumps(
                {
                    "schema_version": SCHEDULER_STATE_SCHEMA_VERSION,
                    "entries": [{"key": ["x"], "outcome": {"bad": 1}}],
                }
            )
        )
        config = ServiceConfig(scheduler_state_path=str(path))
        with pytest.warns(UserWarning, match="ignoring scheduler state"):
            service = CompilationService(config=config)
        assert len(service.scheduler_state) == 0
        service.close()

    def test_non_state_file_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{\"hello\": 1}")
        with pytest.raises(PipelineError):
            SchedulerState.load(path)
        path.write_text("not json at all")
        with pytest.raises(PipelineError):
            SchedulerState.load(path)

    def test_save_is_atomic(self, tmp_path, workload, coarse_settings, coarse_hyper):
        service, _ = _populated_state(workload, coarse_settings, coarse_hyper)
        path = tmp_path / "state.json"
        service.scheduler_state.save(path)
        assert not (tmp_path / "state.json.tmp").exists()
        service.close()


class TestServiceResume:
    """Satellite: a new process resumes a session's dedup memory."""

    def test_new_service_resumes_dedup_memory(
        self, tmp_path, workload, coarse_settings, coarse_hyper, programs_identical
    ):
        circuit, theta = workload
        path = tmp_path / "scheduler.json"
        config = ServiceConfig(scheduler_state_path=str(path))
        with CompilationService(
            config=config, settings=coarse_settings, hyperparameters=coarse_hyper
        ) as first:
            cold = first.compile(
                CompileRequest(
                    circuit, theta, strategy="full-grape", max_block_width=2
                )
            )
        assert path.exists()  # close() spilled the state
        assert cold.metadata["scheduler"]["reused_blocks"] == 0
        assert cold.metadata["scheduler"]["dispatched_tasks"] > 0

        # A second service (a "new process") starts from the spilled file:
        # every block is served from the resumed memory, zero dispatches.
        with CompilationService(
            config=config, settings=coarse_settings, hyperparameters=coarse_hyper
        ) as second:
            warm = second.compile(
                CompileRequest(
                    circuit, theta, strategy="full-grape", max_block_width=2
                )
            )
        assert warm.metadata["scheduler"]["dispatched_tasks"] == 0
        assert warm.metadata["scheduler"]["reused_blocks"] > 0
        assert programs_identical(cold.program, warm.program)

    def test_corrupt_state_file_starts_fresh_with_warning(
        self, tmp_path, workload, coarse_settings, coarse_hyper
    ):
        circuit, theta = workload
        path = tmp_path / "scheduler.json"
        path.write_text("corrupted")
        config = ServiceConfig(scheduler_state_path=str(path))
        with pytest.warns(UserWarning, match="ignoring scheduler state"):
            service = CompilationService(
                config=config, settings=coarse_settings, hyperparameters=coarse_hyper
            )
        assert len(service.scheduler_state) == 0
        service.close()
        # close() replaced the corrupt file with a valid (empty) state.
        assert SchedulerState.load(path).batches == 0

    def test_explicit_save_requires_a_path_when_unconfigured(self):
        service = CompilationService()
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            service.save_scheduler_state()
        service.close()
