"""The legacy compiler constructors: working shims, one warning each."""

import warnings

import pytest

from repro.service import CompilationService, CompileRequest
from repro.service.config import ReproDeprecationWarning


def _caught(fn):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        value = fn()
    return value, [
        w for w in caught if issubclass(w.category, ReproDeprecationWarning)
    ]


class TestShimsWarnOnce:
    def test_gate_based(self):
        from repro.core import GateBasedCompiler

        compiler, warned = _caught(GateBasedCompiler)
        assert len(warned) == 1
        assert "CompilationService" in str(warned[0].message)
        assert compiler.method == "gate"

    def test_step_function(self):
        from repro.core import StepFunctionGateCompiler

        compiler, warned = _caught(StepFunctionGateCompiler)
        assert len(warned) == 1
        assert compiler.method == "step-function"

    def test_full_grape(self):
        from repro.core import FullGrapeCompiler

        compiler, warned = _caught(FullGrapeCompiler)
        assert len(warned) == 1
        assert compiler.method == "grape"

    def test_strict_precompile_warns_once(
        self, workload, coarse_settings, coarse_hyper
    ):
        from repro.core import StrictPartialCompiler

        circuit, theta = workload
        compiler, warned = _caught(
            lambda: StrictPartialCompiler.precompile(
                circuit,
                settings=coarse_settings,
                hyperparameters=coarse_hyper,
                max_block_width=2,
            )
        )
        assert len(warned) == 1
        # The shim still works end-to-end.
        assert compiler.compile(theta).runtime_iterations == 0

    def test_flexible_precompile_warns_once(
        self, workload, coarse_settings, coarse_hyper
    ):
        from repro.core import FlexiblePartialCompiler

        circuit, _theta = workload
        compiler, warned = _caught(
            lambda: FlexiblePartialCompiler.precompile(
                circuit,
                settings=coarse_settings,
                hyperparameters=coarse_hyper,
                max_block_width=2,
                tuning_samples=1,
            )
        )
        assert len(warned) == 1
        assert compiler.report.parametrized_blocks > 0


class TestServicePathIsWarningFree:
    """The facade must never route through the deprecated shims."""

    @pytest.mark.parametrize(
        "strategy", ["gate", "step-function", "strict-partial"]
    )
    def test_service_compile_emits_no_deprecation(
        self, strategy, workload, coarse_settings, coarse_hyper
    ):
        circuit, theta = workload
        with warnings.catch_warnings():
            warnings.simplefilter("error", ReproDeprecationWarning)
            with CompilationService(
                settings=coarse_settings, hyperparameters=coarse_hyper
            ) as service:
                result = service.compile(
                    CompileRequest(
                        circuit, theta, strategy=strategy, max_block_width=2
                    )
                )
        assert result.pulse_duration_ns > 0
