"""CompilationService facade: strategy parity, registry, lifecycle."""

import warnings

import pytest

from repro.core import PulseCache
from repro.errors import PipelineError, ReproError
from repro.service import (
    CompilationService,
    CompilationStrategy,
    CompileRequest,
    CompileResult,
    available_strategies,
    get_strategy,
    register_strategy,
    unregister_strategy,
)



def _legacy(cls_name):
    """A legacy compiler class with its deprecation warning silenced."""
    import repro.core as core

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return getattr(core, cls_name)


class TestStrategyParity:
    """Acceptance criterion: all five strategies are reachable through
    ``service.compile`` with results bit-identical to the legacy classes."""

    def test_all_five_registered(self):
        assert set(available_strategies()) >= {
            "gate",
            "step-function",
            "full-grape",
            "strict-partial",
            "flexible-partial",
        }

    def _service(self, settings, hyper):
        return CompilationService(settings=settings, hyperparameters=hyper)

    def test_gate_matches_legacy(self, workload, programs_identical):
        circuit, theta = workload
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = _legacy("GateBasedCompiler")().compile_parametrized(
                circuit, theta
            )
        with CompilationService() as service:
            result = service.compile(
                CompileRequest(circuit, theta, strategy="gate")
            )
        assert programs_identical(legacy.program, result.program)

    def test_step_function_matches_legacy(self, workload, programs_identical):
        circuit, theta = workload
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = _legacy("StepFunctionGateCompiler")().compile_parametrized(
                circuit, theta
            )
        with CompilationService() as service:
            result = service.compile(
                CompileRequest(circuit, theta, strategy="step-function")
            )
        assert programs_identical(legacy.program, result.program)

    def test_full_grape_matches_legacy(
        self, workload, coarse_settings, coarse_hyper, programs_identical
    ):
        circuit, theta = workload
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = _legacy("FullGrapeCompiler")(
                settings=coarse_settings,
                hyperparameters=coarse_hyper,
                max_block_width=2,
                cache=PulseCache(),
            ).compile_parametrized(circuit, theta, use_cache=True)
        with self._service(coarse_settings, coarse_hyper) as service:
            result = service.compile(
                CompileRequest(
                    circuit, theta, strategy="full-grape", max_block_width=2
                )
            )
        assert programs_identical(legacy.program, result.program)
        assert result.compiled.method == legacy.method == "grape"

    def test_strict_partial_matches_legacy(
        self, workload, coarse_settings, coarse_hyper, programs_identical
    ):
        circuit, theta = workload
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            compiler = _legacy("StrictPartialCompiler").precompile(
                circuit,
                settings=coarse_settings,
                hyperparameters=coarse_hyper,
                max_block_width=2,
                cache=PulseCache(),
            )
        legacy = compiler.compile(theta)
        with self._service(coarse_settings, coarse_hyper) as service:
            result = service.compile(
                CompileRequest(
                    circuit, theta, strategy="strict-partial", max_block_width=2
                )
            )
        assert programs_identical(legacy.program, result.program)
        assert result.precompile_report is not None
        assert result.compiler is not None

    def test_flexible_partial_matches_legacy(
        self, workload, coarse_settings, coarse_hyper, programs_identical
    ):
        circuit, theta = workload
        kwargs = dict(
            settings=coarse_settings,
            hyperparameters=coarse_hyper,
            max_block_width=2,
            tuning_samples=1,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            compiler = _legacy("FlexiblePartialCompiler").precompile(
                circuit, cache=PulseCache(), **kwargs
            )
        legacy = compiler.compile(theta)
        with self._service(coarse_settings, coarse_hyper) as service:
            result = service.compile(
                CompileRequest(
                    circuit,
                    theta,
                    strategy="flexible-partial",
                    max_block_width=2,
                    options={"tuning_samples": 1},
                )
            )
        assert programs_identical(legacy.program, result.program)


class TestRequestSurface:
    def test_precompile_only_request(self, workload, coarse_settings, coarse_hyper):
        circuit, _theta = workload
        with CompilationService(
            settings=coarse_settings, hyperparameters=coarse_hyper
        ) as service:
            result = service.compile(
                CompileRequest(circuit, strategy="strict-partial", max_block_width=2)
            )
        assert result.compiled is None
        assert result.compiler is not None
        replay = result.compiler.compile([0.1, 0.2])
        assert replay.runtime_iterations == 0
        with pytest.raises(ReproError):
            _ = result.pulse_duration_ns

    def test_unknown_strategy_rejected(self, workload):
        circuit, theta = workload
        with CompilationService() as service:
            with pytest.raises(ReproError, match="unknown compilation strategy"):
                service.compile(CompileRequest(circuit, theta, strategy="qiskit"))

    def test_unknown_option_rejected(self, workload):
        circuit, theta = workload
        with CompilationService() as service:
            with pytest.raises(ReproError, match="does not understand options"):
                service.compile(
                    CompileRequest(
                        circuit, theta, strategy="gate", options={"turbo": True}
                    )
                )

    def test_request_requires_circuit_and_strategy(self):
        with pytest.raises(ReproError):
            CompileRequest(None)
        with pytest.raises(ReproError):
            CompileRequest(object(), strategy="")

    def test_compile_rejects_non_requests(self, workload):
        circuit, theta = workload
        with CompilationService() as service:
            with pytest.raises(ReproError):
                service.compile(circuit)


class TestRegistry:
    def test_register_third_party_strategy(self, workload):
        circuit, theta = workload

        class EchoStrategy(CompilationStrategy):
            name = "echo"

            def compile(self, service, request):
                return CompileResult(request=request, strategy=self.name)

        register_strategy(EchoStrategy)
        try:
            assert "echo" in available_strategies()
            with CompilationService() as service:
                result = service.compile(
                    CompileRequest(circuit, theta, strategy="echo")
                )
            assert result.strategy == "echo"
        finally:
            unregister_strategy("echo")
        assert "echo" not in available_strategies()

    def test_register_rejects_nameless_or_uncallable(self):
        with pytest.raises(ReproError):
            register_strategy(object())
        class NoCompile:
            name = "broken"
        with pytest.raises(ReproError):
            register_strategy(NoCompile())

    def test_get_strategy_materializes_builtins(self):
        assert get_strategy("gate").name == "gate"


class TestLifecycle:
    def test_stats_fold_everything(self, workload):
        circuit, theta = workload
        with CompilationService() as service:
            service.compile(CompileRequest(circuit, theta, strategy="gate"))
            stats = service.stats()
        assert stats["requests"]["total"] == 1
        assert stats["requests"]["by_strategy"] == {"gate": 1}
        assert "scheduler" in stats and "known_blocks" in stats["scheduler"]
        assert "cache" in stats and "hits" in stats["cache"]
        assert "executor" in stats
        assert stats["config"]["executor"] == service.config.executor

    def test_compile_after_close_raises(self, workload):
        circuit, theta = workload
        service = CompilationService()
        service.close()
        with pytest.raises(PipelineError):
            service.compile(CompileRequest(circuit, theta, strategy="gate"))
        with pytest.raises(PipelineError):
            service.submit(CompileRequest(circuit, theta, strategy="gate"))

    def test_close_idempotent(self):
        service = CompilationService()
        service.close()
        service.close()

    def test_close_drains_pending_submissions(self, workload):
        """A future accepted before close() completes instead of erroring."""
        circuit, theta = workload
        service = CompilationService()
        futures = [
            service.submit(CompileRequest(circuit, theta, strategy="gate"))
            for _ in range(6)
        ]
        service.close()
        results = [future.result(timeout=120) for future in futures]
        assert all(result.pulse_duration_ns > 0 for result in results)
        with pytest.raises(PipelineError):
            service.submit(CompileRequest(circuit, theta, strategy="gate"))

    def test_driver_hook_signature(self, workload):
        circuit, theta = workload
        with CompilationService(default_strategy="gate") as service:
            compiled = service.compile_parametrized(circuit, theta)
        assert compiled.method == "gate"
        assert compiled.pulse_duration_ns > 0
