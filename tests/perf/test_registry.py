"""Unit tests for the perf timer/counter registry."""

import threading
import time

from repro.perf import PerfRegistry, TimerStats, get_perf_registry


class TestCounters:
    def test_count_and_read(self):
        registry = PerfRegistry()
        assert registry.counter("x") == 0
        assert registry.count("x") == 1
        assert registry.count("x", 4) == 5
        assert registry.counter("x") == 5

    def test_thread_safety(self):
        registry = PerfRegistry()

        def bump():
            for _ in range(500):
                registry.count("n")

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.counter("n") == 4000


class TestTimers:
    def test_context_manager_records(self):
        registry = PerfRegistry()
        with registry.timer("work"):
            time.sleep(0.002)
        stats = registry.timer_stats("work")
        assert stats.count == 1
        assert stats.total_s >= 0.002
        assert stats.min_s <= stats.max_s

    def test_record_seconds_accumulates(self):
        registry = PerfRegistry()
        registry.record_seconds("t", 0.5)
        registry.record_seconds("t", 1.5)
        stats = registry.timer_stats("t")
        assert stats.count == 2
        assert stats.total_s == 2.0
        assert stats.mean_s == 1.0
        assert stats.min_s == 0.5 and stats.max_s == 1.5

    def test_timer_records_even_on_exception(self):
        registry = PerfRegistry()
        try:
            with registry.timer("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        assert registry.timer_stats("boom").count == 1

    def test_stats_as_dict_is_json_ready(self):
        stats = TimerStats()
        stats.record(0.25)
        data = stats.as_dict()
        assert data["count"] == 1
        assert data["total_s"] == 0.25
        assert data["mean_s"] == 0.25


class TestLifecycle:
    def test_snapshot_and_reset(self):
        registry = PerfRegistry()
        registry.count("c", 3)
        registry.record_seconds("t", 0.1)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 3}
        assert snap["timers"]["t"]["count"] == 1
        registry.reset()
        assert registry.snapshot() == {"counters": {}, "timers": {}}
        # Snapshot is a copy, not a view.
        snap["counters"]["c"] = 99
        assert registry.counter("c") == 0

    def test_global_registry_is_a_singleton(self):
        assert get_perf_registry() is get_perf_registry()


class TestPipelineIntegration:
    def test_stage_timings_land_in_global_registry(self):
        from repro.circuits.circuit import QuantumCircuit
        from repro.pipeline import BindStage, CompilationPipeline

        registry = get_perf_registry()
        stats_before = registry.timer_stats("pipeline.stage.bind")
        count_before = stats_before.count if stats_before else 0
        pipeline = CompilationPipeline([BindStage()], name="t")
        pipeline.run(QuantumCircuit(1).h(0))
        assert registry.timer_stats("pipeline.stage.bind").count == count_before + 1
