"""Smoke test for the benchmark-JSON harness (quick mode)."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"


@pytest.fixture(scope="module")
def harness():
    spec = importlib.util.spec_from_file_location(
        "run_benchmarks", BENCH_DIR / "run_benchmarks.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("run_benchmarks", module)
    spec.loader.exec_module(module)
    return module


class TestGrapeKernelBench:
    @pytest.fixture(scope="class")
    def payload(self, harness, tmp_path_factory):
        out = tmp_path_factory.mktemp("bench")
        harness.main(["--quick", "--only", "grape_kernel", "--output-dir", str(out)])
        return json.loads((out / "BENCH_grape_kernel.json").read_text())

    def test_schema(self, payload):
        assert payload["benchmark"] == "grape_kernel"
        assert payload["quick"] is True
        assert payload["schema_version"] == 1
        assert "host" in payload and payload["host"]["cpu_count"] >= 1

    def test_before_after_entries_present(self, payload):
        names = {entry["name"] for entry in payload["entries"]}
        assert "3q-qutrit-dim27-before" in names
        assert "3q-qutrit-dim27-after" in names
        for entry in payload["entries"]:
            assert entry["per_iteration_ms"] > 0
            assert entry["max_abs_deviation"] <= 1e-10

    def test_dim27_block_is_paper_scale(self, payload):
        dim27 = [e for e in payload["entries"] if e["case"] == "3q-qutrit-dim27"]
        assert all(e["dim"] == 27 for e in dim27)

    @pytest.mark.slow
    def test_headline_speedup_floor(self, payload):
        """The dim-27 rewrite speedup holds a conservative floor.

        The committed artifact (``benchmarks/results/BENCH_grape_kernel.json``,
        taken on a quiet machine) records the full ≥2× headline number; this
        floor is deliberately loose and marked ``slow`` so the fast CI tier
        never flakes on scheduler noise while a real kernel regression still
        gets caught by the full suite / perf-smoke job.
        """
        assert payload["derived"]["headline_speedup"] >= 1.4


class TestSessionBench:
    @pytest.fixture(scope="class")
    def outputs(self, harness, tmp_path_factory):
        out = tmp_path_factory.mktemp("bench_session")
        harness.main(["--quick", "--only", "session", "--output-dir", str(out)])
        return out

    def test_steady_state_beats_cold_iteration(self, outputs):
        payload = json.loads((outputs / "BENCH_session.json").read_text())
        derived = payload["derived"]
        assert derived["steady_wall_s"] < derived["cold_wall_s"]
        assert derived["steady_state_speedup"] > 1.0
        assert derived["reused_blocks_total"] > 0

    def test_iteration_entries_show_reuse(self, outputs):
        payload = json.loads((outputs / "BENCH_session.json").read_text())
        entries = {entry["name"]: entry for entry in payload["entries"]}
        assert entries["iteration_0"]["reused_blocks"] == 0
        later = [e for name, e in entries.items() if name != "iteration_0"]
        assert all(e["reused_blocks"] > 0 for e in later)
        assert all(
            e["dispatched_tasks"] < entries["iteration_0"]["dispatched_tasks"]
            for e in later
        )

    def test_trend_row_appended(self, harness, outputs):
        trend = outputs / "BENCH_trend.jsonl"
        assert trend.exists()
        rows = [json.loads(line) for line in trend.read_text().splitlines()]
        assert len(rows) == 1
        assert rows[0]["quick"] is True
        assert "session" in rows[0]["benches"]
        # A second run appends instead of overwriting.
        harness.main(["--quick", "--only", "session", "--output-dir", str(outputs)])
        rows = [json.loads(line) for line in trend.read_text().splitlines()]
        assert len(rows) == 2


class TestServiceConcurrencyBench:
    @pytest.fixture(scope="class")
    def payload(self, harness, tmp_path_factory):
        out = tmp_path_factory.mktemp("bench_service_concurrency")
        harness.main(
            ["--quick", "--only", "service_concurrency", "--output-dir", str(out)]
        )
        return json.loads((out / "BENCH_service_concurrency.json").read_text())

    def test_hot_loop_skips_blocking(self, payload):
        """The bench's own gates already enforce this (it raises when an
        iteration ≥ 1 misses the plan); the smoke re-checks the artifact."""
        derived = payload["derived"]
        assert derived["plan_misses"] == 1
        hot = [e for e in payload["entries"] if e["name"].startswith("hot_")]
        assert derived["blocking_passes_skipped"] == len(hot) - 1
        assert hot[0]["plan_cache"] == "miss"
        assert all(e["plan_cache"] == "hit" for e in hot[1:])

    def test_concurrent_never_slower_within_margin(self, payload):
        """The CI satellite gate, re-checked from the artifact: 1-CPU safe
        (the bench asserts ≤1.25× serial before writing the file)."""
        derived = payload["derived"]
        assert derived["concurrent_wall_s"] <= derived["serial_wall_s"] * 1.25
        assert derived["durations_match"] is True
        assert derived["submit_workers"] >= 1


class TestServiceLoadBench:
    @pytest.fixture(scope="class")
    def payload(self, harness, tmp_path_factory):
        out = tmp_path_factory.mktemp("bench_service_load")
        harness.main(
            ["--quick", "--only", "service_load", "--output-dir", str(out)]
        )
        return json.loads((out / "BENCH_service_load.json").read_text())

    def test_inline_and_fleet_measured(self, payload):
        derived = payload["derived"]
        for config in ("inline", "fleet_2w"):
            assert derived[f"{config}_throughput_rps"] > 0
            assert derived[f"{config}_p50_ms"] > 0
            assert derived[f"{config}_p99_ms"] >= derived[f"{config}_p50_ms"]
        names = {e["name"] for e in payload["entries"]}
        assert "inline_round_0" in names and "fleet_2w_round_0" in names

    def test_dispatchers_bit_identical(self, payload):
        assert payload["derived"]["durations_match"] is True

    def test_fleet_never_slower_within_margin(self, payload):
        """The CI gate, re-checked from the artifact (the bench raises
        before writing the file when the ratio breaches the margin)."""
        ratio = payload["derived"]["fleet_2w_vs_inline"]
        assert ratio >= 1.0 / 1.35

    def test_fleet_workers_split_the_jobs(self, payload):
        by_worker = payload["derived"]["fleet_2w_completions_by_worker"]
        # Warmup + timed rounds all flow through the one dispatcher; every
        # completion is attributed to a real worker id.
        assert sum(by_worker.values()) >= 2
        assert all(count > 0 for count in by_worker.values())


class TestGrapeBatchBench:
    @pytest.fixture(scope="class")
    def payload(self, harness, tmp_path_factory):
        out = tmp_path_factory.mktemp("bench_grape_batch")
        harness.main(["--quick", "--only", "grape_batch", "--output-dir", str(out)])
        return json.loads((out / "BENCH_grape_batch.json").read_text())

    def test_batched_matches_per_block_and_never_loses(self, payload):
        """The bench's own gates enforce ≤1e-10 equivalence and the
        never-slower margin before writing; the smoke re-checks the
        artifact."""
        by_name = {entry["name"]: entry for entry in payload["entries"]}
        for batch in (4, 8, 16):
            per_block = by_name[f"per-block-{batch}"]
            batched = by_name[f"batched-{batch}"]
            assert batched["max_abs_deviation"] <= 1e-10
            assert batched["iterations"] == per_block["iterations"]
            assert batched["wall_s"] <= per_block["wall_s"] * 1.10
            assert payload["derived"][f"speedup_batch_{batch}"] > 0

    def test_headline_tracks_the_8_block_case(self, payload):
        derived = payload["derived"]
        assert derived["headline_speedup"] == derived["speedup_batch_8"]

    def test_scan_sweep_covers_sequential_and_default(self, payload):
        sweep = [e for e in payload["entries"] if e["name"].startswith("scan-")]
        sizes = {e["block_size"] for e in sweep}
        assert 1 in sizes
        assert payload["derived"]["scan_default_block_size"] in sizes
        assert all(e["per_call_ms"] > 0 for e in sweep)


@pytest.mark.slow
class TestPipelineBench:
    def test_auto_never_slower_than_serial(self, harness, tmp_path):
        """The CI satellite gate: whatever mode ``auto`` picked for this
        host, the bench raises (writing nothing) if it lost to serial
        beyond the noise margin."""
        harness.main(["--quick", "--only", "pipeline", "--output-dir", str(tmp_path)])
        payload = json.loads((tmp_path / "BENCH_pipeline.json").read_text())
        assert payload["derived"]["durations_match"] is True
        names = [entry["name"] for entry in payload["entries"]]
        assert names == ["serial", "auto"]
        by_name = {entry["name"]: entry for entry in payload["entries"]}
        assert by_name["auto"]["wall_s"] <= by_name["serial"]["wall_s"] * 1.15
        assert payload["derived"]["auto_mode"] in ("inline", "thread-persistent")


class TestWarmStartBench:
    @pytest.fixture(scope="class")
    def payload(self, harness, tmp_path_factory):
        out = tmp_path_factory.mktemp("bench_warm_start")
        harness.main(["--quick", "--only", "warm_start", "--output-dir", str(out)])
        return json.loads((out / "BENCH_warm_start.json").read_text())

    def test_three_modes_measured(self, payload):
        names = [entry["name"] for entry in payload["entries"]]
        assert names == ["cold", "neighbor", "kak"]

    def test_neighbor_seeding_never_slower(self, payload):
        """The CI gate: the bench raises (writing nothing) if seeding cost
        iterations or lengthened the pulses; the smoke re-checks the
        artifact."""
        derived = payload["derived"]
        assert derived["neighbor_iterations"] <= derived["cold_iterations"]
        assert derived["duration_ratio_neighbor"] <= 1.0
        assert derived["iteration_reduction_neighbor"] >= 0.0

    def test_every_variant_neighbor_seeded(self, payload):
        by_name = {entry["name"]: entry for entry in payload["entries"]}
        assert payload["derived"]["neighbor_seeds_used"] == (
            by_name["neighbor"]["variants"]
        )

    def test_telemetry_recorded(self, payload):
        telemetry = payload["derived"]["telemetry"]
        assert telemetry["neighbor_seeds"] >= 1
        assert telemetry["lookups"] >= telemetry["neighbor_seeds"]
