"""Shared fixtures.

GRAPE-heavy tests use deliberately coarse settings (0.25 ns slices, relaxed
fidelity target, small iteration budgets) so the whole suite stays fast;
the physics is identical, only the resolution differs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.pulse.device import GmonDevice
from repro.pulse.grape.engine import GrapeHyperparameters, GrapeSettings
from repro.transpile.topology import line_topology


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def two_qubit_device():
    return GmonDevice(line_topology(2))


@pytest.fixture
def three_qubit_device():
    return GmonDevice(line_topology(3))


@pytest.fixture
def fast_settings():
    """Coarse GRAPE settings for quick unit tests."""
    return GrapeSettings(dt_ns=0.25, target_fidelity=0.99)


@pytest.fixture
def fast_hyper():
    return GrapeHyperparameters(learning_rate=0.05, decay_rate=0.002, max_iterations=200)
