"""Cross-circuit block dedup: each unique block compiles exactly once."""

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.parameters import Parameter
from repro.core import FullGrapeCompiler, PulseCache
from repro.core.compiler import BlockPulseCompiler
from repro.errors import PipelineError
from repro.perf import get_perf_registry
from repro.pipeline import BlockScheduler
from repro.pipeline.strategies import full_grape_pipeline
from repro.pulse.device import GmonDevice
from repro.pulse.grape.engine import GrapeHyperparameters, GrapeSettings
from repro.transpile.topology import line_topology

SETTINGS = GrapeSettings(dt_ns=0.5, target_fidelity=0.95)
HYPER = GrapeHyperparameters(0.05, 0.002, max_iterations=120)


class CountingCache(PulseCache):
    """A cache that records every key GRAPE actually computed (put) for."""

    def __init__(self):
        super().__init__()
        self.put_keys = []

    def put(self, key, entry, target=None):
        self.put_keys.append(key)
        super().put(key, entry, target=target)


def _shared_block_circuit(theta: float = 0.0) -> QuantumCircuit:
    """Two translated copies of one entangling block (+ optional Rz)."""
    circuit = QuantumCircuit(4)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.h(2)
    circuit.cx(2, 3)
    if theta:
        circuit.rz(theta, 1)
    return circuit


def _compiler(cache=None) -> FullGrapeCompiler:
    return FullGrapeCompiler(
        device=GmonDevice(line_topology(4)),
        settings=SETTINGS,
        hyperparameters=HYPER,
        max_block_width=2,
        cache=cache if cache is not None else PulseCache(),
    )


class TestCompileMany:
    def test_shared_blocks_compile_exactly_once(self):
        """The acceptance contract: ≥3 circuits sharing blocks, each unique
        block GRAPE-compiled exactly once, asserted via telemetry."""
        cache = CountingCache()
        circuits = [
            _shared_block_circuit(),
            _shared_block_circuit(),
            _shared_block_circuit(0.3),
        ]
        results = _compiler(cache).compile_many(circuits)
        assert len(results) == 3
        scheduler = results[0].metadata["scheduler"]
        # 2 blocks per circuit; the h+cx block is shared by all three
        # circuits (and its translated copy within each), the rz variant
        # appears only in the third.
        assert scheduler["total_blocks"] == 6
        assert scheduler["unique_blocks"] == 2
        assert scheduler["deduped_blocks"] == 4
        assert scheduler["dispatched_tasks"] == scheduler["unique_blocks"]
        # GRAPE ran exactly once per unique block: one cache put per key,
        # no key computed twice.
        assert len(cache.put_keys) == 2
        assert len(set(cache.put_keys)) == 2

    def test_batch_matches_single_circuit_compiles(self):
        circuits = [_shared_block_circuit(), _shared_block_circuit(0.4)]
        batch = _compiler().compile_many(circuits)
        singles = [_compiler().compile(c) for c in circuits]
        for batched, single in zip(batch, singles):
            assert batched.pulse_duration_ns == pytest.approx(
                single.pulse_duration_ns
            )
            assert batched.blocks_compiled == single.blocks_compiled

    def test_duplicates_cost_zero_iterations(self):
        results = _compiler().compile_many(
            [_shared_block_circuit(), _shared_block_circuit()]
        )
        assert results[0].runtime_iterations > 0
        assert results[1].runtime_iterations == 0
        assert results[1].cache_hits == results[1].blocks_compiled

    def test_translated_duplicate_lands_on_its_own_qubits(self):
        results = _compiler().compile_many([_shared_block_circuit()])
        schedules = results[0].program.schedules
        qubit_sets = {tuple(s.qubits) for s in schedules}
        assert (0, 1) in qubit_sets and (2, 3) in qubit_sets

    def test_perf_counters_record_dedup(self):
        registry = get_perf_registry()
        before_unique = registry.counter("scheduler.unique_blocks")
        before_deduped = registry.counter("scheduler.deduped_blocks")
        _compiler().compile_many([_shared_block_circuit()] * 2)
        assert registry.counter("scheduler.unique_blocks") == before_unique + 1
        assert registry.counter("scheduler.deduped_blocks") == before_deduped + 3

    def test_empty_batch(self):
        assert _compiler().compile_many([]) == []

    def test_compile_parametrized_many_dedups_theta_free_blocks(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.rz(Parameter("theta"), 1)
        circuit.cx(0, 1)
        results = _compiler().compile_parametrized_many(
            circuit, [[0.1], [0.2], [0.3]]
        )
        scheduler = results[0].metadata["scheduler"]
        assert scheduler["circuits"] == 3
        # The bound circuits differ only in the Rz angle; with width-2
        # blocking the whole circuit is one block per binding, all unique.
        assert scheduler["total_blocks"] == 3
        assert len(results) == 3

    def test_thread_executor_still_exact_once(self):
        cache = CountingCache()
        compiler = FullGrapeCompiler(
            device=GmonDevice(line_topology(4)),
            settings=SETTINGS,
            hyperparameters=HYPER,
            max_block_width=2,
            cache=cache,
            executor="thread",
        )
        results = compiler.compile_many([_shared_block_circuit()] * 3)
        assert results[0].metadata["scheduler"]["unique_blocks"] == 1
        assert len(cache.put_keys) == 1


class TestRunMany:
    def test_empty_batch_returns_no_contexts_and_a_zero_report(self):
        block_compiler = BlockPulseCompiler(
            GmonDevice(line_topology(4)), SETTINGS, HYPER, PulseCache()
        )
        pipeline = full_grape_pipeline(block_compiler, 2)
        contexts, report = pipeline.run_many([])
        assert contexts == []
        assert report.circuits == 0
        assert report.total_blocks == 0
        assert report.dispatched_tasks == 0

    def test_single_circuit_batch_equals_plain_run(self):
        block_compiler = BlockPulseCompiler(
            GmonDevice(line_topology(4)), SETTINGS, HYPER, PulseCache()
        )
        pipeline = full_grape_pipeline(block_compiler, 2)
        circuit = _shared_block_circuit(0.7)
        contexts, report = pipeline.run_many([circuit])
        single = full_grape_pipeline(
            BlockPulseCompiler(
                GmonDevice(line_topology(4)), SETTINGS, HYPER, PulseCache()
            ),
            2,
        ).run(circuit)
        assert report.circuits == 1
        assert contexts[0].program.duration_ns == pytest.approx(
            single.program.duration_ns
        )
        assert len(contexts[0].block_results) == len(single.block_results)

    def test_values_length_mismatch_raises(self):
        block_compiler = BlockPulseCompiler(
            GmonDevice(line_topology(4)), SETTINGS, HYPER, PulseCache()
        )
        pipeline = full_grape_pipeline(block_compiler, 2)
        with pytest.raises(PipelineError):
            pipeline.run_many([_shared_block_circuit()], values=[None, None])

    def test_contexts_carry_scheduler_metadata_and_timings(self):
        block_compiler = BlockPulseCompiler(
            GmonDevice(line_topology(4)), SETTINGS, HYPER, PulseCache()
        )
        pipeline = full_grape_pipeline(block_compiler, 2)
        contexts, report = pipeline.run_many([_shared_block_circuit()] * 2)
        assert report.unique_blocks == 1
        for context in contexts:
            assert context.metadata["scheduler"]["unique_blocks"] == 1
            stage_names = [name for name, _ in context.stage_timings]
            assert stage_names == ["bind", "block", "pulse", "assemble"]
            assert context.program is not None

    def test_pipeline_without_dedup_capable_pulse_stage_falls_back(self):
        from repro.pipeline.strategies import gate_based_pipeline

        pipeline = gate_based_pipeline()
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        contexts, report = pipeline.run_many([circuit, circuit])
        assert report is None
        assert all(c.program is not None for c in contexts)


class TestBlockScheduler:
    def test_requires_blocked_contexts(self):
        from repro.pipeline.stages import PipelineContext

        block_compiler = BlockPulseCompiler(
            GmonDevice(line_topology(2)), SETTINGS, HYPER, PulseCache()
        )
        scheduler = BlockScheduler(block_compiler)
        with pytest.raises(PipelineError):
            scheduler.run([PipelineContext(circuit=QuantumCircuit(1))])

    def test_trivial_blocks_compile_inline(self):
        block_compiler = BlockPulseCompiler(
            GmonDevice(line_topology(2)), SETTINGS, HYPER, PulseCache()
        )
        pipeline = full_grape_pipeline(block_compiler, 2)
        # An identity-only circuit produces zero-duration blocks (no GRAPE).
        circuit = QuantumCircuit(2)
        circuit.i(0)
        circuit.i(1)
        contexts, report = pipeline.run_many([circuit])
        assert report.trivial_blocks == report.total_blocks
        assert report.dispatched_tasks == 0
        assert contexts[0].program is not None


class TestRetargetOutcome:
    def test_cache_entry_revives_discarded_pulse_for_slower_duplicate(self):
        """A GRAPE pulse the representative discarded (its own gate time was
        shorter) must still win for a duplicate whose decomposition is
        slower — exactly what the per-circuit cache-hit path would do."""
        import numpy as np

        from repro.core.cache import CacheEntry
        from repro.core.compiler import BlockCompileOutcome
        from repro.pipeline.scheduler import _retarget_outcome
        from repro.pipeline.stages import BlockTask
        from repro.pulse.schedule import PulseSchedule, lookup_schedule

        # Representative: gate-based 0.4 ns beat the 0.5 ns GRAPE pulse.
        outcome = BlockCompileOutcome(
            schedule=lookup_schedule((0,), 0.4, source="fallback"),
            duration_ns=0.4,
            gate_based_ns=0.4,
            iterations=12,
            cache_hit=False,
            used_grape=False,
            fidelity=0.97,
        )
        entry = CacheEntry(
            schedule=PulseSchedule(qubits=(0,), dt_ns=0.5, controls=np.ones((2, 1))),
            duration_ns=0.5,
            fidelity=0.97,
            converged=True,
            iterations=12,
        )
        # Duplicate: same unitary (T·T = S) but a 0.8 ns decomposition.
        task = BlockTask(
            index=1, subcircuit=QuantumCircuit(1).t(0).t(0), device_qubits=(3,)
        )
        dup = _retarget_outcome(outcome, task, entry)
        assert dup.used_grape
        assert dup.duration_ns == 0.5
        assert dup.schedule.qubits == (3,)
        assert dup.iterations == 0 and dup.cache_hit

        # Without the entry (process-pool worker kept the write), the
        # representative's outcome is the only evidence: fall back.
        conservative = _retarget_outcome(outcome, task, None)
        assert not conservative.used_grape
        assert conservative.duration_ns == pytest.approx(0.8)


class TestTaskKey:
    def test_translation_invariant_same_key(self):
        block_compiler = BlockPulseCompiler(
            GmonDevice(line_topology(4)), SETTINGS, HYPER, PulseCache()
        )
        sub = QuantumCircuit(2).h(0).cx(0, 1)
        assert block_compiler.task_key(sub, (0, 1)) == block_compiler.task_key(
            sub, (2, 3)
        )

    def test_parametrized_and_empty_blocks_have_no_key(self):
        block_compiler = BlockPulseCompiler(
            GmonDevice(line_topology(2)), SETTINGS, HYPER, PulseCache()
        )
        assert block_compiler.task_key(None, (0,)) is None
        assert block_compiler.task_key(QuantumCircuit(1), (0,)) is None
        sym = QuantumCircuit(1)
        sym.rz(Parameter("t"), 0)
        assert block_compiler.task_key(sym, (0,)) is None

    def test_key_matches_cache_key_used_by_compile_block(self):
        cache = CountingCache()
        block_compiler = BlockPulseCompiler(
            GmonDevice(line_topology(2)), SETTINGS, HYPER, cache
        )
        sub = QuantumCircuit(2).h(0).cx(0, 1)
        key = block_compiler.task_key(sub, (0, 1))
        block_compiler.compile_block(sub, (0, 1))
        assert cache.put_keys == [key]


def _two_distinct_blocks_circuit() -> QuantumCircuit:
    """Two *different* 2-qubit blocks sharing one control shape — the
    batched dispatch's target workload (dedup can't collapse them)."""
    circuit = QuantumCircuit(4)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.h(2)
    circuit.cx(2, 3)
    circuit.rz(0.3, 3)
    return circuit


class TestBatchedDispatch:
    def _run(self, grape_batch: bool):
        from repro.pipeline import SerialExecutor

        # Warm start off: seeded blocks deliberately leave the batch (each
        # seed is per-target), and these fresh 2-qubit blocks would all get
        # KAK seeds — the batching path under test would never run.
        block_compiler = BlockPulseCompiler(
            GmonDevice(line_topology(4)),
            SETTINGS,
            HYPER,
            PulseCache(),
            warm_start=False,
        )
        pipeline = full_grape_pipeline(block_compiler, 2)
        scheduler = BlockScheduler(
            block_compiler, SerialExecutor(), grape_batch=grape_batch
        )
        return pipeline.run_many(
            [_two_distinct_blocks_circuit()], scheduler=scheduler
        )

    def test_same_shape_representatives_batch(self):
        contexts, report = self._run(grape_batch=True)
        assert report.batched_groups == 1
        assert report.batched_blocks == 2
        assert report.dispatched_tasks == 2
        assert contexts[0].program is not None
        assert report.as_dict()["batched_blocks"] == 2

    def test_batched_run_matches_unbatched(self):
        import numpy as np

        batched, batched_report = self._run(grape_batch=True)
        serial, serial_report = self._run(grape_batch=False)
        assert serial_report.batched_groups == 0
        assert serial_report.batched_blocks == 0
        assert batched[0].program.duration_ns == pytest.approx(
            serial[0].program.duration_ns, abs=1e-12
        )
        for ours, theirs in zip(
            batched[0].program.schedules, serial[0].program.schedules
        ):
            assert ours.qubits == theirs.qubits
            assert np.array_equal(ours.controls, theirs.controls)

    def test_pool_executor_keeps_mapped_dispatch(self):
        """A pool executor genuinely overlaps per-block maps, so stacking
        would serialize it — batched dispatch must stand down."""
        from repro.pipeline import ThreadPoolBlockExecutor

        block_compiler = BlockPulseCompiler(
            GmonDevice(line_topology(4)), SETTINGS, HYPER, PulseCache()
        )
        pipeline = full_grape_pipeline(block_compiler, 2)
        scheduler = BlockScheduler(
            block_compiler,
            ThreadPoolBlockExecutor(max_workers=2),
            grape_batch=True,
        )
        contexts, report = pipeline.run_many(
            [_two_distinct_blocks_circuit()], scheduler=scheduler
        )
        assert report.batched_groups == 0
        assert report.batched_blocks == 0
        assert contexts[0].program is not None

    def test_compile_block_override_disables_batching(self):
        """A subclass that customizes compile_block (failure injection,
        custom judgment) must keep its override on the dispatch path."""
        from repro.pipeline import SerialExecutor

        calls = []

        class TracingCompiler(BlockPulseCompiler):
            def compile_block(self, subcircuit, device_qubits, hyperparameters=None):
                calls.append(tuple(device_qubits))
                return super().compile_block(
                    subcircuit, device_qubits, hyperparameters
                )

        block_compiler = TracingCompiler(
            GmonDevice(line_topology(4)), SETTINGS, HYPER, PulseCache()
        )
        pipeline = full_grape_pipeline(block_compiler, 2)
        scheduler = BlockScheduler(
            block_compiler, SerialExecutor(), grape_batch=True
        )
        _, report = pipeline.run_many(
            [_two_distinct_blocks_circuit()], scheduler=scheduler
        )
        assert report.batched_groups == 0
        assert len(calls) == 2

    def test_perf_counters_record_batching(self):
        registry = get_perf_registry()
        before_groups = registry.counter("scheduler.batched_groups")
        before_blocks = registry.counter("scheduler.batched_blocks")
        self._run(grape_batch=True)
        assert registry.counter("scheduler.batched_groups") == before_groups + 1
        assert registry.counter("scheduler.batched_blocks") == before_blocks + 2
