"""Persistent pulse-cache contracts: durability, concurrency, telemetry."""

import pickle
import subprocess
import sys
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.config import set_pipeline_config
from repro.core.cache import (
    CACHE_SCHEMA_VERSION,
    CacheEntry,
    PersistentPulseCache,
    PulseCache,
    default_pulse_cache,
)
from repro.pulse.device import GmonDevice
from repro.pulse.hamiltonian import build_control_set
from repro.pulse.schedule import PulseSchedule
from repro.transpile.topology import line_topology

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def _entry(duration_ns: float = 0.5) -> CacheEntry:
    schedule = PulseSchedule(qubits=(0,), dt_ns=0.1, controls=np.ones((2, 5)))
    return CacheEntry(schedule, duration_ns, 0.999, True, 100)


def _key(cache: PulseCache):
    device = GmonDevice(line_topology(2))
    control_set = build_control_set(device, [0])
    return cache.key(np.eye(2), control_set, 0.2, 0.99)


class TestRoundTrip:
    def test_cold_reload_hits(self, tmp_path):
        warm = PersistentPulseCache(tmp_path)
        key = _key(warm)
        warm.put(key, _entry())
        # A fresh instance over the same directory is exactly what a cold
        # process sees: the lookup must come back from disk.
        cold = PersistentPulseCache(tmp_path)
        loaded = cold.get(key)
        assert loaded is not None
        assert loaded.duration_ns == 0.5
        np.testing.assert_allclose(loaded.schedule.controls, np.ones((2, 5)))
        assert cold.disk_hits == 1 and cold.hits == 1 and cold.misses == 0

    def test_memory_tier_serves_repeat_lookups(self, tmp_path):
        cache = PersistentPulseCache(tmp_path)
        key = _key(cache)
        cache.put(key, _entry())
        cache.get(key)
        cache.get(key)
        assert cache.hits == 2
        assert cache.disk_hits == 0  # both served from memory

    def test_miss_counted(self, tmp_path):
        cache = PersistentPulseCache(tmp_path)
        assert cache.get(_key(cache)) is None
        assert cache.misses == 1

    def test_persisted_inventory(self, tmp_path):
        cache = PersistentPulseCache(tmp_path)
        cache.put(_key(cache), _entry())
        assert cache.persisted_count() == 1
        assert cache.persisted_bytes() > 0


class TestRobustness:
    def test_corrupt_file_is_a_miss(self, tmp_path):
        warm = PersistentPulseCache(tmp_path)
        key = _key(warm)
        warm.put(key, _entry())
        payload = next(tmp_path.rglob("*.pulse"))
        payload.write_bytes(b"not a pickle")
        cold = PersistentPulseCache(tmp_path)
        assert cold.get(key) is None
        assert cold.disk_errors == 1 and cold.misses == 1

    def test_foreign_object_is_a_disk_error(self, tmp_path):
        warm = PersistentPulseCache(tmp_path)
        key = _key(warm)
        warm.put(key, _entry())
        payload = next(tmp_path.rglob("*.pulse"))
        payload.write_bytes(pickle.dumps(["definitely", "not", "ours"]))
        cold = PersistentPulseCache(tmp_path)
        assert cold.get(key) is None
        assert cold.disk_errors == 1


class TestSchemaVersioning:
    def test_entries_carry_the_schema_tag(self, tmp_path):
        cache = PersistentPulseCache(tmp_path)
        cache.put(_key(cache), _entry())
        raw = pickle.loads(next(tmp_path.rglob("*.pulse")).read_bytes())
        assert raw["schema_version"] == CACHE_SCHEMA_VERSION
        assert isinstance(raw["entry"], CacheEntry)

    def test_legacy_bare_entry_invalidates_gracefully(self, tmp_path):
        """A v1 file (bare CacheEntry pickle) is a schema miss, not an error."""
        warm = PersistentPulseCache(tmp_path)
        key = _key(warm)
        warm.put(key, _entry())
        payload = next(tmp_path.rglob("*.pulse"))
        payload.write_bytes(pickle.dumps(_entry()))  # pre-versioning format
        cold = PersistentPulseCache(tmp_path)
        assert cold.get(key) is None
        assert cold.schema_mismatches == 1
        assert cold.disk_errors == 0
        assert cold.misses == 1

    def test_future_schema_version_invalidates_gracefully(self, tmp_path):
        warm = PersistentPulseCache(tmp_path)
        key = _key(warm)
        warm.put(key, _entry())
        payload = next(tmp_path.rglob("*.pulse"))
        payload.write_bytes(
            pickle.dumps(
                {"schema_version": CACHE_SCHEMA_VERSION + 1, "entry": _entry()}
            )
        )
        cold = PersistentPulseCache(tmp_path)
        assert cold.get(key) is None
        assert cold.schema_mismatches == 1
        assert cold.disk_errors == 0

    def test_mismatch_is_recomputed_and_overwritten(self, tmp_path):
        """The graceful-invalidate path heals the directory in place."""
        warm = PersistentPulseCache(tmp_path)
        key = _key(warm)
        path = warm._path(key)
        path.parent.mkdir(exist_ok=True)
        path.write_bytes(pickle.dumps(_entry()))  # stale v1 file
        cache = PersistentPulseCache(tmp_path)
        assert cache.get(key) is None  # schema miss → caller recomputes
        cache.put(key, _entry(0.7))  # ... and stores in the current format
        cold = PersistentPulseCache(tmp_path)
        entry = cold.get(key)
        assert entry is not None and entry.duration_ns == 0.7
        assert cold.schema_mismatches == 0

    def test_stats_report_schema_fields(self, tmp_path):
        cache = PersistentPulseCache(tmp_path)
        stats = cache.stats()
        assert stats["schema_version"] == CACHE_SCHEMA_VERSION
        assert stats["schema_mismatches"] == 0

    def test_concurrent_writers_leave_readable_entry(self, tmp_path):
        cache = PersistentPulseCache(tmp_path)
        key = _key(cache)

        def writer(duration):
            cache.put(key, _entry(duration))

        threads = [
            threading.Thread(target=writer, args=(float(i),)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Atomic replace: whatever won, the file must load cleanly.
        cold = PersistentPulseCache(tmp_path)
        assert cold.get(key) is not None
        assert cold.disk_errors == 0
        assert cache.persisted_count() == 1
        assert not list(tmp_path.rglob("*.tmp"))

    def test_pickles_without_its_lock(self, tmp_path):
        cache = PersistentPulseCache(tmp_path)
        cache.put(_key(cache), _entry())
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.get(_key(clone)) is not None


class TestTelemetry:
    def test_stats_keys(self, tmp_path):
        cache = PersistentPulseCache(tmp_path)
        key = _key(cache)
        cache.get(key)
        cache.put(key, _entry())
        stats = cache.stats()
        assert stats["backend"] == "disk"
        assert stats["directory"] == str(tmp_path)
        assert stats["hits"] == 0 and stats["misses"] == 1
        assert stats["persisted_entries"] == 1
        assert stats["store_time_s"] > 0

    def test_memory_backend_stats(self):
        cache = PulseCache()
        stats = cache.stats()
        assert stats["backend"] == "memory"
        assert "disk_hits" not in stats

    def test_default_cache_follows_config(self, tmp_path):
        original = set_pipeline_config()
        try:
            set_pipeline_config(cache_dir=str(tmp_path))
            cache = default_pulse_cache()
            assert isinstance(cache, PersistentPulseCache)
            assert cache.directory == tmp_path
            set_pipeline_config(cache_dir=None)
            assert not isinstance(default_pulse_cache(), PersistentPulseCache)
        finally:
            set_pipeline_config(cache_dir=original.cache_dir)


@pytest.mark.slow
class TestColdProcess:
    def test_second_process_compiles_from_cache(self, tmp_path):
        """End to end: a separate interpreter re-uses the persisted pulses."""
        script = f"""
import sys
sys.path.insert(0, {str(REPO_SRC)!r})
from repro.circuits.circuit import QuantumCircuit
from repro.core import FullGrapeCompiler, PersistentPulseCache
from repro.pulse.device import GmonDevice
from repro.pulse.grape.engine import GrapeHyperparameters, GrapeSettings
from repro.transpile.topology import line_topology

circuit = QuantumCircuit(2).h(0).cx(0, 1).rz(0.4, 1)
compiler = FullGrapeCompiler(
    device=GmonDevice(line_topology(2)),
    settings=GrapeSettings(dt_ns=0.5, target_fidelity=0.95),
    hyperparameters=GrapeHyperparameters(0.05, 0.002, max_iterations=150),
    max_block_width=2,
    cache=PersistentPulseCache({str(tmp_path)!r}),
)
result = compiler.compile(circuit)
print("ITER", result.runtime_iterations, "HITS", result.cache_hits)
"""
        first = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True
        )
        assert first.returncode == 0, first.stderr
        second = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True
        )
        assert second.returncode == 0, second.stderr
        tokens = second.stdout.split()
        iterations = int(tokens[tokens.index("ITER") + 1])
        hits = int(tokens[tokens.index("HITS") + 1])
        assert iterations == 0, second.stdout
        assert hits >= 1
