"""Block-executor contracts: ordering, equivalence, and configuration."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.config import set_pipeline_config
from repro.core import FullGrapeCompiler, PulseCache
from repro.errors import PipelineError
from repro.pipeline import (
    ProcessPoolBlockExecutor,
    SerialExecutor,
    ThreadPoolBlockExecutor,
    resolve_executor,
)
from repro.pulse.device import GmonDevice
from repro.pulse.grape.engine import GrapeHyperparameters, GrapeSettings
from repro.transpile.topology import line_topology

SETTINGS = GrapeSettings(dt_ns=0.25, target_fidelity=0.99)
HYPER = GrapeHyperparameters(learning_rate=0.05, decay_rate=0.002, max_iterations=200)


def _square(x):
    """Module-level so the process pool can pickle it."""
    return x * x


def _tile_circuit(num_qubits: int = 4) -> QuantumCircuit:
    """Disjoint 2-qubit tiles — one independent GRAPE block each."""
    circuit = QuantumCircuit(num_qubits, name="tiles")
    for q in range(0, num_qubits - 1, 2):
        circuit.h(q)
        circuit.cx(q, q + 1)
        circuit.rz(0.2 + 0.3 * q, q + 1)
    return circuit


def _compile(executor, num_qubits=4):
    compiler = FullGrapeCompiler(
        device=GmonDevice(line_topology(num_qubits)),
        settings=SETTINGS,
        hyperparameters=HYPER,
        max_block_width=2,
        cache=PulseCache(),
        executor=executor,
    )
    return compiler.compile(_tile_circuit(num_qubits))


class TestResolveExecutor:
    def test_names(self):
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        assert isinstance(resolve_executor("thread"), ThreadPoolBlockExecutor)
        assert isinstance(resolve_executor("process"), ProcessPoolBlockExecutor)

    def test_instance_passthrough(self):
        executor = ThreadPoolBlockExecutor(max_workers=3)
        assert resolve_executor(executor) is executor

    def test_unknown_name_rejected(self):
        with pytest.raises(PipelineError):
            resolve_executor("gpu")

    def test_default_follows_config(self):
        original = set_pipeline_config()
        try:
            set_pipeline_config(executor="thread", max_workers=2)
            resolved = resolve_executor(None)
            assert isinstance(resolved, ThreadPoolBlockExecutor)
            assert resolved.max_workers == 2
        finally:
            set_pipeline_config(
                executor=original.executor, max_workers=original.max_workers
            )

    def test_explicit_workers_override(self):
        assert ThreadPoolBlockExecutor(max_workers=5).max_workers == 5


class TestAutoExecutor:
    """``auto`` resolves per host: inline + batched on small machines,
    delegated pool maps on large ones."""

    def test_resolves_to_auto_executor(self):
        from repro.pipeline.executors import AutoExecutor

        executor = resolve_executor("auto")
        assert isinstance(executor, AutoExecutor)
        assert executor.name == "auto"

    def test_auto_is_a_registered_choice_and_the_default(self):
        from repro.config import EXECUTOR_CHOICES, PipelineConfig
        from repro.service.config import ServiceConfig

        assert "auto" in EXECUTOR_CHOICES
        assert PipelineConfig().executor == "auto"
        assert ServiceConfig().executor == "auto"

    def test_policy_flags_follow_cpu_count(self, monkeypatch):
        import repro.pipeline.executors as executors_module

        monkeypatch.setattr(executors_module.os, "cpu_count", lambda: 1)
        small = executors_module.AutoExecutor()
        assert small.prefers_inline is True
        assert small.prefers_batched is True
        assert small.speculation_helps is False

        monkeypatch.setattr(executors_module.os, "cpu_count", lambda: 8)
        large = executors_module.AutoExecutor()
        assert large.prefers_inline is False
        assert large.prefers_batched is False
        assert large.speculation_helps is True

    def test_inline_mode_runs_in_calling_thread(self, monkeypatch):
        import threading

        import repro.pipeline.executors as executors_module

        monkeypatch.setattr(executors_module.os, "cpu_count", lambda: 2)
        executor = executors_module.AutoExecutor()
        seen = []
        result = executor.map(
            lambda x: seen.append(threading.current_thread()) or x * x,
            range(5),
        )
        assert result == [x * x for x in range(5)]
        assert all(t is threading.main_thread() for t in seen)
        assert executor.inline_maps == 1
        assert executor.delegated_maps == 0

    def test_many_core_host_delegates_large_maps(self, monkeypatch):
        import repro.pipeline.executors as executors_module

        monkeypatch.setattr(executors_module.os, "cpu_count", lambda: 8)
        executor = executors_module.AutoExecutor(max_workers=2)
        assert executor.map(_square, range(6)) == [x * x for x in range(6)]
        assert executor.delegated_maps == 1
        # Tiny maps stay inline even on a big host — pool overhead loses.
        assert executor.map(_square, range(2)) == [0, 1]
        assert executor.inline_maps == 1

    def test_describe_reports_mode(self):
        info = resolve_executor("auto").describe()
        assert info["executor"] == "auto"
        assert info["mode"] in ("inline", "thread-persistent")
        assert info["cpu_count"] >= 1

    def test_serial_prefers_batched_pools_do_not(self):
        from repro.pipeline.executors import (
            PersistentThreadPoolBlockExecutor,
        )

        assert SerialExecutor().prefers_batched is True
        assert ThreadPoolBlockExecutor(max_workers=2).prefers_batched is False
        pool = PersistentThreadPoolBlockExecutor(max_workers=2)
        try:
            assert pool.prefers_batched is False
            assert pool.speculation_helps is True
        finally:
            pool.close()

    def test_auto_compile_matches_serial(self):
        serial = _compile("serial")
        auto = _compile("auto")
        assert auto.blocks_compiled == serial.blocks_compiled
        assert np.isclose(auto.pulse_duration_ns, serial.pulse_duration_ns)
        for ours, theirs in zip(
            auto.program.schedules, serial.program.schedules
        ):
            np.testing.assert_allclose(ours.controls, theirs.controls)


class TestAutoExecutorDemandGrowth:
    """Without a pinned ``max_workers`` the delegated pool is sized from
    observed map sizes, doubling toward ``min(cpu_count, largest map)``."""

    def _executor(self, monkeypatch, cores: int, max_workers=None):
        import repro.pipeline.executors as executors_module

        monkeypatch.setattr(executors_module.os, "cpu_count", lambda: cores)
        return executors_module.AutoExecutor(max_workers)

    def test_first_delegation_grants_the_initial_pool(self, monkeypatch):
        executor = self._executor(monkeypatch, 16)
        assert executor.granted_workers is None
        assert executor.map(_square, range(4)) == [x * x for x in range(4)]
        assert executor.granted_workers == executor.INITIAL_GRANT
        assert executor.largest_map == 4
        assert executor.pool_growths == 0

    def test_grant_doubles_as_bigger_maps_arrive(self, monkeypatch):
        executor = self._executor(monkeypatch, 16)
        executor.map(_square, range(4))   # grant 4
        executor.map(_square, range(9))   # 4 → 8 → 16? target min(16, 9)=9
        assert executor.granted_workers == 16
        assert executor.pool_growths == 2
        assert executor.largest_map == 9
        # Smaller maps afterwards never shrink the grant.
        executor.map(_square, range(5))
        assert executor.granted_workers == 16
        assert executor.pool_growths == 2

    def test_grant_is_capped_by_cpu_count(self, monkeypatch):
        executor = self._executor(monkeypatch, 6)
        executor.map(_square, range(40))
        assert executor.granted_workers == 6
        assert executor.largest_map == 40

    def test_pinned_max_workers_never_grows(self, monkeypatch):
        executor = self._executor(monkeypatch, 16, max_workers=3)
        executor.map(_square, range(12))
        executor.map(_square, range(12))
        assert executor.granted_workers == 3
        assert executor.pool_growths == 0

    def test_growth_is_visible_in_describe(self, monkeypatch):
        executor = self._executor(monkeypatch, 8)
        executor.map(_square, range(8))
        info = executor.describe()
        assert info["granted_workers"] == 8
        assert info["largest_map"] == 8
        assert info["pool_growths"] == 1


class TestMapContract:
    @pytest.mark.parametrize("executor_name", ["serial", "thread", "process"])
    def test_order_preserved(self, executor_name):
        executor = resolve_executor(executor_name, max_workers=2)
        assert executor.map(_square, range(7)) == [x * x for x in range(7)]

    def test_empty_items(self):
        for name in ("serial", "thread", "process"):
            assert resolve_executor(name).map(_square, []) == []

    def test_describe_reports_workers(self):
        info = ThreadPoolBlockExecutor(max_workers=4).describe()
        assert info == {"executor": "thread", "max_workers": 4}
        assert SerialExecutor().describe() == {"executor": "serial"}


class TestExecutorEquivalence:
    """Serial and parallel block compilation must be indistinguishable."""

    @pytest.fixture(scope="class")
    def serial_result(self):
        return _compile("serial")

    def test_thread_matches_serial(self, serial_result):
        threaded = _compile(ThreadPoolBlockExecutor(max_workers=2))
        assert threaded.blocks_compiled == serial_result.blocks_compiled
        assert np.isclose(
            threaded.pulse_duration_ns, serial_result.pulse_duration_ns
        )
        for ours, theirs in zip(
            threaded.program.schedules, serial_result.program.schedules
        ):
            assert ours.qubits == theirs.qubits
            np.testing.assert_allclose(ours.controls, theirs.controls)

    def test_process_matches_serial(self, serial_result):
        pooled = _compile(ProcessPoolBlockExecutor(max_workers=2))
        assert pooled.blocks_compiled == serial_result.blocks_compiled
        assert np.isclose(pooled.pulse_duration_ns, serial_result.pulse_duration_ns)
        for ours, theirs in zip(
            pooled.program.schedules, serial_result.program.schedules
        ):
            np.testing.assert_allclose(ours.controls, theirs.controls)

    def test_executor_recorded_in_metadata(self):
        result = _compile(ThreadPoolBlockExecutor(max_workers=2))
        assert result.metadata["executor"] == {"executor": "thread", "max_workers": 2}


class TestBlockCompilerConvenience:
    def test_compile_circuit_blocks_routes_through_pipeline(self):
        from repro.core.compiler import BlockPulseCompiler

        compiler = BlockPulseCompiler(
            GmonDevice(line_topology(4)), SETTINGS, HYPER, PulseCache()
        )
        circuit = _tile_circuit(4)
        outcomes, blocked = compiler.compile_circuit_blocks(
            circuit, max_width=2, executor=ThreadPoolBlockExecutor(max_workers=2)
        )
        assert len(outcomes) == len(blocked.blocks) == 2
        assert all(o.schedule is not None for o in outcomes)
        serial_outcomes, _ = BlockPulseCompiler(
            GmonDevice(line_topology(4)), SETTINGS, HYPER, PulseCache()
        ).compile_circuit_blocks(circuit, max_width=2)
        for ours, theirs in zip(outcomes, serial_outcomes):
            assert np.isclose(ours.duration_ns, theirs.duration_ns)


class TestPartialCompilerExecutors:
    """The partial-compilation precompute phases parallelize identically."""

    def test_strict_precompile_thread_matches_serial(self):
        from repro.circuits.parameters import Parameter
        from repro.core import StrictPartialCompiler

        theta = Parameter("theta_0")
        qc = QuantumCircuit(2).h(0).h(1).cx(0, 1)
        qc.rz(theta, 1)
        qc.cx(0, 1)
        device = GmonDevice(line_topology(2))

        def build(executor):
            return StrictPartialCompiler.precompile(
                qc,
                device=device,
                settings=SETTINGS,
                hyperparameters=HYPER,
                max_block_width=2,
                cache=PulseCache(),
                executor=executor,
            )

        serial = build("serial")
        threaded = build(ThreadPoolBlockExecutor(max_workers=2))
        assert threaded.report.executor == "thread"
        assert serial.report.blocks_precompiled == threaded.report.blocks_precompiled
        assert np.isclose(
            serial.compile([0.4]).pulse_duration_ns,
            threaded.compile([0.4]).pulse_duration_ns,
        )
