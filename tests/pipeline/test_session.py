"""Long-lived VariationalSession: cross-call block dedup and lifecycle."""

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.parameters import Parameter
from repro.core import FullGrapeCompiler, PersistentPulseCache, PulseCache
from repro.core.compiler import BlockPulseCompiler
from repro.errors import PipelineError
from repro.perf import get_perf_registry
from repro.pipeline import BlockScheduler, SchedulerState, VariationalSession
from repro.pipeline.stages import BindStage, BlockingStage, PipelineContext
from repro.pulse.device import GmonDevice
from repro.pulse.grape.engine import GrapeHyperparameters, GrapeSettings
from repro.transpile.topology import line_topology

SETTINGS = GrapeSettings(dt_ns=0.5, target_fidelity=0.95)
HYPER = GrapeHyperparameters(0.05, 0.002, max_iterations=120)


class CountingCache(PulseCache):
    """Records every key GRAPE actually computed (put) for."""

    def __init__(self):
        super().__init__()
        self.put_keys = []

    def put(self, key, entry, target=None):
        self.put_keys.append(key)
        super().put(key, entry, target=target)


def _ansatz() -> QuantumCircuit:
    """Two identical fixed entangler tiles plus one θ-dependent tile."""
    circuit = QuantumCircuit(6)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.h(2)
    circuit.cx(2, 3)
    circuit.rz(Parameter("theta"), 4)
    circuit.cx(4, 5)
    return circuit


def _session(cache=None, **kwargs) -> VariationalSession:
    return VariationalSession(
        device=GmonDevice(line_topology(6)),
        settings=SETTINGS,
        hyperparameters=HYPER,
        max_block_width=2,
        cache=cache if cache is not None else PulseCache(),
        **kwargs,
    )


class TestCrossCallReuse:
    def test_shared_fixed_blocks_grape_exactly_once_across_two_calls(self):
        """The acceptance contract: the same ansatz at two parameter sets,
        each shared fixed block dispatched to GRAPE exactly once across
        BOTH calls, asserted via scheduler counters and cache puts."""
        cache = CountingCache()
        session = _session(cache)
        ansatz = _ansatz()
        first = session.compile_parametrized(ansatz, [0.3])
        second = session.compile_parametrized(ansatz, [1.1])

        sched1 = first.metadata["scheduler"]
        sched2 = second.metadata["scheduler"]
        # Call 1: the h+cx tile appears twice (translated) → one dispatch;
        # the tile carrying Rz(θ=0.3) is its own unitary → one dispatch.
        assert sched1["dispatched_tasks"] == 2
        assert sched1["deduped_blocks"] == 1
        assert sched1["reused_blocks"] == 0
        # Call 2: both h+cx occurrences reuse call 1's pulse; only the new
        # θ=1.1 tile dispatches.
        assert sched2["reused_blocks"] == 2
        assert sched2["dispatched_tasks"] == 1
        assert sched2["deduped_blocks"] == 0
        # GRAPE ran once per unique block across the whole session: the
        # shared tile once, plus one θ tile per call.
        assert len(cache.put_keys) == 3
        assert len(set(cache.put_keys)) == 3

    def test_identical_repeat_call_dispatches_nothing(self):
        session = _session()
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        session.compile(circuit)
        repeat = session.compile(circuit)
        scheduler = repeat.metadata["scheduler"]
        assert scheduler["dispatched_tasks"] == 0
        assert scheduler["reused_blocks"] == scheduler["total_blocks"]
        assert repeat.runtime_iterations == 0

    def test_reuse_is_never_worse_than_gate_based(self):
        session = _session()
        ansatz = _ansatz()
        first = session.compile_parametrized(ansatz, [0.2])
        second = session.compile_parametrized(ansatz, [0.2])
        assert second.pulse_duration_ns == pytest.approx(first.pulse_duration_ns)

    def test_single_circuit_session_matches_plain_compile(self):
        circuit = QuantumCircuit(4).h(0).cx(0, 1).h(2).cx(2, 3)
        via_session = _session().compile(circuit)
        plain = FullGrapeCompiler(
            device=GmonDevice(line_topology(4)),
            settings=SETTINGS,
            hyperparameters=HYPER,
            max_block_width=2,
            cache=PulseCache(),
        ).compile(circuit)
        assert via_session.pulse_duration_ns == pytest.approx(
            plain.pulse_duration_ns
        )
        assert via_session.blocks_compiled == plain.blocks_compiled

    def test_perf_counter_records_cross_call_reuse(self):
        registry = get_perf_registry()
        before = registry.counter("scheduler.reused_blocks")
        session = _session()
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        session.compile(circuit)
        session.compile(circuit)
        assert registry.counter("scheduler.reused_blocks") == before + 1


class TestBatchAndStats:
    def test_compile_batch_mixes_batch_dedup_and_cross_call_reuse(self):
        session = _session()
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        session.compile_batch([circuit, circuit])
        results = session.compile_batch([circuit, circuit])
        scheduler = results[0].metadata["scheduler"]
        assert scheduler["reused_blocks"] == 2
        stats = session.stats()
        assert stats["compile_calls"] == 2
        assert stats["circuits_compiled"] == 4
        assert stats["dispatched_blocks"] == 1
        assert stats["known_blocks"] == 1

    def test_empty_batch(self):
        session = _session()
        assert session.compile_batch([]) == []
        assert session.compile_calls == 0

    def test_results_carry_session_metadata(self):
        session = _session()
        result = session.compile(QuantumCircuit(2).h(0).cx(0, 1))
        assert result.method == "session"
        assert result.metadata["session"]["known_blocks"] == 1
        assert "batch_wall_time_s" in result.metadata

    def test_reset_forgets_dedup_state_but_keeps_cache(self):
        cache = CountingCache()
        session = _session(cache)
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        session.compile(circuit)
        session.reset()
        assert len(session.state) == 0
        result = session.compile(circuit)
        # The scheduler dispatches again, but the pulse cache still hits:
        # no second GRAPE run.
        assert result.metadata["scheduler"]["reused_blocks"] == 0
        assert len(cache.put_keys) == 1


class TestSchedulerStateBound:
    def test_lru_bound_evicts_one_shot_keys_and_keeps_hot_ones(self):
        """A variational run records a never-again-seen key per θ binding;
        the LRU bound must shed those while the re-touched fixed blocks
        survive."""
        state = SchedulerState(max_entries=3)
        state.record(("hot",), object())
        for i in range(3):
            state.record((f"cold-{i}",), object())
            assert state.lookup(("hot",)) is not None  # re-touch the hot key
        state.record(("cold-final",), object())
        assert len(state) == 3
        assert ("hot",) in state.seen
        assert state.evictions > 0
        assert state.lookup(("cold-0",)) is None

    def test_session_state_respects_bound_across_compiles(self):
        session = _session()
        session.state.max_entries = 1
        circuit_a = QuantumCircuit(2).h(0).cx(0, 1)
        circuit_b = QuantumCircuit(2).h(0).cx(0, 1).h(0)
        session.compile(circuit_a)
        session.compile(circuit_b)
        assert len(session.state) == 1
        # The evicted block recompiles through the cache, not the state.
        result = session.compile(circuit_a)
        assert result.metadata["scheduler"]["reused_blocks"] == 0


class TestLifecycle:
    def test_close_is_idempotent_and_blocks_further_compiles(self):
        session = _session()
        session.compile(QuantumCircuit(2).h(0).cx(0, 1))
        session.close()
        session.close()
        with pytest.raises(PipelineError):
            session.compile(QuantumCircuit(2).h(0).cx(0, 1))

    def test_context_manager_closes(self):
        with _session() as session:
            session.compile(QuantumCircuit(2).h(0).cx(0, 1))
        with pytest.raises(PipelineError):
            session.compile(QuantumCircuit(2).h(0).cx(0, 1))

    def test_library_property_exposes_disk_tier(self, tmp_path):
        session = _session(PersistentPulseCache(tmp_path))
        assert session.library is not None
        assert session.library.directory == tmp_path
        assert _session().library is None

    def test_device_grows_with_wider_circuits(self):
        session = VariationalSession(
            settings=SETTINGS, hyperparameters=HYPER, max_block_width=2
        )
        session.compile(QuantumCircuit(2).h(0).cx(0, 1))
        assert session.device.num_qubits >= 2
        session.compile(QuantumCircuit(4).h(0).cx(0, 1).h(2).cx(2, 3))
        assert session.device.num_qubits >= 4


class FailingCompiler(BlockPulseCompiler):
    """Fails the first ``fail_times`` compile_block dispatches."""

    def __init__(self, *args, fail_times: int = 1, **kwargs):
        super().__init__(*args, **kwargs)
        self.fail_times = fail_times

    def compile_block(self, subcircuit, device_qubits, hyperparameters=None):
        if self.fail_times > 0:
            self.fail_times -= 1
            raise RuntimeError("representative block compilation failed")
        return super().compile_block(subcircuit, device_qubits, hyperparameters)


def _blocked_context(circuit: QuantumCircuit) -> PipelineContext:
    context = PipelineContext(circuit=circuit)
    BindStage().run(context)
    BlockingStage(2).run(context)
    return context


class TestFailedRepresentative:
    def test_failure_records_no_stale_state_and_no_partial_results(self):
        """A failed representative must not leave dedup state behind:
        duplicates (and later calls) must never receive a pulse that was
        never actually compiled."""
        compiler = FailingCompiler(
            GmonDevice(line_topology(2)), SETTINGS, HYPER, PulseCache(),
            fail_times=1,
        )
        state = SchedulerState()
        scheduler = BlockScheduler(compiler, state=state)
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        contexts = [_blocked_context(circuit), _blocked_context(circuit)]
        with pytest.raises(RuntimeError):
            scheduler.run(contexts)
        # No context got results, and the state remembers nothing.
        assert all(context.block_results is None for context in contexts)
        assert len(state) == 0

        # A retry on the same scheduler recompiles from scratch and only
        # then records the block.
        contexts = [_blocked_context(circuit), _blocked_context(circuit)]
        report = scheduler.run(contexts)
        assert report.dispatched_tasks == 1
        assert report.reused_blocks == 0
        assert len(state) == 1
        assert all(context.block_results for context in contexts)
