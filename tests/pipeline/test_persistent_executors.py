"""Persistent-pool executor contracts: amortization, equivalence, lifecycle."""

import pickle

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.config import EXECUTOR_CHOICES
from repro.core import FullGrapeCompiler, PulseCache
from repro.perf import get_perf_registry
from repro.pipeline import (
    PersistentProcessPoolBlockExecutor,
    PersistentThreadPoolBlockExecutor,
    resolve_executor,
)
from repro.pulse.device import GmonDevice
from repro.pulse.grape.engine import GrapeHyperparameters, GrapeSettings
from repro.transpile.topology import line_topology

SETTINGS = GrapeSettings(dt_ns=0.5, target_fidelity=0.95)
HYPER = GrapeHyperparameters(learning_rate=0.05, decay_rate=0.002, max_iterations=150)

PERSISTENT_CLASSES = [
    PersistentThreadPoolBlockExecutor,
    PersistentProcessPoolBlockExecutor,
]


def _square(x):
    """Module-level so the process pool can pickle it."""
    return x * x


def _cube(x):
    return x * x * x


def _tile_circuit(num_qubits: int = 4) -> QuantumCircuit:
    circuit = QuantumCircuit(num_qubits, name="tiles")
    for q in range(0, num_qubits - 1, 2):
        circuit.h(q)
        circuit.cx(q, q + 1)
        circuit.rz(0.2 + 0.3 * q, q + 1)
    return circuit


def _compile(executor, num_qubits=4):
    compiler = FullGrapeCompiler(
        device=GmonDevice(line_topology(num_qubits)),
        settings=SETTINGS,
        hyperparameters=HYPER,
        max_block_width=2,
        cache=PulseCache(),
        executor=executor,
    )
    return compiler.compile(_tile_circuit(num_qubits))


class TestResolve:
    def test_choices_registered(self):
        assert "thread-persistent" in EXECUTOR_CHOICES
        assert "process-persistent" in EXECUTOR_CHOICES

    def test_names_resolve(self):
        thread = resolve_executor("thread-persistent", 2)
        process = resolve_executor("process-persistent", 2)
        try:
            assert isinstance(thread, PersistentThreadPoolBlockExecutor)
            assert isinstance(process, PersistentProcessPoolBlockExecutor)
            assert thread.max_workers == process.max_workers == 2
        finally:
            thread.close()
            process.close()

    def test_named_resolution_shares_one_instance(self):
        """Compilers re-resolve specs per compile; names must alias one pool.

        Without this, ``REPRO_EXECUTOR=process-persistent`` would build a
        fresh (and never-closed) pool every variational iteration.
        """
        first = resolve_executor("thread-persistent", 2)
        second = resolve_executor("thread-persistent", 2)
        try:
            assert first is second
            # A different worker count is a different shared pool.
            other = resolve_executor("thread-persistent", 3)
            assert other is not first
            other.close()
        finally:
            first.close()

    def test_shared_pool_amortizes_across_named_compiles(self):
        """Two compiles resolving by name reuse the same warm pool.

        Resolved with default workers, because that is the key compilers
        hit when handed a bare name / ``REPRO_EXECUTOR`` value.
        """
        executor = resolve_executor("thread-persistent")
        pools_before = executor.pools_created
        try:
            _compile("thread-persistent")
            _compile("thread-persistent")
            assert resolve_executor("thread-persistent") is executor
            assert executor.pools_created == pools_before + 1
        finally:
            executor.close()

    def test_shutdown_helper_closes_shared_pools(self):
        from repro.pipeline.executors import shutdown_persistent_executors

        executor = resolve_executor("thread-persistent", 2)
        executor.map(_square, range(4))
        assert executor._pool is not None
        shutdown_persistent_executors()
        assert executor._pool is None
        # Shared instances revive lazily after a shutdown.
        assert executor.map(_square, range(3)) == [0, 1, 4]
        executor.close()


class TestMapContract:
    @pytest.mark.parametrize("cls", PERSISTENT_CLASSES)
    def test_order_preserved(self, cls):
        with cls(max_workers=2) as executor:
            assert executor.map(_square, range(11)) == [x * x for x in range(11)]

    @pytest.mark.parametrize("cls", PERSISTENT_CLASSES)
    def test_empty_and_singleton_run_inline(self, cls):
        with cls(max_workers=2) as executor:
            assert executor.map(_square, []) == []
            assert executor.map(_square, [3]) == [9]
            # Inline fast path never needed a pool.
            assert executor.pools_created == 0

    @pytest.mark.parametrize("cls", PERSISTENT_CLASSES)
    def test_different_functions_share_one_pool(self, cls):
        with cls(max_workers=2) as executor:
            assert executor.map(_square, range(5)) == [0, 1, 4, 9, 16]
            assert executor.map(_cube, range(4)) == [0, 1, 8, 27]
            assert executor.pools_created == 1


class TestAmortization:
    @pytest.mark.parametrize("cls", PERSISTENT_CLASSES)
    def test_one_pool_across_many_maps(self, cls):
        with cls(max_workers=2) as executor:
            for _ in range(6):
                executor.map(_square, range(7))
            assert executor.pools_created == 1
            assert executor.map_calls == 6
            info = executor.describe()
            assert info["pools_created"] == 1
            assert info["map_calls"] == 6

    def test_pool_creation_hits_perf_registry(self):
        registry = get_perf_registry()
        name = "executor.thread-persistent.pools_created"
        before = registry.counter(name)
        with PersistentThreadPoolBlockExecutor(max_workers=2) as executor:
            executor.map(_square, range(4))
            executor.map(_square, range(4))
        assert registry.counter(name) == before + 1


class TestLifecycle:
    @pytest.mark.parametrize("cls", PERSISTENT_CLASSES)
    def test_close_then_reuse_recreates_pool(self, cls):
        executor = cls(max_workers=2)
        try:
            executor.map(_square, range(4))
            executor.close()
            assert executor.map(_square, range(4)) == [0, 1, 4, 9]
            assert executor.pools_created == 2
        finally:
            executor.close()

    @pytest.mark.parametrize("cls", PERSISTENT_CLASSES)
    def test_close_is_idempotent(self, cls):
        executor = cls(max_workers=2)
        executor.map(_square, range(4))
        executor.close()
        executor.close()

    def test_repeated_shutdown_helper_is_idempotent(self):
        """Test teardown followed by the atexit hook (or any double call)
        must not raise — the second sweep finds already-closed pools."""
        from repro.pipeline.executors import shutdown_persistent_executors

        executor = resolve_executor("thread-persistent", 2)
        executor.map(_square, range(4))
        shutdown_persistent_executors()
        shutdown_persistent_executors()  # the atexit-race double call
        assert executor._pool is None

    def test_shutdown_helper_survives_a_failing_pool(self):
        """One pool whose shutdown raises must not keep the sweep from
        closing the remaining pools."""
        from repro.pipeline import executors as executors_module

        class ExplodingPool:
            def shutdown(self, wait=True):
                raise RuntimeError("cannot schedule new futures after shutdown")

        bad = PersistentThreadPoolBlockExecutor(max_workers=2)
        bad._pool = ExplodingPool()
        good = PersistentThreadPoolBlockExecutor(max_workers=2)
        good.map(_square, range(4))
        assert good._pool is not None
        with executors_module._persistent_registry_lock:
            saved = dict(executors_module._persistent_executors)
            executors_module._persistent_executors.clear()
            executors_module._persistent_executors[("bad", 2)] = bad
            executors_module._persistent_executors[("good", 2)] = good
        try:
            executors_module.shutdown_persistent_executors()
            assert bad._pool is None
            assert good._pool is None
        finally:
            with executors_module._persistent_registry_lock:
                executors_module._persistent_executors.clear()
                executors_module._persistent_executors.update(saved)

    def test_pickling_drops_live_pool(self):
        executor = PersistentProcessPoolBlockExecutor(max_workers=2)
        try:
            executor.map(_square, range(4))
            clone = pickle.loads(pickle.dumps(executor))
            assert clone._pool is None
            assert clone.map(_square, range(3)) == [0, 1, 4]
            clone.close()
        finally:
            executor.close()


class TestCompilationEquivalence:
    """The persistent pool must be invisible in the compiled output."""

    @pytest.fixture(scope="class")
    def serial_result(self):
        return _compile("serial")

    def test_process_persistent_bit_identical_to_serial(self, serial_result):
        with PersistentProcessPoolBlockExecutor(max_workers=2) as executor:
            pooled = _compile(executor)
            assert executor.pools_created == 1
        assert pooled.blocks_compiled == serial_result.blocks_compiled
        assert pooled.pulse_duration_ns == serial_result.pulse_duration_ns
        for ours, theirs in zip(
            pooled.program.schedules, serial_result.program.schedules
        ):
            assert ours.qubits == theirs.qubits
            # Bit-identical, not merely allclose: same kernel, same seeds.
            assert np.array_equal(ours.controls, theirs.controls)

    def test_thread_persistent_bit_identical_to_serial(self, serial_result):
        with PersistentThreadPoolBlockExecutor(max_workers=2) as executor:
            pooled = _compile(executor)
        for ours, theirs in zip(
            pooled.program.schedules, serial_result.program.schedules
        ):
            assert np.array_equal(ours.controls, theirs.controls)

    def test_executor_telemetry_in_result_metadata(self, serial_result):
        with PersistentProcessPoolBlockExecutor(max_workers=2) as executor:
            pooled = _compile(executor)
        info = pooled.metadata["executor"]
        assert info["executor"] == "process-persistent"
        assert info["pools_created"] == 1
        assert info["map_calls"] >= 1
