"""BlockJob round-trips: dispatch-as-data must change nothing observable.

The tentpole contract: a job built by ``make_job`` compiles bit-identically
to ``compile_block`` on the same block — in this process, through
``run_block_job``, and in a bare subprocess that unpickles the job cold.
"""

from __future__ import annotations

import json
import pickle
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.parameters import Parameter
from repro.core import PersistentPulseCache, PulseCache
from repro.core.cache import _key_filename
from repro.core.compiler import BlockPulseCompiler
from repro.errors import CompilationError
from repro.pipeline.jobs import (
    BlockJob,
    _decode_outcome,
    _encode_outcome,
    run_block_job,
)
from repro.pulse.device import GmonDevice
from repro.pulse.grape.engine import GrapeHyperparameters, GrapeSettings
from repro.transpile.topology import line_topology

SETTINGS = GrapeSettings(dt_ns=0.5, target_fidelity=0.95)
HYPER = GrapeHyperparameters(0.05, 0.002, max_iterations=120)
SRC_ROOT = Path(repro.__file__).resolve().parent.parent

#: Compile a pickled job in a bare interpreter and emit the encoded outcome.
_SUBPROCESS_RUNNER = (
    "import sys, json, pickle; sys.path.insert(0, sys.argv[1]); "
    "from repro.pipeline.jobs import run_block_job, _encode_outcome; "
    "job = pickle.load(open(sys.argv[2], 'rb')); "
    "print(json.dumps(_encode_outcome(run_block_job(job))))"
)


def _block(angle: float = 0.3) -> QuantumCircuit:
    circuit = QuantumCircuit(2)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.rz(angle, 1)
    return circuit


def _compiler(cache=None) -> BlockPulseCompiler:
    return BlockPulseCompiler(
        GmonDevice(line_topology(2)),
        SETTINGS,
        HYPER,
        cache if cache is not None else PulseCache(),
        warm_start=False,
    )


class TestMakeJob:
    def test_job_carries_resolved_identity(self):
        compiler = _compiler()
        job = compiler.make_job(_block(), (0, 1))
        assert isinstance(job, BlockJob)
        assert job.device_qubits == (0, 1)
        assert job.gate_based_ns > 0
        # Preset-deferred settings fields are materialized at build time.
        assert job.settings.dt_ns == SETTINGS.resolved_dt()
        assert job.settings.target_fidelity == SETTINGS.resolved_target()
        assert job.warm_start is False
        assert job.preset
        assert job.name == _key_filename(job.key)

    def test_trivial_block_yields_no_job(self):
        assert _compiler().make_job(QuantumCircuit(2), (0, 1)) is None

    def test_parameterized_block_rejected(self):
        circuit = QuantumCircuit(2)
        circuit.rz(Parameter("theta"), 0)
        with pytest.raises(CompilationError):
            _compiler().make_job(circuit, (0, 1))

    def test_pickle_roundtrip_preserves_identity(self):
        job = _compiler().make_job(_block(), (0, 1))
        clone = pickle.loads(pickle.dumps(job, pickle.HIGHEST_PROTOCOL))
        assert clone.key == job.key
        assert np.array_equal(clone.target, job.target)
        assert clone.device_qubits == job.device_qubits
        assert clone.gate_based_ns == job.gate_based_ns
        assert clone.settings == job.settings
        assert clone.preset == job.preset


class TestRunBlockJob:
    def test_matches_compile_block_bit_for_bit(self):
        block = _block(0.8)
        direct = _compiler().compile_block(block, (0, 1))
        job = _compiler().make_job(block, (0, 1))
        via_job = run_block_job(job, cache=PulseCache())
        assert _encode_outcome(via_job) == _encode_outcome(direct)

    def test_subprocess_compile_is_bit_identical(self, tmp_path):
        """Pickle → compile in a bare subprocess → identical outcome."""
        job = _compiler().make_job(_block(0.4), (0, 1))
        job_path = tmp_path / "job.pkl"
        job_path.write_bytes(pickle.dumps(job, pickle.HIGHEST_PROTOCOL))
        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                _SUBPROCESS_RUNNER,
                str(SRC_ROOT),
                str(job_path),
            ],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        remote = json.loads(proc.stdout)
        local = _encode_outcome(run_block_job(job, cache=PulseCache()))
        assert remote == local

    def test_cache_dir_routes_through_the_shared_library(self, tmp_path):
        job = _compiler().make_job(
            _block(0.9), (0, 1), cache_dir=str(tmp_path / "lib")
        )
        assert job.cache_dir == str(tmp_path / "lib")
        first = run_block_job(job)
        assert first.cache_hit is False
        # A second run (fresh cache object, same directory) must hit.
        second = run_block_job(job)
        assert second.cache_hit is True
        assert second.duration_ns == first.duration_ns
        assert PersistentPulseCache(job.cache_dir).get(job.key) is not None

    def test_shared_cache_wins_over_cache_dir(self, tmp_path):
        job = _compiler().make_job(
            _block(0.2), (0, 1), cache_dir=str(tmp_path / "lib")
        )
        cache = PulseCache()
        run_block_job(job, cache=cache)
        # The explicit cache was used: nothing landed in the directory.
        assert cache.get(job.key) is not None
        assert not (tmp_path / "lib").exists()


class TestOutcomeCodec:
    def test_outcome_roundtrips_bit_identically(self):
        outcome = _compiler().compile_block(_block(0.6), (0, 1))
        decoded = _decode_outcome(_encode_outcome(outcome))
        assert decoded.duration_ns == outcome.duration_ns
        assert decoded.gate_based_ns == outcome.gate_based_ns
        assert decoded.iterations == outcome.iterations
        assert decoded.fidelity == outcome.fidelity
        assert decoded.schedule.qubits == outcome.schedule.qubits
        assert np.array_equal(
            decoded.schedule.controls, outcome.schedule.controls
        )
        # And through an actual JSON wire format, repr-float exact.
        wired = _decode_outcome(json.loads(json.dumps(_encode_outcome(outcome))))
        assert np.array_equal(
            wired.schedule.controls, outcome.schedule.controls
        )


class TestExecutorDispatchJobs:
    @pytest.mark.parametrize(
        "executor_name", ["serial", "auto", "thread", "process"]
    )
    def test_dispatch_jobs_matches_serial(self, executor_name):
        from repro.pipeline import resolve_executor

        jobs = [_compiler().make_job(_block(a), (0, 1)) for a in (0.25, 0.75)]
        expected = [
            _encode_outcome(run_block_job(job, cache=PulseCache()))
            for job in jobs
        ]
        executor = resolve_executor(executor_name, max_workers=2)
        outcomes = executor.dispatch_jobs(jobs, cache=PulseCache())
        assert [_encode_outcome(o) for o in outcomes] == expected
