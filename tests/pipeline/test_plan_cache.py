"""The content-addressed plan cache: build, replay, equivalence, bounds."""

import numpy as np
import pytest

from repro.circuits import Parameter, QuantumCircuit
from repro.core.cache import PulseCache
from repro.core.compiler import BlockPulseCompiler
from repro.pipeline.plan import CompilationPlan, PlanCache, plan_key
from repro.pipeline.scheduler import SchedulerState
from repro.pipeline.strategies import full_grape_pipeline
from repro.pulse.device import GmonDevice
from repro.pulse.grape.engine import GrapeHyperparameters, GrapeSettings


def _ansatz():
    theta = Parameter("theta_0")
    circuit = QuantumCircuit(4, name="ansatz")
    # One θ-independent entangler tile and one θ-dependent rotation.
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.cx(2, 3)
    circuit.rz(theta, 1)
    return circuit


def _compiler(num_qubits=4):
    return BlockPulseCompiler(
        GmonDevice.grid_for(num_qubits),
        GrapeSettings(dt_ns=0.5, target_fidelity=0.95),
        GrapeHyperparameters(learning_rate=0.05, decay_rate=0.002, max_iterations=60),
        PulseCache(),
    )


def _programs_equal(a, b) -> bool:
    return a.duration_ns == b.duration_ns and all(
        np.array_equal(x.controls, y.controls)
        for x, y in zip(a.schedules, b.schedules)
    )


class TestPlanKey:
    def test_binding_independent(self):
        bc = _compiler()
        ansatz = _ansatz()
        assert plan_key(ansatz, 2, bc) == plan_key(ansatz, 2, bc)

    def test_width_and_scope_separate(self):
        bc = _compiler()
        ansatz = _ansatz()
        assert plan_key(ansatz, 2, bc) != plan_key(ansatz, 3, bc)
        assert plan_key(ansatz, 2, bc, scope="a") != plan_key(
            ansatz, 2, bc, scope="b"
        )

    def test_device_and_settings_separate(self):
        ansatz = _ansatz()
        a = _compiler()
        b = BlockPulseCompiler(
            GmonDevice.grid_for(4, levels=3),
            a.settings,
            a.hyperparameters,
            a.cache,
        )
        c = BlockPulseCompiler(
            a.device,
            GrapeSettings(dt_ns=0.25, target_fidelity=0.95),
            a.hyperparameters,
            a.cache,
        )
        keys = {plan_key(ansatz, 2, bc) for bc in (a, b, c)}
        assert len(keys) == 3


class TestReplayEquivalence:
    """A plan-replayed compile is bit-identical to a cold one."""

    @pytest.fixture(scope="class")
    def results(self):
        ansatz = _ansatz()
        thetas = [[0.4], [1.1], [0.4]]
        # Cold reference: no plan cache, fresh state per iteration.
        cold = []
        for theta in thetas:
            bc = _compiler()
            pipeline = full_grape_pipeline(bc, 2, None)
            contexts, _ = pipeline.run_many([ansatz], [theta])
            cold.append(contexts[0].program)
        # Hot path: shared plan cache (fresh scheduler state per iteration,
        # to isolate the plan cache's contribution).
        plans = PlanCache()
        hot = []
        for theta in thetas:
            bc = _compiler()
            pipeline = full_grape_pipeline(bc, 2, None)
            contexts, _ = pipeline.run_many(
                [ansatz], [theta], plan_cache=plans, plan_scope="test"
            )
            hot.append(contexts[0])
        return cold, hot, plans

    def test_programs_identical(self, results):
        cold, hot, _ = results
        for reference, context in zip(cold, hot):
            assert _programs_equal(reference, context.program)

    def test_blocking_ran_once(self, results):
        _, _, plans = results
        assert plans.misses == 1
        assert plans.hits == 2
        assert plans.blocking_passes_skipped == 2
        assert len(plans) == 1

    def test_hit_contexts_are_marked(self, results):
        _, hot, _ = results
        assert "plan_cache" not in hot[0].metadata
        assert hot[1].metadata["plan_cache"] == "hit"
        assert hot[2].metadata["plan_cache"] == "hit"

    def test_replayed_tasks_carry_keys(self, results):
        """θ-independent blocks replay with their cached dedup key;
        θ-dependent blocks leave key computation to the scheduler."""
        _, hot, plans = results
        plan = next(iter(plans.plans.values()))
        parametrized = [spec.parametrized for spec in plan.blocks]
        assert any(parametrized) and not all(parametrized)
        for spec, task in zip(plan.blocks, hot[1].tasks):
            if spec.parametrized:
                assert not task.dedup_key_known
            else:
                assert task.dedup_key_known
                assert task.dedup_key == spec.dedup_key

    def test_replay_interoperates_with_scheduler_state(self):
        """Plan replay + cross-call dedup state: iteration 2 skips blocking
        *and* serves θ-independent blocks from state."""
        ansatz = _ansatz()
        bc = _compiler()
        pipeline = full_grape_pipeline(bc, 2, None)
        plans, state = PlanCache(), SchedulerState()
        pipeline.run_many([ansatz], [[0.4]], state=state, plan_cache=plans)
        contexts, report = pipeline.run_many(
            [ansatz], [[1.1]], state=state, plan_cache=plans
        )
        assert contexts[0].metadata["plan_cache"] == "hit"
        assert report.reused_blocks > 0


class TestNonPlannablePipelines:
    def test_plain_run_many_ignores_cache_with_slicer_or_isolation(self):
        """Strict/flexible stacks (isolate_parametrized, slicer) must not
        go through plans — their tasks depend on the binding."""
        from repro.pipeline.pipeline import CompilationPipeline
        from repro.pipeline.stages import (
            AssembleStage,
            BindStage,
            BlockingStage,
            PulseStage,
        )
        from repro.pipeline.strategies import compile_fixed_block
        from functools import partial

        bc = _compiler()
        stages = [
            BindStage(),
            BlockingStage(max_width=2, isolate_parametrized=True),
            PulseStage(
                partial(compile_fixed_block, bc),
                parametrized_handler=lambda task: None,
                block_compiler=bc,
            ),
            AssembleStage(fallback=False),
        ]
        pipeline = CompilationPipeline(stages)
        plans = PlanCache()
        ansatz = _ansatz()
        pipeline.run_many([ansatz], [[0.4]], plan_cache=plans)
        pipeline.run_many([ansatz], [[1.1]], plan_cache=plans)
        assert plans.hits == 0 and plans.misses == 0 and len(plans) == 0


class TestPlanCacheBounds:
    def test_lru_eviction(self):
        cache = PlanCache(max_entries=2)
        plan = CompilationPlan(key="k", num_qubits=1, blocks=())
        cache.insert("a", plan)
        cache.insert("b", plan)
        cache.lookup("a")  # refresh: "b" is now the LRU entry
        cache.insert("c", plan)
        assert cache.lookup("b") is None
        assert cache.lookup("a") is not None
        assert cache.lookup("c") is not None
        assert cache.evictions == 1

    def test_clear_and_stats(self):
        cache = PlanCache()
        cache.insert("a", CompilationPlan(key="a", num_qubits=1, blocks=()))
        cache.lookup("a")
        cache.lookup("missing")
        cache.note_skip()
        stats = cache.as_dict()
        assert stats == {
            "entries": 1,
            "plan_hits": 1,
            "plan_misses": 1,
            "blocking_passes_skipped": 1,
            "evictions": 0,
        }
        cache.clear()
        assert len(cache) == 0
