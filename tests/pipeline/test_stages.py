"""Stage composition and ordering contracts of the compilation pipeline."""

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.parameters import Parameter
from repro.core.compiler import BlockPulseCompiler
from repro.errors import CompilationError, PipelineError
from repro.pipeline import (
    AssembleStage,
    BindStage,
    BlockingStage,
    CompilationPipeline,
    GateScheduleStage,
    PulseStage,
    TranspileStage,
    full_grape_pipeline,
    gate_based_pipeline,
)
from repro.transpile.passes import PassManager


def _ansatz():
    theta = Parameter("theta_0")
    qc = QuantumCircuit(2, name="ansatz")
    qc.h(0).h(1).cx(0, 1)
    qc.rz(theta, 1)
    qc.cx(0, 1)
    return qc


class TestPipelineShape:
    def test_gate_based_stage_order(self):
        assert gate_based_pipeline().stage_names == (
            "bind",
            "gate-schedule",
            "assemble",
        )

    def test_full_grape_stage_order(self, two_qubit_device, fast_settings, fast_hyper):
        compiler = BlockPulseCompiler(two_qubit_device, fast_settings, fast_hyper)
        pipeline = full_grape_pipeline(compiler, max_width=2)
        assert pipeline.stage_names == ("bind", "block", "pulse", "assemble")

    def test_transpile_stage_prepends(self):
        pipeline = gate_based_pipeline(pass_manager=PassManager())
        assert pipeline.stage_names[0] == "transpile"

    def test_append_chains(self):
        pipeline = CompilationPipeline([BindStage()])
        pipeline.append(GateScheduleStage()).append(AssembleStage(fallback=False))
        assert pipeline.stage_names == ("bind", "gate-schedule", "assemble")

    def test_non_stage_rejected(self):
        with pytest.raises(PipelineError):
            CompilationPipeline([object()])
        with pytest.raises(PipelineError):
            CompilationPipeline().append(42)

    def test_describe(self):
        described = gate_based_pipeline().describe()
        assert described["pipeline"] == "gate"
        assert described["stages"] == ["bind", "gate-schedule", "assemble"]


class TestStageOrdering:
    def test_timings_follow_declared_order(self):
        pipeline = gate_based_pipeline()
        context = pipeline.run(_ansatz(), values=[0.4])
        assert tuple(name for name, _ in context.stage_timings) == pipeline.stage_names
        assert all(seconds >= 0 for _, seconds in context.stage_timings)
        assert set(context.stage_timing_dict()) == set(pipeline.stage_names)

    def test_pulse_before_blocking_fails(self, two_qubit_device, fast_settings, fast_hyper):
        compiler = BlockPulseCompiler(two_qubit_device, fast_settings, fast_hyper)
        from functools import partial

        from repro.pipeline.strategies import compile_fixed_block

        broken = CompilationPipeline(
            [BindStage(), PulseStage(partial(compile_fixed_block, compiler))]
        )
        with pytest.raises(PipelineError):
            broken.run(_ansatz(), values=[0.1])

    def test_assemble_before_pulse_fails(self):
        broken = CompilationPipeline([BindStage(), AssembleStage()])
        with pytest.raises(PipelineError):
            broken.run(_ansatz(), values=[0.1])

    def test_bind_rejects_unbound(self):
        with pytest.raises(CompilationError):
            gate_based_pipeline().run(_ansatz())


class TestBlockingStage:
    def test_plain_blocking_covers_all_instructions(self):
        circuit = _ansatz().bind_parameters([0.3])
        context = CompilationPipeline([BindStage(), BlockingStage(2)]).run(circuit)
        assert sum(len(t.subcircuit) for t in context.tasks) == len(circuit)
        assert all(t.kind == "fixed" for t in context.tasks)
        assert context.metadata["blocks"] == len(context.tasks)

    def test_isolating_parametrized_gates(self):
        circuit = _ansatz()
        context = CompilationPipeline(
            [BlockingStage(2, isolate_parametrized=True)]
        ).run(circuit)
        kinds = [t.kind for t in context.tasks]
        assert kinds.count("parametrized") == 1
        isolated = next(t for t in context.tasks if t.kind == "parametrized")
        assert isolated.instruction.gate.name == "rz"
        assert isolated.subcircuit is None

    def test_slicer_mode(self):
        from repro.core.slicing import flexible_slices

        context = CompilationPipeline(
            [BlockingStage(2, slicer=flexible_slices)]
        ).run(_ansatz())
        assert any(t.kind == "parametrized" for t in context.tasks)
        # Slices blocked independently: one BlockedCircuit per slice.
        assert len(context.blocked) == len(flexible_slices(_ansatz()))

    def test_slicer_and_isolate_exclusive(self):
        from repro.core.slicing import flexible_slices

        with pytest.raises(PipelineError):
            BlockingStage(2, slicer=flexible_slices, isolate_parametrized=True)

    def test_multi_parameter_gate_rejected(self):
        a, b = Parameter("a"), Parameter("b")
        qc = QuantumCircuit(1).rz(a + b, 0)
        with pytest.raises(CompilationError):
            CompilationPipeline([BlockingStage(1, isolate_parametrized=True)]).run(qc)


class TestTranspileStage:
    def test_pass_manager_applied(self):
        ran = []

        def tag_pass(circuit):
            ran.append(True)
            return circuit

        pipeline = CompilationPipeline(
            [TranspileStage(PassManager([tag_pass])), BindStage()]
        )
        pipeline.run(QuantumCircuit(1).h(0))
        assert ran == [True]
