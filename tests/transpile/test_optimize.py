"""Unit tests for peephole optimization passes."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import random_circuit
from repro.circuits.parameters import Parameter
from repro.linalg.unitaries import unitaries_equal_up_to_phase
from repro.sim.unitary import circuit_unitary
from repro.transpile.optimize import (
    cancel_adjacent_inverses,
    merge_rotations,
    optimize_circuit,
    parametrized_rx_to_rz,
    remove_zero_rotations,
)


class TestMergeRotations:
    def test_same_axis_merges(self):
        qc = QuantumCircuit(1).rx(0.3, 0).rx(0.4, 0)
        merged = merge_rotations(qc)
        assert len(merged) == 1
        assert math.isclose(merged[0].gate.params[0], 0.7)

    def test_different_axes_do_not_merge(self):
        qc = QuantumCircuit(1).rx(0.3, 0).rz(0.4, 0)
        assert len(merge_rotations(qc)) == 2

    def test_interposed_gate_blocks_merge(self):
        qc = QuantumCircuit(1).rx(0.3, 0).h(0).rx(0.4, 0)
        assert len(merge_rotations(qc)) == 3

    def test_two_qubit_gate_blocks_merge(self):
        qc = QuantumCircuit(2).rz(0.3, 0).cx(0, 1).rz(0.4, 0)
        assert len(merge_rotations(qc)) == 3

    def test_merge_to_zero_removes(self):
        qc = QuantumCircuit(1).rz(0.5, 0).rz(-0.5, 0)
        assert len(merge_rotations(qc)) == 0

    def test_merge_across_other_qubits_preserves_order(self):
        # Pending rotations must not drift past later gates in list order.
        theta = Parameter("theta_0")
        qc = QuantumCircuit(2)
        qc.rz(theta, 0)
        qc.h(1)
        qc.rz(0.3, 1)
        merged = merge_rotations(qc)
        names = [(i.gate.name, i.qubits) for i in merged]
        assert names == [("rz", (0,)), ("h", (1,)), ("rz", (1,))]

    def test_symbolic_merge(self):
        theta = Parameter("theta_0")
        qc = QuantumCircuit(1).rz(theta, 0).rz(-theta / 2, 0).rz(1.0, 0)
        merged = merge_rotations(qc)
        assert len(merged) == 1
        expr = merged[0].gate.params[0]
        assert math.isclose(expr.coefficient(theta), 0.5)
        assert math.isclose(expr.constant, 1.0)

    def test_preserves_unitary(self):
        qc = random_circuit(3, 40, seed=0)
        merged = merge_rotations(qc)
        assert unitaries_equal_up_to_phase(
            circuit_unitary(merged), circuit_unitary(qc)
        )


class TestCancelInverses:
    def test_cx_pair_cancels(self):
        qc = QuantumCircuit(2).cx(0, 1).cx(0, 1)
        assert len(cancel_adjacent_inverses(qc)) == 0

    def test_h_pair_cancels(self):
        qc = QuantumCircuit(1).h(0).h(0)
        assert len(cancel_adjacent_inverses(qc)) == 0

    def test_rz_opposite_angles_cancel(self):
        qc = QuantumCircuit(1).rz(0.4, 0).rz(-0.4, 0)
        assert len(cancel_adjacent_inverses(qc)) == 0

    def test_cx_different_direction_kept(self):
        qc = QuantumCircuit(2).cx(0, 1).cx(1, 0)
        assert len(cancel_adjacent_inverses(qc)) == 2

    def test_swap_qubit_order_irrelevant(self):
        qc = QuantumCircuit(2).swap(0, 1).swap(1, 0)
        assert len(cancel_adjacent_inverses(qc)) == 0

    def test_cascading_cancellation(self):
        qc = QuantumCircuit(1).h(0).x(0).x(0).h(0)
        assert len(cancel_adjacent_inverses(qc)) == 0

    def test_blocked_by_other_qubit_gate(self):
        qc = QuantumCircuit(2).cx(0, 1).h(0).cx(0, 1)
        assert len(cancel_adjacent_inverses(qc)) == 3

    def test_symbolic_cancellation(self):
        theta = Parameter("theta_0")
        qc = QuantumCircuit(1).rz(theta, 0).rz(-1.0 * theta, 0)
        assert len(cancel_adjacent_inverses(qc)) == 0

    def test_preserves_unitary(self):
        qc = random_circuit(3, 40, seed=1)
        out = cancel_adjacent_inverses(qc)
        assert unitaries_equal_up_to_phase(circuit_unitary(out), circuit_unitary(qc))


class TestRemoveZeroRotations:
    def test_zero_angle_removed(self):
        qc = QuantumCircuit(1).rz(0.0, 0)
        assert len(remove_zero_rotations(qc)) == 0

    def test_two_pi_removed(self):
        qc = QuantumCircuit(1).rx(2 * math.pi, 0)
        assert len(remove_zero_rotations(qc)) == 0

    def test_nonzero_kept(self):
        qc = QuantumCircuit(1).rz(0.1, 0)
        assert len(remove_zero_rotations(qc)) == 1

    def test_symbolic_kept_even_if_could_be_zero(self):
        theta = Parameter("theta_0")
        qc = QuantumCircuit(1).rz(theta, 0)
        assert len(remove_zero_rotations(qc)) == 1

    def test_identity_gate_removed(self):
        qc = QuantumCircuit(1).i(0)
        assert len(remove_zero_rotations(qc)) == 0


class TestRxToRz:
    def test_parametrized_rx_rewritten(self):
        theta = Parameter("theta_0")
        qc = QuantumCircuit(1).rx(2 * theta, 0)
        out = parametrized_rx_to_rz(qc)
        assert [i.gate.name for i in out] == ["h", "rz", "h"]

    def test_rewrite_preserves_unitary(self):
        theta = Parameter("theta_0")
        qc = QuantumCircuit(1).rx(2 * theta, 0)
        out = parametrized_rx_to_rz(qc)
        for value in (0.3, -1.1, 2.5):
            assert unitaries_equal_up_to_phase(
                circuit_unitary(out.bind_parameters([value])),
                circuit_unitary(qc.bind_parameters([value])),
            )

    def test_constant_rx_untouched(self):
        qc = QuantumCircuit(1).rx(0.5, 0)
        out = parametrized_rx_to_rz(qc)
        assert [i.gate.name for i in out] == ["rx"]


class TestOptimizeCircuit:
    @given(st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_preserves_unitary_property(self, seed):
        qc = random_circuit(3, 30, seed=seed)
        out = optimize_circuit(qc)
        assert unitaries_equal_up_to_phase(circuit_unitary(out), circuit_unitary(qc))

    def test_never_grows(self):
        for seed in range(5):
            qc = random_circuit(4, 50, seed=seed)
            assert len(optimize_circuit(qc)) <= len(qc)

    def test_idempotent(self):
        qc = random_circuit(3, 40, seed=9)
        once = optimize_circuit(qc)
        twice = optimize_circuit(once)
        assert once == twice
