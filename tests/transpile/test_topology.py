"""Unit tests for device topologies."""

import pytest

from repro.errors import DeviceError
from repro.transpile.topology import (
    Topology,
    full_topology,
    grid_topology,
    line_topology,
    nearly_square_grid,
)


class TestLine:
    def test_edge_count(self):
        assert len(line_topology(5).edges) == 4

    def test_adjacency(self):
        topo = line_topology(4)
        assert topo.are_adjacent(1, 2)
        assert not topo.are_adjacent(0, 3)

    def test_distance(self):
        assert line_topology(5).distance(0, 4) == 4

    def test_shortest_path_endpoints(self):
        path = line_topology(4).shortest_path(0, 3)
        assert path[0] == 0 and path[-1] == 3


class TestGrid:
    def test_2x3_edge_count(self):
        # 2 rows x 3 cols: 2*2 vertical + 3*1... rows*(cols-1) + cols*(rows-1)
        assert len(grid_topology(2, 3).edges) == 2 * 2 + 3 * 1

    def test_grid_neighbors(self):
        topo = grid_topology(2, 2)
        assert set(topo.neighbors(0)) == {1, 2}

    def test_invalid_dimensions(self):
        with pytest.raises(DeviceError):
            grid_topology(0, 3)

    def test_nearly_square_covers(self):
        for n in (2, 5, 7, 10):
            assert nearly_square_grid(n).num_qubits >= n


class TestCustom:
    def test_invalid_edge_rejected(self):
        with pytest.raises(DeviceError):
            Topology(2, [(0, 2)])

    def test_self_loop_rejected(self):
        with pytest.raises(DeviceError):
            Topology(2, [(1, 1)])

    def test_subgraph_edges(self):
        topo = line_topology(5)
        assert topo.subgraph_edges([1, 2, 4]) == ((1, 2),)

    def test_connected_subset(self):
        topo = line_topology(5)
        assert topo.is_connected_subset([1, 2, 3])
        assert not topo.is_connected_subset([0, 2])

    def test_disconnected_distance_raises(self):
        topo = Topology(4, [(0, 1), (2, 3)])
        with pytest.raises(DeviceError):
            topo.distance(0, 3)

    def test_full_topology_all_pairs(self):
        topo = full_topology(4)
        assert len(topo.edges) == 6
