"""Tests for two-qubit block resynthesis."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.parameters import Parameter
from repro.linalg import haar_random_unitary, unitaries_equal_up_to_phase
from repro.sim.unitary import circuit_unitary
from repro.transpile.kak import canonical_matrix, weyl_coordinates
from repro.transpile.resynth import (
    canonical_gate_circuit,
    resynthesize_two_qubit_runs,
    two_qubit_circuit,
)

PI_4 = math.pi / 4


def _cx_count(circuit: QuantumCircuit) -> int:
    return circuit.count_ops().get("cx", 0)


class TestCanonicalGateCircuit:
    def test_identity_class_is_empty(self):
        assert len(canonical_gate_circuit(0, 0, 0)) == 0

    def test_cx_class_single_cx(self):
        circuit = canonical_gate_circuit(PI_4, 0, 0)
        assert _cx_count(circuit) == 1

    def test_two_cx_class(self):
        circuit = canonical_gate_circuit(0.3, 0.2, 0)
        assert _cx_count(circuit) == 2
        # The emitted circuit must be locally equivalent to K(x, y, 0).
        got = weyl_coordinates(circuit_unitary(circuit))
        want = weyl_coordinates(canonical_matrix(0.3, 0.2, 0))
        assert np.allclose(got, want, atol=1e-7)

    @pytest.mark.parametrize(
        "coords",
        [(0.3, 0.2, 0.1), (PI_4, PI_4, PI_4), (0.7, 0.5, -0.3), (0.78, 0.1, 0.05)],
    )
    def test_three_cx_class_locally_equivalent(self, coords):
        circuit = canonical_gate_circuit(*coords)
        assert _cx_count(circuit) == 3
        got = weyl_coordinates(circuit_unitary(circuit))
        want = weyl_coordinates(canonical_matrix(*coords))
        assert np.allclose(got, want, atol=1e-6)


class TestTwoQubitCircuit:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_unitary_synthesis(self, seed):
        u = haar_random_unitary(4, seed=seed)
        circuit = two_qubit_circuit(u)
        assert unitaries_equal_up_to_phase(circuit_unitary(circuit), u, atol=1e-6)
        assert _cx_count(circuit) <= 3

    def test_local_unitary_needs_no_cx(self):
        rng = np.random.default_rng(0)
        u = np.kron(haar_random_unitary(2, seed=rng), haar_random_unitary(2, seed=rng))
        circuit = two_qubit_circuit(u)
        assert _cx_count(circuit) == 0
        assert unitaries_equal_up_to_phase(circuit_unitary(circuit), u, atol=1e-6)

    def test_cx_needs_one_cx(self):
        from repro.circuits.gates import CXGate

        circuit = two_qubit_circuit(CXGate().matrix())
        assert _cx_count(circuit) == 1
        assert unitaries_equal_up_to_phase(
            circuit_unitary(circuit), CXGate().matrix(), atol=1e-6
        )

    def test_swap_needs_three_cx(self):
        from repro.circuits.gates import SwapGate

        circuit = two_qubit_circuit(SwapGate().matrix())
        assert _cx_count(circuit) == 3
        assert unitaries_equal_up_to_phase(
            circuit_unitary(circuit), SwapGate().matrix(), atol=1e-6
        )

    def test_controlled_phase_needs_two_cx(self):
        # diag(1,1,1,e^{iθ}) for generic θ sits in the 2-CX class.
        u = np.diag([1, 1, 1, np.exp(0.7j)]).astype(complex)
        circuit = two_qubit_circuit(u)
        assert _cx_count(circuit) == 2
        assert unitaries_equal_up_to_phase(circuit_unitary(circuit), u, atol=1e-6)


class TestResynthesisPass:
    def _random_two_qubit_run(self, seed, n_cx=4):
        rng = np.random.default_rng(seed)
        circuit = QuantumCircuit(2)
        for _ in range(n_cx):
            circuit.rz(rng.uniform(-3, 3), 0)
            circuit.rx(rng.uniform(-3, 3), 1)
            circuit.cx(0, 1)
        circuit.rz(rng.uniform(-3, 3), 1)
        return circuit

    @pytest.mark.parametrize("seed", range(6))
    def test_preserves_unitary(self, seed):
        circuit = self._random_two_qubit_run(seed)
        out = resynthesize_two_qubit_runs(circuit)
        assert unitaries_equal_up_to_phase(
            circuit_unitary(out), circuit_unitary(circuit), atol=1e-6
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_reduces_cx_count_on_long_runs(self, seed):
        circuit = self._random_two_qubit_run(seed, n_cx=5)
        out = resynthesize_two_qubit_runs(circuit)
        assert _cx_count(out) <= 3

    def test_leaves_single_cx_alone(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        out = resynthesize_two_qubit_runs(circuit)
        assert out.count_ops() == circuit.count_ops()

    def test_skips_parameterized_runs(self):
        theta = Parameter("theta")
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.rz(theta, 1)
        circuit.cx(0, 1)
        circuit.cx(0, 1)
        out = resynthesize_two_qubit_runs(circuit)
        # The run contains an unbound parameter: it must survive verbatim.
        assert out.count_ops().get("cx") == 3
        assert theta in set(out.parameters)

    def test_multi_pair_circuit_preserved(self):
        rng = np.random.default_rng(42)
        circuit = QuantumCircuit(3)
        for _ in range(3):
            circuit.rz(rng.uniform(-3, 3), 0)
            circuit.cx(0, 1)
            circuit.rx(rng.uniform(-3, 3), 1)
            circuit.cx(0, 1)
        for _ in range(3):
            circuit.cx(1, 2)
            circuit.rz(rng.uniform(-3, 3), 2)
            circuit.cx(1, 2)
        out = resynthesize_two_qubit_runs(circuit)
        assert unitaries_equal_up_to_phase(
            circuit_unitary(out), circuit_unitary(circuit), atol=1e-6
        )

    def test_interleaved_pairs_preserved(self):
        rng = np.random.default_rng(7)
        circuit = QuantumCircuit(4)
        for _ in range(4):
            circuit.cx(0, 1)
            circuit.cx(2, 3)
            circuit.rx(rng.uniform(-3, 3), 1)
            circuit.ry(rng.uniform(-3, 3), 3)
        out = resynthesize_two_qubit_runs(circuit)
        assert unitaries_equal_up_to_phase(
            circuit_unitary(out), circuit_unitary(circuit), atol=1e-6
        )

    def test_empty_circuit(self):
        out = resynthesize_two_qubit_runs(QuantumCircuit(2))
        assert len(out) == 0

    def test_single_qubit_only_circuit(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.rz(0.3, 1)
        out = resynthesize_two_qubit_runs(circuit)
        assert unitaries_equal_up_to_phase(
            circuit_unitary(out), circuit_unitary(circuit), atol=1e-9
        )

    def test_never_increases_duration(self):
        from repro.transpile.basis import decompose_to_basis
        from repro.transpile.schedule import asap_schedule

        for seed in range(4):
            circuit = decompose_to_basis(self._random_two_qubit_run(seed, n_cx=6))
            out = resynthesize_two_qubit_runs(circuit)
            before = asap_schedule(decompose_to_basis(circuit)).duration_ns
            after = asap_schedule(decompose_to_basis(out)).duration_ns
            assert after <= before + 1e-9


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_synthesis_roundtrip_property(seed):
    """Property: synthesis realizes any 4x4 unitary with at most 3 CX."""
    u = haar_random_unitary(4, seed=seed)
    circuit = two_qubit_circuit(u)
    assert circuit.count_ops().get("cx", 0) <= 3
    assert unitaries_equal_up_to_phase(circuit_unitary(circuit), u, atol=1e-6)
