"""Unit tests for ASAP scheduling."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import critical_path_ns
from repro.circuits.library import random_circuit
from repro.errors import TranspileError
from repro.transpile.schedule import asap_schedule, gate_duration_ns


class TestAsapSchedule:
    def test_duration_matches_critical_path(self):
        for seed in range(4):
            qc = random_circuit(4, 30, seed=seed)
            assert np.isclose(asap_schedule(qc).duration_ns, critical_path_ns(qc))

    def test_parallel_gates_same_start(self):
        qc = QuantumCircuit(2).h(0).h(1)
        sched = asap_schedule(qc)
        starts = [e.start_ns for e in sched.entries]
        assert starts == [0.0, 0.0]

    def test_dependent_gate_starts_after(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1)
        sched = asap_schedule(qc)
        assert np.isclose(sched.entries[1].start_ns, 1.4)

    def test_no_qubit_overlap(self):
        qc = random_circuit(3, 40, seed=7)
        sched = asap_schedule(qc)
        for q in range(3):
            timeline = sched.qubit_timeline(q)
            for a, b in zip(timeline, timeline[1:]):
                assert b.start_ns >= a.end_ns - 1e-12

    def test_empty_schedule(self):
        sched = asap_schedule(QuantumCircuit(2))
        assert sched.duration_ns == 0.0
        assert len(sched) == 0

    def test_parallelism_metric(self):
        qc = QuantumCircuit(2).rx(0.1, 0).rx(0.1, 1)
        assert np.isclose(asap_schedule(qc).parallelism(), 2.0)

    def test_gate_duration_lookup(self):
        assert gate_duration_ns("cx") == 3.8

    def test_unknown_gate_duration(self):
        with pytest.raises(TranspileError):
            gate_duration_ns("nonsense")
