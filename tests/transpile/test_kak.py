"""Tests for the Cartan (KAK) decomposition."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.gates import CXGate, CZGate, ISwapGate, SwapGate
from repro.errors import TranspileError
from repro.linalg import haar_random_unitary, unitaries_equal_up_to_phase
from repro.transpile.kak import (
    MAGIC,
    KAKDecomposition,
    canonical_matrix,
    cx_count_for_coordinates,
    decompose_su2_tensor,
    kak_decompose,
    makhlin_invariants,
    weyl_coordinates,
    zyz_angles,
)

PI_4 = math.pi / 4


def _rand_su2(rng):
    return haar_random_unitary(2, seed=rng)


def _rz(phi):
    return np.diag([np.exp(-0.5j * phi), np.exp(0.5j * phi)])


def _ry(theta):
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=complex)


class TestMagicBasis:
    def test_magic_basis_is_unitary(self):
        assert np.allclose(MAGIC @ MAGIC.conj().T, np.eye(4))

    @pytest.mark.parametrize("axis", ["x", "y", "z"])
    def test_pauli_pairs_diagonal_in_magic_basis(self, axis):
        paulis = {
            "x": np.array([[0, 1], [1, 0]], dtype=complex),
            "y": np.array([[0, -1j], [1j, 0]], dtype=complex),
            "z": np.diag([1.0, -1.0]).astype(complex),
        }
        pp = np.kron(paulis[axis], paulis[axis])
        d = MAGIC.conj().T @ pp @ MAGIC
        assert np.abs(d - np.diag(np.diag(d))).max() < 1e-12


class TestCanonicalMatrix:
    def test_zero_coordinates_is_identity(self):
        assert np.allclose(canonical_matrix(0, 0, 0), np.eye(4))

    def test_matches_expm(self):
        from scipy.linalg import expm

        x, y, z = 0.3, -0.7, 1.1
        paulis = {
            "x": np.array([[0, 1], [1, 0]], dtype=complex),
            "y": np.array([[0, -1j], [1j, 0]], dtype=complex),
            "z": np.diag([1.0, -1.0]).astype(complex),
        }
        h = (
            x * np.kron(paulis["x"], paulis["x"])
            + y * np.kron(paulis["y"], paulis["y"])
            + z * np.kron(paulis["z"], paulis["z"])
        )
        assert np.allclose(canonical_matrix(x, y, z), expm(1j * h))

    def test_canonical_matrices_commute(self):
        a = canonical_matrix(0.2, 0.1, 0.05)
        b = canonical_matrix(-0.4, 0.9, 0.3)
        assert np.allclose(a @ b, b @ a)


class TestZYZ:
    @pytest.mark.parametrize("seed", range(8))
    def test_reconstruction(self, seed):
        rng = np.random.default_rng(seed)
        u = _rand_su2(rng)
        alpha, beta, gamma, delta = zyz_angles(u)
        rebuilt = np.exp(1j * alpha) * (_rz(beta) @ _ry(gamma) @ _rz(delta))
        assert np.allclose(rebuilt, u, atol=1e-9)

    def test_identity(self):
        alpha, beta, gamma, delta = zyz_angles(np.eye(2))
        rebuilt = np.exp(1j * alpha) * (_rz(beta) @ _ry(gamma) @ _rz(delta))
        assert np.allclose(rebuilt, np.eye(2))

    def test_diagonal_gate(self):
        u = np.diag([1.0, 1j])
        alpha, beta, gamma, delta = zyz_angles(u)
        rebuilt = np.exp(1j * alpha) * (_rz(beta) @ _ry(gamma) @ _rz(delta))
        assert np.allclose(rebuilt, u, atol=1e-9)

    def test_antidiagonal_gate(self):
        u = np.array([[0, 1], [1, 0]], dtype=complex)
        alpha, beta, gamma, delta = zyz_angles(u)
        rebuilt = np.exp(1j * alpha) * (_rz(beta) @ _ry(gamma) @ _rz(delta))
        assert np.allclose(rebuilt, u, atol=1e-9)

    def test_rejects_wrong_shape(self):
        with pytest.raises(TranspileError):
            zyz_angles(np.eye(4))


class TestTensorSplit:
    @pytest.mark.parametrize("seed", range(6))
    def test_exact_tensor_product(self, seed):
        rng = np.random.default_rng(seed)
        a, b = _rand_su2(rng), _rand_su2(rng)
        phase, a2, b2 = decompose_su2_tensor(np.kron(a, b))
        assert np.allclose(
            np.exp(1j * phase) * np.kron(a2, b2), np.kron(a, b), atol=1e-9
        )

    def test_su2_normalization(self):
        rng = np.random.default_rng(11)
        _, a, b = decompose_su2_tensor(np.kron(_rand_su2(rng), _rand_su2(rng)))
        assert abs(np.linalg.det(a) - 1) < 1e-9
        assert abs(np.linalg.det(b) - 1) < 1e-9

    def test_rejects_entangling(self):
        with pytest.raises(TranspileError):
            decompose_su2_tensor(CXGate().matrix())


class TestKAKReconstruction:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_unitary_roundtrip(self, seed):
        u = haar_random_unitary(4, seed=np.random.default_rng(seed))
        d = kak_decompose(u)
        assert np.abs(d.unitary() - u).max() < 1e-7

    @pytest.mark.parametrize(
        "gate", [CXGate(), CZGate(), SwapGate(), ISwapGate()], ids=lambda g: g.name
    )
    def test_named_gate_roundtrip(self, gate):
        u = gate.matrix()
        d = kak_decompose(u)
        assert np.abs(d.unitary() - u).max() < 1e-7

    def test_identity_roundtrip(self):
        d = kak_decompose(np.eye(4, dtype=complex))
        assert np.abs(d.unitary() - np.eye(4)).max() < 1e-8
        assert cx_count_for_coordinates(d.coordinates) == 0

    def test_rejects_non_unitary(self):
        with pytest.raises(TranspileError):
            kak_decompose(np.ones((4, 4)))

    def test_rejects_wrong_shape(self):
        with pytest.raises(TranspileError):
            kak_decompose(np.eye(2))


class TestSU4RoundtripTight:
    """Random SU(4) targets must reconstruct to ≤1e-9 — the accuracy bar
    for the analytic KAK warm-start seeds, which trust the decomposition
    verbatim (a sloppy reconstruction would seed GRAPE toward the wrong
    unitary)."""

    @pytest.mark.parametrize("seed", range(25))
    def test_haar_su4_roundtrip(self, seed):
        u = haar_random_unitary(4, seed=np.random.default_rng(seed))
        su = u / np.linalg.det(u) ** 0.25  # project onto det = 1
        assert abs(np.linalg.det(su) - 1.0) < 1e-12
        d = kak_decompose(su)
        assert np.abs(d.unitary() - su).max() < 1e-9

    def test_su4_locals_stay_special(self):
        u = haar_random_unitary(4, seed=np.random.default_rng(7))
        su = u / np.linalg.det(u) ** 0.25
        d = kak_decompose(su)
        for local in (d.k1_q0, d.k1_q1, d.k2_q0, d.k2_q1):
            assert np.allclose(local @ local.conj().T, np.eye(2), atol=1e-10)


class TestWeylChamber:
    @pytest.mark.parametrize("seed", range(20))
    def test_coordinates_in_chamber(self, seed):
        u = haar_random_unitary(4, seed=np.random.default_rng(100 + seed))
        x, y, z = weyl_coordinates(u)
        assert x <= PI_4 + 1e-7
        assert x >= y >= abs(z) - 1e-9
        if abs(x - PI_4) < 1e-7:
            # At the x = π/4 face the mirror classes coincide and z is
            # normalized non-negative.
            assert z >= -1e-9

    def test_cx_coordinates(self):
        x, y, z = weyl_coordinates(CXGate().matrix())
        assert abs(x - PI_4) < 1e-7 and abs(y) < 1e-7 and abs(z) < 1e-7

    def test_cz_locally_equivalent_to_cx(self):
        cx = weyl_coordinates(CXGate().matrix())
        cz = weyl_coordinates(CZGate().matrix())
        assert np.allclose(cx, cz, atol=1e-7)

    def test_swap_coordinates(self):
        coords = weyl_coordinates(SwapGate().matrix())
        assert np.allclose(coords, (PI_4, PI_4, PI_4), atol=1e-7)

    def test_iswap_coordinates(self):
        coords = weyl_coordinates(ISwapGate().matrix())
        assert np.allclose(coords, (PI_4, PI_4, 0.0), atol=1e-7)

    def test_local_gates_have_zero_coordinates(self):
        rng = np.random.default_rng(5)
        u = np.kron(_rand_su2(rng), _rand_su2(rng))
        assert np.allclose(weyl_coordinates(u), (0, 0, 0), atol=1e-7)

    @pytest.mark.parametrize("seed", range(6))
    def test_local_invariance(self, seed):
        """Dressing with single-qubit gates never moves the Weyl point."""
        rng = np.random.default_rng(200 + seed)
        u = haar_random_unitary(4, seed=rng)
        dressed = (
            np.kron(_rand_su2(rng), _rand_su2(rng))
            @ u
            @ np.kron(_rand_su2(rng), _rand_su2(rng))
        )
        assert np.allclose(
            weyl_coordinates(u), weyl_coordinates(dressed), atol=1e-6
        )


class TestMakhlinInvariants:
    def test_cx_invariants(self):
        g1r, g1i, g2 = makhlin_invariants(CXGate().matrix())
        assert abs(g1r) < 1e-9 and abs(g1i) < 1e-9 and abs(g2 - 1) < 1e-9

    def test_identity_invariants(self):
        g1r, g1i, g2 = makhlin_invariants(np.eye(4))
        assert abs(g1r - 1) < 1e-9 and abs(g1i) < 1e-9 and abs(g2 - 3) < 1e-9

    def test_swap_invariants(self):
        g1r, g1i, g2 = makhlin_invariants(SwapGate().matrix())
        assert abs(g1r + 1) < 1e-9 and abs(g2 + 3) < 1e-9

    @pytest.mark.parametrize("seed", range(5))
    def test_invariance_under_locals(self, seed):
        rng = np.random.default_rng(300 + seed)
        u = haar_random_unitary(4, seed=rng)
        dressed = (
            np.kron(_rand_su2(rng), _rand_su2(rng))
            @ u
            @ np.kron(_rand_su2(rng), _rand_su2(rng))
        )
        assert np.allclose(
            makhlin_invariants(u), makhlin_invariants(dressed), atol=1e-7
        )

    def test_mirror_classes_distinguished(self):
        a = makhlin_invariants(canonical_matrix(0.3, 0.2, 0.1))
        b = makhlin_invariants(canonical_matrix(0.3, 0.2, -0.1))
        assert not np.allclose(a, b, atol=1e-9)


class TestCXCount:
    def test_identity_class(self):
        assert cx_count_for_coordinates((0, 0, 0)) == 0

    def test_cx_class(self):
        assert cx_count_for_coordinates((PI_4, 0, 0)) == 1

    def test_two_cx_class(self):
        assert cx_count_for_coordinates((0.3, 0.2, 0)) == 2

    def test_generic_class(self):
        assert cx_count_for_coordinates((0.3, 0.2, 0.1)) == 3

    def test_swap_needs_three(self):
        assert cx_count_for_coordinates((PI_4, PI_4, PI_4)) == 3


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_kak_roundtrip_property(seed):
    """Property: decompose → reconstruct is the identity for any unitary."""
    u = haar_random_unitary(4, seed=np.random.default_rng(seed))
    d = kak_decompose(u)
    assert isinstance(d, KAKDecomposition)
    assert np.abs(d.unitary() - u).max() < 1e-6


@settings(max_examples=25, deadline=None)
@given(
    st.floats(min_value=-3.0, max_value=3.0),
    st.floats(min_value=-3.0, max_value=3.0),
    st.floats(min_value=-3.0, max_value=3.0),
)
def test_canonical_gate_coordinates_roundtrip(x, y, z):
    """Property: K(x,y,z) decomposes to chamber coordinates that rebuild it."""
    u = canonical_matrix(x, y, z)
    d = kak_decompose(u)
    assert np.abs(d.unitary() - u).max() < 1e-6
