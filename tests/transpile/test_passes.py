"""Unit tests for the pass manager and default pipeline."""

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import random_circuit
from repro.circuits.parameters import Parameter
from repro.linalg.unitaries import unitaries_equal_up_to_phase
from repro.sim.unitary import circuit_unitary
from repro.transpile.basis import BASIS_GATES
from repro.transpile.passes import PassManager, default_pass_manager, transpile
from repro.transpile.topology import line_topology


class TestPassManager:
    def test_runs_in_order(self):
        order = []

        def make_pass(tag):
            def pass_(qc):
                order.append(tag)
                return qc

            return pass_

        manager = PassManager([make_pass("a")]).append(make_pass("b"))
        manager.run(QuantumCircuit(1))
        assert order == ["a", "b"]


class TestDefaultPipeline:
    def test_output_in_basis(self):
        qc = QuantumCircuit(2).ry(0.3, 0).cz(0, 1).t(1)
        out = transpile(qc)
        assert all(i.gate.name in BASIS_GATES for i in out)

    def test_unitary_preserved_without_routing(self):
        qc = random_circuit(3, 30, seed=0)
        out = transpile(qc)
        assert unitaries_equal_up_to_phase(circuit_unitary(out), circuit_unitary(qc))

    def test_parametrized_gates_become_rz(self):
        theta = Parameter("theta_0")
        qc = QuantumCircuit(1).rx(2 * theta, 0)
        out = transpile(qc)
        parametrized = [i for i in out if i.parameters]
        assert all(i.gate.name == "rz" for i in parametrized)

    def test_rz_only_disabled_keeps_rx(self):
        theta = Parameter("theta_0")
        qc = QuantumCircuit(1).rx(2 * theta, 0)
        out = transpile(qc, rz_only_parameters=False)
        assert any(i.gate.name == "rx" and i.parameters for i in out)

    def test_routing_respects_topology(self):
        topo = line_topology(4)
        qc = random_circuit(4, 25, seed=1)
        out = transpile(qc, topology=topo)
        for inst in out:
            if len(inst.qubits) == 2:
                assert topo.are_adjacent(*inst.qubits)

    def test_parametrized_count_preserved(self):
        theta = [Parameter(f"theta_{i}") for i in range(3)]
        qc = QuantumCircuit(2)
        for i, t in enumerate(theta):
            qc.cx(0, 1)
            qc.rz(t, i % 2)
        out = transpile(qc)
        assert set(p.name for p in out.parameters) == {t.name for t in theta}


class TestResynthesisOption:
    """The opt-in KAK resynthesis stage of the default pipeline."""

    def test_resynthesize_flag_preserves_semantics(self):
        import numpy as np

        from repro.linalg.unitaries import unitaries_equal_up_to_phase
        from repro.sim.unitary import circuit_unitary

        rng = np.random.default_rng(0)
        circuit = QuantumCircuit(2)
        for _ in range(4):
            circuit.rz(rng.uniform(-3, 3), 0)
            circuit.cx(0, 1)
            circuit.rx(rng.uniform(-3, 3), 1)
        plain = transpile(circuit)
        resynth = transpile(circuit, resynthesize=True)
        assert unitaries_equal_up_to_phase(
            circuit_unitary(resynth), circuit_unitary(plain), atol=1e-6
        )

    def test_resynthesize_never_regresses_runtime(self):
        import numpy as np

        from repro.transpile.schedule import asap_schedule

        rng = np.random.default_rng(1)
        circuit = QuantumCircuit(2)
        for _ in range(6):
            circuit.rz(rng.uniform(-3, 3), 0)
            circuit.cx(0, 1)
        plain = asap_schedule(transpile(circuit)).duration_ns
        resynth = asap_schedule(transpile(circuit, resynthesize=True)).duration_ns
        assert resynth <= plain + 1e-9

    def test_resynthesize_keeps_parameters(self):
        from repro.circuits.parameters import Parameter

        theta = Parameter("t")
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.rz(theta, 1)
        circuit.cx(0, 1)
        out = transpile(circuit, resynthesize=True)
        assert theta in set(out.parameters)
