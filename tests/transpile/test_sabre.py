"""Tests for the SABRE-style lookahead router and new topologies."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit
from repro.errors import DeviceError, TranspileError
from repro.linalg.unitaries import unitaries_equal_up_to_phase
from repro.sim.unitary import circuit_unitary
from repro.transpile import (
    grid_topology,
    heavy_hex_topology,
    line_topology,
    full_topology,
    ring_topology,
    route_circuit,
    sabre_route,
)
from repro.circuits.gates import SwapGate


def _undo_final_layout(routed, final_layout, width):
    """Append SWAPs relabeling physical back to logical for comparison."""
    circuit = routed.copy()
    current = dict(final_layout)  # logical -> physical
    for logical in range(width):
        physical = current[logical]
        if physical != logical:
            circuit.append(SwapGate(), (logical, physical))
            # Update bookkeeping: whatever logical qubit sat at `logical`
            # has moved to `physical`.
            for other, p in current.items():
                if p == logical:
                    current[other] = physical
                    break
            current[logical] = logical
    return circuit


def _random_circuit(num_qubits, num_gates, seed):
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits)
    for _ in range(num_gates):
        if rng.uniform() < 0.4:
            circuit.rx(rng.uniform(-3, 3), int(rng.integers(num_qubits)))
        else:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            circuit.cx(int(a), int(b))
    return circuit


class TestNewTopologies:
    def test_ring_degree_two(self):
        topo = ring_topology(8)
        assert all(len(topo.neighbors(q)) == 2 for q in range(8))

    def test_ring_wraps_around(self):
        topo = ring_topology(5)
        assert topo.are_adjacent(0, 4)
        assert topo.distance(0, 3) == 2  # shorter the wrap-around way

    def test_ring_too_small_rejected(self):
        with pytest.raises(DeviceError):
            ring_topology(2)

    def test_heavy_hex_connected(self):
        topo = heavy_hex_topology(2, 2)
        assert nx.is_connected(topo.graph)

    def test_heavy_hex_max_degree_three(self):
        """The defining property: no qubit couples to more than 3 others."""
        topo = heavy_hex_topology(2, 3)
        assert max(dict(topo.graph.degree()).values()) == 3

    def test_heavy_hex_has_degree_two_bridge_qubits(self):
        topo = heavy_hex_topology(1, 2)
        degrees = [d for _, d in topo.graph.degree()]
        assert degrees.count(2) >= topo.num_qubits / 3

    def test_heavy_hex_rejects_bad_dimensions(self):
        with pytest.raises(DeviceError):
            heavy_hex_topology(0, 1)


class TestSabreRouting:
    def test_adjacent_gates_untouched(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        result = sabre_route(circuit, line_topology(3))
        assert result.swap_count == 0

    def test_all_gates_adjacent_after_routing(self):
        circuit = _random_circuit(5, 30, seed=0)
        topo = line_topology(5)
        result = sabre_route(circuit, topo)
        for inst in result.circuit:
            if len(inst.qubits) == 2:
                assert topo.are_adjacent(*inst.qubits)

    @pytest.mark.parametrize("seed", range(5))
    def test_semantics_preserved(self, seed):
        circuit = _random_circuit(4, 14, seed=seed)
        topo = line_topology(4)
        result = sabre_route(circuit, topo)
        restored = _undo_final_layout(result.circuit, result.final_layout, 4)
        assert unitaries_equal_up_to_phase(
            circuit_unitary(restored), circuit_unitary(circuit), atol=1e-7
        )

    def test_full_topology_never_swaps(self):
        circuit = _random_circuit(5, 25, seed=1)
        result = sabre_route(circuit, full_topology(5))
        assert result.swap_count == 0

    def test_routing_on_heavy_hex(self):
        circuit = _random_circuit(6, 20, seed=2)
        topo = heavy_hex_topology(1, 2)
        result = sabre_route(circuit, topo)
        for inst in result.circuit:
            if len(inst.qubits) == 2:
                assert topo.are_adjacent(*inst.qubits)

    def test_routing_on_ring(self):
        circuit = _random_circuit(6, 20, seed=3)
        topo = ring_topology(6)
        result = sabre_route(circuit, topo)
        for inst in result.circuit:
            if len(inst.qubits) == 2:
                assert topo.are_adjacent(*inst.qubits)

    def test_width_overflow_rejected(self):
        with pytest.raises(TranspileError):
            sabre_route(QuantumCircuit(4), line_topology(3))

    def test_duplicate_layout_rejected(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        with pytest.raises(TranspileError):
            sabre_route(circuit, line_topology(3), initial_layout={0: 1, 1: 1})

    def test_custom_initial_layout_respected(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        result = sabre_route(
            circuit, line_topology(4), initial_layout={0: 2, 1: 3}
        )
        assert result.initial_layout == {0: 2, 1: 3}
        first = next(iter(result.circuit))
        assert set(first.qubits) == {2, 3}

    def test_preserves_gate_counts_modulo_swaps(self):
        circuit = _random_circuit(5, 20, seed=4)
        result = sabre_route(circuit, line_topology(5))
        original = circuit.count_ops()
        routed = result.circuit.count_ops()
        inserted_swaps = routed.get("swap", 0) - original.get("swap", 0)
        assert inserted_swaps == result.swap_count
        for name, count in original.items():
            if name != "swap":
                assert routed[name] == count


class TestSabreVsGreedy:
    @pytest.mark.parametrize("seed", range(4))
    def test_sabre_never_pathologically_worse(self, seed):
        """Lookahead may differ per instance but must stay within 2x greedy."""
        circuit = _random_circuit(6, 40, seed=seed)
        topo = line_topology(6)
        greedy = route_circuit(circuit, topo).swap_count
        sabre = sabre_route(circuit, topo).swap_count
        assert sabre <= 2 * greedy + 2

    def test_sabre_wins_on_lookahead_pattern(self):
        """A pattern where the greedy walk direction is short-sighted:
        aggregate swap count over interleaved far pairs."""
        circuit = QuantumCircuit(6)
        for _ in range(4):
            circuit.cx(0, 5)
            circuit.cx(1, 4)
        topo = line_topology(6)
        greedy = route_circuit(circuit, topo).swap_count
        sabre = sabre_route(circuit, topo).swap_count
        assert sabre <= greedy


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=4, max_value=6),
)
def test_sabre_valid_routing_property(seed, width):
    """Property: routing is always topology-valid and swap-accounted."""
    circuit = _random_circuit(width, 18, seed=seed)
    topo = grid_topology(2, (width + 1) // 2)
    result = sabre_route(circuit, topo)
    for inst in result.circuit:
        if len(inst.qubits) == 2:
            assert topo.are_adjacent(*inst.qubits)
    assert result.circuit.count_ops().get("swap", 0) >= result.swap_count - (
        circuit.count_ops().get("swap", 0)
    )
