"""Tests for commutation-aware rotation merging."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import random_circuit
from repro.circuits.parameters import Parameter
from repro.linalg.unitaries import unitaries_equal_up_to_phase
from repro.sim.unitary import circuit_unitary
from repro.transpile.commute import commuting_rotation_merge


class TestCommutingMerge:
    def test_rz_through_cx_control(self):
        qc = QuantumCircuit(2).rz(0.3, 0).cx(0, 1).rz(0.4, 0)
        out = commuting_rotation_merge(qc)
        assert out.count_ops() == {"rz": 1, "cx": 1}
        rz = [i for i in out if i.gate.name == "rz"][0]
        assert math.isclose(rz.gate.params[0], 0.7)

    def test_rz_through_cx_target_blocked(self):
        qc = QuantumCircuit(2).rz(0.3, 1).cx(0, 1).rz(0.4, 1)
        out = commuting_rotation_merge(qc)
        assert out.count_ops()["rz"] == 2

    def test_rx_through_cx_target(self):
        qc = QuantumCircuit(2).rx(0.3, 1).cx(0, 1).rx(0.4, 1)
        out = commuting_rotation_merge(qc)
        assert out.count_ops()["rx"] == 1

    def test_rx_through_cx_control_blocked(self):
        qc = QuantumCircuit(2).rx(0.3, 0).cx(0, 1).rx(0.4, 0)
        out = commuting_rotation_merge(qc)
        assert out.count_ops()["rx"] == 2

    def test_rz_through_cz_and_rzz(self):
        qc = QuantumCircuit(2)
        qc.rz(0.2, 0).cz(0, 1).rzz(0.5, 0, 1).rz(-0.2, 0)
        out = commuting_rotation_merge(qc)
        assert out.count_ops().get("rz", 0) == 0  # merged to zero

    def test_h_blocks_merge(self):
        qc = QuantumCircuit(1).rz(0.3, 0).h(0).rz(0.4, 0)
        out = commuting_rotation_merge(qc)
        assert out.count_ops()["rz"] == 2

    def test_cancellation_to_zero_removes_both(self):
        qc = QuantumCircuit(2).rz(0.5, 0).cx(0, 1).rz(-0.5, 0)
        out = commuting_rotation_merge(qc)
        assert out.count_ops() == {"cx": 1}

    def test_symbolic_same_parameter_merges(self):
        theta = Parameter("theta_0")
        qc = QuantumCircuit(2).rz(theta, 0).cx(0, 1).rz(theta, 0)
        out = commuting_rotation_merge(qc)
        rz = [i for i in out if i.gate.name == "rz"]
        assert len(rz) == 1
        assert rz[0].gate.params[0].coefficient(theta) == 2.0

    def test_symbolic_different_parameters_not_merged(self):
        t0, t1 = Parameter("theta_0"), Parameter("theta_1")
        qc = QuantumCircuit(2).rz(t0, 0).cx(0, 1).rz(t1, 0)
        out = commuting_rotation_merge(qc)
        assert out.count_ops()["rz"] == 2

    def test_chain_of_commuting_gates(self):
        qc = QuantumCircuit(3)
        qc.rz(0.1, 0).cx(0, 1).cz(0, 2).s(0).rz(0.2, 0)
        out = commuting_rotation_merge(qc)
        rz = [i for i in out if i.gate.name == "rz"]
        assert len(rz) == 1
        assert math.isclose(rz[0].gate.params[0], 0.3)

    @given(st.integers(0, 40))
    @settings(max_examples=20, deadline=None)
    def test_preserves_unitary(self, seed):
        qc = random_circuit(3, 30, seed=seed)
        out = commuting_rotation_merge(qc)
        assert len(out) <= len(qc)
        assert unitaries_equal_up_to_phase(
            circuit_unitary(out), circuit_unitary(qc)
        )

    def test_preserves_unitary_with_bound_angles(self):
        qc = QuantumCircuit(2)
        qc.rz(0.7, 0).cx(0, 1).rz(0.9, 0).cx(0, 1).rz(-1.6, 0)
        out = commuting_rotation_merge(qc)
        assert unitaries_equal_up_to_phase(
            circuit_unitary(out), circuit_unitary(qc)
        )
