"""Unit tests for SWAP-insertion routing."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import random_circuit
from repro.errors import TranspileError
from repro.linalg.unitaries import unitaries_equal_up_to_phase
from repro.sim.unitary import circuit_unitary
from repro.transpile.routing import route_circuit
from repro.transpile.topology import full_topology, grid_topology, line_topology


def _undo_final_layout(routed, final_layout, width):
    """Append SWAP-free relabeling so routed unitary is comparable."""
    circuit = routed.copy()
    # Sort qubits back: repeatedly swap physical positions until layout is
    # identity on the logical qubits.
    layout = dict(final_layout)
    for logical in sorted(layout):
        current = layout[logical]
        if current != logical:
            circuit.swap(current, logical)
            # Track the displaced logical qubit, if any.
            for other, pos in layout.items():
                if pos == logical:
                    layout[other] = current
                    break
            layout[logical] = logical
    return circuit


class TestRouting:
    def test_adjacent_gates_untouched(self):
        qc = QuantumCircuit(3).cx(0, 1).cx(1, 2)
        result = route_circuit(qc, line_topology(3))
        assert result.swap_count == 0

    def test_distant_gate_gets_swaps(self):
        qc = QuantumCircuit(4).cx(0, 3)
        result = route_circuit(qc, line_topology(4))
        assert result.swap_count == 2

    def test_all_two_qubit_gates_adjacent_after_routing(self):
        topo = line_topology(5)
        qc = random_circuit(5, 40, seed=0)
        result = route_circuit(qc, topo)
        for inst in result.circuit:
            if len(inst.qubits) == 2:
                assert topo.are_adjacent(*inst.qubits)

    def test_routing_on_grid(self):
        topo = grid_topology(2, 3)
        qc = random_circuit(6, 40, seed=1)
        result = route_circuit(qc, topo)
        for inst in result.circuit:
            if len(inst.qubits) == 2:
                assert topo.are_adjacent(*inst.qubits)

    def test_full_topology_never_swaps(self):
        qc = random_circuit(5, 40, seed=2)
        result = route_circuit(qc, full_topology(5))
        assert result.swap_count == 0

    def test_width_overflow_rejected(self):
        with pytest.raises(TranspileError):
            route_circuit(QuantumCircuit(5), line_topology(3))

    def test_routed_semantics_preserved(self):
        # After undoing the final layout permutation, the routed circuit must
        # implement the original unitary.
        qc = random_circuit(4, 25, seed=3)
        result = route_circuit(qc, line_topology(4))
        restored = _undo_final_layout(result.circuit, result.final_layout, 4)
        assert unitaries_equal_up_to_phase(
            circuit_unitary(restored), circuit_unitary(qc)
        )

    def test_custom_initial_layout(self):
        qc = QuantumCircuit(2).cx(0, 1)
        result = route_circuit(qc, line_topology(3), initial_layout={0: 2, 1: 1})
        assert result.circuit[0].qubits == (2, 1)

    def test_duplicate_layout_rejected(self):
        with pytest.raises(TranspileError):
            route_circuit(
                QuantumCircuit(2).cx(0, 1), line_topology(3), initial_layout={0: 1, 1: 1}
            )

    def test_final_layout_tracks_swaps(self):
        qc = QuantumCircuit(3).cx(0, 2)
        result = route_circuit(qc, line_topology(3))
        # One swap happened; layout must be a permutation.
        assert sorted(result.final_layout.values()) != [] and len(
            set(result.final_layout.values())
        ) == len(result.final_layout)
