"""Unit tests for basis decomposition."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import (
    CXGate,
    CZGate,
    HGate,
    IGate,
    ISwapGate,
    RXGate,
    RYGate,
    RZGate,
    RZZGate,
    SGate,
    SdgGate,
    SwapGate,
    TGate,
    TdgGate,
    XGate,
    YGate,
    ZGate,
)
from repro.circuits.parameters import Parameter
from repro.linalg.unitaries import unitaries_equal_up_to_phase
from repro.sim.unitary import circuit_unitary
from repro.transpile.basis import BASIS_GATES, decompose_to_basis

SINGLE_GATES = [
    XGate(),
    YGate(),
    ZGate(),
    SGate(),
    SdgGate(),
    TGate(),
    TdgGate(),
    RXGate(0.7),
    RYGate(-1.1),
    RZGate(2.2),
]
DOUBLE_GATES = [
    CXGate(),
    CZGate(),
    SwapGate(),
    ISwapGate(),
    ISwapGate().inverse(),
    RZZGate(0.9),
]


class TestDecomposition:
    @pytest.mark.parametrize("gate", SINGLE_GATES, ids=lambda g: repr(g))
    def test_single_qubit_equivalence(self, gate):
        qc = QuantumCircuit(1)
        qc.append(gate, (0,))
        decomposed = decompose_to_basis(qc)
        assert unitaries_equal_up_to_phase(
            circuit_unitary(decomposed), circuit_unitary(qc)
        )

    @pytest.mark.parametrize("gate", DOUBLE_GATES, ids=lambda g: repr(g))
    def test_two_qubit_equivalence(self, gate):
        qc = QuantumCircuit(2)
        qc.append(gate, (0, 1))
        decomposed = decompose_to_basis(qc)
        assert unitaries_equal_up_to_phase(
            circuit_unitary(decomposed), circuit_unitary(qc)
        )

    @pytest.mark.parametrize("gate", SINGLE_GATES + DOUBLE_GATES, ids=lambda g: repr(g))
    def test_output_in_basis(self, gate):
        qc = QuantumCircuit(2)
        qc.append(gate, tuple(range(gate.num_qubits)))
        for inst in decompose_to_basis(qc):
            assert inst.gate.name in BASIS_GATES

    def test_identity_removed(self):
        qc = QuantumCircuit(1)
        qc.append(IGate(), (0,))
        assert len(decompose_to_basis(qc)) == 0

    def test_swap_expansion(self):
        qc = QuantumCircuit(2).swap(0, 1)
        expanded = decompose_to_basis(qc, expand_swap=True)
        assert all(i.gate.name == "cx" for i in expanded)
        assert unitaries_equal_up_to_phase(
            circuit_unitary(expanded), circuit_unitary(qc)
        )

    def test_rzz_keeps_symbolic_parameter(self):
        theta = Parameter("theta_0")
        qc = QuantumCircuit(2).rzz(2 * theta, 0, 1)
        decomposed = decompose_to_basis(qc)
        rz_gates = [i for i in decomposed if i.gate.name == "rz"]
        assert len(rz_gates) == 1
        assert rz_gates[0].gate.params[0].coefficient(theta) == 2.0

    def test_ry_keeps_symbolic_parameter(self):
        theta = Parameter("theta_0")
        qc = QuantumCircuit(1).ry(theta, 0)
        decomposed = decompose_to_basis(qc)
        rx_gates = [i for i in decomposed if i.gate.name == "rx"]
        assert len(rx_gates) == 1
        assert rx_gates[0].gate.parameters == frozenset({theta})

    def test_composite_circuit(self):
        qc = QuantumCircuit(3)
        qc.ry(0.4, 0).cz(0, 1).iswap(1, 2).t(2).y(0)
        decomposed = decompose_to_basis(qc)
        assert unitaries_equal_up_to_phase(
            circuit_unitary(decomposed), circuit_unitary(qc)
        )
