"""FleetWorker robustness: real worker processes against a real queue.

The satellite contracts under test:

* a worker completes real BlockJobs and exits cleanly under ``--max-jobs``
  with results bit-identical to in-process compilation;
* SIGTERM drains the in-flight job to a completion record before exit;
* a ``kill -9``'d claim holder's lease is reclaimed (with the reclaim
  counted) even though its heartbeat was fresh and its TTL enormous.
"""

from __future__ import annotations

import json
import subprocess
import sys
import time
from pathlib import Path

import repro
from repro.core import PulseCache
from repro.fleet.dispatcher import _WORKER_BOOTSTRAP
from repro.fleet.queue import FleetQueue
from repro.pipeline.jobs import _encode_outcome, run_block_job

SRC_ROOT = Path(repro.__file__).resolve().parent.parent


def _spawn_worker(fleet_dir, *extra_args) -> subprocess.Popen:
    cmd = [
        sys.executable,
        "-c",
        _WORKER_BOOTSTRAP,
        str(SRC_ROOT),
        "worker",
        "--fleet-dir",
        str(fleet_dir),
        "--poll",
        "0.05",
        *map(str, extra_args),
    ]
    return subprocess.Popen(
        cmd, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
    )


def _wait_for(predicate, timeout: float = 120.0, interval: float = 0.02) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestWorkerLoop:
    def test_compiles_one_job_and_exits(self, tmp_path, job_factory):
        queue = FleetQueue(tmp_path)
        job = job_factory(0.3)
        job_id = queue.enqueue(job)

        proc = _spawn_worker(tmp_path, "--max-jobs", 1, "--worker-id", "w1")
        assert proc.wait(timeout=180) == 0

        record = queue.consume_result(job_id)
        assert record is not None
        assert record["error"] is None
        assert record["worker"] == "w1"
        assert record["wall_time_s"] > 0
        # Bit-identity across the process boundary: the worker's encoded
        # outcome equals the in-process compile of the same job.
        expected = _encode_outcome(run_block_job(job, cache=PulseCache()))
        assert record["outcome"] == expected
        # The queue is fully retired and the worker signed off.
        assert list(queue.jobs_dir.glob("*.job")) == []
        assert list(queue.leases_dir.glob("*.json")) == []
        heartbeat = json.loads((queue.workers_dir / "w1.json").read_text())
        assert heartbeat["state"] == "exited"
        assert heartbeat["jobs_done"] == 1

    def test_idle_exit_with_empty_queue(self, tmp_path):
        proc = _spawn_worker(tmp_path, "--idle-exit", 0.2)
        assert proc.wait(timeout=60) == 0
        assert FleetQueue(tmp_path).status()["pending_jobs"] == 0


class TestSigtermDrain:
    def test_sigterm_drains_inflight_job(self, tmp_path, job_factory):
        queue = FleetQueue(tmp_path)
        job_id = queue.enqueue(job_factory(0.7))

        proc = _spawn_worker(tmp_path)
        try:
            # SIGTERM the moment the lease lands — almost always mid-GRAPE.
            assert _wait_for(
                lambda: (queue.leases_dir / f"{job_id}.json").exists()
                or (queue.results_dir / f"{job_id}.json").exists()
            )
            proc.terminate()
            assert proc.wait(timeout=180) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        # The in-flight job drained to a real completion record; nothing
        # was abandoned mid-lease.
        record = queue.consume_result(job_id)
        assert record is not None and record["error"] is None
        assert list(queue.jobs_dir.glob("*.job")) == []
        assert list(queue.leases_dir.glob("*.json")) == []

    def test_sigterm_while_idle_exits_promptly(self, tmp_path):
        queue = FleetQueue(tmp_path)
        proc = _spawn_worker(tmp_path)
        try:
            assert _wait_for(
                lambda: list(queue.workers_dir.glob("*.json")) != []
            )
            proc.terminate()
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()


class TestKillNineReclaim:
    #: A claim holder that leases the first job and then hangs forever —
    #: the deterministic stand-in for a worker dying mid-compile.
    _HOLDER = (
        "import sys, time; sys.path.insert(0, sys.argv[1]); "
        "from repro.fleet.queue import FleetQueue; "
        "queue = FleetQueue(sys.argv[2]); "
        "assert queue.claim('holder') is not None; "
        "print('claimed', flush=True); "
        "time.sleep(600)"
    )

    def test_killed_holders_lease_is_reclaimed_and_completed(
        self, tmp_path, job_factory
    ):
        queue = FleetQueue(tmp_path, lease_ttl_s=3600.0)
        job_id = queue.enqueue(job_factory(0.5))

        proc = subprocess.Popen(
            [sys.executable, "-c", self._HOLDER, str(SRC_ROOT), str(tmp_path)],
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            assert proc.stdout.readline().strip() == "claimed"
        finally:
            proc.kill()
            proc.wait()

        # The holder's pid is dead on this host, so the lease is stale
        # immediately — no TTL wait — and the reclaim is counted.
        claimed = queue.claim("rescuer")
        assert claimed is not None and claimed[0] == job_id
        lease = json.loads((queue.leases_dir / f"{job_id}.json").read_text())
        assert lease["worker"] == "rescuer"
        assert lease["reclaims"] >= 1

        # The rescuer finishes the job: at-least-once delivery converges.
        outcome = run_block_job(claimed[1], cache=PulseCache())
        queue.complete(
            job_id,
            {
                "job_id": job_id,
                "worker": "rescuer",
                "outcome": _encode_outcome(outcome),
                "error": None,
                "wall_time_s": 0.0,
            },
        )
        assert queue.consume_result(job_id)["error"] is None
        assert list(queue.leases_dir.glob("*.json")) == []
