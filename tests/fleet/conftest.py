"""Shared fixtures for the fleet tests: small real BlockJobs.

One 2-qubit entangling block with a per-test rotation angle keeps each
job's GRAPE search short while still exercising the full claim → compile
→ complete path with genuine pulse work.
"""

from __future__ import annotations

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.core import PulseCache
from repro.core.compiler import BlockPulseCompiler
from repro.pulse.device import GmonDevice
from repro.pulse.grape.engine import GrapeHyperparameters, GrapeSettings
from repro.transpile.topology import line_topology

SETTINGS = GrapeSettings(dt_ns=0.5, target_fidelity=0.95)
HYPER = GrapeHyperparameters(0.05, 0.002, max_iterations=120)


def block_circuit(angle: float) -> QuantumCircuit:
    circuit = QuantumCircuit(2)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.rz(angle, 1)
    return circuit


@pytest.fixture
def block_compiler():
    # Warm start pinned off: neighbor seeding depends on cache contents,
    # which would break the bit-identity assertions across venues.
    return BlockPulseCompiler(
        GmonDevice(line_topology(2)),
        SETTINGS,
        HYPER,
        PulseCache(),
        warm_start=False,
    )


@pytest.fixture
def job_factory(block_compiler):
    """Build a picklable BlockJob for one angle of the test block."""

    def make(angle: float = 0.3):
        job = block_compiler.make_job(block_circuit(angle), (0, 1))
        assert job is not None
        return job

    return make
