"""QueueDispatcher: batch bit-identity, exactly-once, and failure modes."""

from __future__ import annotations

import pytest

from repro.core import PersistentPulseCache, PulseCache
from repro.errors import PipelineError
from repro.fleet import QueueDispatcher
from repro.pipeline.jobs import _encode_outcome, run_block_job


class TestInlineMode:
    def test_zero_workers_compiles_inline(self, tmp_path, job_factory):
        jobs = [job_factory(0.2), job_factory(0.9)]
        expected = [
            _encode_outcome(run_block_job(job, cache=PulseCache()))
            for job in jobs
        ]
        with QueueDispatcher(tmp_path / "q", workers=0) as dispatcher:
            outcomes = dispatcher.dispatch_jobs(jobs, cache=PulseCache())
            info = dispatcher.describe()
        assert [_encode_outcome(o) for o in outcomes] == expected
        assert info["inline_jobs"] == 2
        assert info["dispatched_jobs"] == 0
        assert info["workers_spawned"] == 0

    def test_empty_dispatch_is_a_noop(self, tmp_path):
        with QueueDispatcher(tmp_path / "q", workers=2) as dispatcher:
            assert dispatcher.dispatch_jobs([]) == []
            assert dispatcher.describe()["workers_spawned"] == 0

    def test_map_runs_in_calling_process(self, tmp_path):
        with QueueDispatcher(tmp_path / "q", workers=2) as dispatcher:
            assert dispatcher.map(lambda x: x * x, range(4)) == [0, 1, 4, 9]
            assert dispatcher.describe()["workers_spawned"] == 0


class TestFleetDispatch:
    def test_two_workers_bit_identical_and_exactly_once(
        self, tmp_path, job_factory
    ):
        """The milestone-1 acceptance shape: one batch's unique blocks split
        across 2 workers, outcomes bit-identical to serial in-process, each
        block compiled exactly once across the fleet."""
        angles = (0.2, 0.5, 0.8, 1.1)
        jobs = [job_factory(a) for a in angles]
        expected = [
            _encode_outcome(run_block_job(job, cache=PulseCache()))
            for job in jobs
        ]
        with QueueDispatcher(
            tmp_path / "q", workers=2, poll_s=0.02
        ) as dispatcher:
            outcomes = dispatcher.dispatch_jobs(jobs)
            info = dispatcher.describe()
        assert [_encode_outcome(o) for o in outcomes] == expected
        assert info["workers_spawned"] == 2
        assert info["dispatched_jobs"] == len(jobs)
        assert info["completed_jobs"] == len(jobs)
        # Exactly once: the per-worker completion counts account for every
        # job with none double-compiled.
        assert sum(info["completions_by_worker"].values()) == len(jobs)
        # Afterwards the queue directory is fully drained.
        assert dispatcher.queue.status()["pending_jobs"] == 0
        assert dispatcher.queue.status()["leased_jobs"] == 0

    def test_worker_failure_raises_pipeline_error(self, tmp_path, job_factory):
        job = job_factory(0.4)
        job.device_qubits = (5, 7)  # off the 2-qubit device: compile raises
        with QueueDispatcher(
            tmp_path / "q", workers=1, poll_s=0.02
        ) as dispatcher:
            with pytest.raises(PipelineError, match="failed job"):
                dispatcher.dispatch_jobs([job])

    def test_cache_dir_stamped_and_pulses_shared(self, tmp_path, job_factory):
        """Workers persist pulses through the shared library: the service
        side can read the compiled entry back by the job's own key."""
        library = tmp_path / "library"
        job = job_factory(0.6)
        assert job.cache_dir is None
        with QueueDispatcher(
            tmp_path / "q", cache_dir=str(library), workers=1, poll_s=0.02
        ) as dispatcher:
            [outcome] = dispatcher.dispatch_jobs([job])
        assert job.cache_dir == str(library)
        entry = PersistentPulseCache(str(library)).get(job.key)
        assert entry is not None
        assert entry.duration_ns == outcome.duration_ns

    def test_no_progress_timeout_raises(self, tmp_path, job_factory):
        """A fleet that looks alive but never completes anything must hit
        the no-progress deadline and report, not hang forever."""
        dispatcher = QueueDispatcher(
            tmp_path / "q", workers=1, poll_s=0.01, job_timeout_s=0.2
        )
        # Sabotage the fleet: the dispatcher believes one worker is alive,
        # but nothing ever drains the queue.
        dispatcher._ensure_workers = lambda: None
        dispatcher._live_workers = lambda: 1
        with pytest.raises(PipelineError, match="no progress"):
            dispatcher.dispatch_jobs([job_factory(0.3)])
        dispatcher.close()
