"""FleetAutoscaler: policy unit tests plus the real-process ride.

The policy layer is tested with injected depth/spawn/clock fakes (no
processes), then the acceptance path runs for real: a QueueDispatcher in
autoscale mode grows its worker pool under a sustained backlog and drains
back to ``min_workers`` by surge idle-exit once the queue empties.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import ReproError
from repro.fleet import FleetAutoscaler, QueueDispatcher


class FakeProc:
    """A process handle the policy tests can kill at will."""

    def __init__(self, idle_exit_s):
        self.idle_exit_s = idle_exit_s
        self.exited = False

    def poll(self):
        return 0 if self.exited else None


class Harness:
    """One autoscaler wired to a settable depth and fake spawns."""

    def __init__(self, **kwargs):
        self.depth = 0
        self.spawned: list = []
        kwargs.setdefault("interval_s", 0.0)
        self.scaler = FleetAutoscaler(
            queue_depth=lambda: self.depth,
            spawn_worker=self._spawn,
            **kwargs,
        )

    def _spawn(self, idle_exit_s):
        proc = FakeProc(idle_exit_s)
        self.spawned.append(proc)
        return proc


class TestPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_workers": -1},
            {"max_workers": 0},
            {"min_workers": 3, "max_workers": 2},
            {"backlog_streak": 0},
        ],
    )
    def test_bad_bounds_rejected(self, kwargs):
        with pytest.raises(ReproError):
            FleetAutoscaler(
                queue_depth=lambda: 0, spawn_worker=lambda _: None, **kwargs
            )

    def test_floor_is_spawned_without_idle_exit(self):
        h = Harness(min_workers=2, max_workers=4)
        h.scaler.ensure_floor()
        assert h.scaler.live_workers() == 2
        assert [p.idle_exit_s for p in h.spawned] == [None, None]

    def test_sustained_backlog_grows_one_worker_per_streak(self):
        h = Harness(min_workers=0, max_workers=3, backlog_streak=3)
        h.depth = 5
        for _ in range(2):
            h.scaler.sample()
        assert h.scaler.live_workers() == 0  # not sustained yet
        h.scaler.sample()
        assert h.scaler.live_workers() == 1  # third consecutive sample
        assert h.spawned[-1].idle_exit_s == h.scaler.surge_idle_exit_s
        # The streak resets after a decision: three more samples per worker.
        for _ in range(6):
            h.scaler.sample()
        assert h.scaler.live_workers() == 3
        assert h.scaler.scale_ups == 3

    def test_never_exceeds_max_workers(self):
        h = Harness(min_workers=0, max_workers=2, backlog_streak=1)
        h.depth = 100
        for _ in range(10):
            h.scaler.sample()
        assert h.scaler.live_workers() == 2
        assert h.scaler.peak_workers == 2

    def test_momentary_spike_rides_on_existing_pool(self):
        h = Harness(min_workers=1, max_workers=4, backlog_streak=3)
        h.scaler.ensure_floor()
        h.depth = 9
        h.scaler.sample()
        h.scaler.sample()
        h.depth = 0  # spike over before the streak completes
        h.scaler.sample()
        h.depth = 9
        h.scaler.sample()
        assert h.scaler.scale_ups == 0
        assert h.scaler.live_workers() == 1

    def test_surge_exits_count_as_scale_downs(self):
        h = Harness(min_workers=1, max_workers=4, backlog_streak=1)
        h.depth = 10
        for _ in range(3):
            h.scaler.sample()
        assert h.scaler.live_workers() == 4
        # Queue empties; surge workers idle-exit on their own.
        h.depth = 0
        for proc in h.spawned:
            if proc.idle_exit_s is not None:
                proc.exited = True
        assert h.scaler.live_workers() == 1  # back to the floor
        assert h.scaler.scale_downs == 3
        assert h.scaler.core_respawns == 0

    def test_dead_core_worker_is_respawned(self):
        h = Harness(min_workers=1, max_workers=2)
        h.scaler.ensure_floor()
        h.spawned[0].exited = True
        assert h.scaler.live_workers() == 1  # reaped and replaced
        assert h.scaler.core_respawns == 1
        assert h.spawned[-1].idle_exit_s is None

    def test_maybe_sample_is_rate_limited(self):
        now = [0.0]
        h_depth = [0]
        spawned: list = []
        scaler = FleetAutoscaler(
            queue_depth=lambda: h_depth[0],
            spawn_worker=lambda idle: spawned.append(idle) or FakeProc(idle),
            interval_s=1.0,
            clock=lambda: now[0],
        )
        assert scaler.maybe_sample() is True
        assert scaler.maybe_sample() is False  # same instant
        now[0] = 0.5
        assert scaler.maybe_sample() is False  # inside the interval
        now[0] = 1.5
        assert scaler.maybe_sample() is True
        assert scaler.samples == 2

    def test_describe_reports_the_counters(self):
        h = Harness(min_workers=1, max_workers=3, backlog_streak=1)
        h.depth = 4
        h.scaler.sample()
        report = h.scaler.describe()
        assert report["min_workers"] == 1
        assert report["max_workers"] == 3
        assert report["core_workers"] == 1
        assert report["surge_workers"] == 1
        assert report["scale_ups"] == 1
        assert report["last_depth"] == 4
        assert report["peak_workers"] == 2


def _wait_for(predicate, timeout: float = 120.0, interval: float = 0.05) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestAutoscaledDispatch:
    def test_pool_rises_under_backlog_and_drains_when_idle(
        self, tmp_path, job_factory
    ):
        """The acceptance criterion, with real worker processes: worker
        count rises under a sustained backlog, every job completes, and
        the pool drains back to ``min_workers`` (0) once the queue is
        empty."""
        dispatcher = QueueDispatcher(
            tmp_path, autoscale=True, min_workers=0, max_workers=2
        )
        # Re-tune the policy for test speed: decide every 50 ms, scale
        # after 2 backlogged samples, idle-exit surge workers fast.
        dispatcher._autoscaler = FleetAutoscaler(
            queue_depth=dispatcher._backlog,
            spawn_worker=dispatcher._spawn_worker_process,
            min_workers=0,
            max_workers=2,
            backlog_streak=2,
            interval_s=0.05,
            surge_idle_exit_s=0.3,
        )
        try:
            jobs = [job_factory(0.1 * k) for k in range(1, 7)]
            outcomes = dispatcher.dispatch_jobs(jobs)
            assert len(outcomes) == 6
            scaler = dispatcher._autoscaler
            assert scaler.scale_ups >= 1
            assert scaler.peak_workers >= 1
            assert dispatcher.completed_jobs == 6
            assert dispatcher.inline_jobs == 0  # nothing ran in-process
            # Queue empty -> surge workers idle-exit -> pool drains to the
            # floor, and the exits are counted as scale-downs.
            assert _wait_for(lambda: dispatcher._live_workers() == 0)
            assert scaler.scale_downs >= 1
            report = dispatcher.describe()["fleet"]
            assert report["mode"] == "autoscale"
            assert report["autoscaler"]["scale_ups"] == scaler.scale_ups
        finally:
            dispatcher.close()

    def test_autoscale_never_uses_inline_degraded_mode(self, tmp_path, job_factory):
        """min_workers=0 with autoscale still routes through the queue —
        the degraded inline path is only for fixed workers=0."""
        dispatcher = QueueDispatcher(
            tmp_path, autoscale=True, min_workers=0, max_workers=1
        )
        dispatcher._autoscaler = FleetAutoscaler(
            queue_depth=dispatcher._backlog,
            spawn_worker=dispatcher._spawn_worker_process,
            min_workers=0,
            max_workers=1,
            backlog_streak=1,
            interval_s=0.05,
            surge_idle_exit_s=0.3,
        )
        try:
            outcome = dispatcher.dispatch_jobs([job_factory(0.25)])
            assert len(outcome) == 1
            assert dispatcher.inline_jobs == 0
            assert dispatcher.workers_spawned >= 1
        finally:
            dispatcher.close()
