"""FleetQueue contracts: lifecycle, lease reclaim, and poison pills.

The queue itself is payload-agnostic (it pickles whatever it is given),
so these tests use plain strings as jobs and reserve real BlockJobs for
the worker/dispatcher tests.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import time

from repro.fleet.queue import FLEET_SCHEMA_VERSION, FleetQueue


class TestLifecycle:
    def test_enqueue_claim_complete_roundtrip(self, tmp_path):
        queue = FleetQueue(tmp_path)
        job_id = queue.enqueue("payload")
        assert (queue.jobs_dir / f"{job_id}.job").exists()

        claimed = queue.claim("w1")
        assert claimed == (job_id, "payload")
        assert (queue.leases_dir / f"{job_id}.json").exists()

        queue.complete(job_id, {"job_id": job_id, "outcome": "done"})
        assert not (queue.jobs_dir / f"{job_id}.job").exists()
        assert not (queue.leases_dir / f"{job_id}.json").exists()
        assert queue.consume_result(job_id) == {
            "job_id": job_id,
            "outcome": "done",
        }

    def test_claim_on_empty_queue_returns_none(self, tmp_path):
        assert FleetQueue(tmp_path).claim("w1") is None

    def test_claims_hand_out_jobs_fifo(self, tmp_path):
        queue = FleetQueue(tmp_path)
        ids = [queue.enqueue(f"job-{i}") for i in range(3)]
        claimed = [queue.claim("w1")[0] for _ in range(3)]
        assert claimed == ids

    def test_fresh_lease_is_not_reclaimable(self, tmp_path):
        queue = FleetQueue(tmp_path, lease_ttl_s=300.0)
        queue.enqueue("payload")
        assert queue.claim("w1") is not None
        # The lease's pid (this process) is alive and the heartbeat is
        # fresh, so nobody else may steal the job.
        assert FleetQueue(tmp_path, lease_ttl_s=300.0).claim("w2") is None

    def test_consume_result_is_claim_and_remove(self, tmp_path):
        queue = FleetQueue(tmp_path)
        job_id = queue.enqueue("payload")
        assert queue.consume_result(job_id) is None
        queue.claim("w1")
        queue.complete(job_id, {"outcome": 42})
        assert queue.consume_result(job_id) == {"outcome": 42}
        assert queue.consume_result(job_id) is None

    def test_status_counts_everything(self, tmp_path):
        queue = FleetQueue(tmp_path)
        queue.enqueue("a")
        leased_id = queue.enqueue("b")
        done_id = queue.enqueue("c")
        # Claim order is FIFO: "a" first, then "b".
        first_id, _ = queue.claim("w1")
        queue.claim("w1")
        queue.complete(done_id, {"outcome": "done"})
        queue.complete(first_id, {"outcome": "done"})
        queue.write_worker_heartbeat("w1", "idle", 2)

        status = queue.status()
        assert status["pending_jobs"] == 1  # only "b" remains queued
        assert status["leased_jobs"] == 1
        assert status["completed_results"] == 2
        assert [lease["job_id"] for lease in status["leases"]] == [leased_id]
        assert status["leases"][0]["stale"] is False
        assert status["workers"][0]["worker"] == "w1"
        assert status["workers"][0]["jobs_done"] == 2


class TestCrashReclaim:
    def test_expired_heartbeat_lease_is_reclaimed(self, tmp_path):
        queue = FleetQueue(tmp_path, lease_ttl_s=0.05)
        job_id = queue.enqueue("payload")
        assert queue.claim("w1") is not None
        # Fake a remote host: the dead-pid shortcut must not apply, so the
        # reclaim below proves the heartbeat TTL path.
        lease_path = queue.leases_dir / f"{job_id}.json"
        lease = json.loads(lease_path.read_text())
        lease["host"] = "elsewhere"
        lease_path.write_text(json.dumps(lease))

        time.sleep(0.15)
        reclaimed = queue.claim("w2")
        assert reclaimed == (job_id, "payload")
        assert json.loads(lease_path.read_text())["reclaims"] == 1

    def test_heartbeat_keeps_the_lease(self, tmp_path):
        queue = FleetQueue(tmp_path, lease_ttl_s=0.3)
        job_id = queue.enqueue("payload")
        assert queue.claim("w1") is not None
        before = json.loads(
            (queue.leases_dir / f"{job_id}.json").read_text()
        )["heartbeat_at"]
        time.sleep(0.05)
        queue.heartbeat(job_id)
        after = json.loads(
            (queue.leases_dir / f"{job_id}.json").read_text()
        )["heartbeat_at"]
        assert after > before

    def test_dead_pid_on_this_host_reclaims_immediately(self, tmp_path):
        """The ``kill -9`` case: a lease whose pid is gone is stale at once,
        even with a fresh heartbeat and an enormous TTL."""
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        queue = FleetQueue(tmp_path, lease_ttl_s=3600.0)
        job_id = queue.enqueue("payload")
        now = time.time()
        (queue.leases_dir / f"{job_id}.json").write_text(
            json.dumps(
                {
                    "job_id": job_id,
                    "worker": "ghost",
                    "pid": proc.pid,
                    "host": platform.node(),
                    "acquired_at": now,
                    "heartbeat_at": now,
                    "ttl_s": 3600.0,
                    "reclaims": 0,
                }
            )
        )
        reclaimed = queue.claim("rescuer")
        assert reclaimed == (job_id, "payload")
        lease = json.loads((queue.leases_dir / f"{job_id}.json").read_text())
        assert lease["worker"] == "rescuer"
        assert lease["reclaims"] == 1

    def test_completed_job_left_behind_is_retired_not_redone(self, tmp_path):
        """Crash between the record write and the job unlink: the next claim
        finishes the retirement instead of handing the work out again."""
        queue = FleetQueue(tmp_path)
        job_id = queue.enqueue("payload")
        (queue.results_dir / f"{job_id}.json").write_text(
            json.dumps({"job_id": job_id, "outcome": "done"})
        )
        assert queue.claim("w1") is None
        assert not (queue.jobs_dir / f"{job_id}.job").exists()
        assert queue.consume_result(job_id) == {
            "job_id": job_id,
            "outcome": "done",
        }


class TestPoisonPills:
    def test_unreadable_payload_completes_with_error(self, tmp_path):
        queue = FleetQueue(tmp_path)
        (queue.jobs_dir / "0-bad-0001.job").write_bytes(b"not a pickle")
        assert queue.claim("w1") is None
        record = queue.consume_result("0-bad-0001")
        assert record["outcome"] is None
        assert "unreadable job payload" in record["error"]
        assert not (queue.jobs_dir / "0-bad-0001.job").exists()

    def test_wrong_schema_version_completes_with_error(self, tmp_path):
        import pickle

        queue = FleetQueue(tmp_path)
        job_id = queue.enqueue("payload")
        (queue.jobs_dir / f"{job_id}.job").write_bytes(
            pickle.dumps(
                {"schema_version": FLEET_SCHEMA_VERSION + 1, "job": "payload"}
            )
        )
        assert queue.claim("w1") is None
        record = queue.consume_result(job_id)
        assert record["outcome"] is None
        assert "schema" in record["error"]

    def test_poison_pill_does_not_wedge_later_jobs(self, tmp_path):
        queue = FleetQueue(tmp_path)
        (queue.jobs_dir / "0-bad-0001.job").write_bytes(b"garbage")
        good_id = queue.enqueue("good")
        # One claim pass retires the pill and hands out the good job.
        assert queue.claim("w1") == (good_id, "good")
