"""Multi-host fleet semantics over one shared queue directory.

CI has one machine, so distinct hosts are simulated with the
``--host-label`` override — which deliberately also disables the
same-host dead-pid probe, giving these tests the *real* cross-host
failure semantics (pure lease-TTL reclaim).  Covered here:

* a two-"host" soak: workers on simulated hosts drain one queue, every
  job completes exactly once, and ``status()["hosts"]`` groups the
  leases/workers per host with their ``--announce`` registration data;
* cross-host crash handling: a kill -9'd claim holder on another host is
  *not* reclaimed by pid probing, only by lease-TTL expiry;
* the ``fleet status --json`` CLI view of the same snapshot.
"""

from __future__ import annotations

import json
import subprocess
import sys
import time
from pathlib import Path

import repro
from repro.cli import main
from repro.fleet.dispatcher import _WORKER_BOOTSTRAP
from repro.fleet.queue import FleetQueue

SRC_ROOT = Path(repro.__file__).resolve().parent.parent


def _spawn_worker(fleet_dir, *extra_args) -> subprocess.Popen:
    cmd = [
        sys.executable,
        "-c",
        _WORKER_BOOTSTRAP,
        str(SRC_ROOT),
        "worker",
        "--fleet-dir",
        str(fleet_dir),
        "--poll",
        "0.05",
        *map(str, extra_args),
    ]
    return subprocess.Popen(
        cmd, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
    )


def _wait_for(predicate, timeout: float = 120.0, interval: float = 0.02) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestMultiHostSoak:
    def test_two_simulated_hosts_drain_one_queue(self, tmp_path, job_factory):
        queue = FleetQueue(tmp_path)
        job_ids = [queue.enqueue(job_factory(0.1 * k)) for k in range(1, 7)]

        workers = [
            _spawn_worker(
                tmp_path,
                "--host-label", f"simhost-{tag}",
                "--worker-id", f"w-{tag}",
                "--announce",
                "--idle-exit", "0.5",
            )
            for tag in ("a", "b")
        ]
        try:
            for proc in workers:
                assert proc.wait(timeout=300) == 0
        finally:
            for proc in workers:
                if proc.poll() is None:
                    proc.kill()
                    proc.wait()

        # Every job completed exactly once, none abandoned.
        records = [queue.consume_result(job_id) for job_id in job_ids]
        assert all(r is not None and r["error"] is None for r in records)
        assert list(queue.jobs_dir.glob("*.job")) == []
        assert list(queue.leases_dir.glob("*.json")) == []

        status = queue.status()
        hosts = status["hosts"]
        assert set(hosts) == {"simhost-a", "simhost-b"}
        assert sum(entry["jobs_done"] for entry in hosts.values()) == 6
        for host, entry in hosts.items():
            assert entry["workers"] == 1
            assert entry["active"] == 0  # both signed off as exited
        # --announce registration rode along on the heartbeats.
        for worker in status["workers"]:
            announced = worker["announced"]
            assert announced["version"] == repro.__version__
            assert announced["lease_ttl_s"] == 30.0
            assert announced["heartbeat_s"] > 0
            assert worker["host"].startswith("simhost-")

    def test_completions_attributed_to_both_worker_ids(self, tmp_path, job_factory):
        """With one deliberately slow-start host, attribution still lands
        on whichever worker did the job — by worker id, host included."""
        queue = FleetQueue(tmp_path)
        job_id = queue.enqueue(job_factory(0.35))
        proc = _spawn_worker(
            tmp_path, "--host-label", "lonely", "--max-jobs", "1"
        )
        assert proc.wait(timeout=300) == 0
        record = queue.consume_result(job_id)
        assert record is not None
        assert record["worker"] == "lonely-" + str(proc.pid)


class TestCrossHostReclaim:
    #: Claim the first job from a simulated remote host, then hang.
    _HOLDER = (
        "import sys, time; sys.path.insert(0, sys.argv[1]); "
        "from repro.fleet.queue import FleetQueue; "
        "queue = FleetQueue(sys.argv[2], lease_ttl_s=1.5, host_label='simhost-a'); "
        "assert queue.claim('remote-holder') is not None; "
        "print('claimed', flush=True); "
        "time.sleep(600)"
    )

    def test_dead_pid_on_another_host_waits_for_ttl(self, tmp_path, job_factory):
        queue = FleetQueue(tmp_path, lease_ttl_s=1.5, host_label="simhost-b")
        queue.enqueue(job_factory(0.55))

        holder = subprocess.Popen(
            [sys.executable, "-c", self._HOLDER, str(SRC_ROOT), str(tmp_path)],
            stdout=subprocess.PIPE,
        )
        try:
            assert holder.stdout.readline().strip() == b"claimed"
            holder.kill()
            holder.wait(timeout=30)
            # The holder's pid is provably dead on this box, but the lease
            # says host simhost-a — cross-host rules apply, so the claim
            # must NOT be handed over before the TTL runs out.
            assert queue.claim("w-b") is None
            claimed = None
            deadline = time.monotonic() + 30
            while claimed is None and time.monotonic() < deadline:
                claimed = queue.claim("w-b")
                time.sleep(0.05)
            assert claimed is not None
            job_id, _job = claimed
            lease = json.loads(
                (queue.leases_dir / f"{job_id}.json").read_text()
            )
            assert lease["reclaims"] == 1
            assert lease["host"] == "simhost-b"
            assert lease["worker"] == "w-b"
        finally:
            if holder.poll() is None:
                holder.kill()
                holder.wait()


class TestFleetStatusCli:
    def _populate(self, tmp_path) -> None:
        queue_a = FleetQueue(tmp_path, host_label="simhost-a")
        queue_b = FleetQueue(tmp_path, host_label="simhost-b")
        queue_a.enqueue("job-one")
        queue_a.enqueue("job-two")
        assert queue_a.claim("w-a") is not None
        queue_a.write_worker_heartbeat(
            "w-a", "busy", 3, extra={"announced": True, "version": "x"}
        )
        queue_b.write_worker_heartbeat("w-b", "idle", 2)

    def test_json_snapshot_groups_by_host(self, capsys, tmp_path):
        self._populate(tmp_path)
        assert main(["fleet", "status", "--dir", str(tmp_path), "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["pending_jobs"] == 2
        assert snapshot["leased_jobs"] == 1
        hosts = snapshot["hosts"]
        assert hosts["simhost-a"]["jobs_done"] == 3
        assert hosts["simhost-a"]["leases"] == 1
        assert hosts["simhost-b"]["workers"] == 1
        assert hosts["simhost-b"]["active"] == 1

    def test_text_mode_shows_host_rows_and_announce_marker(
        self, capsys, tmp_path
    ):
        self._populate(tmp_path)
        assert main(["fleet", "status", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "host simhost-a" in out
        assert "host simhost-b" in out
        assert "announced" in out
        assert "host=simhost-a" in out

    def test_json_on_missing_dir_is_an_empty_snapshot(self, capsys, tmp_path):
        missing = tmp_path / "nope"
        assert main(["fleet", "status", "--dir", str(missing), "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["pending_jobs"] == 0
        assert snapshot["hosts"] == {}
        assert not missing.exists()
