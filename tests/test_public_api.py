"""Public-API surface checks.

Every name exported via ``__all__`` must exist, and the documented
quickstart flows must work end-to-end against the public API only.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.blocking",
    "repro.circuits",
    "repro.core",
    "repro.fleet",
    "repro.library",
    "repro.linalg",
    "repro.perf",
    "repro.pipeline",
    "repro.pulse",
    "repro.pulse.grape",
    "repro.qaoa",
    "repro.server",
    "repro.service",
    "repro.sim",
    "repro.transpile",
    "repro.vqe",
]


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_names_resolve(self, package):
        module = importlib.import_module(package)
        assert hasattr(module, "__all__"), package
        for name in module.__all__:
            assert hasattr(module, name), f"{package}.{name}"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_module_docstrings(self, package):
        module = importlib.import_module(package)
        assert module.__doc__ and module.__doc__.strip(), package

    def test_version(self):
        import repro

        assert repro.__version__


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        from repro import errors

        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) and obj is not Exception:
                assert issubclass(obj, errors.ReproError), name


class TestReadmeQuickstart:
    def test_readme_flow(self):
        # The literal flow from README.md's quickstart section (with fast
        # settings so the test stays quick).
        from repro.pulse.grape import GrapeHyperparameters, GrapeSettings
        from repro.qaoa import maxcut_problem, qaoa_circuit
        from repro.service import CompilationService, CompileRequest
        from repro.transpile import transpile

        problem = maxcut_problem("3regular", 6, seed=0)
        circuit = transpile(qaoa_circuit(problem, p=1))
        theta = [0.4, 0.9]
        with CompilationService(
            settings=GrapeSettings(dt_ns=0.5, target_fidelity=0.98),
            hyperparameters=GrapeHyperparameters(0.05, 0.002, max_iterations=120),
        ) as service:
            pulse = service.compile(
                CompileRequest(
                    circuit, theta, strategy="strict-partial", max_block_width=2
                )
            )
            baseline = service.compile(
                CompileRequest(circuit, theta, strategy="gate")
            )
        assert pulse.pulse_duration_ns <= baseline.pulse_duration_ns + 1e-9
        assert pulse.runtime_iterations == 0
