"""Unit tests for Pauli evolution synthesis, UCCSD, and molecules."""

import math

import numpy as np
import pytest
import scipy.linalg as sla

from repro.circuits.circuit import QuantumCircuit
from repro.core.monotonic import is_parameter_monotonic
from repro.core.slicing import parametrized_gate_fraction
from repro.errors import VQEError
from repro.linalg.operators import pauli_matrix
from repro.linalg.unitaries import unitaries_equal_up_to_phase
from repro.sim.pauli import PauliString, PauliSum
from repro.sim.unitary import circuit_unitary
from repro.transpile.passes import transpile
from repro.vqe.fermion import FermionOperator
from repro.vqe.jordan_wigner import jordan_wigner
from repro.vqe.molecules import MOLECULES, get_molecule, list_molecules
from repro.vqe.pauli_evolution import pauli_evolution_circuit, pauli_sum_evolution
from repro.vqe.uccsd import Excitation, generate_excitations, uccsd_ansatz


class TestPauliEvolution:
    @pytest.mark.parametrize("label", ["Z", "X", "Y", "ZZ", "XY", "ZXY", "YIZ"])
    def test_matches_dense_exponential(self, label):
        theta = 0.81
        qc = pauli_evolution_circuit(PauliString(label), theta)
        expected = sla.expm(-1j * theta / 2 * pauli_matrix(label))
        assert unitaries_equal_up_to_phase(circuit_unitary(qc), expected)

    def test_identity_pauli_appends_nothing(self):
        qc = QuantumCircuit(2)
        pauli_evolution_circuit(PauliString("II"), 0.5, qc)
        assert len(qc) == 0

    def test_single_rz_per_evolution(self):
        qc = pauli_evolution_circuit(PauliString("XYZ"), 0.5)
        assert qc.count_ops()["rz"] == 1

    def test_width_mismatch_rejected(self):
        with pytest.raises(VQEError):
            pauli_evolution_circuit(PauliString("XX"), 0.1, QuantumCircuit(3))

    def test_sum_evolution_commuting_terms_exact(self):
        h = PauliSum([PauliString("XX", 0.4), PauliString("YY", 0.4)])
        qc = pauli_sum_evolution(h, 0.7)
        expected = sla.expm(-1j * 0.7 * h.matrix())
        assert unitaries_equal_up_to_phase(circuit_unitary(qc), expected)

    def test_sum_evolution_complex_coeff_rejected(self):
        h = PauliSum([PauliString("X", 1j)])
        with pytest.raises(VQEError):
            pauli_sum_evolution(h, 0.3)


class TestExcitationGeneration:
    def test_standard_singles_first(self):
        exc = generate_excitations(4, 2, 3)
        assert exc[0].tier == 1

    def test_deterministic(self):
        a = generate_excitations(6, 4, 10)
        b = generate_excitations(6, 4, 10)
        assert a == b

    def test_no_duplicates(self):
        exc = generate_excitations(8, 4, 26)
        keys = set()
        for e in exc:
            key = (e.kind, e.modes)
            assert key not in keys
            keys.add(key)

    def test_count_exhaustion_raises(self):
        with pytest.raises(VQEError):
            generate_excitations(2, 1, 100)

    def test_invalid_electrons(self):
        with pytest.raises(VQEError):
            generate_excitations(2, 5, 1)

    def test_excitation_operators_anti_hermitian(self):
        for exc in generate_excitations(4, 2, 8):
            matrix = jordan_wigner(exc.operator(), 4).matrix()
            assert np.allclose(matrix, -matrix.conj().T)


class TestUccsdAnsatz:
    def test_single_excitation_unitary(self):
        op = FermionOperator.single_excitation(0, 2).anti_hermitian_part()
        dense = sla.expm(0.61 * jordan_wigner(op, 3).matrix())
        qc = uccsd_ansatz(3, 1, 1, include_reference_state=False)
        bound = qc.bind_parameters([0.61])
        assert unitaries_equal_up_to_phase(circuit_unitary(bound), dense)

    def test_reference_state_prepends_x(self):
        qc = uccsd_ansatz(4, 2, 1)
        assert [i.gate.name for i in qc.instructions[:2]] == ["x", "x"]

    def test_parameter_count(self):
        qc = uccsd_ansatz(4, 2, 8)
        assert len(qc.parameters) == 8

    def test_parameter_monotonicity(self):
        qc = uccsd_ansatz(6, 4, 12)
        assert is_parameter_monotonic(qc)

    def test_monotonicity_survives_transpilation(self):
        qc = transpile(uccsd_ansatz(4, 2, 8))
        assert is_parameter_monotonic(qc)

    def test_zero_angles_give_reference_state(self):
        qc = uccsd_ansatz(4, 2, 4)
        bound = qc.bind_parameters([0.0] * 4)
        from repro.sim.statevector import Statevector, simulate

        state = simulate(bound)
        expected = Statevector.computational_basis(4, "1100")
        assert np.isclose(state.fidelity(expected), 1.0)


class TestMoleculeRegistry:
    def test_all_paper_molecules_present(self):
        assert set(list_molecules()) == {"H2", "LiH", "BeH2", "NaH", "H2O"}

    @pytest.mark.parametrize("name,width,params", [
        ("H2", 2, 3), ("LiH", 4, 8), ("BeH2", 6, 26), ("NaH", 8, 24), ("H2O", 10, 92),
    ])
    def test_table2_widths_and_params(self, name, width, params):
        spec = get_molecule(name)
        assert spec.num_qubits == width
        assert spec.num_parameters == params

    def test_case_insensitive_lookup(self):
        assert get_molecule("lih").name == "LiH"

    def test_unknown_molecule(self):
        with pytest.raises(VQEError):
            get_molecule("XeF6")

    @pytest.mark.parametrize("name", ["H2", "LiH"])
    def test_ansatz_parameter_counts(self, name):
        spec = get_molecule(name)
        qc = spec.ansatz()
        assert len(qc.parameters) == spec.num_parameters
        assert qc.num_qubits == spec.num_qubits

    def test_rz_fraction_small_for_vqe(self):
        # Paper: Rz(θ) gates are 5-8 % of VQE circuits (ours lands close).
        qc = transpile(get_molecule("BeH2").ansatz())
        fraction = parametrized_gate_fraction(qc)
        assert 0.03 <= fraction <= 0.15
