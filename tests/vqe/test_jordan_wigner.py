"""Unit tests for the Jordan-Wigner transform."""

import numpy as np
import pytest

from repro.errors import VQEError
from repro.linalg.operators import is_hermitian
from repro.vqe.fermion import FermionOperator, FermionTerm
from repro.vqe.jordan_wigner import jordan_wigner, jordan_wigner_ladder


def _dense_ladder(mode, creation, n):
    """Reference dense ladder operator via occupation-number basis."""
    dim = 2**n
    out = np.zeros((dim, dim), dtype=complex)
    for state in range(dim):
        # Big-endian: bit of `mode` is at position (n-1-mode).
        bit = (state >> (n - 1 - mode)) & 1
        if creation and bit == 0:
            target = state | (1 << (n - 1 - mode))
        elif not creation and bit == 1:
            target = state & ~(1 << (n - 1 - mode))
        else:
            continue
        # JW sign: parity of occupied modes BEFORE this one.
        parity = bin(state >> (n - mode)).count("1")
        out[target, state] = (-1.0) ** parity
    return out


class TestLadderOperators:
    @pytest.mark.parametrize("mode", [0, 1, 2])
    @pytest.mark.parametrize("creation", [True, False])
    def test_matches_dense_reference(self, mode, creation):
        n = 3
        pauli = jordan_wigner_ladder(mode, creation, n)
        assert np.allclose(pauli.matrix(), _dense_ladder(mode, creation, n))

    def test_mode_out_of_range(self):
        with pytest.raises(VQEError):
            jordan_wigner_ladder(3, True, 3)

    def test_anticommutation(self):
        # {a_0, a†_1} = 0 and {a_0, a†_0} = 1.
        n = 2
        a0 = jordan_wigner_ladder(0, False, n).matrix()
        a0d = jordan_wigner_ladder(0, True, n).matrix()
        a1d = jordan_wigner_ladder(1, True, n).matrix()
        assert np.allclose(a0 @ a1d + a1d @ a0, 0.0)
        assert np.allclose(a0 @ a0d + a0d @ a0, np.eye(4))

    def test_nilpotency(self):
        a = jordan_wigner_ladder(1, False, 3).matrix()
        assert np.allclose(a @ a, 0.0)


class TestOperatorTransform:
    def test_number_operator(self):
        # a†_1 a_1 -> (I - Z_1)/2.
        op = FermionOperator(
            [FermionTerm(((1, True), (1, False)))]
        )
        matrix = jordan_wigner(op, 2).matrix()
        expected = np.diag([0, 1, 0, 1]).astype(complex)
        assert np.allclose(matrix, expected)

    def test_excitation_matches_dense(self):
        op = FermionOperator.single_excitation(0, 2)
        matrix = jordan_wigner(op, 3).matrix()
        expected = _dense_ladder(2, True, 3) @ _dense_ladder(0, False, 3)
        assert np.allclose(matrix, expected)

    def test_anti_hermitian_generator(self):
        op = FermionOperator.single_excitation(0, 1).anti_hermitian_part()
        matrix = jordan_wigner(op, 2).matrix()
        assert np.allclose(matrix, -matrix.conj().T)

    def test_double_excitation_anti_hermitian(self):
        op = FermionOperator.double_excitation((0, 1), (2, 3)).anti_hermitian_part()
        matrix = jordan_wigner(op, 4).matrix()
        assert np.allclose(matrix, -matrix.conj().T)

    def test_width_validation(self):
        op = FermionOperator.single_excitation(0, 5)
        with pytest.raises(VQEError):
            jordan_wigner(op, 3)

    def test_hermitian_combination(self):
        op = FermionOperator.single_excitation(0, 1)
        herm = op + op.dagger()
        assert is_hermitian(jordan_wigner(herm, 2).matrix())
