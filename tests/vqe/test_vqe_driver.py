"""Tests for molecular Hamiltonians and the VQE loop."""

import numpy as np
import pytest

from repro.errors import VQEError
from repro.sim.pauli import PauliSum
from repro.vqe.driver import VQEDriver
from repro.vqe.hamiltonians import h2_hamiltonian, synthetic_molecular_hamiltonian
from repro.vqe.molecules import get_molecule
from repro.vqe.uccsd import uccsd_ansatz


class TestHamiltonians:
    def test_h2_ground_energy(self):
        # The textbook value for H2 at 0.735 Å in this reduced encoding.
        assert np.isclose(h2_hamiltonian().ground_state_energy(), -1.8572750, atol=1e-5)

    def test_h2_hermitian(self):
        m = h2_hamiltonian().matrix()
        assert np.allclose(m, m.conj().T)

    def test_synthetic_seeded(self):
        a = synthetic_molecular_hamiltonian(4, seed=3)
        b = synthetic_molecular_hamiltonian(4, seed=3)
        assert np.allclose(a.matrix(), b.matrix())

    def test_synthetic_hermitian(self):
        m = synthetic_molecular_hamiltonian(3, seed=0).matrix()
        assert np.allclose(m, m.conj().T)

    def test_synthetic_invalid_width(self):
        with pytest.raises(VQEError):
            synthetic_molecular_hamiltonian(0)


class TestVQEDriver:
    def test_h2_converges_to_ground_state(self):
        driver = VQEDriver(
            h2_hamiltonian(), get_molecule("H2").ansatz(), max_iterations=400, seed=2
        )
        result = driver.run()
        assert result.error_to_exact < 1e-4

    def test_energy_at_zero_parameters(self):
        h = h2_hamiltonian()
        driver = VQEDriver(h, get_molecule("H2").ansatz(), seed=0)
        energy = driver.energy([0.0, 0.0, 0.0])
        # Reference state energy must be above the ground state.
        assert energy >= h.ground_state_energy() - 1e-9

    def test_width_mismatch_rejected(self):
        with pytest.raises(VQEError):
            VQEDriver(h2_hamiltonian(), uccsd_ansatz(3, 1, 2))

    def test_unknown_optimizer_rejected(self):
        with pytest.raises(VQEError):
            VQEDriver(h2_hamiltonian(), get_molecule("H2").ansatz(), optimizer="adam")

    def test_spsa_improves_energy(self):
        driver = VQEDriver(
            h2_hamiltonian(),
            get_molecule("H2").ansatz(),
            optimizer="spsa",
            max_iterations=120,
            seed=4,
        )
        result = driver.run()
        start = driver.energy(np.zeros(3))
        assert result.optimal_energy <= start + 1e-9

    def test_shot_noise_reproducible(self):
        driver = VQEDriver(
            h2_hamiltonian(), get_molecule("H2").ansatz(), shots=100, seed=7
        )
        noisy = driver.energy([0.1, 0.1, 0.1])
        exact = VQEDriver(
            h2_hamiltonian(), get_molecule("H2").ansatz(), seed=7
        ).energy([0.1, 0.1, 0.1])
        assert noisy != exact  # noise applied

    def test_history_recorded(self):
        driver = VQEDriver(
            h2_hamiltonian(), get_molecule("H2").ansatz(), max_iterations=50, seed=1
        )
        result = driver.run()
        assert result.iterations == len(result.energy_history) > 0

    def test_callback_invoked(self):
        calls = []
        driver = VQEDriver(
            h2_hamiltonian(), get_molecule("H2").ansatz(), max_iterations=20, seed=1
        )
        driver.run(callback=lambda i, x, e: calls.append(i))
        assert len(calls) > 0

    def test_optimizer_loop_through_a_variational_session(self):
        """The driver's compiler hook accepts a long-lived session: every
        iteration recompiles through shared dedup state, so only the first
        iteration dispatches the θ-independent blocks."""
        from repro.core import PulseCache
        from repro.pipeline import VariationalSession
        from repro.pulse.device import GmonDevice
        from repro.pulse.grape.engine import GrapeHyperparameters, GrapeSettings
        from repro.transpile.topology import line_topology
        from repro.circuits.circuit import QuantumCircuit
        from repro.circuits.parameters import Parameter

        # The fixed entangler tile (0,1) is disjoint from the θ tile (2,3),
        # so it is identical at every iteration's parametrization.
        ansatz = QuantumCircuit(4)
        ansatz.h(0)
        ansatz.cx(0, 1)
        ansatz.rz(Parameter("t0"), 2)
        ansatz.cx(2, 3)
        hamiltonian = synthetic_molecular_hamiltonian(4, seed=1)
        with VariationalSession(
            device=GmonDevice(line_topology(4)),
            settings=GrapeSettings(dt_ns=0.5, target_fidelity=0.9),
            hyperparameters=GrapeHyperparameters(0.05, 0.002, max_iterations=60),
            max_block_width=2,
            cache=PulseCache(),
        ) as session:
            driver = VQEDriver(
                hamiltonian, ansatz, max_iterations=4, seed=0, compiler=session
            )
            result = driver.run()
        assert result.iterations >= 2
        assert len(result.compile_pulse_ns) == result.iterations
        stats = result.compile_stats
        assert stats is not None and stats["method"] == "session"
        assert stats["compile_calls"] == result.iterations
        # Iterations beyond the first reused blocks instead of redispatching.
        assert stats["reused_blocks"] > 0

    def test_wrong_initial_length(self):
        driver = VQEDriver(h2_hamiltonian(), get_molecule("H2").ansatz())
        with pytest.raises(VQEError):
            driver.run(initial_parameters=[0.1])
