"""Unit tests for the fermionic operator algebra."""

import numpy as np
import pytest

from repro.errors import VQEError
from repro.vqe.fermion import FermionOperator, FermionTerm


class TestFermionTerm:
    def test_dagger_reverses_and_flips(self):
        term = FermionTerm(((2, True), (0, False)), 1j)
        dag = term.dagger()
        assert dag.ladder == ((0, True), (2, False))
        assert dag.coefficient == -1j

    def test_max_mode(self):
        assert FermionTerm(((3, True), (1, False))).max_mode() == 3

    def test_negative_mode_rejected(self):
        with pytest.raises(VQEError):
            FermionTerm(((-1, True),))


class TestFermionOperator:
    def test_single_excitation_structure(self):
        op = FermionOperator.single_excitation(0, 2)
        assert len(op) == 1
        assert op.terms[0].ladder == ((2, True), (0, False))

    def test_single_excitation_same_mode_rejected(self):
        with pytest.raises(VQEError):
            FermionOperator.single_excitation(1, 1)

    def test_double_excitation_needs_distinct_modes(self):
        with pytest.raises(VQEError):
            FermionOperator.double_excitation((0, 1), (1, 2))

    def test_anti_hermitian_part(self):
        op = FermionOperator.single_excitation(0, 1).anti_hermitian_part()
        assert len(op) == 2
        # T - T†: dagger of the anti-Hermitian part equals its negation.
        dag = op.dagger()
        for a, b in zip(op.terms, (dag * -1.0).terms):
            pass  # structural check below via JW in test_jordan_wigner

    def test_mode_rotation_terms(self):
        op = FermionOperator.mode_rotation(1)
        assert len(op) == 2
        coeffs = sorted(t.coefficient.real for t in op.terms)
        assert coeffs == [-1.0, 1.0]

    def test_addition_and_scalar(self):
        a = FermionOperator.single_excitation(0, 1)
        combined = a + a * 2.0
        assert len(combined) == 2

    def test_operator_product_concatenates(self):
        a = FermionOperator.single_excitation(0, 1)
        product = a * a
        assert len(product.terms[0].ladder) == 4

    def test_max_mode(self):
        op = FermionOperator.double_excitation((0, 1), (4, 5))
        assert op.max_mode() == 5

    def test_repr_nonempty(self):
        assert "a" in repr(FermionOperator.single_excitation(0, 1))
