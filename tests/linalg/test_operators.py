"""Unit tests for repro.linalg.operators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.linalg.operators import (
    IDENTITY,
    PAULI_X,
    PAULI_Y,
    PAULI_Z,
    annihilation_operator,
    creation_operator,
    embed_operator,
    is_hermitian,
    is_unitary,
    kron_all,
    number_operator,
    pauli_matrix,
)


class TestPaulis:
    def test_pauli_x_squares_to_identity(self):
        assert np.allclose(PAULI_X @ PAULI_X, IDENTITY)

    def test_pauli_y_squares_to_identity(self):
        assert np.allclose(PAULI_Y @ PAULI_Y, IDENTITY)

    def test_pauli_z_squares_to_identity(self):
        assert np.allclose(PAULI_Z @ PAULI_Z, IDENTITY)

    def test_xy_equals_iz(self):
        assert np.allclose(PAULI_X @ PAULI_Y, 1j * PAULI_Z)

    def test_paulis_anticommute(self):
        assert np.allclose(PAULI_X @ PAULI_Z + PAULI_Z @ PAULI_X, 0)

    def test_pauli_matrix_single(self):
        assert np.allclose(pauli_matrix("X"), PAULI_X)

    def test_pauli_matrix_big_endian(self):
        # "XI" acts with X on qubit 0 (most significant).
        expected = np.kron(PAULI_X, IDENTITY)
        assert np.allclose(pauli_matrix("XI"), expected)

    def test_pauli_matrix_lowercase(self):
        assert np.allclose(pauli_matrix("zx"), np.kron(PAULI_Z, PAULI_X))

    def test_pauli_matrix_rejects_bad_char(self):
        with pytest.raises(ReproError):
            pauli_matrix("XQ")

    def test_pauli_matrix_rejects_empty(self):
        with pytest.raises(ReproError):
            pauli_matrix("")


class TestLadderOperators:
    def test_qubit_annihilation(self):
        a = annihilation_operator(2)
        assert np.allclose(a, [[0, 1], [0, 0]])

    def test_qutrit_annihilation_matrix_elements(self):
        a = annihilation_operator(3)
        assert np.isclose(a[0, 1], 1.0)
        assert np.isclose(a[1, 2], np.sqrt(2))

    def test_creation_is_dagger(self):
        assert np.allclose(
            creation_operator(3), annihilation_operator(3).conj().T
        )

    def test_number_operator_diagonal(self):
        assert np.allclose(number_operator(3), np.diag([0, 1, 2]))

    def test_number_equals_adag_a(self):
        a = annihilation_operator(4)
        assert np.allclose(a.conj().T @ a, number_operator(4))

    def test_commutator_truncation(self):
        # [a, a†] = 1 except in the top truncated level.
        a = annihilation_operator(3)
        comm = a @ a.conj().T - a.conj().T @ a
        assert np.allclose(np.diag(comm)[:2], 1.0)

    def test_rejects_single_level(self):
        with pytest.raises(ReproError):
            annihilation_operator(1)


class TestKron:
    def test_kron_all_two(self):
        assert np.allclose(kron_all([PAULI_X, PAULI_Z]), np.kron(PAULI_X, PAULI_Z))

    def test_kron_all_single(self):
        assert np.allclose(kron_all([PAULI_Y]), PAULI_Y)

    def test_kron_all_empty_raises(self):
        with pytest.raises(ReproError):
            kron_all([])


class TestEmbedOperator:
    def test_embed_single_qubit_first(self):
        full = embed_operator(PAULI_X, [0], 2)
        assert np.allclose(full, np.kron(PAULI_X, IDENTITY))

    def test_embed_single_qubit_last(self):
        full = embed_operator(PAULI_X, [1], 2)
        assert np.allclose(full, np.kron(IDENTITY, PAULI_X))

    def test_embed_matches_pauli_matrix(self):
        full = embed_operator(PAULI_Z, [1], 3)
        assert np.allclose(full, pauli_matrix("IZI"))

    def test_embed_two_qubit_adjacent(self):
        cx = np.array(
            [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
        )
        full = embed_operator(cx, [0, 1], 2)
        assert np.allclose(full, cx)

    def test_embed_two_qubit_reversed_targets(self):
        # CX with control on qubit 1, target on qubit 0.
        cx = np.array(
            [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
        )
        full = embed_operator(cx, [1, 0], 2)
        expected = np.array(
            [[1, 0, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0], [0, 1, 0, 0]], dtype=complex
        )
        assert np.allclose(full, expected)

    def test_embed_two_qubit_non_adjacent(self):
        zz = np.kron(PAULI_Z, PAULI_Z)
        full = embed_operator(zz, [0, 2], 3)
        assert np.allclose(full, pauli_matrix("ZIZ"))

    def test_embed_qutrit(self):
        n = number_operator(3)
        full = embed_operator(n, [1], 2, levels=3)
        expected = np.kron(np.eye(3), n)
        assert np.allclose(full, expected)

    def test_embed_rejects_duplicates(self):
        with pytest.raises(ReproError):
            embed_operator(np.eye(4), [0, 0], 2)

    def test_embed_rejects_out_of_range(self):
        with pytest.raises(ReproError):
            embed_operator(PAULI_X, [3], 2)

    def test_embed_rejects_shape_mismatch(self):
        with pytest.raises(ReproError):
            embed_operator(PAULI_X, [0, 1], 3)

    @given(st.integers(0, 3), st.integers(0, 3))
    @settings(max_examples=20, deadline=None)
    def test_embed_preserves_hermiticity(self, target, other):
        full = embed_operator(PAULI_Y, [target], 4)
        assert is_hermitian(full)

    def test_embedding_commutes_for_disjoint_targets(self):
        a = embed_operator(PAULI_X, [0], 3)
        b = embed_operator(PAULI_Z, [2], 3)
        assert np.allclose(a @ b, b @ a)


class TestPredicates:
    def test_identity_is_hermitian_and_unitary(self):
        assert is_hermitian(IDENTITY)
        assert is_unitary(IDENTITY)

    def test_pauli_is_unitary(self):
        assert is_unitary(PAULI_Y)

    def test_non_square_not_unitary(self):
        assert not is_unitary(np.ones((2, 3)))

    def test_non_hermitian_detected(self):
        assert not is_hermitian(np.array([[0, 1], [0, 0]], dtype=complex))

    def test_scaled_identity_not_unitary(self):
        assert not is_unitary(2 * np.eye(2))
