"""Unit tests for the vectorized exponentials and Fréchet derivatives."""

import numpy as np
import pytest
import scipy.linalg as sla
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.linalg.expm import expm_hermitian, expm_hermitian_frechet
from repro.linalg.operators import is_unitary, pauli_matrix
from repro.linalg.random import random_hermitian


class TestExpmHermitian:
    def test_matches_scipy_single(self):
        h = random_hermitian(4, seed=0)
        assert np.allclose(expm_hermitian(h, 0.3), sla.expm(-0.3j * h))

    def test_matches_scipy_batched(self):
        hs = np.stack([random_hermitian(3, seed=s) for s in range(5)])
        us = expm_hermitian(hs, 0.17)
        for h, u in zip(hs, us):
            assert np.allclose(u, sla.expm(-0.17j * h))

    def test_output_is_unitary(self):
        h = random_hermitian(8, seed=3)
        assert is_unitary(expm_hermitian(h, 1.7))

    def test_zero_dt_gives_identity(self):
        h = random_hermitian(4, seed=1)
        assert np.allclose(expm_hermitian(h, 0.0), np.eye(4))

    def test_pauli_rotation(self):
        # exp(-i (θ/2) X) = Rx(θ)
        theta = 0.9
        u = expm_hermitian(pauli_matrix("X"), theta / 2)
        expected = np.array(
            [
                [np.cos(theta / 2), -1j * np.sin(theta / 2)],
                [-1j * np.sin(theta / 2), np.cos(theta / 2)],
            ]
        )
        assert np.allclose(u, expected)

    def test_rejects_non_square(self):
        with pytest.raises(ReproError):
            expm_hermitian(np.ones((2, 3)), 0.1)

    def test_composition_property(self):
        h = random_hermitian(4, seed=9)
        u1 = expm_hermitian(h, 0.2)
        u2 = expm_hermitian(h, 0.5)
        assert np.allclose(u1 @ u2, expm_hermitian(h, 0.7))

    @given(st.floats(0.01, 2.0))
    @settings(max_examples=15, deadline=None)
    def test_unitarity_over_dt(self, dt):
        h = random_hermitian(4, seed=11)
        assert is_unitary(expm_hermitian(h, dt))


class TestFrechetDerivative:
    def _finite_difference(self, h, d, dt, eps=1e-6):
        up = sla.expm(-1j * dt * (h + eps * d))
        um = sla.expm(-1j * dt * (h - eps * d))
        return (up - um) / (2 * eps)

    def test_matches_finite_differences(self):
        h = random_hermitian(4, seed=5)
        d = random_hermitian(4, seed=6)
        u, du = expm_hermitian_frechet(h, d[None], 0.21)
        assert np.allclose(u, sla.expm(-0.21j * h))
        fd = self._finite_difference(h, d, 0.21)
        assert np.allclose(du[0], fd, atol=1e-6)

    def test_multiple_directions(self):
        h = random_hermitian(3, seed=7)
        dirs = np.stack([random_hermitian(3, seed=s) for s in (8, 9, 10)])
        _, du = expm_hermitian_frechet(h, dirs, 0.4)
        for k in range(3):
            fd = self._finite_difference(h, dirs[k], 0.4)
            assert np.allclose(du[k], fd, atol=1e-6)

    def test_degenerate_eigenvalues(self):
        # Identity Hamiltonian: all eigenvalues equal — divided differences
        # must fall back to the analytic diagonal.
        h = np.eye(4, dtype=complex)
        d = random_hermitian(4, seed=12)
        _, du = expm_hermitian_frechet(h, d[None], 0.3)
        fd = self._finite_difference(h, d, 0.3)
        assert np.allclose(du[0], fd, atol=1e-6)

    def test_zero_direction_gives_zero(self):
        h = random_hermitian(4, seed=13)
        _, du = expm_hermitian_frechet(h, np.zeros((1, 4, 4)), 0.3)
        assert np.allclose(du[0], 0.0)

    def test_single_direction_2d_input(self):
        h = random_hermitian(2, seed=14)
        d = random_hermitian(2, seed=15)
        _, du = expm_hermitian_frechet(h, d, 0.3)
        assert du.shape == (1, 2, 2)

    def test_linearity_in_direction(self):
        h = random_hermitian(3, seed=16)
        d = random_hermitian(3, seed=17)
        _, du1 = expm_hermitian_frechet(h, d[None], 0.3)
        _, du2 = expm_hermitian_frechet(h, (2 * d)[None], 0.3)
        assert np.allclose(du2[0], 2 * du1[0])
