"""Unit tests for seeded random unitaries/states."""

import numpy as np

from repro.linalg.operators import is_hermitian, is_unitary
from repro.linalg.random import haar_random_state, haar_random_unitary, random_hermitian


class TestHaarUnitary:
    def test_is_unitary(self):
        assert is_unitary(haar_random_unitary(8, seed=0))

    def test_seed_reproducibility(self):
        a = haar_random_unitary(4, seed=42)
        b = haar_random_unitary(4, seed=42)
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = haar_random_unitary(4, seed=1)
        b = haar_random_unitary(4, seed=2)
        assert not np.allclose(a, b)

    def test_accepts_generator(self):
        gen = np.random.default_rng(7)
        u = haar_random_unitary(4, seed=gen)
        assert is_unitary(u)


class TestHaarState:
    def test_normalized(self):
        psi = haar_random_state(16, seed=0)
        assert np.isclose(np.linalg.norm(psi), 1.0)

    def test_reproducible(self):
        assert np.allclose(haar_random_state(8, seed=5), haar_random_state(8, seed=5))


class TestRandomHermitian:
    def test_hermitian(self):
        assert is_hermitian(random_hermitian(6, seed=0))

    def test_reproducible(self):
        assert np.allclose(random_hermitian(4, seed=3), random_hermitian(4, seed=3))
