"""Blocked prefix-product scans: correctness vs the sequential reference."""

import numpy as np
import pytest

from repro.linalg.random import haar_random_unitary
from repro.linalg.scan import (
    MIN_BLOCKED_STEPS,
    backward_partial_products,
    forward_partial_products,
    scan_block_size,
)


def _props(n_steps: int, dim: int, seed: int = 0) -> np.ndarray:
    return np.stack(
        [haar_random_unitary(dim, seed=seed + k) for k in range(n_steps)]
    )


def _forward_reference(props: np.ndarray) -> np.ndarray:
    out = [np.eye(props.shape[-1], dtype=complex)]
    for mat in props:
        out.append(mat @ out[-1])
    return np.stack(out)


def _backward_reference(props: np.ndarray, init: np.ndarray) -> np.ndarray:
    n = props.shape[0]
    out = [None] * n
    acc = np.asarray(init)
    out[n - 1] = acc
    for k in range(n - 2, -1, -1):
        acc = acc @ props[k + 1]
        out[k] = acc
    return np.stack(out)


class TestScanBlockSize:
    def test_short_scans_stay_sequential(self):
        for n in range(1, MIN_BLOCKED_STEPS):
            assert scan_block_size(n) == 1

    def test_long_scans_chunk_near_sqrt(self):
        assert scan_block_size(100) == 10
        assert scan_block_size(64) == 8
        assert scan_block_size(MIN_BLOCKED_STEPS) >= 2

    def test_configured_override_wins(self):
        from repro.config import set_pipeline_config

        try:
            set_pipeline_config(scan_block=32)
            assert scan_block_size(100) == 32
            # Capped at the scan length, and applied even below the
            # blocked-scan threshold.
            assert scan_block_size(8) == 8
            set_pipeline_config(scan_block=1)
            assert scan_block_size(100) == 1
        finally:
            set_pipeline_config(scan_block=None)
        assert scan_block_size(100) == 10  # heuristic restored


class TestForwardScan:
    @pytest.mark.parametrize("n_steps", [1, 3, 7, 8, 17, 48])
    def test_matches_sequential_reference(self, n_steps):
        props = _props(n_steps, 4)
        out = forward_partial_products(props)
        np.testing.assert_allclose(
            out, _forward_reference(props), atol=1e-12
        )
        assert out.shape == (n_steps + 1, 4, 4)

    def test_batched_leading_axis_is_bitwise_per_slice(self):
        """The cross-block contract: stacking B scans along a leading axis
        must give exactly what B independent scans give — the chunking
        depends on n_steps only."""
        stack = np.stack([_props(20, 3, seed=100 * b) for b in range(4)])
        batched = forward_partial_products(stack)
        for b in range(4):
            assert np.array_equal(
                batched[b], forward_partial_products(stack[b])
            )

    def test_block_size_override_reassociates_only(self):
        props = _props(30, 3)
        default = forward_partial_products(props)
        for size in (1, 2, 5, 15, 64):
            np.testing.assert_allclose(
                forward_partial_products(props, block_size=size),
                default,
                atol=1e-12,
            )

    def test_out_buffer_is_filled_and_returned(self):
        props = _props(12, 3)
        buffer = np.empty((13, 3, 3), dtype=complex)
        out = forward_partial_products(props, out=buffer)
        assert out is buffer
        np.testing.assert_allclose(out, _forward_reference(props), atol=1e-12)


class TestBackwardScan:
    @pytest.mark.parametrize("n_steps", [1, 2, 9, 25])
    def test_matches_sequential_reference(self, n_steps):
        props = _props(n_steps, 4, seed=7)
        init = haar_random_unitary(4, seed=999).conj().T
        out = backward_partial_products(props, init)
        np.testing.assert_allclose(
            out, _backward_reference(props, init), atol=1e-12
        )
        assert np.array_equal(out[-1], init)

    def test_batched_leading_axis_is_bitwise_per_slice(self):
        stack = np.stack([_props(16, 3, seed=50 * b) for b in range(3)])
        inits = np.stack(
            [haar_random_unitary(3, seed=900 + b).conj().T for b in range(3)]
        )
        batched = backward_partial_products(stack, inits)
        for b in range(3):
            assert np.array_equal(
                batched[b], backward_partial_products(stack[b], inits[b])
            )
