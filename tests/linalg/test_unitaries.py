"""Unit tests for fidelity measures and unitary comparison."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.linalg.operators import pauli_matrix
from repro.linalg.random import haar_random_unitary
from repro.linalg.unitaries import (
    average_gate_fidelity,
    closest_unitary,
    global_phase_aligned,
    process_fidelity,
    trace_fidelity,
    unitaries_equal_up_to_phase,
)


class TestTraceFidelity:
    def test_identical_unitaries(self):
        u = haar_random_unitary(4, seed=0)
        assert np.isclose(trace_fidelity(u, u), 1.0)

    def test_global_phase_invariance(self):
        u = haar_random_unitary(4, seed=1)
        assert np.isclose(trace_fidelity(u, np.exp(0.7j) * u), 1.0)

    def test_orthogonal_paulis(self):
        assert np.isclose(trace_fidelity(pauli_matrix("X"), pauli_matrix("Z")), 0.0)

    def test_range(self):
        a = haar_random_unitary(4, seed=2)
        b = haar_random_unitary(4, seed=3)
        f = trace_fidelity(a, b)
        assert 0.0 <= f <= 1.0

    def test_symmetry(self):
        a = haar_random_unitary(4, seed=4)
        b = haar_random_unitary(4, seed=5)
        assert np.isclose(trace_fidelity(a, b), trace_fidelity(b, a))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ReproError):
            trace_fidelity(np.eye(2), np.eye(4))

    def test_process_fidelity_alias(self):
        a = haar_random_unitary(2, seed=6)
        b = haar_random_unitary(2, seed=7)
        assert process_fidelity(a, b) == trace_fidelity(a, b)


class TestAverageGateFidelity:
    def test_identity_case(self):
        assert np.isclose(average_gate_fidelity(np.eye(2), np.eye(2)), 1.0)

    def test_exceeds_process_fidelity(self):
        a = haar_random_unitary(2, seed=8)
        b = haar_random_unitary(2, seed=9)
        assert average_gate_fidelity(a, b) >= process_fidelity(a, b)


class TestPhaseComparison:
    def test_equal_up_to_phase_true(self):
        u = haar_random_unitary(4, seed=10)
        assert unitaries_equal_up_to_phase(u, np.exp(-1.1j) * u)

    def test_equal_up_to_phase_false(self):
        a = haar_random_unitary(4, seed=11)
        b = haar_random_unitary(4, seed=12)
        assert not unitaries_equal_up_to_phase(a, b)

    def test_shape_mismatch_false(self):
        assert not unitaries_equal_up_to_phase(np.eye(2), np.eye(4))

    def test_phase_alignment(self):
        u = haar_random_unitary(3, seed=13)
        rotated = np.exp(0.4j) * u
        aligned = global_phase_aligned(u, rotated)
        assert np.allclose(aligned, u)

    def test_align_orthogonal_returns_input(self):
        x, z = pauli_matrix("X"), pauli_matrix("Z")
        assert np.allclose(global_phase_aligned(x, z), z)


class TestClosestUnitary:
    def test_projects_to_unitary(self):
        m = haar_random_unitary(4, seed=14) + 0.01 * np.ones((4, 4))
        u = closest_unitary(m)
        assert np.allclose(u @ u.conj().T, np.eye(4), atol=1e-10)

    def test_fixed_point_on_unitary(self):
        u = haar_random_unitary(4, seed=15)
        assert np.allclose(closest_unitary(u), u)
