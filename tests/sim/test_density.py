"""Tests for the density-matrix noise simulator."""

import math

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import ghz_circuit, random_circuit
from repro.errors import CircuitError, ReproError
from repro.sim.density import (
    DensityMatrix,
    NoiseModel,
    simulate_noisy,
    success_probability_with_speedup,
)
from repro.sim.statevector import Statevector, simulate


class TestNoiseModel:
    def test_zero_duration_noiseless(self):
        noise = NoiseModel()
        assert noise.damping_probability(0.0) == 0.0
        assert noise.dephasing_probability(0.0) == pytest.approx(0.0)

    def test_damping_grows_with_duration(self):
        noise = NoiseModel(t1_ns=100.0)
        assert noise.damping_probability(50.0) < noise.damping_probability(200.0)

    def test_exponential_form(self):
        noise = NoiseModel(t1_ns=100.0, t2_ns=100.0)
        assert noise.damping_probability(100.0) == pytest.approx(1 - math.exp(-1))

    def test_t2_bound_enforced(self):
        with pytest.raises(ReproError):
            NoiseModel(t1_ns=100.0, t2_ns=300.0)

    def test_invalid_times(self):
        with pytest.raises(ReproError):
            NoiseModel(t1_ns=0.0)

    def test_kraus_completeness(self):
        noise = NoiseModel(t1_ns=50.0, t2_ns=40.0)
        kraus = noise.kraus_operators(10.0)
        total = sum(k.conj().T @ k for k in kraus)
        assert np.allclose(total, np.eye(2), atol=1e-12)


class TestDensityMatrix:
    def test_zero_state(self):
        rho = DensityMatrix.zero_state(2)
        assert rho.trace() == pytest.approx(1.0)
        assert rho.purity() == pytest.approx(1.0)

    def test_from_statevector(self):
        state = simulate(ghz_circuit(2))
        rho = DensityMatrix.from_statevector(state)
        assert rho.fidelity_with_pure(state) == pytest.approx(1.0)

    def test_unitary_preserves_purity(self):
        rho = DensityMatrix.zero_state(2)
        h = np.array([[1, 1], [1, -1]]) / np.sqrt(2)
        rho = rho.apply_unitary(h.astype(complex), (0,))
        assert rho.purity() == pytest.approx(1.0)

    def test_kraus_reduces_purity(self):
        state = simulate(QuantumCircuit(1).h(0))
        rho = DensityMatrix.from_statevector(state)
        noise = NoiseModel(t1_ns=10.0, t2_ns=10.0)
        rho = rho.apply_kraus(noise.kraus_operators(5.0), 0)
        assert rho.purity() < 1.0
        assert rho.trace() == pytest.approx(1.0)

    def test_invalid_shape(self):
        with pytest.raises(CircuitError):
            DensityMatrix(np.ones((3, 3)))


class TestNoisySimulation:
    def test_trace_preserved(self):
        qc = random_circuit(3, 20, seed=0)
        rho = simulate_noisy(qc, NoiseModel(t1_ns=1000.0, t2_ns=800.0))
        assert rho.trace() == pytest.approx(1.0, abs=1e-9)

    def test_weak_noise_high_fidelity(self):
        qc = ghz_circuit(3)
        rho = simulate_noisy(qc, NoiseModel(t1_ns=1e7, t2_ns=1e7))
        assert rho.fidelity_with_pure(simulate(qc)) > 0.999

    def test_strong_noise_low_fidelity(self):
        qc = ghz_circuit(3)
        weak = simulate_noisy(qc, NoiseModel(t1_ns=1e6, t2_ns=1e6))
        strong = simulate_noisy(qc, NoiseModel(t1_ns=50.0, t2_ns=50.0))
        ideal = simulate(qc)
        assert strong.fidelity_with_pure(ideal) < weak.fidelity_with_pure(ideal)

    def test_parameterized_rejected(self):
        from repro.circuits.parameters import Parameter

        qc = QuantumCircuit(1).rz(Parameter("theta_0"), 0)
        with pytest.raises(CircuitError):
            simulate_noisy(qc)


class TestSpeedupAdvantage:
    def test_speedup_improves_fidelity(self):
        # The paper's core claim, executable: 2x shorter pulses -> higher
        # success probability, compounding with depth.
        qc = random_circuit(3, 40, seed=1)
        noise = NoiseModel(t1_ns=2000.0, t2_ns=1500.0)
        base = success_probability_with_speedup(qc, 1.0, noise)
        fast = success_probability_with_speedup(qc, 2.0, noise)
        assert fast > base

    def test_gain_compounds_with_depth(self):
        noise = NoiseModel(t1_ns=2000.0, t2_ns=1500.0)
        shallow = random_circuit(2, 10, seed=2)
        deep = random_circuit(2, 60, seed=2)
        gain_shallow = success_probability_with_speedup(
            shallow, 2.0, noise
        ) / success_probability_with_speedup(shallow, 1.0, noise)
        gain_deep = success_probability_with_speedup(
            deep, 2.0, noise
        ) / success_probability_with_speedup(deep, 1.0, noise)
        assert gain_deep > gain_shallow

    def test_invalid_speedup(self):
        with pytest.raises(ReproError):
            success_probability_with_speedup(ghz_circuit(2), 0.0)
