"""Unit tests for circuit→unitary construction."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import random_circuit
from repro.circuits.parameters import Parameter
from repro.errors import CircuitError
from repro.linalg.operators import is_unitary
from repro.sim.statevector import simulate
from repro.sim.unitary import circuit_unitary


class TestCircuitUnitary:
    def test_empty_circuit_identity(self):
        assert np.allclose(circuit_unitary(QuantumCircuit(2)), np.eye(4))

    def test_single_gate(self):
        qc = QuantumCircuit(1).x(0)
        assert np.allclose(circuit_unitary(qc), [[0, 1], [1, 0]])

    def test_gate_order_left_multiplication(self):
        # h then x: matrix should be X @ H.
        qc = QuantumCircuit(1).h(0).x(0)
        h = np.array([[1, 1], [1, -1]]) / np.sqrt(2)
        x = np.array([[0, 1], [1, 0]])
        assert np.allclose(circuit_unitary(qc), x @ h)

    def test_unitary_consistent_with_statevector(self):
        qc = random_circuit(3, 30, seed=4)
        u = circuit_unitary(qc)
        state = simulate(qc)
        assert np.allclose(u[:, 0], state.data)

    def test_always_unitary(self):
        for seed in range(4):
            assert is_unitary(circuit_unitary(random_circuit(3, 25, seed=seed)))

    def test_parameterized_rejected(self):
        qc = QuantumCircuit(1).rz(Parameter("theta_0"), 0)
        with pytest.raises(CircuitError):
            circuit_unitary(qc)

    def test_inverse_gives_adjoint(self):
        qc = random_circuit(2, 15, seed=5)
        u = circuit_unitary(qc)
        u_inv = circuit_unitary(qc.inverse())
        assert np.allclose(u_inv, u.conj().T)
