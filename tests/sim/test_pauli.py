"""Unit tests for Pauli strings and sums."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.linalg.operators import is_hermitian, pauli_matrix
from repro.sim.pauli import PauliString, PauliSum
from repro.sim.statevector import Statevector, simulate
from repro.circuits.library import random_circuit

pauli_labels = st.text(alphabet="IXYZ", min_size=1, max_size=4)


class TestPauliString:
    def test_matrix_matches_linalg(self):
        p = PauliString("XZY", 2.0)
        assert np.allclose(p.matrix(), 2.0 * pauli_matrix("XZY"))

    def test_invalid_label(self):
        with pytest.raises(ReproError):
            PauliString("AB")

    def test_from_sparse(self):
        p = PauliString.from_sparse(4, {1: "X", 3: "Z"}, 0.5)
        assert p.label == "IXIZ"
        assert p.coefficient == 0.5

    def test_from_sparse_out_of_range(self):
        with pytest.raises(ReproError):
            PauliString.from_sparse(2, {5: "X"})

    def test_support(self):
        assert PauliString("IXIZ").support == (1, 3)

    def test_identity_detection(self):
        assert PauliString("III").is_identity()
        assert not PauliString("IXI").is_identity()

    def test_multiplication_phases(self):
        xy = PauliString("X") * PauliString("Y")
        assert xy.label == "Z"
        assert np.isclose(xy.coefficient, 1j)

    def test_multiplication_matches_matrices(self):
        a, b = PauliString("XZ", 0.5), PauliString("YY", 2.0)
        product = a * b
        assert np.allclose(product.matrix(), a.matrix() @ b.matrix())

    def test_width_mismatch_multiplication(self):
        with pytest.raises(ReproError):
            PauliString("X") * PauliString("XX")

    def test_scalar_multiplication(self):
        p = 3.0 * PauliString("Z")
        assert np.isclose(p.coefficient, 3.0)

    @given(pauli_labels, pauli_labels)
    @settings(max_examples=25, deadline=None)
    def test_product_phase_is_unimodular_power_of_i(self, la, lb):
        n = max(len(la), len(lb))
        a = PauliString(la.ljust(n, "I"))
        b = PauliString(lb.ljust(n, "I"))
        product = a * b
        assert np.isclose(np.abs(product.coefficient), 1.0)

    def test_expectation_on_basis_state(self):
        zz = PauliString("ZZ")
        assert np.isclose(
            zz.expectation(Statevector.computational_basis(2, "01")).real, -1.0
        )

    def test_expectation_matches_matrix(self):
        state = simulate(random_circuit(3, 20, seed=0))
        p = PauliString("XYZ", 0.7)
        direct = p.expectation(state)
        via_matrix = np.vdot(state.data, p.matrix() @ state.data)
        assert np.isclose(direct, via_matrix)

    def test_expectation_width_mismatch(self):
        with pytest.raises(ReproError):
            PauliString("ZZ").expectation(Statevector.zero_state(3))


class TestPauliSum:
    def test_collects_duplicates(self):
        s = PauliSum([PauliString("Z", 1.0), PauliString("Z", 2.0)])
        assert len(s) == 1
        assert np.isclose(s.coefficient("Z"), 3.0)

    def test_drops_zero_terms(self):
        s = PauliSum([PauliString("Z", 1.0), PauliString("Z", -1.0)])
        assert len(s) == 0

    def test_mixed_widths_rejected(self):
        with pytest.raises(ReproError):
            PauliSum([PauliString("Z"), PauliString("ZZ")])

    def test_addition(self):
        s = PauliSum([PauliString("X", 1.0)]) + PauliString("Z", 2.0)
        assert len(s) == 2

    def test_subtraction(self):
        s = PauliSum([PauliString("X", 1.0)]) - PauliString("X", 1.0)
        assert len(s) == 0

    def test_scalar_multiplication(self):
        s = PauliSum([PauliString("X", 1.0)]) * 2.0
        assert np.isclose(s.coefficient("X"), 2.0)

    def test_sum_product_matches_matrices(self):
        a = PauliSum([PauliString("XI", 0.5), PauliString("ZZ", 1.0)])
        b = PauliSum([PauliString("IY", 2.0), PauliString("XX", -0.5)])
        assert np.allclose((a * b).matrix(), a.matrix() @ b.matrix())

    def test_matrix_hermitian_for_real_coeffs(self):
        s = PauliSum([PauliString("XZ", 0.3), PauliString("YY", -1.2)])
        assert is_hermitian(s.matrix())

    def test_expectation_matches_matrix(self):
        state = simulate(random_circuit(2, 15, seed=1))
        s = PauliSum([PauliString("XZ", 0.3), PauliString("ZI", 0.9)])
        assert np.isclose(
            s.expectation(state), np.vdot(state.data, s.matrix() @ state.data).real
        )

    def test_ground_state_energy(self):
        s = PauliSum([PauliString("Z", 1.0)])
        assert np.isclose(s.ground_state_energy(), -1.0)

    def test_empty_sum_has_no_width(self):
        with pytest.raises(ReproError):
            _ = PauliSum([]).num_qubits

    def test_iteration_and_terms_sorted(self):
        s = PauliSum([PauliString("Z", 1.0), PauliString("X", 1.0)])
        labels = [t.label for t in s]
        assert labels == sorted(labels)
