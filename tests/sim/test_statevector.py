"""Unit tests for the statevector simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import ghz_circuit, random_circuit
from repro.errors import CircuitError
from repro.sim.statevector import Statevector, simulate


class TestConstruction:
    def test_zero_state(self):
        state = Statevector.zero_state(3)
        assert np.isclose(state.data[0], 1.0)
        assert state.num_qubits == 3

    def test_basis_state(self):
        state = Statevector.computational_basis(3, "101")
        assert np.isclose(state.data[0b101], 1.0)

    def test_invalid_bitstring(self):
        with pytest.raises(CircuitError):
            Statevector.computational_basis(2, "012")

    def test_non_power_of_two_rejected(self):
        with pytest.raises(CircuitError):
            Statevector(np.ones(3))

    def test_width_check(self):
        with pytest.raises(CircuitError):
            Statevector(np.ones(4), num_qubits=3)


class TestEvolution:
    def test_x_flips_qubit(self):
        state = simulate(QuantumCircuit(1).x(0))
        assert np.isclose(np.abs(state.data[1]), 1.0)

    def test_h_superposition(self):
        state = simulate(QuantumCircuit(1).h(0))
        assert np.allclose(np.abs(state.data) ** 2, [0.5, 0.5])

    def test_bell_state(self):
        state = simulate(QuantumCircuit(2).h(0).cx(0, 1))
        probs = state.probabilities()
        assert np.isclose(probs[0], 0.5) and np.isclose(probs[3], 0.5)

    def test_big_endian_convention(self):
        # X on qubit 0 of a 2-qubit register -> |10> (index 2).
        state = simulate(QuantumCircuit(2).x(0))
        assert np.isclose(np.abs(state.data[2]), 1.0)

    def test_evolution_preserves_norm(self):
        state = simulate(random_circuit(4, 50, seed=0))
        assert np.isclose(np.linalg.norm(state.data), 1.0)

    def test_width_mismatch_raises(self):
        with pytest.raises(CircuitError):
            Statevector.zero_state(2).evolve(QuantumCircuit(3).h(0))

    def test_matrix_shape_check(self):
        with pytest.raises(CircuitError):
            Statevector.zero_state(2).apply_matrix(np.eye(2), (0, 1))

    def test_apply_on_middle_qubit(self):
        state = Statevector.zero_state(3).apply_matrix(
            np.array([[0, 1], [1, 0]], dtype=complex), (1,)
        )
        assert np.isclose(np.abs(state.data[0b010]), 1.0)

    @given(st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_random_circuit_normalized(self, seed):
        state = simulate(random_circuit(3, 20, seed=seed))
        assert np.isclose(np.linalg.norm(state.data), 1.0)


class TestMeasurement:
    def test_probabilities_sum_to_one(self):
        state = simulate(random_circuit(3, 30, seed=1))
        assert np.isclose(state.probabilities().sum(), 1.0)

    def test_expectation_of_identity(self):
        state = simulate(random_circuit(2, 10, seed=2))
        assert np.isclose(state.expectation(np.eye(4)), 1.0)

    def test_expectation_z_on_zero_state(self):
        z = np.diag([1.0, -1.0])
        assert np.isclose(Statevector.zero_state(1).expectation(z), 1.0)

    def test_sample_counts_total(self):
        counts = simulate(ghz_circuit(2)).sample_counts(shots=100, seed=0)
        assert sum(counts.values()) == 100

    def test_sample_counts_support(self):
        counts = simulate(ghz_circuit(3)).sample_counts(shots=200, seed=0)
        assert set(counts) <= {"000", "111"}

    def test_fidelity_self(self):
        state = simulate(random_circuit(3, 20, seed=3))
        assert np.isclose(state.fidelity(state), 1.0)

    def test_fidelity_orthogonal(self):
        a = Statevector.computational_basis(2, "00")
        b = Statevector.computational_basis(2, "11")
        assert np.isclose(a.fidelity(b), 0.0)

    def test_fidelity_width_mismatch(self):
        with pytest.raises(CircuitError):
            Statevector.zero_state(1).fidelity(Statevector.zero_state(2))
