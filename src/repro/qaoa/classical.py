"""Classical MAXCUT baselines: Goemans-Williamson, greedy, random.

The paper positions QAOA against "the best-known classical algorithm,
Goemans-Williamson" (section 4.2, citing Crooks' finding of mean parity at
p = 5 on 10-node graphs).  To make that comparison executable offline, the
GW semidefinite relaxation is solved with a Burer-Monteiro low-rank
factorization — projected gradient ascent over unit vectors — followed by
the classic random-hyperplane rounding.  On the benchmark-sized graphs
(≤ 10 nodes) this reliably reaches the SDP optimum, and the rounded cuts
carry the 0.878-approximation guarantee in expectation.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.errors import QAOAError
from repro.qaoa.graphs import graph_edges
from repro.qaoa.maxcut import cut_value

__all__ = [
    "ClassicalCutResult",
    "goemans_williamson",
    "greedy_local_search",
    "random_cut",
    "sdp_relaxation_vectors",
]

#: The Goemans-Williamson approximation constant α ≈ 0.878.
GW_ALPHA = 0.8785672

_BITS = ("0", "1")


@dataclass(frozen=True)
class ClassicalCutResult:
    """Outcome of a classical MAXCUT heuristic."""

    algorithm: str
    bitstring: str
    cut: int
    expected_cut: float
    relaxation_value: float | None = None

    def approximation_ratio(self, optimal_cut: int) -> float:
        """``cut / optimal_cut``; raises unless the optimum is positive."""
        if optimal_cut <= 0:
            raise QAOAError("optimal cut must be positive")
        return self.cut / optimal_cut


def _validate(graph: nx.Graph) -> None:
    if graph.number_of_nodes() < 2 or graph.number_of_edges() < 1:
        raise QAOAError("MAXCUT needs a graph with at least one edge")


def _bits_from_signs(signs: np.ndarray) -> str:
    return "".join(_BITS[int(s > 0)] for s in signs)


def sdp_relaxation_vectors(
    graph: nx.Graph,
    rank: int | None = None,
    iterations: int = 400,
    step: float = 0.2,
    seed: int = 0,
) -> tuple:
    """Solve the GW SDP via Burer-Monteiro projected gradient ascent.

    Maximizes ``Σ_(i,j) (1 - vᵢ·vⱼ) / 2`` over unit vectors ``vᵢ ∈ R^k``.
    For ``k > sqrt(2n)`` the low-rank problem has no spurious local optima
    (Burer-Monteiro guarantee), so gradient ascent converges to the SDP
    value.  Returns ``(vectors, relaxation_value)``.
    """
    _validate(graph)
    n = graph.number_of_nodes()
    if rank is None:
        rank = max(3, int(np.ceil(np.sqrt(2 * n))) + 1)
    rng = np.random.default_rng(seed)
    vectors = rng.normal(size=(n, rank))
    vectors /= np.linalg.norm(vectors, axis=1, keepdims=True)

    adjacency = np.zeros((n, n))
    for a, b in graph_edges(graph):
        adjacency[a, b] = adjacency[b, a] = 1.0

    for _ in range(iterations):
        # ∂/∂vᵢ Σ (1 - vᵢ·vⱼ)/2 = -Σ_j A_ij vⱼ / 2: ascend its direction.
        gradient = -adjacency @ vectors / 2
        vectors = vectors + step * gradient
        vectors /= np.linalg.norm(vectors, axis=1, keepdims=True)

    gram = vectors @ vectors.T
    relaxation = sum(
        (1.0 - gram[a, b]) / 2 for a, b in graph_edges(graph)
    )
    return vectors, float(relaxation)


def goemans_williamson(
    graph: nx.Graph,
    num_rounds: int = 64,
    seed: int = 0,
    rank: int | None = None,
    iterations: int = 400,
) -> ClassicalCutResult:
    """Goemans-Williamson: SDP relaxation + random-hyperplane rounding.

    ``num_rounds`` independent hyperplanes are drawn; the best rounded cut
    is returned, with the mean rounded cut as ``expected_cut``.
    """
    vectors, relaxation = sdp_relaxation_vectors(
        graph, rank=rank, iterations=iterations, seed=seed
    )
    rng = np.random.default_rng(seed + 1)
    best_bits, best_cut, cuts = "", -1, []
    for _ in range(max(1, num_rounds)):
        hyperplane = rng.normal(size=vectors.shape[1])
        bits = _bits_from_signs(vectors @ hyperplane)
        cut = cut_value(graph, bits)
        cuts.append(cut)
        if cut > best_cut:
            best_bits, best_cut = bits, cut
    return ClassicalCutResult(
        algorithm="goemans-williamson",
        bitstring=best_bits,
        cut=best_cut,
        expected_cut=float(np.mean(cuts)),
        relaxation_value=relaxation,
    )


def random_cut(graph: nx.Graph, num_samples: int = 64, seed: int = 0) -> ClassicalCutResult:
    """Uniformly random assignment baseline (expected cut = |E| / 2)."""
    _validate(graph)
    rng = np.random.default_rng(seed)
    n = graph.number_of_nodes()
    best_bits, best_cut, cuts = "", -1, []
    for _ in range(max(1, num_samples)):
        bits = "".join(rng.choice(_BITS, size=n))
        cut = cut_value(graph, bits)
        cuts.append(cut)
        if cut > best_cut:
            best_bits, best_cut = bits, cut
    return ClassicalCutResult(
        algorithm="random",
        bitstring=best_bits,
        cut=best_cut,
        expected_cut=float(np.mean(cuts)),
    )


def greedy_local_search(
    graph: nx.Graph, seed: int = 0, max_sweeps: int = 100
) -> ClassicalCutResult:
    """1-flip local search from a random start (cut ≥ |E|/2 at a local opt).

    At a local optimum every vertex has at least half its edges cut, which
    gives the classic 1/2-approximation guarantee this baseline is tested
    against.
    """
    _validate(graph)
    rng = np.random.default_rng(seed)
    n = graph.number_of_nodes()
    sides = rng.integers(0, 2, size=n)
    adjacency = [list(graph.neighbors(v)) for v in range(n)]
    for _ in range(max_sweeps):
        improved = False
        for v in range(n):
            cut_edges = sum(sides[u] != sides[v] for u in adjacency[v])
            if 2 * cut_edges < len(adjacency[v]):
                sides[v] ^= 1
                improved = True
        if not improved:
            break
    bits = "".join(_BITS[s] for s in sides)
    cut = cut_value(graph, bits)
    return ClassicalCutResult(
        algorithm="greedy-local",
        bitstring=bits,
        cut=cut,
        expected_cut=float(cut),
    )
