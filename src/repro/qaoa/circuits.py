"""QAOA circuit construction.

One round applies the Cost-Optimization unitary ``exp(-i γ Σ Z_i Z_j / …)``
(an ``Rzz(2γ)`` per edge) then the Mixing unitary ``exp(-i β Σ X_q)`` (an
``Rx(2β)`` per qubit).  The 2p parameters are named ``theta_0 … theta_{2p-1}``
with γ_k = θ_{2k} and β_k = θ_{2k+1}, so their index order equals their
appearance order — parameter monotonicity by construction (paper §7.1:
"once the corresponding Mixing or Cost-Optimization has been applied, the
circuit no longer depends on that parameter").
"""

from __future__ import annotations

import networkx as nx

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.parameters import Parameter
from repro.errors import QAOAError
from repro.qaoa.graphs import graph_edges
from repro.qaoa.maxcut import MaxCutProblem


def qaoa_circuit(problem: MaxCutProblem | nx.Graph, p: int, name: str | None = None) -> QuantumCircuit:
    """The p-round QAOA MAXCUT ansatz for ``problem``.

    Returns a parametrized circuit over ``2p`` symbolic parameters.
    """
    if p < 1:
        raise QAOAError(f"need at least one round, got p={p}")
    if isinstance(problem, MaxCutProblem):
        graph = problem.graph
        base_name = name or f"qaoa_{problem.kind}_n{problem.num_nodes}_p{p}"
    else:
        graph = problem
        base_name = name or f"qaoa_n{graph.number_of_nodes()}_p{p}"
    num_qubits = graph.number_of_nodes()
    edges = graph_edges(graph)
    if not edges:
        raise QAOAError("graph has no edges")

    circuit = QuantumCircuit(num_qubits, name=base_name)
    for q in range(num_qubits):
        circuit.h(q)
    for round_index in range(p):
        gamma = Parameter(f"theta_{2 * round_index}", index=2 * round_index)
        beta = Parameter(f"theta_{2 * round_index + 1}", index=2 * round_index + 1)
        # Cost-Optimization step: exp(-i γ (Z_i Z_j)/2 · 2) per edge.
        for a, b in edges:
            circuit.rzz(2.0 * gamma, a, b)
        # Mixing step.
        for q in range(num_qubits):
            circuit.rx(2.0 * beta, q)
    return circuit
