"""QAOA substrate: MAXCUT problems, benchmark graphs, circuits, driver.

The paper benchmarks QAOA MAXCUT on 3-regular and Erdős–Rényi graphs of 6
and 8 nodes, with p = 1…8 rounds (Table 3, Figure 6), plus the 4-node clique
for Figure 2.
"""

from repro.qaoa.graphs import benchmark_graph, clique_graph, graph_edges
from repro.qaoa.maxcut import (
    MaxCutProblem,
    cut_value,
    maxcut_hamiltonian,
    maxcut_problem,
)
from repro.qaoa.circuits import qaoa_circuit
from repro.qaoa.classical import (
    ClassicalCutResult,
    goemans_williamson,
    greedy_local_search,
    random_cut,
)
from repro.qaoa.driver import QAOADriver, QAOAResult

__all__ = [
    "random_cut",
    "greedy_local_search",
    "goemans_williamson",
    "ClassicalCutResult",
    "MaxCutProblem",
    "QAOADriver",
    "QAOAResult",
    "benchmark_graph",
    "clique_graph",
    "cut_value",
    "graph_edges",
    "maxcut_hamiltonian",
    "maxcut_problem",
    "qaoa_circuit",
]
