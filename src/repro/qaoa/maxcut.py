"""MAXCUT cost functions and problem instances."""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.errors import QAOAError
from repro.qaoa.graphs import benchmark_graph, graph_edges
from repro.sim.pauli import PauliString, PauliSum


def maxcut_hamiltonian(graph: nx.Graph) -> PauliSum:
    """The minimization Hamiltonian ``H = Σ_(i,j) (Z_i Z_j - 1) / 2``.

    Its ground energy is ``-maxcut(graph)``: minimizing ⟨H⟩ maximizes the
    expected cut.
    """
    num_nodes = graph.number_of_nodes()
    if num_nodes < 1:
        raise QAOAError("empty graph")
    terms = []
    for a, b in graph_edges(graph):
        terms.append(PauliString.from_sparse(num_nodes, {a: "Z", b: "Z"}, 0.5))
        terms.append(PauliString("I" * num_nodes, -0.5))
    return PauliSum(terms)


def cut_value(graph: nx.Graph, bitstring: str) -> int:
    """Number of edges cut by the partition encoded in ``bitstring``."""
    if len(bitstring) != graph.number_of_nodes():
        raise QAOAError(
            f"bitstring length {len(bitstring)} != {graph.number_of_nodes()} nodes"
        )
    return sum(1 for a, b in graph.edges if bitstring[a] != bitstring[b])


def exact_maxcut(graph: nx.Graph) -> int:
    """Brute-force optimum (benchmark graphs are ≤ 10 nodes)."""
    n = graph.number_of_nodes()
    if n > 20:
        raise QAOAError("brute-force MAXCUT is limited to 20 nodes")
    best = 0
    for assignment in range(1 << (n - 1)):  # fix node 0's side by symmetry
        bits = format(assignment << 1, f"0{n}b")
        best = max(best, cut_value(graph, bits))
    return best


@dataclass(frozen=True)
class MaxCutProblem:
    """A QAOA MAXCUT benchmark instance."""

    kind: str
    num_nodes: int
    seed: int
    graph: nx.Graph
    hamiltonian: PauliSum
    optimal_cut: int

    @property
    def name(self) -> str:
        return f"maxcut_{self.kind}_n{self.num_nodes}_s{self.seed}"

    @property
    def edges(self) -> tuple:
        return graph_edges(self.graph)


def maxcut_problem(kind: str, num_nodes: int, seed: int = 0) -> MaxCutProblem:
    """Build a seeded benchmark instance with its exact optimum."""
    graph = benchmark_graph(kind, num_nodes, seed=seed)
    return MaxCutProblem(
        kind=kind,
        num_nodes=num_nodes,
        seed=seed,
        graph=graph,
        hamiltonian=maxcut_hamiltonian(graph),
        optimal_cut=exact_maxcut(graph),
    )
