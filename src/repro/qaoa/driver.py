"""The QAOA optimization loop.

Like :class:`repro.vqe.VQEDriver`, the ``compiler`` hook's supported form
is a :class:`repro.service.CompilationService` (``compiler=service``
compiles every iteration through the service's shared executor, cache, and
scheduler state); any object with ``compile_parametrized(circuit, values)``
or ``compile(values)`` also works.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np
from scipy import optimize as scipy_optimize

from repro.errors import QAOAError
from repro.qaoa.circuits import qaoa_circuit
from repro.qaoa.maxcut import MaxCutProblem, cut_value
from repro.sim.statevector import simulate


@dataclass
class QAOAResult:
    """Outcome of a QAOA run."""

    optimal_parameters: np.ndarray
    expected_cut: float
    optimal_cut: int
    best_sampled_cut: int
    iterations: int
    history: list = field(default_factory=list)
    wall_time_s: float = 0.0
    compile_latency_s: float = 0.0
    #: End-of-run telemetry from the compiler hook's ``stats()`` (e.g. a
    #: ``CompilationService``'s folded counters); ``None`` otherwise.
    compile_stats: dict | None = None

    @property
    def approximation_ratio(self) -> float:
        """Expected cut over the true optimum (Farhi et al. guarantee:
        ≥ 0.69 for 3-regular graphs at p=1)."""
        return self.expected_cut / self.optimal_cut if self.optimal_cut else 0.0


class QAOADriver:
    """QAOA over a MAXCUT instance with Nelder-Mead outer loop."""

    def __init__(
        self,
        problem: MaxCutProblem,
        p: int,
        max_iterations: int = 150,
        seed: int = 0,
        compiler=None,
        restarts: int = 1,
    ):
        self.problem = problem
        self.p = p
        self.circuit = qaoa_circuit(problem, p)
        self.max_iterations = max_iterations
        self.seed = seed
        self.compiler = compiler
        self.restarts = max(1, restarts)
        self._rng = np.random.default_rng(seed)

    def expected_cut(self, values: Sequence[float]) -> float:
        """⟨C⟩ = -⟨H⟩ for the bound circuit (H's ground energy = -maxcut)."""
        bound = self.circuit.bind_parameters(list(values))
        state = simulate(bound)
        return -self.problem.hamiltonian.expectation(state)

    def run(self, initial_parameters: Sequence[float] | None = None) -> QAOAResult:
        num_params = 2 * self.p
        if initial_parameters is None:
            initial = self._rng.uniform(0.1, 0.8, size=num_params)
        else:
            initial = np.asarray(list(initial_parameters), dtype=float)
            if initial.size != num_params:
                raise QAOAError(f"expected {num_params} parameters, got {initial.size}")

        history: list[float] = []
        compile_seconds = 0.0
        start = time.perf_counter()

        def objective(values: np.ndarray) -> float:
            nonlocal compile_seconds
            if self.compiler is not None:
                if hasattr(self.compiler, "compile_parametrized"):
                    compiled = self.compiler.compile_parametrized(self.circuit, list(values))
                else:
                    compiled = self.compiler.compile(list(values))
                compile_seconds += compiled.runtime_latency_s
            cut = self.expected_cut(values)
            history.append(cut)
            return -cut  # maximize the cut

        # Nelder-Mead with optional random restarts: the QAOA landscape has
        # local optima even at p=1, so the classical loop benefits from a
        # few independent starting points.
        budget = max(1, self.max_iterations // self.restarts)
        best_x, best_fun = None, float("inf")
        for restart in range(self.restarts):
            start_point = (
                initial
                if restart == 0
                else self._rng.uniform(0.05, 1.5, size=num_params)
            )
            result = scipy_optimize.minimize(
                objective,
                start_point,
                method="Nelder-Mead",
                options={"maxfev": budget, "xatol": 1e-4, "fatol": 1e-6},
            )
            if result.fun < best_fun:
                best_x, best_fun = result.x, float(result.fun)
        result = scipy_optimize.OptimizeResult(x=best_x, fun=best_fun)
        # Sample the optimized state for the best concrete cut.
        bound = self.circuit.bind_parameters(list(result.x))
        state = simulate(bound)
        counts = state.sample_counts(shots=256, seed=self.seed)
        best_cut = max(cut_value(self.problem.graph, bits) for bits in counts)

        compile_stats = None
        if self.compiler is not None and hasattr(self.compiler, "stats"):
            compile_stats = self.compiler.stats()
        return QAOAResult(
            optimal_parameters=np.asarray(result.x),
            expected_cut=float(-result.fun),
            optimal_cut=self.problem.optimal_cut,
            best_sampled_cut=best_cut,
            iterations=len(history),
            history=history,
            wall_time_s=time.perf_counter() - start,
            compile_latency_s=compile_seconds,
            compile_stats=compile_stats,
        )
