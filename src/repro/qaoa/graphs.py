"""Benchmark graph families (paper section 4.2).

"For each (N, p) pair, we benchmark for two types of random graphs:
3-regular (each node is connected to three neighbors) and Erdos-Renyi (each
possible edge is included with 50 % probability)."  Seeds are fixed for
reproducibility, as in the paper.
"""

from __future__ import annotations

import networkx as nx

from repro.errors import QAOAError

GRAPH_KINDS = ("3regular", "erdosrenyi", "clique")


def benchmark_graph(kind: str, num_nodes: int, seed: int = 0) -> nx.Graph:
    """A seeded benchmark graph of the requested family.

    ``kind`` ∈ {"3regular", "erdosrenyi", "clique"}.  Erdős–Rényi graphs are
    re-sampled (deterministically) until connected, so every benchmark
    instance is a single component.
    """
    kind = kind.lower().replace("-", "").replace("_", "")
    if kind in ("3regular", "regular"):
        if num_nodes <= 3 or (3 * num_nodes) % 2 != 0:
            raise QAOAError(
                f"no 3-regular graph on {num_nodes} nodes (need even n > 3)"
            )
        return nx.random_regular_graph(3, num_nodes, seed=seed)
    if kind in ("erdosrenyi", "er"):
        if num_nodes < 2:
            raise QAOAError("Erdős–Rényi graphs need at least 2 nodes")
        for attempt in range(100):
            graph = nx.erdos_renyi_graph(num_nodes, 0.5, seed=seed + 1000 * attempt)
            if graph.number_of_edges() > 0 and nx.is_connected(graph):
                return graph
        raise QAOAError(f"failed to sample a connected ER graph on {num_nodes} nodes")
    if kind == "clique":
        return clique_graph(num_nodes)
    raise QAOAError(f"unknown graph kind {kind!r}; available: {GRAPH_KINDS}")


def clique_graph(num_nodes: int) -> nx.Graph:
    """The complete graph K_n (Figure 2 uses the 4-node clique)."""
    if num_nodes < 2:
        raise QAOAError("cliques need at least 2 nodes")
    return nx.complete_graph(num_nodes)


def graph_edges(graph: nx.Graph) -> tuple:
    """Sorted edge tuples of ``graph`` (deterministic iteration order)."""
    return tuple(sorted(tuple(sorted(e)) for e in graph.edges))
