"""Symbolic circuit parameters as linear expressions.

Variational circuits are parameterized by angles ``θ_0 … θ_{k-1}``.  Circuit
construction and optimization transform individual angles into forms like
``-θ_i``, ``θ_i / 2`` or ``2·θ_i + π`` (e.g. Pauli-evolution synthesis and
rotation merging).  Partial compilation must still know *which* ``θ_i`` a
gate depends on, so angles are represented as linear forms

    ``expr = Σ_i c_i · θ_i + const``

which are closed under every rewrite the transpiler performs.  The paper
describes this as "explicitly tagging the dependent parameter in software
during the variational circuit construction phase" (section 7.1).
"""

from __future__ import annotations

import math
from typing import Mapping, Union

from repro.errors import ParameterError

Number = Union[int, float]


class Parameter:
    """A named symbolic circuit parameter.

    Parameters are compared by identity of their name and an ``index`` used
    for ordering (parameter monotonicity analysis sorts by it).  Arithmetic
    on a :class:`Parameter` produces a :class:`ParameterExpression`.
    """

    __slots__ = ("name", "index")

    def __init__(self, name: str, index: int | None = None):
        self.name = name
        # Default index parsed from trailing digits ("theta_3" -> 3).
        if index is None:
            digits = ""
            for ch in reversed(name):
                if ch.isdigit():
                    digits = ch + digits
                else:
                    break
            index = int(digits) if digits else 0
        self.index = index

    def __repr__(self) -> str:
        return f"Parameter({self.name!r})"

    def __str__(self) -> str:
        return self.name

    def __hash__(self) -> int:
        return hash((self.name, self.index))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Parameter):
            return self.name == other.name and self.index == other.index
        return NotImplemented

    def __lt__(self, other: "Parameter") -> bool:
        return (self.index, self.name) < (other.index, other.name)

    # -- arithmetic lifts to ParameterExpression ---------------------------
    def _expr(self) -> "ParameterExpression":
        return ParameterExpression({self: 1.0}, 0.0)

    def __add__(self, other):
        return self._expr() + other

    __radd__ = __add__

    def __sub__(self, other):
        return self._expr() - other

    def __rsub__(self, other):
        return (-self._expr()) + other

    def __mul__(self, other):
        return self._expr() * other

    __rmul__ = __mul__

    def __truediv__(self, other):
        return self._expr() / other

    def __neg__(self):
        return -self._expr()


class ParameterExpression:
    """A linear form over :class:`Parameter` objects.

    Immutable.  Supports ``+``, ``-``, scalar ``*`` and ``/``, binding, and
    querying which parameters appear with nonzero coefficient.
    """

    __slots__ = ("_coeffs", "_const")

    def __init__(self, coeffs: Mapping[Parameter, float], const: float = 0.0):
        cleaned = {p: float(c) for p, c in coeffs.items() if abs(c) > 1e-15}
        self._coeffs = cleaned
        self._const = float(const)

    # -- inspection --------------------------------------------------------
    @property
    def parameters(self) -> frozenset:
        """The set of parameters this expression depends on."""
        return frozenset(self._coeffs)

    @property
    def constant(self) -> float:
        """The constant offset of the linear form."""
        return self._const

    def coefficient(self, parameter: Parameter) -> float:
        """Coefficient of ``parameter`` (0.0 if absent)."""
        return self._coeffs.get(parameter, 0.0)

    def is_constant(self) -> bool:
        """True when no symbolic parameter remains."""
        return not self._coeffs

    def to_float(self) -> float:
        """The numeric value of a constant expression.

        Raises
        ------
        ParameterError
            If the expression still contains unbound parameters.
        """
        if self._coeffs:
            names = sorted(p.name for p in self._coeffs)
            raise ParameterError(f"expression still depends on parameters {names}")
        return self._const

    # -- binding -----------------------------------------------------------
    def bind(self, values: Mapping[Parameter, Number]) -> "ParameterExpression":
        """Substitute numeric values for (a subset of) parameters."""
        coeffs = dict(self._coeffs)
        const = self._const
        for param, value in values.items():
            if param in coeffs:
                const += coeffs.pop(param) * float(value)
        return ParameterExpression(coeffs, const)

    # -- arithmetic ----------------------------------------------------------
    @staticmethod
    def _coerce(value) -> "ParameterExpression":
        if isinstance(value, ParameterExpression):
            return value
        if isinstance(value, Parameter):
            return value._expr()
        if isinstance(value, (int, float)):
            return ParameterExpression({}, float(value))
        raise ParameterError(f"cannot use {type(value).__name__} in a parameter expression")

    def __add__(self, other):
        other = self._coerce(other)
        coeffs = dict(self._coeffs)
        for p, c in other._coeffs.items():
            coeffs[p] = coeffs.get(p, 0.0) + c
        return ParameterExpression(coeffs, self._const + other._const)

    __radd__ = __add__

    def __sub__(self, other):
        return self + (-self._coerce(other))

    def __rsub__(self, other):
        return (-self) + other

    def __neg__(self):
        return ParameterExpression({p: -c for p, c in self._coeffs.items()}, -self._const)

    def __mul__(self, scalar):
        if isinstance(scalar, (Parameter, ParameterExpression)):
            raise ParameterError("parameter expressions are linear; cannot multiply two of them")
        return ParameterExpression(
            {p: c * float(scalar) for p, c in self._coeffs.items()},
            self._const * float(scalar),
        )

    __rmul__ = __mul__

    def __truediv__(self, scalar):
        if isinstance(scalar, (Parameter, ParameterExpression)):
            raise ParameterError("cannot divide by a parameter expression")
        return self * (1.0 / float(scalar))

    # -- comparison / display ------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, float)):
            return self.is_constant() and math.isclose(self._const, float(other), abs_tol=1e-12)
        if isinstance(other, Parameter):
            other = other._expr()
        if isinstance(other, ParameterExpression):
            diff = self - other
            return diff.is_constant() and abs(diff._const) < 1e-12
        return NotImplemented

    def __hash__(self) -> int:
        items = tuple(sorted(((p.name, p.index, round(c, 12)) for p, c in self._coeffs.items())))
        return hash((items, round(self._const, 12)))

    def __repr__(self) -> str:
        return f"ParameterExpression({self})"

    def __str__(self) -> str:
        terms = []
        for p in sorted(self._coeffs):
            c = self._coeffs[p]
            if math.isclose(c, 1.0):
                terms.append(f"{p.name}")
            elif math.isclose(c, -1.0):
                terms.append(f"-{p.name}")
            else:
                terms.append(f"{c:g}*{p.name}")
        if self._const or not terms:
            terms.append(f"{self._const:g}")
        out = " + ".join(terms)
        return out.replace("+ -", "- ")


def parameter_value(angle) -> float:
    """Return the float value of ``angle`` (number or constant expression).

    Raises :class:`ParameterError` when the angle is still symbolic; used by
    code paths (matrix construction, pulse lookup) that require bound values.
    """
    if isinstance(angle, ParameterExpression):
        return angle.to_float()
    if isinstance(angle, Parameter):
        raise ParameterError(f"parameter {angle.name} is unbound")
    return float(angle)


def angle_parameters(angle) -> frozenset:
    """The set of :class:`Parameter` objects ``angle`` depends on."""
    if isinstance(angle, ParameterExpression):
        return angle.parameters
    if isinstance(angle, Parameter):
        return frozenset({angle})
    return frozenset()


def angle_token(angle) -> tuple:
    """A canonical, process-stable token for a gate angle.

    Content fingerprints hash these tokens, so two requirements shape the
    encoding: a symbolic angle is represented by its *skeleton* (which
    parameters appear, with what coefficients) rather than any bound value,
    and every numeric component is rendered via ``float.hex`` so the token
    is exact and independent of interpreter hash randomization.
    """
    if isinstance(angle, Parameter):
        return ("p", angle.name, angle.index)
    if isinstance(angle, ParameterExpression):
        coeffs = tuple(
            sorted(
                (p.name, p.index, float(c).hex())
                for p, c in angle._coeffs.items()
            )
        )
        return ("e", coeffs, float(angle._const).hex())
    return ("c", float(angle).hex())
