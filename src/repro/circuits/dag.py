"""Dependency-graph view of a circuit.

The DAG orders instructions by qubit data dependencies.  It backs the
ASAP scheduler (critical-path runtimes in paper Tables 2/3), the blocking
pass, and the slicing analyses.
"""

from __future__ import annotations

from typing import Callable

import networkx as nx

from repro.circuits.circuit import QuantumCircuit
from repro.config import GATE_DURATIONS_NS
from repro.errors import CircuitError


class CircuitDag:
    """Directed acyclic dependency graph over instruction indices.

    Node ``i`` is instruction ``circuit[i]``; an edge ``i -> j`` means ``j``
    uses a qubit last written by ``i``.
    """

    def __init__(self, circuit: QuantumCircuit):
        self.circuit = circuit
        self.graph = nx.DiGraph()
        last_on_qubit: dict[int, int] = {}
        for idx, inst in enumerate(circuit):
            self.graph.add_node(idx)
            for q in inst.qubits:
                if q in last_on_qubit:
                    self.graph.add_edge(last_on_qubit[q], idx)
                last_on_qubit[q] = idx

    def predecessors(self, idx: int):
        return self.graph.predecessors(idx)

    def successors(self, idx: int):
        return self.graph.successors(idx)

    def topological_order(self) -> list:
        return list(nx.topological_sort(self.graph))

    def layers(self) -> list:
        """ASAP layers: lists of instruction indices with equal logical depth."""
        level: dict[int, int] = {}
        for idx in self.topological_order():
            preds = list(self.graph.predecessors(idx))
            level[idx] = 1 + max((level[p] for p in preds), default=-1)
        out: list[list[int]] = []
        for idx, lv in sorted(level.items()):
            while len(out) <= lv:
                out.append([])
            out[lv].append(idx)
        return out

    def weighted_critical_path(self, weight: Callable[[int], float]) -> float:
        """Length of the longest path with node weights ``weight(idx)``."""
        finish: dict[int, float] = {}
        for idx in self.topological_order():
            start = max(
                (finish[p] for p in self.graph.predecessors(idx)), default=0.0
            )
            finish[idx] = start + weight(idx)
        return max(finish.values(), default=0.0)


def circuit_layers(circuit: QuantumCircuit) -> list:
    """ASAP instruction layers of ``circuit`` (lists of `Instruction`)."""
    dag = CircuitDag(circuit)
    return [[circuit[i] for i in layer] for layer in dag.layers()]


def critical_path_ns(circuit: QuantumCircuit) -> float:
    """Gate-based runtime of ``circuit`` in nanoseconds.

    This is the paper's "Gate-Based Runtime": the critical path through the
    parallel-scheduled circuit, with each gate weighted by its Table 1 pulse
    duration.
    """
    dag = CircuitDag(circuit)

    def weight(idx: int) -> float:
        name = circuit[idx].gate.name
        try:
            return GATE_DURATIONS_NS[name]
        except KeyError:
            raise CircuitError(f"no pulse duration for gate {name!r}") from None

    return dag.weighted_critical_path(weight)
