"""Quantum circuit intermediate representation.

A :class:`~repro.circuits.circuit.QuantumCircuit` is an ordered list of gate
applications on integer qubits.  Gate angles may be symbolic
:class:`~repro.circuits.parameters.Parameter` expressions; expressions are
linear forms, so transpiler rewrites such as ``θ → -θ/2`` preserve the
parameter tag — the property the paper's partial compilation relies on
("we resolve these latent dependencies by explicitly tagging the dependent
parameter in software").
"""

from repro.circuits.parameters import Parameter, ParameterExpression
from repro.circuits.gates import (
    Gate,
    CXGate,
    CZGate,
    HGate,
    IGate,
    ISwapGate,
    RXGate,
    RYGate,
    RZGate,
    RZZGate,
    SGate,
    SdgGate,
    SwapGate,
    TGate,
    TdgGate,
    XGate,
    YGate,
    ZGate,
    gate_from_name,
)
from repro.circuits.circuit import Instruction, QuantumCircuit
from repro.circuits.dag import CircuitDag, circuit_layers, critical_path_ns
from repro.circuits.library import ghz_circuit, random_circuit
from repro.circuits.qasm import from_qasm, to_qasm

__all__ = [
    "CXGate",
    "CZGate",
    "CircuitDag",
    "Gate",
    "HGate",
    "IGate",
    "ISwapGate",
    "Instruction",
    "Parameter",
    "ParameterExpression",
    "QuantumCircuit",
    "RXGate",
    "RYGate",
    "RZGate",
    "RZZGate",
    "SGate",
    "SdgGate",
    "SwapGate",
    "TGate",
    "TdgGate",
    "XGate",
    "YGate",
    "ZGate",
    "circuit_layers",
    "critical_path_ns",
    "from_qasm",
    "to_qasm",
    "gate_from_name",
    "ghz_circuit",
    "random_circuit",
]
