"""OpenQASM 2.0 export/import.

Interoperability with the wider toolchain (the paper's artifacts are Qiskit
circuits).  Export handles every library gate; import covers the subset the
exporter emits plus common aliases, including symbolic parameters spelled
as bare identifiers (``rz(theta_0) q[1];``).
"""

from __future__ import annotations

import math
import re

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import gate_from_name
from repro.circuits.parameters import Parameter, ParameterExpression
from repro.errors import CircuitError

_EXPORT_NAMES = {
    "id": "id",
    "x": "x",
    "y": "y",
    "z": "z",
    "h": "h",
    "s": "s",
    "sdg": "sdg",
    "t": "t",
    "tdg": "tdg",
    "rx": "rx",
    "ry": "ry",
    "rz": "rz",
    "cx": "cx",
    "cz": "cz",
    "swap": "swap",
    "iswap": "iswap",
    "rzz": "rzz",
}


def _format_angle(angle) -> str:
    if isinstance(angle, Parameter):
        return angle.name
    if isinstance(angle, ParameterExpression):
        if angle.is_constant():
            return f"{angle.to_float():.12g}"
        return str(angle).replace(" ", "")
    return f"{float(angle):.12g}"


def to_qasm(circuit: QuantumCircuit) -> str:
    """Serialize ``circuit`` to OpenQASM 2.0 text."""
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg q[{circuit.num_qubits}];",
    ]
    for inst in circuit:
        name = inst.gate.name
        if name not in _EXPORT_NAMES:
            raise CircuitError(f"gate {name!r} has no QASM export")
        qasm_name = _EXPORT_NAMES[name]
        qubits = ",".join(f"q[{q}]" for q in inst.qubits)
        if inst.gate.params:
            args = ",".join(_format_angle(p) for p in inst.gate.params)
            lines.append(f"{qasm_name}({args}) {qubits};")
        else:
            lines.append(f"{qasm_name} {qubits};")
    return "\n".join(lines) + "\n"


_GATE_LINE = re.compile(
    r"^(?P<name>[a-z_][a-z0-9_]*)\s*(?:\((?P<args>[^)]*)\))?\s*(?P<qubits>.+);$"
)
_QUBIT = re.compile(r"q\[(\d+)\]")

#: Constants and helpers allowed inside imported angle expressions.
_SAFE_EVAL_GLOBALS = {"pi": math.pi, "__builtins__": {}}


def _parse_angle(text: str, parameters: dict):
    text = text.strip()
    # Bare identifier or simple linear combination over identifiers.
    idents = set(re.findall(r"[A-Za-z_][A-Za-z_0-9]*", text)) - {"pi"}
    if not idents:
        try:
            return float(eval(text, dict(_SAFE_EVAL_GLOBALS)))  # noqa: S307
        except Exception as exc:
            raise CircuitError(f"cannot parse angle {text!r}") from exc
    env = dict(_SAFE_EVAL_GLOBALS)
    for name in idents:
        param = parameters.setdefault(name, Parameter(name))
        env[name] = ParameterExpression({param: 1.0}, 0.0)
    try:
        value = eval(text, env)  # noqa: S307
    except Exception as exc:
        raise CircuitError(f"cannot parse symbolic angle {text!r}") from exc
    return value


def from_qasm(text: str) -> QuantumCircuit:
    """Parse OpenQASM 2.0 text produced by :func:`to_qasm` (or compatible)."""
    circuit: QuantumCircuit | None = None
    parameters: dict = {}
    for raw in text.splitlines():
        line = raw.split("//")[0].strip()
        if not line:
            continue
        if line.startswith(("OPENQASM", "include")):
            continue
        if line.startswith("qreg"):
            match = re.match(r"qreg\s+q\[(\d+)\];", line)
            if not match:
                raise CircuitError(f"unsupported qreg declaration: {line!r}")
            circuit = QuantumCircuit(int(match.group(1)), name="qasm")
            continue
        if line.startswith(("creg", "barrier", "measure")):
            continue
        if circuit is None:
            raise CircuitError("gate before qreg declaration")
        match = _GATE_LINE.match(line)
        if not match:
            raise CircuitError(f"cannot parse line: {line!r}")
        name = match.group("name")
        qubits = tuple(int(q) for q in _QUBIT.findall(match.group("qubits")))
        params = []
        if match.group("args"):
            params = [
                _parse_angle(arg, parameters)
                for arg in match.group("args").split(",")
            ]
        circuit.append(gate_from_name(name, params), qubits)
    if circuit is None:
        raise CircuitError("no qreg declaration found")
    return circuit
