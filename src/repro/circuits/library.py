"""Small circuit constructors used by tests, examples, and benchmarks."""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import CXGate, HGate, RXGate, RZGate
from repro.errors import CircuitError


def ghz_circuit(num_qubits: int) -> QuantumCircuit:
    """H + CX ladder preparing the ``num_qubits``-qubit GHZ state."""
    if num_qubits < 2:
        raise CircuitError("GHZ needs at least 2 qubits")
    circuit = QuantumCircuit(num_qubits, name=f"ghz_{num_qubits}")
    circuit.h(0)
    for q in range(num_qubits - 1):
        circuit.cx(q, q + 1)
    return circuit


def random_circuit(
    num_qubits: int,
    num_gates: int,
    seed: int | None = None,
    two_qubit_fraction: float = 0.3,
) -> QuantumCircuit:
    """A seeded random circuit over {Rx, Rz, H, CX}.

    Useful as an arbitrary-but-reproducible workload for property tests and
    microbenchmarks; not a paper benchmark by itself.
    """
    if num_qubits < 1:
        raise CircuitError("need at least one qubit")
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits, name=f"random_{num_qubits}x{num_gates}")
    for _ in range(num_gates):
        if num_qubits >= 2 and rng.random() < two_qubit_fraction:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            circuit.append(CXGate(), (int(a), int(b)))
        else:
            q = int(rng.integers(num_qubits))
            choice = rng.integers(3)
            if choice == 0:
                circuit.append(RXGate(float(rng.uniform(0, 2 * np.pi))), (q,))
            elif choice == 1:
                circuit.append(RZGate(float(rng.uniform(0, 2 * np.pi))), (q,))
            else:
                circuit.append(HGate(), (q,))
    return circuit
