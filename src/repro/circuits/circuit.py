"""The :class:`QuantumCircuit` container.

A circuit is an ordered sequence of :class:`Instruction` (gate + qubit
tuple) on ``num_qubits`` qubits.  It supports the operations the transpiler
and the partial-compilation engines need: appending, composing, inverting,
parameter binding, structural queries (depth, op counts, parameter order),
and slicing by instruction index.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro.circuits.gates import (
    CXGate,
    CZGate,
    Gate,
    HGate,
    IGate,
    ISwapGate,
    RXGate,
    RYGate,
    RZGate,
    RZZGate,
    SGate,
    SdgGate,
    SwapGate,
    TGate,
    TdgGate,
    XGate,
    YGate,
    ZGate,
)
from repro.circuits.parameters import Parameter, angle_token
from repro.errors import CircuitError


@dataclass(frozen=True)
class Instruction:
    """A gate applied to a specific tuple of qubits."""

    gate: Gate
    qubits: tuple

    def __post_init__(self):
        if len(self.qubits) != self.gate.num_qubits:
            raise CircuitError(
                f"gate {self.gate.name} acts on {self.gate.num_qubits} qubits, "
                f"got {len(self.qubits)}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise CircuitError(f"duplicate qubits in {self.qubits}")

    @property
    def parameters(self) -> frozenset:
        return self.gate.parameters

    def __repr__(self) -> str:
        return f"{self.gate!r} @ {list(self.qubits)}"


class QuantumCircuit:
    """An ordered list of gate applications on ``num_qubits`` qubits."""

    def __init__(self, num_qubits: int, name: str = "circuit"):
        if num_qubits < 1:
            raise CircuitError(f"circuit needs at least one qubit, got {num_qubits}")
        self.num_qubits = num_qubits
        self.name = name
        self._instructions: list[Instruction] = []

    # -- construction --------------------------------------------------------
    def append(self, gate: Gate, qubits: Sequence[int]) -> "QuantumCircuit":
        """Append ``gate`` on ``qubits``; returns self for chaining."""
        qubits = tuple(int(q) for q in qubits)
        for q in qubits:
            if q < 0 or q >= self.num_qubits:
                raise CircuitError(f"qubit {q} out of range for width {self.num_qubits}")
        self._instructions.append(Instruction(gate, qubits))
        return self

    # Convenience constructors for the gate library.
    def i(self, q: int):
        return self.append(IGate(), (q,))

    def x(self, q: int):
        return self.append(XGate(), (q,))

    def y(self, q: int):
        return self.append(YGate(), (q,))

    def z(self, q: int):
        return self.append(ZGate(), (q,))

    def h(self, q: int):
        return self.append(HGate(), (q,))

    def s(self, q: int):
        return self.append(SGate(), (q,))

    def sdg(self, q: int):
        return self.append(SdgGate(), (q,))

    def t(self, q: int):
        return self.append(TGate(), (q,))

    def tdg(self, q: int):
        return self.append(TdgGate(), (q,))

    def rx(self, theta, q: int):
        return self.append(RXGate(theta), (q,))

    def ry(self, theta, q: int):
        return self.append(RYGate(theta), (q,))

    def rz(self, phi, q: int):
        return self.append(RZGate(phi), (q,))

    def cx(self, control: int, target: int):
        return self.append(CXGate(), (control, target))

    def cz(self, a: int, b: int):
        return self.append(CZGate(), (a, b))

    def swap(self, a: int, b: int):
        return self.append(SwapGate(), (a, b))

    def iswap(self, a: int, b: int):
        return self.append(ISwapGate(), (a, b))

    def rzz(self, theta, a: int, b: int):
        return self.append(RZZGate(theta), (a, b))

    # -- container protocol ---------------------------------------------------
    @property
    def instructions(self) -> tuple:
        return tuple(self._instructions)

    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __getitem__(self, index):
        if isinstance(index, slice):
            sub = QuantumCircuit(self.num_qubits, name=f"{self.name}[{index}]")
            for inst in self._instructions[index]:
                sub.append(inst.gate, inst.qubits)
            return sub
        return self._instructions[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantumCircuit):
            return NotImplemented
        return (
            self.num_qubits == other.num_qubits
            and len(self) == len(other)
            and all(
                a.gate == b.gate and a.qubits == b.qubits
                for a, b in zip(self._instructions, other._instructions)
            )
        )

    def __repr__(self) -> str:
        return (
            f"QuantumCircuit(name={self.name!r}, qubits={self.num_qubits}, "
            f"gates={len(self)})"
        )

    # -- structural queries ----------------------------------------------------
    @property
    def parameters(self) -> tuple:
        """Symbolic parameters in index order (θ_0, θ_1, …)."""
        seen: set = set()
        for inst in self._instructions:
            seen |= inst.parameters
        return tuple(sorted(seen))

    def is_parameterized(self) -> bool:
        return any(inst.parameters for inst in self._instructions)

    def count_ops(self) -> dict:
        """Histogram of gate names."""
        counts: dict = {}
        for inst in self._instructions:
            counts[inst.gate.name] = counts.get(inst.gate.name, 0) + 1
        return counts

    def depth(self) -> int:
        """Number of parallel layers (unit-duration critical path)."""
        frontier = [0] * self.num_qubits
        for inst in self._instructions:
            level = max(frontier[q] for q in inst.qubits) + 1
            for q in inst.qubits:
                frontier[q] = level
        return max(frontier, default=0)

    def active_qubits(self) -> tuple:
        """Sorted tuple of qubits touched by at least one gate."""
        used: set = set()
        for inst in self._instructions:
            used.update(inst.qubits)
        return tuple(sorted(used))

    def content_fingerprint(self) -> str:
        """A structural content hash of this circuit.

        The digest covers the circuit width and, per instruction, the gate
        name, qubit tuple, and the canonical token of each angle
        (:func:`repro.circuits.parameters.angle_token`): numeric angles by
        exact value, symbolic angles by their parameter skeleton.  Two
        consequences matter for content-addressed caching: every binding of
        one symbolic ansatz shares the ansatz's fingerprint (the plan cache
        keys on the pre-binding circuit), and circuits that differ in any
        gate, qubit, or angle get distinct keys.  The digest is independent
        of the circuit ``name``, interpreter hash randomization, and
        pickling, so it is safe to key on-disk state.
        """
        items = [("width", self.num_qubits)]
        for inst in self._instructions:
            items.append(
                (
                    inst.gate.name,
                    inst.qubits,
                    tuple(angle_token(p) for p in inst.gate.params),
                )
            )
        payload = repr(items).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()

    # -- transformations --------------------------------------------------------
    def copy(self, name: str | None = None) -> "QuantumCircuit":
        out = QuantumCircuit(self.num_qubits, name=name or self.name)
        out._instructions = list(self._instructions)
        return out

    def compose(self, other: "QuantumCircuit", qubits: Sequence[int] | None = None) -> "QuantumCircuit":
        """Return self followed by ``other``.

        ``qubits`` maps ``other``'s qubit ``k`` to ``qubits[k]`` of self;
        identity mapping by default (then widths must agree).
        """
        if qubits is None:
            if other.num_qubits > self.num_qubits:
                raise CircuitError(
                    f"cannot compose width {other.num_qubits} onto width {self.num_qubits}"
                )
            mapping = list(range(other.num_qubits))
        else:
            mapping = list(qubits)
            if len(mapping) != other.num_qubits:
                raise CircuitError(
                    f"mapping length {len(mapping)} != other width {other.num_qubits}"
                )
        out = self.copy()
        for inst in other:
            out.append(inst.gate, tuple(mapping[q] for q in inst.qubits))
        return out

    def inverse(self) -> "QuantumCircuit":
        """The inverse circuit (reversed order, inverted gates)."""
        out = QuantumCircuit(self.num_qubits, name=f"{self.name}_dg")
        for inst in reversed(self._instructions):
            out.append(inst.gate.inverse(), inst.qubits)
        return out

    def bind_parameters(self, values) -> "QuantumCircuit":
        """Substitute numeric values for symbolic parameters.

        ``values`` may be a mapping ``{Parameter: float}`` or a sequence of
        floats matched to :attr:`parameters` in index order.
        """
        if not isinstance(values, Mapping):
            params = self.parameters
            values = list(values)
            if len(values) != len(params):
                raise CircuitError(
                    f"circuit has {len(params)} parameters, got {len(values)} values"
                )
            values = dict(zip(params, values))
        out = QuantumCircuit(self.num_qubits, name=self.name)
        for inst in self._instructions:
            gate = inst.gate.bind(values) if inst.parameters else inst.gate
            out.append(gate, inst.qubits)
        return out

    def remap_qubits(self, mapping: Mapping[int, int], num_qubits: int | None = None) -> "QuantumCircuit":
        """Relabel qubits through ``mapping`` (must cover all active qubits)."""
        width = num_qubits if num_qubits is not None else self.num_qubits
        out = QuantumCircuit(width, name=self.name)
        for inst in self._instructions:
            try:
                new_qubits = tuple(mapping[q] for q in inst.qubits)
            except KeyError as exc:
                raise CircuitError(f"qubit {exc.args[0]} missing from mapping") from None
            out.append(inst.gate, new_qubits)
        return out

    def sub_circuit(self, indices: Iterable[int]) -> "QuantumCircuit":
        """Circuit containing the instructions at ``indices`` (in that order)."""
        out = QuantumCircuit(self.num_qubits, name=f"{self.name}_sub")
        for i in indices:
            inst = self._instructions[i]
            out.append(inst.gate, inst.qubits)
        return out

    # -- display ------------------------------------------------------------
    def draw(self) -> str:
        """A compact one-gate-per-line text rendering."""
        lines = [f"{self.name} ({self.num_qubits} qubits, {len(self)} gates)"]
        for inst in self._instructions:
            lines.append(f"  {inst!r}")
        return "\n".join(lines)
