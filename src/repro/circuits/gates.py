"""Gate library.

Conventions:

* Matrices are big-endian (qubit 0 = most significant bit), so ``CXGate``
  is the textbook matrix controlled on the first qubit.
* ``Rx(θ) = exp(-i θ X / 2)``, ``Rz(φ) = exp(-i φ Z / 2)``.  The paper writes
  these up to a global phase (its ``Rx`` is ``i·exp(-iθX/2)`` and its ``Rz``
  is ``e^{iφ/2} exp(-iφZ/2)``); all fidelity measures in this library are
  phase-insensitive, so the convention difference is unobservable.
* Gate durations (``duration_ns``) are indexed to the paper's Table 1.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.circuits.parameters import (
    Parameter,
    ParameterExpression,
    angle_parameters,
    parameter_value,
)
from repro.config import GATE_DURATIONS_NS
from repro.errors import CircuitError


class Gate:
    """An abstract quantum gate.

    Subclasses define ``name``, ``num_qubits`` and, for fixed angles, a
    concrete matrix.  Parameterized gates accept numbers, `Parameter`s or
    `ParameterExpression`s as angles.
    """

    name: str = "gate"
    num_qubits: int = 1

    def __init__(self, *params):
        self.params = tuple(params)

    # -- symbolic-parameter support ---------------------------------------
    @property
    def parameters(self) -> frozenset:
        """All symbolic parameters appearing in this gate's angles."""
        out: frozenset = frozenset()
        for p in self.params:
            out = out | angle_parameters(p)
        return out

    def is_parameterized(self) -> bool:
        """True when any angle still contains a symbolic parameter."""
        return bool(self.parameters)

    def bind(self, values) -> "Gate":
        """Return a copy with parameter ``values`` substituted into angles."""
        new_params = []
        for p in self.params:
            if isinstance(p, Parameter):
                p = ParameterExpression({p: 1.0}, 0.0)
            if isinstance(p, ParameterExpression):
                bound = p.bind(values)
                new_params.append(bound.to_float() if bound.is_constant() else bound)
            else:
                new_params.append(p)
        return type(self)(*new_params)

    # -- numerics ----------------------------------------------------------
    def matrix(self) -> np.ndarray:
        """The gate's unitary matrix.  Raises for unbound parameters."""
        raise NotImplementedError

    def inverse(self) -> "Gate":
        """The inverse gate (as a library gate, not a raw matrix)."""
        raise NotImplementedError

    @property
    def duration_ns(self) -> float:
        """Pulse duration under gate-based compilation (paper Table 1)."""
        try:
            return GATE_DURATIONS_NS[self.name]
        except KeyError:
            raise CircuitError(f"no pulse duration registered for gate {self.name!r}") from None

    # -- plumbing -----------------------------------------------------------
    def _angle(self, idx: int = 0) -> float:
        return parameter_value(self.params[idx])

    def __repr__(self) -> str:
        if self.params:
            inner = ", ".join(str(p) for p in self.params)
            return f"{self.name}({inner})"
        return self.name

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Gate):
            return NotImplemented
        if self.name != other.name or len(self.params) != len(other.params):
            return False
        for a, b in zip(self.params, other.params):
            sym_a = isinstance(a, (Parameter, ParameterExpression))
            sym_b = isinstance(b, (Parameter, ParameterExpression))
            if sym_a or sym_b:
                ea = ParameterExpression._coerce(a)
                if ea != ParameterExpression._coerce(b):
                    return False
            elif not math.isclose(float(a), float(b), abs_tol=1e-12):
                return False
        return True

    def __hash__(self) -> int:
        return hash((self.name, len(self.params)))


# ---------------------------------------------------------------------------
# Fixed single-qubit gates
# ---------------------------------------------------------------------------


class IGate(Gate):
    """Identity gate."""

    name = "id"

    def matrix(self) -> np.ndarray:
        return np.eye(2, dtype=complex)

    def inverse(self) -> Gate:
        return IGate()


class XGate(Gate):
    """Pauli X (bit flip)."""

    name = "x"

    def matrix(self) -> np.ndarray:
        return np.array([[0, 1], [1, 0]], dtype=complex)

    def inverse(self) -> Gate:
        return XGate()


class YGate(Gate):
    """Pauli Y."""

    name = "y"

    def matrix(self) -> np.ndarray:
        return np.array([[0, -1j], [1j, 0]], dtype=complex)

    def inverse(self) -> Gate:
        return YGate()


class ZGate(Gate):
    """Pauli Z (phase flip)."""

    name = "z"

    def matrix(self) -> np.ndarray:
        return np.array([[1, 0], [0, -1]], dtype=complex)

    def inverse(self) -> Gate:
        return ZGate()


class HGate(Gate):
    """Hadamard gate."""

    name = "h"

    def matrix(self) -> np.ndarray:
        return np.array([[1, 1], [1, -1]], dtype=complex) / math.sqrt(2)

    def inverse(self) -> Gate:
        return HGate()


class SGate(Gate):
    """Phase gate S = sqrt(Z)."""

    name = "s"

    def matrix(self) -> np.ndarray:
        return np.array([[1, 0], [0, 1j]], dtype=complex)

    def inverse(self) -> Gate:
        return SdgGate()


class SdgGate(Gate):
    """Inverse phase gate S†."""

    name = "sdg"

    def matrix(self) -> np.ndarray:
        return np.array([[1, 0], [0, -1j]], dtype=complex)

    def inverse(self) -> Gate:
        return SGate()


class TGate(Gate):
    """T gate (π/8 gate)."""

    name = "t"

    def matrix(self) -> np.ndarray:
        return np.array([[1, 0], [0, np.exp(1j * math.pi / 4)]], dtype=complex)

    def inverse(self) -> Gate:
        return TdgGate()


class TdgGate(Gate):
    """Inverse T gate."""

    name = "tdg"

    def matrix(self) -> np.ndarray:
        return np.array([[1, 0], [0, np.exp(-1j * math.pi / 4)]], dtype=complex)

    def inverse(self) -> Gate:
        return TGate()


# ---------------------------------------------------------------------------
# Parameterized rotations
# ---------------------------------------------------------------------------


class RXGate(Gate):
    """X-axis rotation ``exp(-i θ X / 2)``."""

    name = "rx"

    def __init__(self, theta):
        super().__init__(theta)

    def matrix(self) -> np.ndarray:
        theta = self._angle()
        c, s = math.cos(theta / 2), math.sin(theta / 2)
        return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)

    def inverse(self) -> Gate:
        return RXGate(-self.params[0])


class RYGate(Gate):
    """Y-axis rotation ``exp(-i θ Y / 2)``."""

    name = "ry"

    def __init__(self, theta):
        super().__init__(theta)

    def matrix(self) -> np.ndarray:
        theta = self._angle()
        c, s = math.cos(theta / 2), math.sin(theta / 2)
        return np.array([[c, -s], [s, c]], dtype=complex)

    def inverse(self) -> Gate:
        return RYGate(-self.params[0])


class RZGate(Gate):
    """Z-axis rotation ``exp(-i φ Z / 2)``.

    This is the gate partial compilation leaves unfused: in the benchmark
    circuits every parameter-dependent gate is (rewritten to) an ``Rz``.
    """

    name = "rz"

    def __init__(self, phi):
        super().__init__(phi)

    def matrix(self) -> np.ndarray:
        phi = self._angle()
        return np.array(
            [[np.exp(-1j * phi / 2), 0], [0, np.exp(1j * phi / 2)]], dtype=complex
        )

    def inverse(self) -> Gate:
        return RZGate(-self.params[0])


# ---------------------------------------------------------------------------
# Two-qubit gates
# ---------------------------------------------------------------------------


class CXGate(Gate):
    """Controlled-NOT, control = first qubit."""

    name = "cx"
    num_qubits = 2

    def matrix(self) -> np.ndarray:
        return np.array(
            [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
        )

    def inverse(self) -> Gate:
        return CXGate()


class CZGate(Gate):
    """Controlled-Z (symmetric in its qubits)."""

    name = "cz"
    num_qubits = 2

    def matrix(self) -> np.ndarray:
        return np.diag([1, 1, 1, -1]).astype(complex)

    def inverse(self) -> Gate:
        return CZGate()


class SwapGate(Gate):
    """SWAP gate."""

    name = "swap"
    num_qubits = 2

    def matrix(self) -> np.ndarray:
        return np.array(
            [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
        )

    def inverse(self) -> Gate:
        return SwapGate()


class ISwapGate(Gate):
    """iSWAP gate — the native two-qubit interaction of the gmon coupler."""

    name = "iswap"
    num_qubits = 2

    def matrix(self) -> np.ndarray:
        return np.array(
            [[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]], dtype=complex
        )

    def inverse(self) -> Gate:
        # iSWAP† = iSWAP³ up to phase; represent directly via matrix-less
        # composite is avoided by using RZZ-style closure: iSWAP^-1 has
        # matrix with -i entries, i.e. three applications. Returning a
        # dedicated dagger keeps circuits invertible.
        return _ISwapDgGate()


class _ISwapDgGate(Gate):
    """Inverse iSWAP (internal; produced only by ``ISwapGate.inverse``)."""

    name = "iswap_dg"
    num_qubits = 2

    def matrix(self) -> np.ndarray:
        return np.array(
            [[1, 0, 0, 0], [0, 0, -1j, 0], [0, -1j, 0, 0], [0, 0, 0, 1]], dtype=complex
        )

    def inverse(self) -> Gate:
        return ISwapGate()

    @property
    def duration_ns(self) -> float:
        return GATE_DURATIONS_NS["iswap"]


class RZZGate(Gate):
    """Two-qubit ZZ rotation ``exp(-i θ Z⊗Z / 2)`` (QAOA cost unitary)."""

    name = "rzz"
    num_qubits = 2

    def __init__(self, theta):
        super().__init__(theta)

    def matrix(self) -> np.ndarray:
        theta = self._angle()
        phase = np.exp(-1j * theta / 2)
        return np.diag([phase, phase.conjugate(), phase.conjugate(), phase]).astype(complex)

    def inverse(self) -> Gate:
        return RZZGate(-self.params[0])


_GATE_CLASSES = {
    cls.name: cls
    for cls in (
        IGate,
        XGate,
        YGate,
        ZGate,
        HGate,
        SGate,
        SdgGate,
        TGate,
        TdgGate,
        RXGate,
        RYGate,
        RZGate,
        CXGate,
        CZGate,
        SwapGate,
        ISwapGate,
        RZZGate,
    )
}


def gate_from_name(name: str, params: Sequence = ()) -> Gate:
    """Instantiate a library gate by its lowercase name."""
    try:
        cls = _GATE_CLASSES[name.lower()]
    except KeyError:
        raise CircuitError(f"unknown gate {name!r}") from None
    return cls(*params)
