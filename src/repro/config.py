"""Global configuration for the reproduction.

The paper's experiments consumed over 200,000 CPU-core-hours; this
reproduction must run on a laptop.  The :class:`Preset` mechanism scales the
GRAPE workload (time resolution, iteration budget, block width) while keeping
the algorithms identical.  Every knob the presets control is also exposed as
an explicit argument on the relevant API, so presets are a convenience, not a
hidden dependency.

Presets
-------
``ci``
    Default.  Coarse 0.2 ns time steps, modest iteration budgets, 2-3 qubit
    blocks.  The full benchmark suite completes in minutes.
``paper``
    The paper's settings: 0.05 ns steps, 99.9 % fidelity target, 4-qubit
    blocks, generous iteration budgets.  Hours of compute.

Select a preset with the ``REPRO_PRESET`` environment variable or
:func:`set_preset`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import ReproError

#: Basis-gate pulse durations in nanoseconds (paper Table 1).  Gate-based
#: compilation runtimes throughout the library are indexed to these values.
GATE_DURATIONS_NS = {
    "rz": 0.4,
    "rx": 2.5,
    "ry": 2.9,  # Rz(pi/2)-Rx(theta)-Rz(-pi/2): 0.4 + 2.5 (Rz pair merged once scheduled)
    "h": 1.4,
    "x": 2.5,
    "y": 2.9,
    "z": 0.4,
    "s": 0.4,
    "sdg": 0.4,
    "t": 0.4,
    "tdg": 0.4,
    "cx": 3.8,
    "cz": 3.8,
    "swap": 7.4,
    "iswap": 5.0,
    "rzz": 4.6,  # CX-Rz-CX with the Rz absorbed into the echo
    "measure": 0.0,
    "barrier": 0.0,
    "id": 0.0,
}

#: GRAPE convergence target used by the paper: 99.9 % gate fidelity.
TARGET_FIDELITY = 0.999

#: Precision of the binary search for minimum pulse time (paper section 5.3).
TIME_SEARCH_PRECISION_NS = 0.3


@dataclass(frozen=True)
class Preset:
    """A bundle of workload-scaling knobs for GRAPE-heavy code paths.

    Attributes
    ----------
    name:
        Preset identifier (``"ci"`` or ``"paper"``).
    dt_ns:
        Width of each piecewise-constant control slice, in nanoseconds.
    max_iterations:
        ADAM iteration budget per GRAPE run.
    max_block_qubits:
        Maximum width of a GRAPE block produced by circuit aggregation.
    target_fidelity:
        Fidelity at which a GRAPE run is declared converged.
    time_search_precision_ns:
        Binary-search precision for the minimum-time search.
    """

    name: str
    dt_ns: float
    max_iterations: int
    max_block_qubits: int
    target_fidelity: float
    time_search_precision_ns: float


_PRESETS = {
    "ci": Preset(
        name="ci",
        dt_ns=0.2,
        max_iterations=300,
        max_block_qubits=3,
        target_fidelity=0.995,
        time_search_precision_ns=0.5,
    ),
    "paper": Preset(
        name="paper",
        dt_ns=0.05,
        max_iterations=3000,
        max_block_qubits=4,
        target_fidelity=TARGET_FIDELITY,
        time_search_precision_ns=TIME_SEARCH_PRECISION_NS,
    ),
}

_active_preset_name = os.environ.get("REPRO_PRESET", "ci")


def available_presets() -> tuple:
    """Return the names of all registered presets."""
    return tuple(sorted(_PRESETS))


def get_preset(name: str | None = None) -> Preset:
    """Return the preset called ``name``, or the active preset if ``None``."""
    key = _active_preset_name if name is None else name
    try:
        return _PRESETS[key]
    except KeyError:
        raise ReproError(
            f"unknown preset {key!r}; available: {available_presets()}"
        ) from None


def set_preset(name: str) -> Preset:
    """Make ``name`` the active preset and return it."""
    global _active_preset_name
    preset = get_preset(name)
    _active_preset_name = preset.name
    return preset
