"""Global configuration for the reproduction.

The paper's experiments consumed over 200,000 CPU-core-hours; this
reproduction must run on a laptop.  The :class:`Preset` mechanism scales the
GRAPE workload (time resolution, iteration budget, block width) while keeping
the algorithms identical.  Every knob the presets control is also exposed as
an explicit argument on the relevant API, so presets are a convenience, not a
hidden dependency.

Presets
-------
``ci``
    Default.  Coarse 0.2 ns time steps, modest iteration budgets, 2-3 qubit
    blocks.  The full benchmark suite completes in minutes.
``paper``
    The paper's settings: 0.05 ns steps, 99.9 % fidelity target, 4-qubit
    blocks, generous iteration budgets.  Hours of compute.

Select a preset with the ``REPRO_PRESET`` environment variable or
:func:`set_preset`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.service.config import (  # re-exported for backwards compatibility
    CACHE_SHARD_CHOICES,
    EXECUTOR_CHOICES,
    ServiceConfig,
)

#: Basis-gate pulse durations in nanoseconds (paper Table 1).  Gate-based
#: compilation runtimes throughout the library are indexed to these values.
GATE_DURATIONS_NS = {
    "rz": 0.4,
    "rx": 2.5,
    "ry": 2.9,  # Rz(pi/2)-Rx(theta)-Rz(-pi/2): 0.4 + 2.5 (Rz pair merged once scheduled)
    "h": 1.4,
    "x": 2.5,
    "y": 2.9,
    "z": 0.4,
    "s": 0.4,
    "sdg": 0.4,
    "t": 0.4,
    "tdg": 0.4,
    "cx": 3.8,
    "cz": 3.8,
    "swap": 7.4,
    "iswap": 5.0,
    "rzz": 4.6,  # CX-Rz-CX with the Rz absorbed into the echo
    "measure": 0.0,
    "barrier": 0.0,
    "id": 0.0,
}

#: GRAPE convergence target used by the paper: 99.9 % gate fidelity.
TARGET_FIDELITY = 0.999

#: Precision of the binary search for minimum pulse time (paper section 5.3).
TIME_SEARCH_PRECISION_NS = 0.3


@dataclass(frozen=True)
class Preset:
    """A bundle of workload-scaling knobs for GRAPE-heavy code paths.

    Attributes
    ----------
    name:
        Preset identifier (``"ci"`` or ``"paper"``).
    dt_ns:
        Width of each piecewise-constant control slice, in nanoseconds.
    max_iterations:
        ADAM iteration budget per GRAPE run.
    max_block_qubits:
        Maximum width of a GRAPE block produced by circuit aggregation.
    target_fidelity:
        Fidelity at which a GRAPE run is declared converged.
    time_search_precision_ns:
        Binary-search precision for the minimum-time search.
    """

    name: str
    dt_ns: float
    max_iterations: int
    max_block_qubits: int
    target_fidelity: float
    time_search_precision_ns: float


_PRESETS = {
    "ci": Preset(
        name="ci",
        dt_ns=0.2,
        max_iterations=300,
        max_block_qubits=3,
        target_fidelity=0.995,
        time_search_precision_ns=0.5,
    ),
    "paper": Preset(
        name="paper",
        dt_ns=0.05,
        max_iterations=3000,
        max_block_qubits=4,
        target_fidelity=TARGET_FIDELITY,
        time_search_precision_ns=TIME_SEARCH_PRECISION_NS,
    ),
}

# All REPRO_* environment reading routes through ServiceConfig.from_env();
# one import-time resolution seeds both the preset and the pipeline config.
_env_config = ServiceConfig.from_env()

_active_preset_name = _env_config.preset


def available_presets() -> tuple:
    """Return the names of all registered presets."""
    return tuple(sorted(_PRESETS))


def get_preset(name: str | None = None) -> Preset:
    """Return the preset called ``name``, or the active preset if ``None``."""
    key = _active_preset_name if name is None else name
    try:
        return _PRESETS[key]
    except KeyError:
        raise ReproError(
            f"unknown preset {key!r}; available: {available_presets()}"
        ) from None


def set_preset(name: str) -> Preset:
    """Make ``name`` the active preset and return it."""
    global _active_preset_name
    preset = get_preset(name)
    _active_preset_name = preset.name
    return preset


@dataclass(frozen=True)
class PipelineConfig:
    """Execution settings for the :mod:`repro.pipeline` subsystem.

    Attributes
    ----------
    executor:
        How independent per-block GRAPE searches are dispatched:
        ``"auto"`` (default) picks per host — inline execution plus
        cross-block batched GRAPE on 1–2 CPU machines, the shared thread
        pool for large maps elsewhere — or force ``"serial"``,
        ``"thread"`` (ThreadPoolExecutor), ``"process"``
        (ProcessPoolExecutor; pair it with ``cache_dir`` so worker results
        persist across processes), or the ``"thread-persistent"`` /
        ``"process-persistent"`` variants that amortize one long-lived
        pool across every map of a pipeline run.
    max_workers:
        Worker count for the parallel executors; ``None`` means
        ``os.cpu_count()``.
    cache_dir:
        Directory for the persistent pulse cache.  ``None`` keeps the cache
        purely in memory (the seed behavior); a path makes every GRAPE
        result durable across processes and sessions.
    cache_shards:
        Shard fan-out of the on-disk pulse library (``REPRO_CACHE_SHARDS``).
        Must be a whole hex-prefix count — 16, 256, or 4096 — because
        entries shard by the leading characters of their unitary
        fingerprint.  Only consulted when a *new* library is created; an
        existing directory keeps the layout recorded in its
        ``library.json``.
    cache_budget_mb:
        Default size budget for :meth:`repro.library.PulseLibrary.gc`
        (``REPRO_CACHE_BUDGET_MB``).  ``None`` means unbounded: ``gc`` only
        reconciles the index and never evicts.
    prefetch:
        Manifest-aware shard prefetch for the on-disk pulse library
        (``REPRO_PREFETCH``).  When enabled, the first lookup touching a
        shard bulk-loads every manifest-listed entry into memory, so
        long-lived sessions streaming over a warm library pay one
        sequential sweep per shard instead of one file open per lookup.
        Off by default (the seed behavior).
    grape_batch:
        Whether the batch scheduler may stack same-shape cold blocks into
        the cross-block batched GRAPE kernel when the executor runs tasks
        inline (``REPRO_GRAPE_BATCH``).  Bit-identical results either way.
    grape_batch_size:
        Cap on blocks per batched GRAPE group (``REPRO_GRAPE_BATCH_SIZE``).
    warm_start:
        Whether cache-missing blocks warm-start GRAPE from the nearest
        cached pulse, or from the analytic KAK seed for seedless
        two-qubit blocks (``REPRO_WARM_START``).  Guarded best-of against
        the cold start, so disabling it only changes iteration counts.
    warm_start_max_dist:
        Neighbor-acceptance threshold for approximate-match retrieval
        (``REPRO_WARM_START_MAX_DIST``), a phase-invariant trace distance
        in ``(0, 1]``.
    scan_block:
        Fixed chunk length for the blocked propagator scan
        (``REPRO_SCAN_BLOCK``); ``None`` keeps the ``≈√n_steps``
        auto heuristic of :func:`repro.linalg.scan.scan_block_size`.
    """

    executor: str = "auto"
    max_workers: int | None = None
    cache_dir: str | None = None
    cache_shards: int = 16
    cache_budget_mb: float | None = None
    prefetch: bool = False
    grape_batch: bool = True
    grape_batch_size: int = 16
    warm_start: bool = True
    warm_start_max_dist: float = 0.25
    scan_block: int | None = None

    def __post_init__(self):
        if self.executor not in EXECUTOR_CHOICES:
            raise ReproError(
                f"unknown executor {self.executor!r}; available: {EXECUTOR_CHOICES}"
            )
        if self.max_workers is not None and self.max_workers < 1:
            raise ReproError(f"max_workers must be >= 1, got {self.max_workers}")
        if self.cache_shards not in CACHE_SHARD_CHOICES:
            raise ReproError(
                f"cache_shards must be one of {CACHE_SHARD_CHOICES}, "
                f"got {self.cache_shards}"
            )
        if self.cache_budget_mb is not None and self.cache_budget_mb <= 0:
            raise ReproError(
                f"cache_budget_mb must be positive, got {self.cache_budget_mb}"
            )
        if self.grape_batch_size < 1:
            raise ReproError(
                f"grape_batch_size must be >= 1, got {self.grape_batch_size}"
            )
        if not 0.0 < self.warm_start_max_dist <= 1.0:
            raise ReproError(
                "warm_start_max_dist must be in (0, 1], "
                f"got {self.warm_start_max_dist}"
            )
        if self.scan_block is not None and self.scan_block < 1:
            raise ReproError(
                f"scan_block must be >= 1, got {self.scan_block}"
            )


def _pipeline_config_of(service_config: ServiceConfig) -> PipelineConfig:
    """Project the pipeline-relevant fields out of a service config."""
    return PipelineConfig(
        executor=service_config.executor,
        max_workers=service_config.max_workers,
        cache_dir=service_config.cache_dir,
        cache_shards=service_config.cache_shards,
        cache_budget_mb=service_config.cache_budget_mb,
        prefetch=service_config.prefetch,
        grape_batch=service_config.grape_batch,
        grape_batch_size=service_config.grape_batch_size,
        warm_start=service_config.warm_start,
        warm_start_max_dist=service_config.warm_start_max_dist,
        scan_block=service_config.scan_block,
    )


def _pipeline_config_from_env() -> PipelineConfig:
    """Read pipeline settings from the environment, tolerantly.

    A compatibility wrapper over :meth:`ServiceConfig.from_env` — the one
    supported env-reading path — kept because it predates the service
    config.  Malformed values fall back to defaults with a warning instead
    of raising (this used to run at import time and still must not make
    ``import repro`` crash).
    """
    return _pipeline_config_of(ServiceConfig.from_env())


_pipeline_config = _pipeline_config_of(_env_config)

#: Sentinel distinguishing "not passed" from an explicit ``None``.
_UNSET = object()


def get_pipeline_config() -> PipelineConfig:
    """The active pipeline execution settings."""
    return _pipeline_config


def set_pipeline_config(
    executor=_UNSET,
    max_workers=_UNSET,
    cache_dir=_UNSET,
    cache_shards=_UNSET,
    cache_budget_mb=_UNSET,
    prefetch=_UNSET,
    grape_batch=_UNSET,
    grape_batch_size=_UNSET,
    warm_start=_UNSET,
    warm_start_max_dist=_UNSET,
    scan_block=_UNSET,
) -> PipelineConfig:
    """Update the active pipeline settings (unpassed fields keep their value)."""
    global _pipeline_config
    current = _pipeline_config
    _pipeline_config = PipelineConfig(
        executor=current.executor if executor is _UNSET else executor,
        max_workers=current.max_workers if max_workers is _UNSET else max_workers,
        cache_dir=current.cache_dir if cache_dir is _UNSET else cache_dir,
        cache_shards=current.cache_shards if cache_shards is _UNSET else cache_shards,
        cache_budget_mb=(
            current.cache_budget_mb if cache_budget_mb is _UNSET else cache_budget_mb
        ),
        prefetch=current.prefetch if prefetch is _UNSET else prefetch,
        grape_batch=current.grape_batch if grape_batch is _UNSET else grape_batch,
        grape_batch_size=(
            current.grape_batch_size
            if grape_batch_size is _UNSET
            else grape_batch_size
        ),
        warm_start=current.warm_start if warm_start is _UNSET else warm_start,
        warm_start_max_dist=(
            current.warm_start_max_dist
            if warm_start_max_dist is _UNSET
            else warm_start_max_dist
        ),
        scan_block=current.scan_block if scan_block is _UNSET else scan_block,
    )
    return _pipeline_config
