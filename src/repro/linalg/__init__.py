"""Dense linear-algebra substrate.

Small, self-contained numerical helpers used by the simulator, the pulse
model, and GRAPE: Pauli/ladder operators, operator embedding, vectorized
Hermitian matrix exponentials with exact Fréchet derivatives, fidelity
measures, and seeded random unitaries/states.
"""

from repro.linalg.operators import (
    IDENTITY,
    PAULI_X,
    PAULI_Y,
    PAULI_Z,
    annihilation_operator,
    creation_operator,
    embed_operator,
    is_hermitian,
    is_unitary,
    kron_all,
    number_operator,
    pauli_matrix,
)
from repro.linalg.expm import expm_hermitian, expm_hermitian_frechet
from repro.linalg.scan import (
    backward_partial_products,
    forward_partial_products,
    scan_block_size,
)
from repro.linalg.unitaries import (
    average_gate_fidelity,
    closest_unitary,
    global_phase_aligned,
    process_fidelity,
    trace_fidelity,
    unitaries_equal_up_to_phase,
)
from repro.linalg.random import (
    haar_random_state,
    haar_random_unitary,
    random_hermitian,
)

__all__ = [
    "IDENTITY",
    "PAULI_X",
    "PAULI_Y",
    "PAULI_Z",
    "annihilation_operator",
    "average_gate_fidelity",
    "backward_partial_products",
    "forward_partial_products",
    "scan_block_size",
    "closest_unitary",
    "creation_operator",
    "embed_operator",
    "expm_hermitian",
    "expm_hermitian_frechet",
    "global_phase_aligned",
    "haar_random_state",
    "haar_random_unitary",
    "is_hermitian",
    "is_unitary",
    "kron_all",
    "number_operator",
    "pauli_matrix",
    "process_fidelity",
    "random_hermitian",
    "trace_fidelity",
    "unitaries_equal_up_to_phase",
]
