"""Elementary operators and operator embedding.

All operators are plain ``numpy.ndarray`` with dtype ``complex128``.  The
qubit ordering convention throughout the library is *big-endian*: qubit 0 is
the most significant bit of the basis-state index, matching the usual
textbook matrices (``CX`` controlled on qubit 0 flips qubit 1).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import ReproError

#: 2x2 identity.
IDENTITY = np.eye(2, dtype=complex)

#: Pauli X (bit flip).
PAULI_X = np.array([[0, 1], [1, 0]], dtype=complex)

#: Pauli Y.
PAULI_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)

#: Pauli Z (phase flip).
PAULI_Z = np.array([[1, 0], [0, -1]], dtype=complex)

_PAULIS = {"I": IDENTITY, "X": PAULI_X, "Y": PAULI_Y, "Z": PAULI_Z}


def pauli_matrix(label: str) -> np.ndarray:
    """Return the matrix of a tensor product of Paulis.

    ``label`` is a string over ``IXYZ``; character ``k`` acts on qubit ``k``
    (big-endian).  ``pauli_matrix("XI")`` is ``X ⊗ I``.
    """
    if not label:
        raise ReproError("empty Pauli label")
    try:
        factors = [_PAULIS[ch] for ch in label.upper()]
    except KeyError as exc:
        raise ReproError(f"invalid Pauli character in {label!r}") from exc
    return kron_all(factors)


def kron_all(factors: Iterable[np.ndarray]) -> np.ndarray:
    """Kronecker product of a sequence of matrices, left to right."""
    result = None
    for factor in factors:
        result = np.array(factor, dtype=complex) if result is None else np.kron(result, factor)
    if result is None:
        raise ReproError("kron_all requires at least one factor")
    return result


def annihilation_operator(levels: int = 2) -> np.ndarray:
    """Truncated bosonic annihilation operator ``a`` on ``levels`` levels.

    For ``levels=2`` this is the qubit lowering operator; ``levels=3`` gives
    the qutrit truncation used for leakage modelling (paper section 8.3).
    """
    if levels < 2:
        raise ReproError(f"need at least 2 levels, got {levels}")
    op = np.zeros((levels, levels), dtype=complex)
    for n in range(1, levels):
        op[n - 1, n] = np.sqrt(n)
    return op


def creation_operator(levels: int = 2) -> np.ndarray:
    """Truncated bosonic creation operator ``a†`` on ``levels`` levels."""
    return annihilation_operator(levels).conj().T


def number_operator(levels: int = 2) -> np.ndarray:
    """Number operator ``a† a``; for a qubit this is ``|1><1|``."""
    return np.diag(np.arange(levels, dtype=complex))


def embed_operator(
    op: np.ndarray,
    targets: Sequence[int],
    n_sites: int,
    levels: int = 2,
) -> np.ndarray:
    """Embed ``op`` acting on ``targets`` into an ``n_sites``-site space.

    ``op`` must act on ``len(targets)`` sites of dimension ``levels`` each,
    i.e. have shape ``(levels**len(targets),) * 2``.  ``targets`` lists the
    site indices in the order of ``op``'s tensor factors.  Sites are
    big-endian: site 0 is the most significant digit.

    This is the workhorse for building block Hamiltonians and for lifting
    gate matrices onto full registers.
    """
    targets = list(targets)
    if len(set(targets)) != len(targets):
        raise ReproError(f"duplicate targets in {targets}")
    if any(t < 0 or t >= n_sites for t in targets):
        raise ReproError(f"targets {targets} out of range for {n_sites} sites")
    k = len(targets)
    expected = levels**k
    if op.shape != (expected, expected):
        raise ReproError(
            f"operator shape {op.shape} does not match {k} sites of dimension {levels}"
        )

    # Reshape into a rank-2k tensor, one axis pair per target site, then
    # contract into the identity on the remaining sites via transposition.
    dim = levels**n_sites
    full = np.zeros((dim, dim), dtype=complex)
    others = [q for q in range(n_sites) if q not in targets]
    op_tensor = op.reshape([levels] * (2 * k))

    # Build the permutation that maps (targets..., others...) -> site order.
    order = targets + others
    perm = np.argsort(order)

    eye = np.eye(levels ** len(others), dtype=complex).reshape([levels] * (2 * len(others)))
    # Tensor product in (targets, others) order: axes are
    # (t_out..., o_out..., t_in..., o_in...) after moveaxis below.
    combined = np.tensordot(op_tensor, eye, axes=0)
    # combined axes: t_out(k), t_in(k), o_out(m), o_in(m)
    m = len(others)
    out_axes = list(range(0, k)) + list(range(2 * k, 2 * k + m))
    in_axes = list(range(k, 2 * k)) + list(range(2 * k + m, 2 * k + 2 * m))
    combined = np.transpose(combined, out_axes + in_axes)
    # Now axes are (out sites in `order` order, in sites in `order` order);
    # permute each group into ascending site order.
    combined = np.transpose(combined, list(perm) + [n_sites + p for p in perm])
    full[:, :] = combined.reshape(dim, dim)
    return full


def is_hermitian(matrix: np.ndarray, atol: float = 1e-10) -> bool:
    """True if ``matrix`` equals its conjugate transpose within ``atol``."""
    return bool(np.allclose(matrix, matrix.conj().T, atol=atol))


def is_unitary(matrix: np.ndarray, atol: float = 1e-10) -> bool:
    """True if ``matrix`` is unitary within ``atol``."""
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    dim = matrix.shape[0]
    return bool(np.allclose(matrix @ matrix.conj().T, np.eye(dim), atol=atol))
