"""Seeded random unitaries, states, and Hermitian matrices.

Used by tests (property-based invariants need arbitrary inputs) and by the
benchmark harness (the paper fixes randomization seeds "for both
reproducibility and consistency between identical benchmarks"; so do we).
"""

from __future__ import annotations

import numpy as np


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def haar_random_unitary(dim: int, seed: int | np.random.Generator | None = None) -> np.ndarray:
    """Haar-distributed random unitary via QR of a Ginibre matrix."""
    rng = _rng(seed)
    ginibre = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    q, r = np.linalg.qr(ginibre)
    # Fix the phase ambiguity of QR so the distribution is exactly Haar.
    phases = np.diagonal(r) / np.abs(np.diagonal(r))
    return q * phases


def haar_random_state(dim: int, seed: int | np.random.Generator | None = None) -> np.ndarray:
    """Haar-random pure state vector of dimension ``dim``."""
    rng = _rng(seed)
    vec = rng.normal(size=dim) + 1j * rng.normal(size=dim)
    return vec / np.linalg.norm(vec)


def random_hermitian(dim: int, seed: int | np.random.Generator | None = None) -> np.ndarray:
    """Random Hermitian matrix with Gaussian entries (GUE-like, unnormalized)."""
    rng = _rng(seed)
    raw = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    return (raw + raw.conj().T) / 2.0
