"""Unitary comparison and fidelity measures.

The GRAPE objective is the phase-insensitive trace fidelity
``F = |Tr(U_target† U)|² / d²`` (paper section 7.2 cost functions); the same
measure is used across tests to compare compiled circuits against target
unitaries up to global phase.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError


def trace_fidelity(target: np.ndarray, actual: np.ndarray) -> float:
    """Phase-insensitive gate fidelity ``|Tr(target† actual)|² / d²``.

    Equals 1 exactly when ``actual`` matches ``target`` up to global phase,
    and decreases smoothly with distance; this is the fidelity GRAPE
    maximizes.
    """
    target = np.asarray(target, dtype=complex)
    actual = np.asarray(actual, dtype=complex)
    if target.shape != actual.shape:
        raise ReproError(f"shape mismatch {target.shape} vs {actual.shape}")
    d = target.shape[0]
    overlap = np.trace(target.conj().T @ actual)
    return float(np.abs(overlap) ** 2 / d**2)


def process_fidelity(target: np.ndarray, actual: np.ndarray) -> float:
    """Alias of :func:`trace_fidelity` under its quantum-information name."""
    return trace_fidelity(target, actual)


def average_gate_fidelity(target: np.ndarray, actual: np.ndarray) -> float:
    """Average gate fidelity ``(d·F_pro + 1) / (d + 1)``."""
    d = np.asarray(target).shape[0]
    return (d * trace_fidelity(target, actual) + 1.0) / (d + 1.0)


def unitaries_equal_up_to_phase(
    first: np.ndarray, second: np.ndarray, atol: float = 1e-8
) -> bool:
    """True when ``first = e^{iφ} second`` for some global phase ``φ``."""
    first = np.asarray(first, dtype=complex)
    second = np.asarray(second, dtype=complex)
    if first.shape != second.shape:
        return False
    overlap = np.trace(second.conj().T @ first)
    d = first.shape[0]
    if np.abs(overlap) < 1e-12:
        return False
    phase = overlap / np.abs(overlap)
    return bool(np.allclose(first, phase * second, atol=atol))


def global_phase_aligned(reference: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """Return ``matrix`` multiplied by the phase that best aligns it with
    ``reference`` (the phase of ``Tr(reference† matrix)``)."""
    overlap = np.trace(np.asarray(reference).conj().T @ np.asarray(matrix))
    if np.abs(overlap) < 1e-12:
        return np.asarray(matrix, dtype=complex)
    return np.asarray(matrix, dtype=complex) * (np.abs(overlap) / overlap)


def closest_unitary(matrix: np.ndarray) -> np.ndarray:
    """Project a matrix onto the unitary group via its polar decomposition.

    Used to clean up numerically drifted products of many propagators.
    """
    u, _, vh = np.linalg.svd(np.asarray(matrix, dtype=complex))
    return u @ vh
