"""Blocked prefix-product scans over stacks of matrices.

The GRAPE chain rule needs every forward partial product ``A_k = U_k … U_1``
and every backward partial product ``B_k = U_N … U_{k+1}`` of a pulse's step
propagators.  A naive scan is ``n_steps`` sequential ``d×d`` GEMMs — each
far too small to amortize a BLAS call.  The blocked scan here trades a few
extra flops for *batched* GEMMs:

1. split the ``S`` matrices into ``C ≈ √S`` chunks of ``L ≈ √S``;
2. scan *within* every chunk simultaneously — step ``j`` of each chunk is
   independent of every other chunk, so the ``L-1`` scan steps are batched
   matmuls over ``C`` matrices each;
3. scan the ``C`` chunk totals sequentially (the only serial part,
   ``C-1`` small GEMMs) into exclusive chunk offsets;
4. combine local scans with their chunk offsets in one batched matmul over
   all ``C·L`` matrices.

That is ``≈ 2√S`` BLAS calls instead of ``S``, each over ``√S``-fold (or
``S``-fold for the combine) larger batches — and every leading batch axis
(the cross-block stacking of :mod:`repro.pulse.grape.batched`) multiplies
the batch size further at zero extra calls.  The scan axis is always
``-3``.

Products reassociate (``(U₃U₂)(U₁·init)`` instead of ``U₃(U₂(U₁·init))``),
so results match the sequential scan to float accumulation order —
~1e-14 for unitary operands — not bit-for-bit.
"""

from __future__ import annotations

import math

import numpy as np

#: Below this many matrices the sequential scan wins (blocking overhead —
#: padding, reshapes, the extra combine GEMM — is not worth amortizing).
MIN_BLOCKED_STEPS = 8


def scan_block_size(n_steps: int) -> int:
    """The default chunk length for an ``n_steps`` scan (``≈ √n_steps``).

    Returns 1 — meaning "scan sequentially" — for short scans.  Depends on
    ``n_steps`` and the active pipeline configuration only, so a
    cross-block batched scan and a per-block scan of the same pulse length
    chunk (and therefore reassociate) identically.  The ``scan_block``
    config field (``REPRO_SCAN_BLOCK``) pins the chunk length for cache
    tuning on unusual hosts; unset keeps the ``√n_steps`` heuristic.
    """
    from repro.config import get_pipeline_config

    override = get_pipeline_config().scan_block
    if override is not None:
        return max(1, min(int(override), n_steps))
    if n_steps < MIN_BLOCKED_STEPS:
        return 1
    return max(2, int(round(math.sqrt(n_steps))))


def _left_scan(mats, init, block_size=None, out=None):
    """Cumulative left-products of ``mats`` applied to ``init``.

    ``out[..., 0] = init`` and ``out[..., k] = mats[..., k-1] @ out[..., k-1]``
    for ``k = 1 … n`` — i.e. ``out[..., k] = M_{k-1} … M_0 @ init``.  Any
    leading axes of ``mats`` are batch axes.
    """
    mats = np.asarray(mats)
    init = np.asarray(init)
    n, d = mats.shape[-3], mats.shape[-1]
    lead = mats.shape[:-3]
    if out is None:
        out = np.empty(lead + (n + 1, d, d), dtype=np.result_type(mats, init))
    out[..., 0, :, :] = init
    size = scan_block_size(n) if block_size is None else max(1, int(block_size))
    if size <= 1 or n <= size:
        for k in range(n):
            np.matmul(
                mats[..., k, :, :], out[..., k, :, :], out=out[..., k + 1, :, :]
            )
        return out

    chunks = -(-n // size)
    pad = chunks * size - n
    eye = np.eye(d, dtype=out.dtype)
    if pad:
        # Trailing identity padding: the padded entries land past index n
        # of the combined scan and are sliced away below.
        padded = np.concatenate(
            [mats, np.broadcast_to(eye, lead + (pad, d, d))], axis=-3
        )
    else:
        padded = mats
    work = padded.reshape(lead + (chunks, size, d, d))

    # (2) local scans: step j of every chunk at once — batched over chunks.
    local = np.empty(lead + (chunks, size, d, d), dtype=out.dtype)
    local[..., :, 0, :, :] = work[..., :, 0, :, :]
    for j in range(1, size):
        np.matmul(
            work[..., :, j, :, :],
            local[..., :, j - 1, :, :],
            out=local[..., :, j, :, :],
        )
    # (3) sequential exclusive prefix over the chunk totals.
    offsets = np.empty(lead + (chunks, d, d), dtype=out.dtype)
    offsets[..., 0, :, :] = init
    totals = local[..., :, size - 1, :, :]
    for c in range(1, chunks):
        np.matmul(
            totals[..., c - 1, :, :],
            offsets[..., c - 1, :, :],
            out=offsets[..., c, :, :],
        )
    # (4) one batched combine over all chunks × steps.
    combined = np.matmul(local, offsets[..., :, None, :, :])
    out[..., 1:, :, :] = combined.reshape(lead + (chunks * size, d, d))[
        ..., :n, :, :
    ]
    return out


def forward_partial_products(props, block_size=None, out=None):
    """All forward partial products of a propagator stack.

    ``out[..., 0] = I`` and ``out[..., k] = props[..., k-1] @ … @ props[..., 0]``
    — the ``A_k`` of the GRAPE chain rule, with ``out[..., -1]`` the total
    unitary.  ``props`` has shape ``(..., n, d, d)``; the result appends one
    scan entry: ``(..., n+1, d, d)``.
    """
    props = np.asarray(props)
    eye = np.eye(props.shape[-1], dtype=complex)
    return _left_scan(props, eye, block_size, out)


def backward_partial_products(props, init, block_size=None, out=None):
    """All backward partial products, with ``init`` folded in from the left.

    ``out[..., k] = init @ props[..., n-1] @ … @ props[..., k+1]`` (so
    ``out[..., n-1] = init``) — the ``E† B_k`` of the GRAPE chain rule when
    ``init = E†``.  Shapes: ``props (..., n, d, d)`` → ``out (..., n, d, d)``.

    Implemented as a left scan through the transpose identity
    ``(A B)ᵀ = Bᵀ Aᵀ``: with ``R_0 = init`` and ``R_r = R_{r-1} @ M_r`` over
    the reversed propagators ``M_r = props[n-r]``, each ``R_rᵀ`` is a plain
    left-accumulation, and ``out[..., k] = R_{n-1-k}``.
    """
    props = np.asarray(props)
    init = np.asarray(init)
    n, d = props.shape[-3], props.shape[-1]
    lead = props.shape[:-3]
    if out is None:
        out = np.empty(lead + (n, d, d), dtype=np.result_type(props, init))
    mats_t = np.swapaxes(props[..., :0:-1, :, :], -1, -2)
    scanned = _left_scan(mats_t, np.swapaxes(init, -1, -2), block_size)
    out[...] = np.swapaxes(scanned[..., ::-1, :, :], -1, -2)
    return out
