"""Matrix exponentials of Hermitian generators, vectorized and differentiable.

GRAPE propagates ``U_k = exp(-i dt H_k)`` for hundreds of time slices per
gradient step.  Two facts make this fast and exact:

* ``numpy.linalg.eigh`` accepts stacked matrices ``(..., d, d)``, so all time
  slices are diagonalized in one call.
* In the eigenbasis of ``H``, the Fréchet (directional) derivative of
  ``f(H) = exp(-i dt H)`` along a perturbation ``V`` has the closed form
  ``V_eig ∘ Γ`` where ``Γ_ij = (f(λ_i) - f(λ_j)) / (λ_i - λ_j)`` (divided
  differences, with the diagonal given by ``f'(λ_i)``).  This gives *exact*
  analytic gradients — no small-``dt`` approximation — matching the
  "gradients computed analytically" methodology of the paper's GRAPE
  implementation [Leung et al. 2017].
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError


def expm_hermitian_factorized(
    hamiltonians: np.ndarray, dt: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Diagonalize and exponentiate one or a stack of Hermitian matrices.

    This is the single propagator code path shared by
    :func:`expm_hermitian` and the GRAPE kernel
    (:meth:`repro.pulse.grape.cost.GrapeCost.cost_and_gradient`): callers
    that also need the eigendecomposition — e.g. for the Fréchet gradient
    in the per-step eigenbasis — get it without a second ``eigh``.

    Parameters
    ----------
    hamiltonians:
        Array of shape ``(d, d)`` or ``(n, d, d)``; each matrix must be
        Hermitian.
    dt:
        Time-step scale factor.

    Returns
    -------
    tuple
        ``(eigvals, eigvecs, phases, unitaries)`` where ``phases`` is
        ``exp(-1j dt eigvals)`` and ``unitaries = V diag(phases) V†``,
        all batched over the leading shape of the input.
    """
    h = np.asarray(hamiltonians, dtype=complex)
    if h.ndim < 2 or h.shape[-1] != h.shape[-2]:
        raise ReproError(f"expected square matrices, got shape {h.shape}")
    eigvals, eigvecs = np.linalg.eigh(h)
    phases = np.exp(-1j * dt * eigvals)
    # V diag(phases) V† as two GEMM-shaped ops: scale columns, then one
    # batched matmul (faster than a 3-operand einsum for stacked inputs).
    # Conjugate the contiguous array and transpose as a view so BLAS takes
    # the transpose flag instead of numpy materializing a strided copy.
    unitaries = (eigvecs * phases[..., None, :]) @ np.swapaxes(
        eigvecs.conj(), -1, -2
    )
    return eigvals, eigvecs, phases, unitaries


def expm_hermitian(hamiltonians: np.ndarray, dt: float) -> np.ndarray:
    """Compute ``exp(-1j * dt * H)`` for one or a stack of Hermitian ``H``.

    Parameters
    ----------
    hamiltonians:
        Array of shape ``(d, d)`` or ``(n, d, d)``; each matrix must be
        Hermitian.
    dt:
        Time-step scale factor.

    Returns
    -------
    numpy.ndarray
        Unitaries with the same leading shape as the input.
    """
    return expm_hermitian_factorized(hamiltonians, dt)[3]


def expm_hermitian_frechet(
    hamiltonian: np.ndarray,
    directions: np.ndarray,
    dt: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Exponential and its exact Fréchet derivatives along ``directions``.

    Computes ``U = exp(-1j dt H)`` together with ``dU/ds`` for each direction
    ``D`` in ``directions``, where ``H(s) = H + s D``.

    Parameters
    ----------
    hamiltonian:
        Hermitian matrix of shape ``(d, d)``.
    directions:
        Array of shape ``(m, d, d)``; each Hermitian perturbation direction.
    dt:
        Time-step scale factor.

    Returns
    -------
    tuple
        ``(U, dU)`` with ``U`` of shape ``(d, d)`` and ``dU`` of shape
        ``(m, d, d)``.
    """
    h = np.asarray(hamiltonian, dtype=complex)
    dirs = np.asarray(directions, dtype=complex)
    if dirs.ndim == 2:
        dirs = dirs[None]
    eigvals, eigvecs = np.linalg.eigh(h)
    phases = np.exp(-1j * dt * eigvals)
    unitary = (eigvecs * phases) @ eigvecs.conj().T

    gamma = _divided_differences(eigvals, phases, dt)
    # Transform each direction into the eigenbasis, apply the Loewner mask,
    # and transform back: dU = V ((V† D V) ∘ Γ) V†.
    d_eig = np.einsum("ji,mjk,kl->mil", eigvecs.conj(), dirs, eigvecs, optimize=True)
    d_eig *= gamma
    derivative = np.einsum("ij,mjk,lk->mil", eigvecs, d_eig, eigvecs.conj(), optimize=True)
    return unitary, derivative


def _divided_differences(eigvals: np.ndarray, phases: np.ndarray, dt: float) -> np.ndarray:
    """Loewner matrices of divided differences for ``f(x) = exp(-1j dt x)``.

    Off-diagonal: ``(f(λ_i) - f(λ_j)) / (λ_i - λ_j)``; diagonal (and nearly
    degenerate pairs): ``f'(λ) = -1j dt f(λ)``.

    Accepts a single spectrum ``(d,)`` or a stack ``(..., d)`` — the GRAPE
    kernel batches every time slice of a pulse through one call — and
    returns matrices of shape ``(..., d, d)``.
    """
    eigvals = np.asarray(eigvals)
    phases = np.asarray(phases)
    diff = eigvals[..., :, None] - eigvals[..., None, :]
    gamma = phases[..., :, None] - phases[..., None, :]
    # Mask near-degenerate pairs where the quotient is numerically unstable,
    # then divide and patch in place — this runs once per GRAPE iteration on
    # an (n_steps, d, d) stack, so avoiding np.where temporaries matters.
    degenerate = np.abs(diff) < 1e-12
    np.copyto(diff, 1.0, where=degenerate)
    gamma /= diff
    # Broadcast f'(λ_i) onto degenerate pairs (exact in the limit λ_i -> λ_j).
    derivative_diag = -1j * dt * phases
    np.copyto(
        gamma,
        np.broadcast_to(derivative_diag[..., :, None], gamma.shape),
        where=degenerate,
    )
    return gamma
