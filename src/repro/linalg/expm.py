"""Matrix exponentials of Hermitian generators, vectorized and differentiable.

GRAPE propagates ``U_k = exp(-i dt H_k)`` for hundreds of time slices per
gradient step.  Two facts make this fast and exact:

* ``numpy.linalg.eigh`` accepts stacked matrices ``(..., d, d)``, so all time
  slices are diagonalized in one call.
* In the eigenbasis of ``H``, the Fréchet (directional) derivative of
  ``f(H) = exp(-i dt H)`` along a perturbation ``V`` has the closed form
  ``V_eig ∘ Γ`` where ``Γ_ij = (f(λ_i) - f(λ_j)) / (λ_i - λ_j)`` (divided
  differences, with the diagonal given by ``f'(λ_i)``).  This gives *exact*
  analytic gradients — no small-``dt`` approximation — matching the
  "gradients computed analytically" methodology of the paper's GRAPE
  implementation [Leung et al. 2017].
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError


def expm_hermitian(hamiltonians: np.ndarray, dt: float) -> np.ndarray:
    """Compute ``exp(-1j * dt * H)`` for one or a stack of Hermitian ``H``.

    Parameters
    ----------
    hamiltonians:
        Array of shape ``(d, d)`` or ``(n, d, d)``; each matrix must be
        Hermitian.
    dt:
        Time-step scale factor.

    Returns
    -------
    numpy.ndarray
        Unitaries with the same leading shape as the input.
    """
    h = np.asarray(hamiltonians, dtype=complex)
    if h.ndim < 2 or h.shape[-1] != h.shape[-2]:
        raise ReproError(f"expected square matrices, got shape {h.shape}")
    eigvals, eigvecs = np.linalg.eigh(h)
    phases = np.exp(-1j * dt * eigvals)
    # V diag(phases) V†, batched.
    return np.einsum(
        "...ij,...j,...kj->...ik", eigvecs, phases, eigvecs.conj(), optimize=True
    )


def expm_hermitian_frechet(
    hamiltonian: np.ndarray,
    directions: np.ndarray,
    dt: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Exponential and its exact Fréchet derivatives along ``directions``.

    Computes ``U = exp(-1j dt H)`` together with ``dU/ds`` for each direction
    ``D`` in ``directions``, where ``H(s) = H + s D``.

    Parameters
    ----------
    hamiltonian:
        Hermitian matrix of shape ``(d, d)``.
    directions:
        Array of shape ``(m, d, d)``; each Hermitian perturbation direction.
    dt:
        Time-step scale factor.

    Returns
    -------
    tuple
        ``(U, dU)`` with ``U`` of shape ``(d, d)`` and ``dU`` of shape
        ``(m, d, d)``.
    """
    h = np.asarray(hamiltonian, dtype=complex)
    dirs = np.asarray(directions, dtype=complex)
    if dirs.ndim == 2:
        dirs = dirs[None]
    eigvals, eigvecs = np.linalg.eigh(h)
    phases = np.exp(-1j * dt * eigvals)
    unitary = (eigvecs * phases) @ eigvecs.conj().T

    gamma = _divided_differences(eigvals, phases, dt)
    # Transform each direction into the eigenbasis, apply the Loewner mask,
    # and transform back: dU = V ((V† D V) ∘ Γ) V†.
    d_eig = np.einsum("ji,mjk,kl->mil", eigvecs.conj(), dirs, eigvecs, optimize=True)
    d_eig *= gamma
    derivative = np.einsum("ij,mjk,lk->mil", eigvecs, d_eig, eigvecs.conj(), optimize=True)
    return unitary, derivative


def _divided_differences(eigvals: np.ndarray, phases: np.ndarray, dt: float) -> np.ndarray:
    """Loewner matrix of divided differences for ``f(x) = exp(-1j dt x)``.

    Off-diagonal: ``(f(λ_i) - f(λ_j)) / (λ_i - λ_j)``; diagonal (and nearly
    degenerate pairs): ``f'(λ) = -1j dt f(λ)``.
    """
    diff = eigvals[:, None] - eigvals[None, :]
    num = phases[:, None] - phases[None, :]
    # Mask near-degenerate pairs where the quotient is numerically unstable.
    degenerate = np.abs(diff) < 1e-12
    safe = np.where(degenerate, 1.0, diff)
    gamma = num / safe
    derivative_diag = -1j * dt * phases
    # Broadcast f'(λ_i) onto degenerate pairs (exact in the limit λ_i -> λ_j).
    gamma = np.where(degenerate, derivative_diag[:, None], gamma)
    return gamma
