"""Cross-circuit block deduplication scheduling.

Variational workloads compile *batches* of closely related circuits — the
same ansatz at many parametrizations, or several molecules sharing CX
ladders and basis changes.  Mapping each circuit's blocks through the
executor independently compiles identical blocks once per circuit;
:class:`BlockScheduler` instead collects every block task across the whole
batch, groups them by their dedup identity — the phase-canonical unitary
fingerprint plus physical control context, exactly the pulse-cache key
(:meth:`repro.core.compiler.BlockPulseCompiler.task_key`) — dispatches one
representative per group through the block executor, and fans the compiled
pulse back out to every duplicate.  N circuits sharing a block pay for it
once, even when the cache is cold, even under a parallel executor (where
per-circuit maps would race identical blocks into redundant GRAPE runs).

Fan-out mirrors the cache-hit path of
:meth:`~repro.core.compiler.BlockPulseCompiler.compile_block`: a usable
representative pulse is retargeted to the duplicate's device qubits
(contexts are translation-invariant by construction); a representative
that fell back to lookup pulses falls back for the duplicate too, against
the *duplicate's* own gate-based duration — preserving the paper's
strictly-not-worse guarantee blockwise.

Entry points: :meth:`repro.pipeline.pipeline.CompilationPipeline.run_many`
(stage-level) and :meth:`repro.core.FullGrapeCompiler.compile_many`
(compiler-level).

A scheduler constructed with a :class:`SchedulerState` additionally
remembers every representative it has compiled *across* ``run`` calls:
the next batch fed through the same scheduler pays only for blocks it has
never seen in the whole run.  This is the streaming/variational mode —
:class:`repro.pipeline.session.VariationalSession` feeds one long-lived
scheduler a stream of iterations, so iteration N+1's shared fixed blocks
cost zero GRAPE dispatches.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path

from repro.circuits.dag import critical_path_ns
from repro.errors import PipelineError, ReproError
from repro.perf import get_perf_registry
from repro.pipeline.executors import BlockExecutor, SerialExecutor
from repro.pipeline.jobs import (
    _decode_cache_entry,
    _decode_outcome,
    _encode_cache_entry,
    _encode_outcome,
    _tuplify,
)
from repro.pipeline.stages import BlockTask, PipelineContext, _dispatch_task
from repro.pulse.schedule import PulseSchedule, lookup_schedule


@dataclass
class SchedulerReport:
    """Work accounting for one batch scheduling pass.

    ``deduped_blocks`` counts duplicates folded onto a representative
    *within* this batch; ``reused_blocks`` counts blocks served from the
    scheduler's cross-call :class:`SchedulerState` — work some *earlier*
    batch already paid for.
    """

    circuits: int = 0
    total_blocks: int = 0
    unique_blocks: int = 0
    deduped_blocks: int = 0
    reused_blocks: int = 0
    parametrized_blocks: int = 0
    trivial_blocks: int = 0
    dispatched_tasks: int = 0
    batched_groups: int = 0  # same-shape groups sent to the batched kernel
    batched_blocks: int = 0  # unique blocks those groups covered
    warm_started_blocks: int = 0  # dispatched blocks that got a GRAPE seed
    warm_accepted_blocks: int = 0  # seeds whose result won the best-of guard
    group_sizes: dict = field(default_factory=dict)  # key-size histogram

    def as_dict(self) -> dict:
        return {
            "circuits": self.circuits,
            "total_blocks": self.total_blocks,
            "unique_blocks": self.unique_blocks,
            "deduped_blocks": self.deduped_blocks,
            "reused_blocks": self.reused_blocks,
            "parametrized_blocks": self.parametrized_blocks,
            "trivial_blocks": self.trivial_blocks,
            "dispatched_tasks": self.dispatched_tasks,
            "batched_groups": self.batched_groups,
            "batched_blocks": self.batched_blocks,
            "warm_started_blocks": self.warm_started_blocks,
            "warm_accepted_blocks": self.warm_accepted_blocks,
            "dedup_ratio": round(
                (self.deduped_blocks + self.reused_blocks) / self.total_blocks, 4
            )
            if self.total_blocks
            else 0.0,
        }


@dataclass
class _SeenBlock:
    """What a long-lived scheduler remembers about one compiled key."""

    outcome: object  # the representative's BlockCompileOutcome
    cache_entry: object = None  # its CacheEntry when visible to this process


#: Bump when the on-disk scheduler-state layout (or the meaning of a
#: serialized field) changes; ``SchedulerState.load`` rejects mismatches.
SCHEDULER_STATE_SCHEMA_VERSION = 1


@dataclass
class SchedulerState:
    """Cross-call dedup memory for a long-lived scheduler.

    Maps dedup keys (fingerprint + control context) to their compiled
    representative.  State is only recorded after a batch completes
    successfully — a representative whose dispatch *raised* leaves no
    entry behind, so later calls recompile instead of fanning out a pulse
    that was never produced.

    The map is LRU-bounded (``max_entries``): a variational run binds a
    fresh θ every iteration, so its θ-dependent blocks record keys that
    will never hit again — without a bound those one-shot entries (each
    pinning full pulse schedules) would grow with the iteration count.
    The θ-independent blocks the bound exists to protect are re-touched
    every iteration, so LRU keeps exactly them.

    Every mutation is serialized on an internal lock: a
    :class:`~repro.service.facade.CompilationService` runs overlapping
    ``submit()`` requests through one shared state, so lookup/record must
    be safe under concurrent schedulers.  Cold misses on the same key are
    *single-flighted*: the first scheduler to :meth:`claim` a key owns its
    compilation, and concurrent schedulers that want the same key
    :meth:`wait_for` the owner's record instead of racing a duplicate
    GRAPE run.  Waiting always happens after a pass has dispatched its own
    owned work (see :meth:`BlockScheduler.run`), so two passes can never
    deadlock on each other's claims.  GRAPE is deterministic for a given
    (target, context, settings), so serving an owner's pulse to a waiter
    is bit-identical to the waiter compiling it itself.
    """

    seen: dict = field(default_factory=dict)  # key -> _SeenBlock, LRU order
    max_entries: int = 4096
    cross_call_hits: int = 0
    batches: int = 0
    evictions: int = 0

    def __post_init__(self):
        self._lock = threading.RLock()
        # Single-flight coordination: key -> threading.Event for keys some
        # scheduler is compiling *right now*.  Concurrent schedulers that
        # want the same key wait for the owner's record instead of racing
        # a duplicate GRAPE run.
        self._pending: dict = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self.seen)

    def lookup(self, key) -> "_SeenBlock | None":
        """The remembered block for ``key``, refreshing its LRU position."""
        with self._lock:
            block = self.seen.get(key)
            if block is not None:
                # dicts preserve insertion order: re-insert to mark as fresh.
                del self.seen[key]
                self.seen[key] = block
                self.cross_call_hits += 1
            return block

    def record(self, key, block: "_SeenBlock") -> None:
        """Remember ``key``'s compiled representative, evicting LRU entries.

        Also resolves any in-flight :meth:`claim` on ``key``: waiters
        blocked in :meth:`wait_for` wake up and find the entry.
        """
        with self._lock:
            self.seen.pop(key, None)
            self.seen[key] = block
            while len(self.seen) > self.max_entries:
                self.seen.pop(next(iter(self.seen)))
                self.evictions += 1
            pending = self._pending.pop(key, None)
            if pending is not None:
                pending.set()

    def claim(self, key) -> tuple:
        """Atomically look up ``key`` or claim the right to compile it.

        Returns ``("hit", block)`` when the key is already remembered
        (LRU-refreshed, counted as a cross-call hit), ``("owned", None)``
        when the caller is now responsible for compiling it — it *must*
        eventually :meth:`record` or :meth:`release` the key — and
        ``("pending", None)`` when another scheduler owns it right now,
        in which case the caller should :meth:`wait_for` the result
        after dispatching its own work.
        """
        with self._lock:
            block = self.seen.get(key)
            if block is not None:
                del self.seen[key]
                self.seen[key] = block
                self.cross_call_hits += 1
                return "hit", block
            if key in self._pending:
                return "pending", None
            self._pending[key] = threading.Event()
            return "owned", None

    def release(self, key) -> None:
        """Abandon a :meth:`claim` without recording (the dispatch raised).

        Waiters wake up, find no entry and no pending owner, and compile
        the key themselves instead of blocking forever.
        """
        with self._lock:
            pending = self._pending.pop(key, None)
            if pending is not None:
                pending.set()

    def wait_for(self, key) -> "_SeenBlock | None":
        """Block until ``key``'s owner records or releases it.

        Returns the remembered block (counted as a cross-call hit) when
        the owner succeeded, ``None`` when the owner released the claim
        without recording — the caller compiles the key itself.
        """
        while True:
            with self._lock:
                block = self.seen.get(key)
                if block is not None:
                    del self.seen[key]
                    self.seen[key] = block
                    self.cross_call_hits += 1
                    return block
                pending = self._pending.get(key)
                if pending is None:
                    return None
            pending.wait()

    def count_batch(self) -> None:
        """Count one completed scheduling pass."""
        with self._lock:
            self.batches += 1

    def clear(self) -> None:
        """Forget every remembered block (counters are kept)."""
        with self._lock:
            self.seen.clear()

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "known_blocks": len(self.seen),
                "cross_call_hits": self.cross_call_hits,
                "batches": self.batches,
                "evictions": self.evictions,
            }

    # -- persistence ---------------------------------------------------------
    def save(self, path) -> int:
        """Spill the dedup memory to ``path`` as schema-versioned JSON.

        Every remembered representative — dedup key (fingerprint + control
        context), compiled outcome, and its cache entry when visible — is
        serialized in LRU order, so :meth:`load` reconstructs not just the
        mapping but its eviction order.  Control samples round-trip through
        JSON's repr-based floats bit-identically.  The write is atomic
        (temp file + rename): a crash mid-save never corrupts an existing
        state file.  Returns the number of entries written.
        """
        with self._lock:
            payload = {
                "schema_version": SCHEDULER_STATE_SCHEMA_VERSION,
                "max_entries": self.max_entries,
                "cross_call_hits": self.cross_call_hits,
                "batches": self.batches,
                "evictions": self.evictions,
                "entries": [
                    {
                        "key": list(key),
                        "outcome": _encode_outcome(block.outcome),
                        "cache_entry": (
                            _encode_cache_entry(block.cache_entry)
                            if block.cache_entry is not None
                            else None
                        ),
                    }
                    for key, block in self.seen.items()
                ],
            }
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(payload))
        os.replace(tmp, path)
        return len(payload["entries"])

    @classmethod
    def load(cls, path) -> "SchedulerState":
        """Rebuild a state from a :meth:`save` file.

        Raises :class:`~repro.errors.PipelineError` when the file is not a
        scheduler-state file or its schema version does not match — callers
        that want to tolerate stale files (the service facade does) catch
        it and start fresh.
        """
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise PipelineError(f"cannot read scheduler state {path}: {exc}") from exc
        if not isinstance(payload, dict) or "entries" not in payload:
            raise PipelineError(f"{path} is not a scheduler-state file")
        version = payload.get("schema_version")
        if version != SCHEDULER_STATE_SCHEMA_VERSION:
            raise PipelineError(
                f"scheduler state {path} has schema version {version!r}; "
                f"this build reads {SCHEDULER_STATE_SCHEMA_VERSION}"
            )
        state = cls(max_entries=payload.get("max_entries", 4096))
        state.cross_call_hits = payload.get("cross_call_hits", 0)
        state.batches = payload.get("batches", 0)
        state.evictions = payload.get("evictions", 0)
        try:
            for entry in payload["entries"]:
                cache_entry = entry.get("cache_entry")
                state.seen[_tuplify(entry["key"])] = _SeenBlock(
                    outcome=_decode_outcome(entry["outcome"]),
                    cache_entry=(
                        _decode_cache_entry(cache_entry)
                        if cache_entry is not None
                        else None
                    ),
                )
        except (KeyError, TypeError, ValueError, AttributeError, ReproError) as exc:
            # Valid JSON + matching schema version but malformed entries
            # (hand-edited, truncated, or from a buggy writer): the same
            # "not a usable state file" contract as the checks above, so
            # tolerant callers (the service facade) can start fresh.
            raise PipelineError(
                f"scheduler state {path} has malformed entries: {exc!r}"
            ) from exc
        return state


def _retarget_outcome(outcome, task: BlockTask, cache_entry=None):
    """Build a duplicate's outcome from its group representative's.

    The logic is the cache-hit path of ``compile_block``, judged against
    the *duplicate's* own gate-based duration.  When the representative's
    cache entry is available (``cache_entry``), that judgment is exact:
    a GRAPE pulse the representative discarded as a fallback (its own
    gate time was shorter) can still win for a duplicate whose
    decomposition is slower.  Without the entry (a process-pool worker's
    cache write never reached this process), the representative's
    outcome is the only evidence, so an unusable representative means the
    duplicate takes its lookup fallback.  Either way the duplicate costs
    zero GRAPE iterations and is never worse than gate-based compilation.
    """
    from repro.core.compiler import BlockCompileOutcome

    gate_ns = critical_path_ns(task.subcircuit)
    device_qubits = tuple(task.device_qubits)
    if cache_entry is not None:
        shared = cache_entry.schedule
        usable = (
            cache_entry.converged and cache_entry.duration_ns <= gate_ns + 1e-9
        )
        duration = cache_entry.duration_ns
        fidelity = cache_entry.fidelity
    else:
        shared = outcome.schedule
        usable = outcome.used_grape and outcome.duration_ns <= gate_ns + 1e-9
        duration = outcome.duration_ns
        fidelity = outcome.fidelity
    if usable:
        schedule = PulseSchedule(
            qubits=device_qubits,
            dt_ns=shared.dt_ns,
            controls=shared.controls,
            channel_names=shared.channel_names,
            source="dedup",
        )
    else:
        schedule = lookup_schedule(device_qubits, gate_ns, source="fallback")
        duration = gate_ns
    return BlockCompileOutcome(
        schedule=schedule,
        duration_ns=duration,
        gate_based_ns=gate_ns,
        iterations=0,
        cache_hit=True,
        used_grape=usable,
        fidelity=fidelity,
    )


class BlockScheduler:
    """Deduplicating dispatcher for a batch of blocked pipeline contexts."""

    def __init__(
        self,
        block_compiler,
        executor: BlockExecutor | None = None,
        parametrized_handler=None,
        state: SchedulerState | None = None,
        grape_batch: bool | None = None,
        grape_batch_size: int | None = None,
    ):
        from repro.config import get_pipeline_config
        from repro.pipeline.strategies import compile_fixed_block

        self.block_compiler = block_compiler
        self.executor = executor if executor is not None else SerialExecutor()
        self.parametrized_handler = parametrized_handler
        # ``state`` makes the scheduler long-lived: representatives compiled
        # in one ``run`` are remembered and served for free in the next.
        self.state = state
        # Cross-block batched GRAPE dispatch (``None`` → configuration):
        # when the executor runs tasks inline, same-shape representatives
        # are stacked through the batched kernel instead of mapped.
        config = get_pipeline_config()
        self.grape_batch = (
            config.grape_batch if grape_batch is None else bool(grape_batch)
        )
        self.grape_batch_size = (
            config.grape_batch_size
            if grape_batch_size is None
            else max(1, int(grape_batch_size))
        )
        self._dispatch = partial(
            _dispatch_task,
            partial(compile_fixed_block, block_compiler),
            parametrized_handler,
        )

    def _batched_dispatch_allowed(self, fixed_count: int) -> bool:
        """Whether this pass should stack fixed tasks into the batched kernel.

        Requires an executor that *prefers* batching (serial, or auto in
        inline mode — a pool executor genuinely overlaps per-block maps, so
        stacking would serialize it), at least two fixed representatives,
        and a compiler whose dispatch path batching cannot change: a
        subclass that overrides ``compile_block`` (failure injection,
        custom judgment) without overriding ``compile_blocks_batched``
        must keep its override on the dispatch path.
        """
        if not self.grape_batch or fixed_count < 2:
            return False
        if not getattr(self.executor, "prefers_batched", False):
            return False
        from repro.core.compiler import BlockPulseCompiler

        compiler = self.block_compiler
        if not isinstance(compiler, BlockPulseCompiler):
            return False
        cls = type(compiler)
        if (
            cls.compile_block is not BlockPulseCompiler.compile_block
            and cls.compile_blocks_batched
            is BlockPulseCompiler.compile_blocks_batched
        ):
            return False
        return True

    def _job_dispatch_allowed(self) -> bool:
        """Whether fixed representatives may travel as serializable jobs.

        Jobs run the compiler's resolved-block path directly, so they are
        only equivalent for a plain :class:`BlockPulseCompiler` (or a
        subclass that overrides none of the involved methods): a subclass
        overriding ``compile_block`` (failure injection, custom judgment)
        must keep its override on the dispatch path, so it falls back to
        the closure map.
        """
        from repro.core.compiler import BlockPulseCompiler

        compiler = self.block_compiler
        if not isinstance(compiler, BlockPulseCompiler):
            return False
        cls = type(compiler)
        return (
            cls.compile_block is BlockPulseCompiler.compile_block
            and cls.make_job is BlockPulseCompiler.make_job
            and cls.compile_job is BlockPulseCompiler.compile_job
        )

    def _dispatch_all(self, order: list, dispatch_tasks: list) -> tuple:
        """Run every dispatch task; batch fixed ones when it pays.

        Fixed representatives travel one of three routes, preferred in
        order: the cross-block batched GRAPE kernel (inline executors),
        serializable :class:`~repro.pipeline.jobs.BlockJob` descriptors
        through the executor's :meth:`~repro.pipeline.executors
        .Dispatcher.dispatch_jobs` (the fleet-ready data path), or the
        legacy closure map (custom compilers).  Parametrized tasks always
        take the closure path — they are not serializable as jobs.

        Returns ``(results, stats)`` with results aligned to
        ``dispatch_tasks`` and ``stats`` the compiler's batching summary
        (empty counts when a non-batched path ran instead).
        """
        no_stats = {"batched_groups": 0, "batched_blocks": 0}
        fixed_idx = [j for j, (kind, _) in enumerate(order) if kind == "group"]
        if self._batched_dispatch_allowed(len(fixed_idx)):
            results: list = [None] * len(dispatch_tasks)
            outcomes, stats = self.block_compiler.compile_blocks_batched(
                [
                    (
                        dispatch_tasks[j].subcircuit,
                        dispatch_tasks[j].device_qubits,
                    )
                    for j in fixed_idx
                ],
                max_group=self.grape_batch_size,
            )
            for j, outcome in zip(fixed_idx, outcomes):
                results[j] = outcome
            for j, (kind, _) in enumerate(order):
                if kind != "group":
                    results[j] = self._dispatch(dispatch_tasks[j])
            return results, stats
        if fixed_idx and self._job_dispatch_allowed():
            # Grouped representatives always carry a real dedup key (the
            # trivial ones were compiled inline before dispatch), so
            # make_job never returns None here; the guard keeps a
            # surprising task on the always-correct closure path anyway.
            jobs = [
                self.block_compiler.make_job(
                    dispatch_tasks[j].subcircuit,
                    dispatch_tasks[j].device_qubits,
                    key=order[j][1],
                )
                for j in fixed_idx
            ]
            if all(job is not None for job in jobs):
                results = [None] * len(dispatch_tasks)
                outcomes = self.executor.dispatch_jobs(
                    jobs, cache=self.block_compiler.cache
                )
                for j, outcome in zip(fixed_idx, outcomes):
                    results[j] = outcome
                for j, (kind, _) in enumerate(order):
                    if kind != "group":
                        results[j] = self._dispatch(dispatch_tasks[j])
                return results, no_stats
        return self.executor.map(self._dispatch, dispatch_tasks), no_stats

    def run(self, contexts: list) -> SchedulerReport:
        """Compile every context's tasks, deduplicating across the batch.

        Each context must have been through a blocking stage
        (``context.tasks`` populated); on return every context has
        ``block_results`` aligned with its tasks, exactly as if its pulse
        stage had run alone — except that duplicate blocks carry retargeted
        copies of one shared compilation.
        """
        report = SchedulerReport(circuits=len(contexts))
        groups: dict = {}  # key -> list[(context_index, task_index, task)]
        order: list = []  # (kind, payload) in dispatch order
        slots: dict = {}  # (context_index, task_index) -> result
        waits: list = []  # (ci, ti, task, key) owned by a concurrent pass
        owned: set = set()  # state keys this pass claimed and must resolve
        for ci, context in enumerate(contexts):
            if context.tasks is None:
                raise PipelineError(
                    "a blocking stage must run before batch scheduling"
                )
            for ti, task in enumerate(context.tasks):
                report.total_blocks += 1
                if task.kind == "parametrized":
                    report.parametrized_blocks += 1
                    order.append(("task", (ci, ti, task)))
                    continue
                if task.dedup_key_known:
                    # Plan replay (or a prior build_plan pass) already paid
                    # for this block's fingerprint; trust it.
                    key = task.dedup_key
                else:
                    key = self.block_compiler.task_key(
                        task.subcircuit, task.device_qubits
                    )
                if key is None:
                    # Empty / zero-duration blocks: no GRAPE, compile inline.
                    report.trivial_blocks += 1
                    slots[(ci, ti)] = self.block_compiler.compile_block(
                        task.subcircuit, task.device_qubits
                    )
                    continue
                members = groups.get(key)
                if members is not None:
                    # In-batch duplicate of a group this pass already owns.
                    members.append((ci, ti, task))
                    continue
                if self.state is not None:
                    status, seen = self.state.claim(key)
                    if status == "hit":
                        # An earlier batch through this scheduler already
                        # compiled this block: serve it like a duplicate,
                        # judged against this task's own gate time.
                        report.reused_blocks += 1
                        slots[(ci, ti)] = _retarget_outcome(
                            seen.outcome, task, seen.cache_entry
                        )
                        continue
                    if status == "pending":
                        # A concurrent pass is compiling this key right
                        # now.  Don't duplicate its GRAPE run — dispatch
                        # our own work first, then wait for its record.
                        waits.append((ci, ti, task, key))
                        continue
                    owned.add(key)
                groups[key] = members = []
                order.append(("group", key))
                members.append((ci, ti, task))

        dispatch_tasks = []
        for kind, payload in order:
            if kind == "group":
                dispatch_tasks.append(groups[payload][0][2])
            else:
                dispatch_tasks.append(payload[2])
        report.dispatched_tasks = len(dispatch_tasks)
        report.unique_blocks = len(groups)
        # Warm-start accounting is delta-based: the compiler counts seeds
        # globally (both dispatch paths), so the dispatch window's counter
        # movement is this pass's share.  Concurrent passes can bleed into
        # each other's deltas — acceptable for telemetry.
        perf = get_perf_registry()
        seeds_before = perf.counter(
            "grape.warm_start.neighbor_seeds"
        ) + perf.counter("grape.warm_start.kak_seeds")
        accepted_before = perf.counter("grape.warm_start.accepted")
        # Pin warm-start candidates to the pre-pass cache state for the
        # whole dispatch window so results cannot depend on executor
        # scheduling order (see PulseCache.freeze_neighbors).
        cache = getattr(self.block_compiler, "cache", None)
        if cache is not None:
            cache.freeze_neighbors()
        try:
            try:
                results, batch_stats = self._dispatch_all(order, dispatch_tasks)
                report.batched_groups = batch_stats["batched_groups"]
                report.batched_blocks = batch_stats["batched_blocks"]

                for (kind, payload), result in zip(order, results):
                    if kind == "task":
                        ci, ti, _task = payload
                        slots[(ci, ti)] = result
                        continue
                    members = groups[payload]
                    rep_ci, rep_ti, _rep_task = members[0]
                    slots[(rep_ci, rep_ti)] = result
                    # The representative's cache entry (when its write is
                    # visible to this process) lets fan-out judge duplicates
                    # exactly as a per-circuit cache hit would; see
                    # _retarget_outcome.  A stateful scheduler fetches it even
                    # for singleton groups so future cross-call reuse gets the
                    # same exact judgment.
                    cache_entry = (
                        self.block_compiler.cache.get(payload)
                        if len(members) > 1 or self.state is not None
                        else None
                    )
                    for ci, ti, task in members[1:]:
                        report.deduped_blocks += 1
                        slots[(ci, ti)] = _retarget_outcome(
                            result, task, cache_entry
                        )
                    if self.state is not None:
                        # Recorded only on this (post-``map``) success path: a
                        # representative whose dispatch raised never reaches
                        # here, so no later call can fan out a pulse that does
                        # not exist.
                        self.state.record(payload, _SeenBlock(result, cache_entry))
                        owned.discard(payload)
            finally:
                if self.state is not None and owned:
                    # A dispatch raised before every owned key was recorded:
                    # release the leftover claims so concurrent waiters (and
                    # future passes) compile those keys themselves instead of
                    # blocking on a result that will never arrive.
                    for key in owned:
                        self.state.release(key)

            # Blocks owned by concurrent passes: our own dispatch is done, so
            # waiting here can never deadlock — every pass resolves its owned
            # keys without waiting on anyone else's.
            for ci, ti, task, key in waits:
                seen = self.state.wait_for(key)
                if seen is not None:
                    report.reused_blocks += 1
                    slots[(ci, ti)] = _retarget_outcome(
                        seen.outcome, task, seen.cache_entry
                    )
                    continue
                # The owner released without recording (its dispatch raised,
                # or the entry was evicted already): compile it ourselves.
                outcome = self._dispatch(task)
                cache_entry = self.block_compiler.cache.get(key)
                self.state.record(key, _SeenBlock(outcome, cache_entry))
                report.unique_blocks += 1
                report.dispatched_tasks += 1
                slots[(ci, ti)] = outcome
        finally:
            if cache is not None:
                cache.thaw_neighbors()

        for ci, context in enumerate(contexts):
            context.block_results = [
                slots[(ci, ti)] for ti in range(len(context.tasks))
            ]
            context.executor_info = self.executor.describe()

        if self.state is not None:
            self.state.count_batch()
        report.warm_started_blocks = (
            perf.counter("grape.warm_start.neighbor_seeds")
            + perf.counter("grape.warm_start.kak_seeds")
            - seeds_before
        )
        report.warm_accepted_blocks = (
            perf.counter("grape.warm_start.accepted") - accepted_before
        )
        perf.count("scheduler.batches")
        perf.count("scheduler.unique_blocks", report.unique_blocks)
        perf.count("scheduler.deduped_blocks", report.deduped_blocks)
        if report.reused_blocks:
            perf.count("scheduler.reused_blocks", report.reused_blocks)
        if report.batched_blocks:
            perf.count("scheduler.batched_groups", report.batched_groups)
            perf.count("scheduler.batched_blocks", report.batched_blocks)
        if report.warm_started_blocks:
            perf.count(
                "scheduler.warm_started_blocks", report.warm_started_blocks
            )
        return report
