"""The declarative compilation pipeline.

:class:`CompilationPipeline` is an ordered list of
:class:`~repro.pipeline.stages.Stage` objects run over one
:class:`~repro.pipeline.stages.PipelineContext`, timing each stage.  It is
the pulse-level sibling of the transpiler's
:class:`~repro.transpile.passes.PassManager`: where the pass manager
composes circuit→circuit rewrites, the pipeline composes the full
circuit→blocks→pulses→program flow that all four compilation strategies
share.
"""

from __future__ import annotations

import time
from typing import Iterable

from repro.errors import PipelineError
from repro.perf import get_perf_registry
from repro.pipeline.stages import PipelineContext, Stage


class CompilationPipeline:
    """An ordered, named sequence of compilation stages."""

    def __init__(self, stages: Iterable[Stage] = (), name: str = "pipeline"):
        self.stages: list[Stage] = list(stages)
        self.name = name
        for stage in self.stages:
            if not hasattr(stage, "run"):
                raise PipelineError(f"{stage!r} is not a pipeline stage")

    @property
    def stage_names(self) -> tuple:
        """The declared stage order (telemetry keys match these names)."""
        return tuple(stage.name for stage in self.stages)

    def append(self, stage: Stage) -> "CompilationPipeline":
        """Add ``stage`` at the end; returns self for chaining."""
        if not hasattr(stage, "run"):
            raise PipelineError(f"{stage!r} is not a pipeline stage")
        self.stages.append(stage)
        return self

    def run(self, circuit, values=None) -> PipelineContext:
        """Flow ``circuit`` (with optional parameter ``values``) through all
        stages, returning the accumulated context.

        Per-stage wall time lands in ``context.stage_timings`` in execution
        order, so callers can report exactly where compilation latency went.
        """
        context = PipelineContext(circuit=circuit, values=values)
        for stage in self.stages:
            self._run_stage(stage, context)
        return context

    @staticmethod
    def _run_stage(stage: Stage, context: PipelineContext) -> None:
        start = time.perf_counter()
        stage.run(context)
        elapsed = time.perf_counter() - start
        context.stage_timings.append((stage.name, elapsed))
        get_perf_registry().record_seconds(f"pipeline.stage.{stage.name}", elapsed)

    def _run_with_plan(self, circuit, context, plan_cache, plan_scope, pulse) -> None:
        """Run the bind→block prefix through the content-addressed plan cache.

        The bind stage always runs (it produces this binding's working
        circuit); the blocking stage is replayed from a cached
        :class:`~repro.pipeline.plan.CompilationPlan` on a hit, or run and
        captured on a miss.  Either way the context leaves with pre-keyed
        tasks, identical to what the ordinary path would have produced.
        """
        from repro.pipeline.plan import build_plan, plan_key

        bind, blocking = self.stages[0], self.stages[1]
        key = plan_key(
            circuit, blocking._width(), pulse.block_compiler, scope=plan_scope
        )
        self._run_stage(bind, context)
        start = time.perf_counter()
        plan = plan_cache.lookup(key)
        if plan is not None:
            plan.apply(context)
            plan_cache.note_skip()
        else:
            blocking.run(context)
            plan_cache.insert(
                key, build_plan(key, circuit, context, pulse.block_compiler)
            )
        elapsed = time.perf_counter() - start
        context.stage_timings.append((blocking.name, elapsed))
        get_perf_registry().record_seconds(
            f"pipeline.stage.{blocking.name}", elapsed
        )

    def run_many(
        self,
        circuits,
        values=None,
        scheduler=None,
        state=None,
        plan_cache=None,
        plan_scope: str = "",
        grape_batch: bool | None = None,
        grape_batch_size: int | None = None,
    ) -> tuple:
        """Flow a *batch* of circuits through the pipeline, deduplicating
        block compilations across the whole batch.

        Stages before the pulse stage run per circuit as usual; the pulse
        stage is replaced by one
        :class:`~repro.pipeline.scheduler.BlockScheduler` pass over every
        context's tasks, so blocks shared between circuits (variational
        iterations of one ansatz, molecules sharing CX ladders) compile
        exactly once; stages after it run per circuit again.  Returns
        ``(contexts, report)`` with contexts in input order.  Pipelines
        without a dedup-capable pulse stage (no ``block_compiler``, e.g.
        the gate-based strategy) fall back to independent ``run`` calls and
        a ``None`` report.

        ``state`` (a :class:`~repro.pipeline.scheduler.SchedulerState`)
        makes the batch *streaming*: the per-batch scheduler is built
        around the caller's state object, so dedup memory persists across
        successive ``run_many`` calls sharing that state — this is how
        :class:`repro.pipeline.session.VariationalSession` and the
        strategies' ``precompile_many`` reuse blocks across calls.
        ``scheduler`` goes further and supplies the whole caller-owned
        :class:`~repro.pipeline.scheduler.BlockScheduler` (``state`` is
        then ignored).

        ``plan_cache`` (a :class:`~repro.pipeline.plan.PlanCache`) makes
        the blocking pass content-addressed: when the pipeline's pre-pulse
        stages are exactly bind + plain blocking, each circuit's blocking
        output is looked up by content fingerprint and replayed on a hit —
        aggregation and per-block dedup-key hashing run once per ansatz,
        not once per call.  Misses build and insert the plan.
        ``plan_scope`` namespaces the cache keys per caller.

        ``grape_batch`` / ``grape_batch_size`` override the configured
        cross-block batched-GRAPE dispatch for this pass's scheduler
        (``None`` defers to the pipeline config; both are ignored when a
        caller-owned ``scheduler`` is supplied).
        """
        from repro.pipeline.scheduler import BlockScheduler
        from repro.pipeline.stages import BindStage, BlockingStage, PulseStage

        circuits = list(circuits)
        values = list(values) if values is not None else [None] * len(circuits)
        if len(values) != len(circuits):
            raise PipelineError(
                f"got {len(circuits)} circuits but {len(values)} value sets"
            )
        pulse_index = next(
            (
                i
                for i, stage in enumerate(self.stages)
                if isinstance(stage, PulseStage) and stage.block_compiler is not None
            ),
            None,
        )
        if pulse_index is None:
            return [
                self.run(circuit, vals) for circuit, vals in zip(circuits, values)
            ], None

        pulse = self.stages[pulse_index]
        # Plans replay only the plain bind→block prefix: slicer and
        # isolate_parametrized modes derive tasks from bound values, and a
        # transpile stage rewrites the circuit the fingerprint was taken
        # over — those pipelines keep the ordinary per-circuit path.
        plannable = (
            plan_cache is not None
            and pulse_index == 2
            and isinstance(self.stages[0], BindStage)
            and isinstance(self.stages[1], BlockingStage)
            and self.stages[1].slicer is None
            and not self.stages[1].isolate_parametrized
        )
        contexts = []
        for circuit, vals in zip(circuits, values):
            context = PipelineContext(circuit=circuit, values=vals)
            if plannable:
                self._run_with_plan(circuit, context, plan_cache, plan_scope, pulse)
            else:
                for stage in self.stages[:pulse_index]:
                    self._run_stage(stage, context)
            contexts.append(context)

        if scheduler is None:
            scheduler = BlockScheduler(
                pulse.block_compiler,
                pulse.executor,
                pulse.parametrized_handler,
                state=state,
                grape_batch=grape_batch,
                grape_batch_size=grape_batch_size,
            )
        start = time.perf_counter()
        report = scheduler.run(contexts)
        elapsed = time.perf_counter() - start
        get_perf_registry().record_seconds(f"pipeline.stage.{pulse.name}", elapsed)
        for context in contexts:
            # The pulse stage ran once for the whole batch; every context
            # reports the shared wall time so latency stays attributable.
            context.stage_timings.append((pulse.name, elapsed))
            context.metadata["scheduler"] = report.as_dict()

        for context in contexts:
            for stage in self.stages[pulse_index + 1 :]:
                self._run_stage(stage, context)
        return contexts, report

    def describe(self) -> dict:
        """A telemetry-friendly summary of the pipeline's shape."""
        return {"pipeline": self.name, "stages": list(self.stage_names)}

    def __len__(self) -> int:
        return len(self.stages)

    def __repr__(self) -> str:
        return f"CompilationPipeline({self.name!r}, stages={list(self.stage_names)})"
