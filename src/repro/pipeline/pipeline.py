"""The declarative compilation pipeline.

:class:`CompilationPipeline` is an ordered list of
:class:`~repro.pipeline.stages.Stage` objects run over one
:class:`~repro.pipeline.stages.PipelineContext`, timing each stage.  It is
the pulse-level sibling of the transpiler's
:class:`~repro.transpile.passes.PassManager`: where the pass manager
composes circuit→circuit rewrites, the pipeline composes the full
circuit→blocks→pulses→program flow that all four compilation strategies
share.
"""

from __future__ import annotations

import time
from typing import Iterable

from repro.errors import PipelineError
from repro.perf import get_perf_registry
from repro.pipeline.stages import PipelineContext, Stage


class CompilationPipeline:
    """An ordered, named sequence of compilation stages."""

    def __init__(self, stages: Iterable[Stage] = (), name: str = "pipeline"):
        self.stages: list[Stage] = list(stages)
        self.name = name
        for stage in self.stages:
            if not hasattr(stage, "run"):
                raise PipelineError(f"{stage!r} is not a pipeline stage")

    @property
    def stage_names(self) -> tuple:
        """The declared stage order (telemetry keys match these names)."""
        return tuple(stage.name for stage in self.stages)

    def append(self, stage: Stage) -> "CompilationPipeline":
        """Add ``stage`` at the end; returns self for chaining."""
        if not hasattr(stage, "run"):
            raise PipelineError(f"{stage!r} is not a pipeline stage")
        self.stages.append(stage)
        return self

    def run(self, circuit, values=None) -> PipelineContext:
        """Flow ``circuit`` (with optional parameter ``values``) through all
        stages, returning the accumulated context.

        Per-stage wall time lands in ``context.stage_timings`` in execution
        order, so callers can report exactly where compilation latency went.
        """
        context = PipelineContext(circuit=circuit, values=values)
        perf = get_perf_registry()
        for stage in self.stages:
            start = time.perf_counter()
            stage.run(context)
            elapsed = time.perf_counter() - start
            context.stage_timings.append((stage.name, elapsed))
            perf.record_seconds(f"pipeline.stage.{stage.name}", elapsed)
        return context

    def describe(self) -> dict:
        """A telemetry-friendly summary of the pipeline's shape."""
        return {"pipeline": self.name, "stages": list(self.stage_names)}

    def __len__(self) -> int:
        return len(self.stages)

    def __repr__(self) -> str:
        return f"CompilationPipeline({self.name!r}, stages={list(self.stage_names)})"
