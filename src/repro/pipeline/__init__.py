"""Unified compilation pipeline (transpile → block → pulse → assemble).

The four compilation strategies of the paper share one staged flow; this
package makes that flow explicit and declarative, in the spirit of Cirq's
transformer framework:

* :mod:`repro.pipeline.executors` — pluggable dispatch of independent
  per-block GRAPE searches: serial, thread pool, process pool, or the
  persistent pool variants that stay warm across every ``map`` of a run;
  all implement the :class:`Dispatcher` contract over serializable jobs.
* :mod:`repro.pipeline.jobs` — :class:`BlockJob`, the picklable
  block-compilation descriptor every dispatch venue (in-process pools,
  the :mod:`repro.fleet` worker processes) executes via
  :func:`run_block_job`.
* :mod:`repro.pipeline.stages` — composable :class:`Stage` objects carrying
  a :class:`PipelineContext` from circuit to pulse program.
* :mod:`repro.pipeline.pipeline` — :class:`CompilationPipeline`, an ordered
  stage list with per-stage wall-time telemetry, plus the batch entry
  point ``run_many``.
* :mod:`repro.pipeline.plan` — :class:`CompilationPlan` /
  :class:`PlanCache`, content-addressed reuse of the blocking output: the
  aggregation pass and the per-block dedup-key hashing run once per ansatz
  fingerprint, not once per compile call.
* :mod:`repro.pipeline.scheduler` — :class:`BlockScheduler`, which
  deduplicates block compilations across a batch of circuits before
  dispatch (N variational circuits sharing blocks compile each block once),
  optionally carrying a persistent :class:`SchedulerState` across calls.
* :mod:`repro.pipeline.session` — :class:`VariationalSession`, the
  long-lived streaming mode: one scheduler + executor + open pulse cache
  shared by every ``compile`` of a variational run, so iteration N+1 pays
  only for blocks the whole session has never seen.
* :mod:`repro.pipeline.strategies` — the four declarative pipeline
  configurations behind ``repro.core``'s compiler classes.
"""

from repro.pipeline.executors import (
    BlockExecutor,
    Dispatcher,
    PersistentProcessPoolBlockExecutor,
    PersistentThreadPoolBlockExecutor,
    ProcessPoolBlockExecutor,
    SerialExecutor,
    ThreadPoolBlockExecutor,
    persistent_executor_stats,
    resolve_executor,
    shutdown_persistent_executors,
)
from repro.pipeline.jobs import BlockJob, run_block_job
from repro.pipeline.pipeline import CompilationPipeline
from repro.pipeline.plan import CompilationPlan, PlanCache
from repro.pipeline.scheduler import BlockScheduler, SchedulerReport, SchedulerState
from repro.pipeline.session import VariationalSession
from repro.pipeline.stages import (
    AssembleStage,
    BindStage,
    BlockingStage,
    BlockTask,
    GateScheduleStage,
    PipelineContext,
    PulseStage,
    Stage,
    TranspileStage,
)
from repro.pipeline.strategies import (
    flexible_precompile_pipeline,
    full_grape_pipeline,
    gate_based_pipeline,
    strict_precompile_pipeline,
)

__all__ = [
    "AssembleStage",
    "BindStage",
    "BlockExecutor",
    "BlockJob",
    "BlockScheduler",
    "BlockTask",
    "BlockingStage",
    "CompilationPipeline",
    "CompilationPlan",
    "Dispatcher",
    "PlanCache",
    "SchedulerReport",
    "SchedulerState",
    "VariationalSession",
    "GateScheduleStage",
    "PersistentProcessPoolBlockExecutor",
    "PersistentThreadPoolBlockExecutor",
    "PipelineContext",
    "ProcessPoolBlockExecutor",
    "PulseStage",
    "SerialExecutor",
    "Stage",
    "ThreadPoolBlockExecutor",
    "TranspileStage",
    "flexible_precompile_pipeline",
    "full_grape_pipeline",
    "gate_based_pipeline",
    "persistent_executor_stats",
    "resolve_executor",
    "run_block_job",
    "shutdown_persistent_executors",
    "strict_precompile_pipeline",
]
