"""Composable pipeline stages and the context they thread.

A stage is a named unit of work over a mutable :class:`PipelineContext`:
transpile rewrites the circuit, bind produces the bound working circuit,
blocking partitions it into :class:`BlockTask`\\ s, the pulse stage maps a
block handler over those tasks through a :class:`BlockExecutor`, and
assemble sequences the resulting schedules into a
:class:`~repro.pulse.schedule.PulseProgram` with the paper's
strictly-not-worse fallback.  Strategies differ only in which stages they
stack and which handlers they plug in — the flow itself is shared.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable

from repro.blocking.aggregate import aggregate_blocks
from repro.circuits.circuit import QuantumCircuit
from repro.config import get_preset
from repro.errors import CompilationError, PipelineError
from repro.pipeline.executors import BlockExecutor, SerialExecutor
from repro.pulse.schedule import PulseProgram, lookup_schedule
from repro.transpile.schedule import asap_schedule


@dataclass
class BlockTask:
    """One independent unit of per-block work produced by blocking.

    Attributes
    ----------
    index:
        Position in the pipeline's global block order (results stay
        aligned with tasks).
    subcircuit:
        Bound or symbolic local circuit on qubits ``0…k-1``; ``None`` for
        isolated parametrized singletons, which carry ``instruction``
        instead.
    device_qubits:
        The device qubits behind the local indices (sorted ascending).
    kind:
        ``"fixed"`` (parametrization-independent, GRAPE-compilable now) or
        ``"parametrized"`` (handled by the strategy's parametrized handler).
    instruction:
        The original instruction for isolated singleton blocks (strict
        partial compilation's ``Rz(θ)`` gates).
    local_index:
        The block's index *within its own blocked circuit* — restarts per
        slice in slicer mode.  Strategies that derive per-block seeds use
        this so adding or removing earlier slices does not shift the
        randomness of later ones.
    dedup_key:
        Precomputed scheduler/cache identity of the block, valid only when
        ``dedup_key_known`` is set.  Plan replay
        (:mod:`repro.pipeline.plan`) attaches keys it already paid for;
        the batch scheduler computes the key itself for tasks that arrive
        without one.  ``None`` with ``dedup_key_known=True`` marks a
        trivial (zero-duration) block.
    """

    index: int
    subcircuit: QuantumCircuit | None
    device_qubits: tuple
    kind: str = "fixed"
    instruction: Any = None
    local_index: int = 0
    dedup_key: Any = None
    dedup_key_known: bool = False


@dataclass
class PipelineContext:
    """Everything a compilation run accumulates while flowing through stages."""

    circuit: QuantumCircuit
    values: Any = None
    bound: QuantumCircuit | None = None
    blocked: list = field(default_factory=list)
    tasks: list | None = None
    block_results: list | None = None
    schedules: list | None = None
    program: PulseProgram | None = None
    used_fallback: bool = False
    executor_info: dict = field(default_factory=dict)
    stage_timings: list = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    @property
    def working(self) -> QuantumCircuit:
        """The circuit later stages operate on: bound if binding ran."""
        return self.bound if self.bound is not None else self.circuit

    def stage_timing_dict(self) -> dict:
        """Stage name → seconds, in execution order (telemetry surface)."""
        return {name: round(seconds, 6) for name, seconds in self.stage_timings}


class Stage:
    """One named circuit→pulse pipeline step operating on the context."""

    name = "stage"

    def run(self, context: PipelineContext) -> None:
        raise NotImplementedError


class TranspileStage(Stage):
    """Rewrite the input circuit with a transpile pass manager."""

    name = "transpile"

    def __init__(self, pass_manager):
        self.pass_manager = pass_manager

    def run(self, context: PipelineContext) -> None:
        context.circuit = self.pass_manager.run(context.circuit)


class BindStage(Stage):
    """Bind parameter values and require a fully bound working circuit."""

    name = "bind"

    def run(self, context: PipelineContext) -> None:
        circuit = context.circuit
        if context.values is not None:
            circuit = circuit.bind_parameters(context.values)
        if circuit.is_parameterized():
            raise CompilationError("bind parameters before compiling")
        context.bound = circuit


class BlockingStage(Stage):
    """Partition the working circuit into width-bounded block tasks.

    Three strategy-selected modes share the aggregation core:

    * plain (default) — one :func:`aggregate_blocks` call, every block a
      fixed task (full GRAPE over a bound circuit);
    * ``isolate_parametrized`` — parameter-dependent gates become singleton
      parametrized tasks with per-qubit barriers (strict partial
      compilation, paper Figure 3b);
    * ``slicer`` — the circuit is first cut into slices (flexible partial
      compilation's single-θ slices, Figure 3c), each sliced piece blocked
      independently; blocks containing a parametrized gate become
      parametrized tasks.
    """

    name = "block"

    def __init__(
        self,
        max_width: int | None = None,
        slicer: Callable | None = None,
        isolate_parametrized: bool = False,
    ):
        if slicer is not None and isolate_parametrized:
            raise PipelineError("slicer and isolate_parametrized are exclusive")
        self.max_width = max_width
        self.slicer = slicer
        self.isolate_parametrized = isolate_parametrized

    def _width(self) -> int:
        if self.max_width is not None:
            return self.max_width
        return get_preset().max_block_qubits

    def run(self, context: PipelineContext) -> None:
        circuit = context.working
        width = self._width()
        tasks: list[BlockTask] = []
        context.blocked = []

        if self.isolate_parametrized:
            parametrized = {
                idx for idx, inst in enumerate(circuit) if inst.parameters
            }
            for idx in parametrized:
                params = circuit[idx].parameters
                if len(params) > 1:
                    names = sorted(p.name for p in params)
                    raise CompilationError(
                        f"gate {circuit[idx]!r} depends on several parameters {names}"
                    )
            blocked = aggregate_blocks(circuit, width, isolate=parametrized)
            context.blocked.append(blocked)
            for block in blocked.blocks:
                if block.instruction_indices[0] in parametrized:
                    inst = circuit[block.instruction_indices[0]]
                    tasks.append(
                        BlockTask(
                            index=len(tasks),
                            subcircuit=None,
                            device_qubits=tuple(sorted(block.qubits)),
                            kind="parametrized",
                            instruction=inst,
                            local_index=block.index,
                        )
                    )
                else:
                    sub, device_qubits = blocked.local_circuit(block)
                    tasks.append(
                        BlockTask(
                            len(tasks), sub, device_qubits, local_index=block.index
                        )
                    )
        elif self.slicer is not None:
            for piece in self.slicer(circuit):
                blocked = aggregate_blocks(piece.circuit, width)
                context.blocked.append(blocked)
                for block in blocked.blocks:
                    sub, device_qubits = blocked.local_circuit(block)
                    kind = "parametrized" if sub.is_parameterized() else "fixed"
                    tasks.append(
                        BlockTask(
                            len(tasks),
                            sub,
                            device_qubits,
                            kind,
                            local_index=block.index,
                        )
                    )
        else:
            blocked = aggregate_blocks(circuit, width)
            context.blocked.append(blocked)
            for block in blocked.blocks:
                sub, device_qubits = blocked.local_circuit(block)
                tasks.append(
                    BlockTask(len(tasks), sub, device_qubits, local_index=block.index)
                )

        context.tasks = tasks
        context.metadata["blocks"] = len(tasks)


def _dispatch_task(fixed_handler, parametrized_handler, task: BlockTask):
    """Route one task to its handler (module-level so pools can pickle it)."""
    if task.kind == "parametrized":
        if parametrized_handler is None:
            raise PipelineError(
                f"block task {task.index} is parametrized but the pipeline "
                "has no parametrized handler"
            )
        return parametrized_handler(task)
    return fixed_handler(task)


class PulseStage(Stage):
    """Map block handlers over the tasks through the configured executor.

    ``fixed_handler`` compiles a bound block to a
    :class:`~repro.core.compiler.BlockCompileOutcome` (or a strategy plan
    entry); ``parametrized_handler`` handles parameter-dependent tasks.
    Both must be picklable (module-level functions, or ``functools.partial``
    over picklable state) for the process executor to work.

    ``block_compiler`` (optional) is the
    :class:`~repro.core.compiler.BlockPulseCompiler` behind
    ``fixed_handler``, exposed so the batch scheduler
    (:class:`repro.pipeline.scheduler.BlockScheduler`) can compute block
    identities and fan deduplicated results back out.  Single-circuit
    ``run`` never consults it.
    """

    name = "pulse"

    def __init__(
        self,
        fixed_handler: Callable,
        executor: BlockExecutor | None = None,
        parametrized_handler: Callable | None = None,
        block_compiler=None,
    ):
        self.fixed_handler = fixed_handler
        self.parametrized_handler = parametrized_handler
        self.block_compiler = block_compiler
        self.executor = executor if executor is not None else SerialExecutor()
        self._dispatch = partial(
            _dispatch_task, fixed_handler, parametrized_handler
        )

    def _job_dispatch_allowed(self) -> bool:
        """Whether fixed tasks may travel as serializable block jobs.

        Only when ``fixed_handler`` is exactly the standard block compile
        over ``block_compiler`` — strategies that plug in plan-building or
        otherwise custom fixed handlers keep their handler on the closure
        path — and the compiler is a plain
        :class:`~repro.core.compiler.BlockPulseCompiler` (subclasses that
        override the compile path keep their overrides in effect).
        """
        from repro.core.compiler import BlockPulseCompiler
        from repro.pipeline.strategies import compile_fixed_block

        compiler = self.block_compiler
        if not isinstance(compiler, BlockPulseCompiler):
            return False
        handler = self.fixed_handler
        if not (
            isinstance(handler, partial)
            and handler.func is compile_fixed_block
            and len(handler.args) == 1
            and handler.args[0] is compiler
            and not handler.keywords
        ):
            return False
        cls = type(compiler)
        return (
            cls.compile_block is BlockPulseCompiler.compile_block
            and cls.make_job is BlockPulseCompiler.make_job
            and cls.compile_job is BlockPulseCompiler.compile_job
        )

    def _run_tasks(self, tasks: list) -> list:
        """Dispatch the task list: jobs for standard fixed work, closures
        for everything else (parametrized, trivial, custom handlers)."""
        if not self._job_dispatch_allowed():
            return self.executor.map(self._dispatch, tasks)
        jobs: list = []
        job_idx: list = []
        for i, task in enumerate(tasks):
            if task.kind != "fixed" or task.subcircuit is None:
                continue
            job = self.block_compiler.make_job(
                task.subcircuit, task.device_qubits
            )
            if job is None:
                # Trivial (empty / zero-duration) block: the closure path
                # below compiles it inline for free.
                continue
            jobs.append(job)
            job_idx.append(i)
        results: list = [None] * len(tasks)
        if jobs:
            outcomes = self.executor.dispatch_jobs(
                jobs, cache=self.block_compiler.cache
            )
            for i, outcome in zip(job_idx, outcomes):
                results[i] = outcome
        for i, task in enumerate(tasks):
            if results[i] is None:
                results[i] = self._dispatch(task)
        return results

    def run(self, context: PipelineContext) -> None:
        if context.tasks is None:
            raise PipelineError("a blocking stage must run before the pulse stage")
        cache = getattr(self.block_compiler, "cache", None)
        # Pin warm-start candidates to the pre-pass cache state so the
        # compiled pulses do not depend on which executor ran the map
        # (see PulseCache.freeze_neighbors).
        if cache is not None:
            cache.freeze_neighbors()
        try:
            context.block_results = self._run_tasks(context.tasks)
        finally:
            if cache is not None:
                cache.thaw_neighbors()
        context.executor_info = self.executor.describe()


def lookup_schedules(circuit: QuantumCircuit) -> list:
    """Per-gate Table-1 lookup pulses for a bound circuit, ASAP-scheduled."""
    scheduled = asap_schedule(circuit)
    return [
        lookup_schedule(entry.instruction.qubits, entry.duration_ns)
        for entry in scheduled.entries
        if entry.duration_ns > 0
    ]


def lookup_program(circuit: QuantumCircuit) -> PulseProgram:
    """The pure lookup-table pulse program for a bound circuit.

    The gate-based baseline, and the strictly-not-worse floor every GRAPE
    strategy falls back to (paper section 5.2).
    """
    return PulseProgram.sequence(lookup_schedules(circuit))


class GateScheduleStage(Stage):
    """Produce per-gate lookup schedules for the bound working circuit."""

    name = "gate-schedule"

    def run(self, context: PipelineContext) -> None:
        context.schedules = lookup_schedules(context.working)


class AssembleStage(Stage):
    """Sequence block schedules into the final program.

    With ``fallback=True`` the assembled program is compared against the
    lookup-table baseline of the working circuit and replaced by it when
    blocking cost more slack than GRAPE recovered — the paper's guarantee
    that pulse compilation is never worse than gate-based compilation.
    """

    name = "assemble"

    def __init__(self, fallback: bool = True):
        self.fallback = fallback

    def run(self, context: PipelineContext) -> None:
        schedules = context.schedules
        if schedules is None:
            if context.block_results is None:
                raise PipelineError(
                    "a pulse or gate-schedule stage must run before assembly"
                )
            schedules = [outcome.schedule for outcome in context.block_results]
            context.schedules = schedules
        program = PulseProgram.sequence(schedules)
        context.used_fallback = False
        if self.fallback:
            baseline = lookup_program(context.working)
            if baseline.duration_ns < program.duration_ns:
                program = baseline
                context.used_fallback = True
        context.program = program
