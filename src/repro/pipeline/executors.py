"""Pluggable executors for independent per-block work.

Blocking partitions a circuit into subcircuits whose GRAPE searches share
nothing but the pulse cache, so they parallelize embarrassingly.  The
executors here expose exactly one operation — order-preserving ``map`` —
which keeps the pipeline deterministic: results come back aligned with
their tasks regardless of completion order.

Choosing an executor
--------------------
``serial``
    The seed behavior; zero overhead, best for one block or tiny budgets.
``thread``
    ``concurrent.futures.ThreadPoolExecutor``.  Shares the in-memory pulse
    cache; speedup is bounded by how much of GRAPE's time the BLAS layer
    spends outside the GIL.
``process``
    ``concurrent.futures.ProcessPoolExecutor`` (fork start method where
    available).  True CPU parallelism; the submitted callables and their
    results must be picklable, and in-memory cache writes made by workers
    stay in the workers — pair this executor with a persistent cache
    directory (``REPRO_CACHE_DIR``) so GRAPE results survive the pool.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable

from repro.config import EXECUTOR_CHOICES, get_pipeline_config
from repro.errors import PipelineError

#: Per-worker deserialized task function (set by the pool initializer).
_process_worker_fn = None


def _init_process_worker(payload: bytes) -> None:
    """Deserialize the mapped function once per worker process.

    Mapping the function itself would re-pickle it (and everything it
    closes over — e.g. a block compiler with its cache) once per task;
    routing it through the pool initializer ships it once per worker.
    """
    global _process_worker_fn
    _process_worker_fn = pickle.loads(payload)


def _run_process_item(item):
    return _process_worker_fn(item)


class BlockExecutor:
    """Order-preserving map over independent block tasks."""

    name = "abstract"

    def map(self, fn: Callable, items: Iterable) -> list:
        """Apply ``fn`` to every item, returning results in input order."""
        raise NotImplementedError

    def describe(self) -> dict:
        """Telemetry fragment identifying this executor."""
        return {"executor": self.name}


class SerialExecutor(BlockExecutor):
    """In-line execution — the seed behavior and the fallback everywhere."""

    name = "serial"

    def map(self, fn: Callable, items: Iterable) -> list:
        return [fn(item) for item in items]


class _PoolBlockExecutor(BlockExecutor):
    """Shared sizing logic for the pool-backed executors."""

    def __init__(self, max_workers: int | None = None):
        if max_workers is None:
            max_workers = get_pipeline_config().max_workers
        self.max_workers = max_workers or os.cpu_count() or 1

    def describe(self) -> dict:
        return {"executor": self.name, "max_workers": self.max_workers}

    def _workers_for(self, count: int) -> int:
        return max(1, min(self.max_workers, count))


class ThreadPoolBlockExecutor(_PoolBlockExecutor):
    """Thread-pool dispatch sharing one in-memory pulse cache."""

    name = "thread"

    def map(self, fn: Callable, items: Iterable) -> list:
        items = list(items)
        if len(items) <= 1:
            return [fn(item) for item in items]
        with ThreadPoolExecutor(max_workers=self._workers_for(len(items))) as pool:
            return list(pool.map(fn, items))


class ProcessPoolBlockExecutor(_PoolBlockExecutor):
    """Process-pool dispatch for GIL-free parallel GRAPE."""

    name = "process"

    def map(self, fn: Callable, items: Iterable) -> list:
        items = list(items)
        if len(items) <= 1:
            return [fn(item) for item in items]
        # Fork (where available) inherits the loaded numpy state instead of
        # re-importing it per worker; spawn platforms fall back to default.
        context = None
        if "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(
            max_workers=self._workers_for(len(items)),
            mp_context=context,
            initializer=_init_process_worker,
            initargs=(pickle.dumps(fn),),
        ) as pool:
            return list(pool.map(_run_process_item, items))


def resolve_executor(
    spec: str | BlockExecutor | None = None, max_workers: int | None = None
) -> BlockExecutor:
    """Turn an executor spec into an executor instance.

    ``spec`` may be an executor instance (returned as-is), one of the names
    in :data:`repro.config.EXECUTOR_CHOICES`, or ``None`` to use the active
    pipeline configuration (``REPRO_EXECUTOR``, default serial).
    """
    if isinstance(spec, BlockExecutor):
        return spec
    if spec is None:
        spec = get_pipeline_config().executor
    if spec == "serial":
        return SerialExecutor()
    if spec == "thread":
        return ThreadPoolBlockExecutor(max_workers)
    if spec == "process":
        return ProcessPoolBlockExecutor(max_workers)
    raise PipelineError(
        f"unknown executor {spec!r}; available: {EXECUTOR_CHOICES}"
    )
