"""Pluggable executors for independent per-block work.

Blocking partitions a circuit into subcircuits whose GRAPE searches share
nothing but the pulse cache, so they parallelize embarrassingly.  The
executors here expose exactly one operation — order-preserving ``map`` —
which keeps the pipeline deterministic: results come back aligned with
their tasks regardless of completion order.

Choosing an executor
--------------------
``serial``
    The seed behavior; zero overhead, best for one block or tiny budgets.
``auto``
    Host-aware policy (the service default).  On 1–2 CPU hosts it runs
    maps inline and steers the scheduler toward the cross-block *batched*
    GRAPE kernel (:mod:`repro.pulse.grape.batched`) — the only parallelism
    that pays without spare cores.  On larger hosts, maps of ≥3 items
    delegate to the shared ``thread-persistent`` pool; tiny maps stay
    inline.
``thread``
    ``concurrent.futures.ThreadPoolExecutor``.  Shares the in-memory pulse
    cache; speedup is bounded by how much of GRAPE's time the BLAS layer
    spends outside the GIL.
``process``
    ``concurrent.futures.ProcessPoolExecutor`` (fork start method where
    available).  True CPU parallelism; the submitted callables and their
    results must be picklable, and in-memory cache writes made by workers
    stay in the workers — pair this executor with a persistent cache
    directory (``REPRO_CACHE_DIR``) so GRAPE results survive the pool.
``thread-persistent`` / ``process-persistent``
    The persistent variants keep ONE pool alive across every ``map`` call
    instead of spinning a fresh pool up and down per call.  Variational
    workloads (flexible partial compilation's probes, repeated runtime
    compiles against one precompiled plan) issue many small maps, so pool
    startup — worker fork + numpy re-init for processes — used to be paid
    per iteration; now it is paid once per pipeline run.  The pool is
    created lazily on the first multi-item map (``pools_created``
    telemetry, mirrored into :func:`repro.perf.get_perf_registry`),
    released by ``close()`` or a ``with`` block, and recreated
    transparently if used again after closing.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable

from repro.config import EXECUTOR_CHOICES, get_pipeline_config
from repro.errors import PipelineError
from repro.perf import get_perf_registry

#: Per-worker deserialized task function (set by the pool initializer).
_process_worker_fn = None


def _init_process_worker(payload: bytes) -> None:
    """Deserialize the mapped function once per worker process.

    Mapping the function itself would re-pickle it (and everything it
    closes over — e.g. a block compiler with its cache) once per task;
    routing it through the pool initializer ships it once per worker.
    """
    global _process_worker_fn
    _process_worker_fn = pickle.loads(payload)


def _run_process_item(item):
    return _process_worker_fn(item)


class Dispatcher:
    """Where serializable block jobs go to be compiled.

    The dispatch contract of the fleet refactor: callers hand over
    picklable :class:`~repro.pipeline.jobs.BlockJob` descriptors instead
    of closures, so implementations are free to run them in the calling
    thread, a local pool, or a different process entirely
    (:class:`repro.fleet.QueueDispatcher`).  Every in-process executor
    implements it via its own ``map``.
    """

    def dispatch_jobs(self, jobs: list, cache=None) -> list:
        """Compile every job, returning outcomes in input order.

        ``cache`` is the caller's pulse cache, shared with in-process
        runners so their hits and writes land where the caller looks;
        out-of-process dispatchers ignore it and rely on each job's
        ``cache_dir``.
        """
        raise NotImplementedError


class BlockExecutor(Dispatcher):
    """Order-preserving map over independent block tasks."""

    name = "abstract"
    #: Whether the scheduler should stack same-shape GRAPE searches into the
    #: cross-block batched kernel instead of mapping per-block tasks.  True
    #: for executors that run tasks in the calling thread (serial/auto
    #: inline): batching turns their sequential small GEMMs into big ones.
    #: False for the pool executors — stacking would serialize work the pool
    #: could genuinely overlap.
    prefers_batched = False
    #: Whether speculative feasibility-doubling probes (see
    #: :func:`repro.pulse.grape.time_search.minimum_time_pulse`) are worth
    #: their extra GRAPE iterations on this executor.
    speculation_helps = True

    def map(self, fn: Callable, items: Iterable) -> list:
        """Apply ``fn`` to every item, returning results in input order."""
        raise NotImplementedError

    def dispatch_jobs(self, jobs: list, cache=None) -> list:
        """Run block jobs through this executor's own ``map``.

        ``partial`` over the module-level runner keeps the mapped callable
        picklable, so the process-pool executors ship jobs unchanged.
        """
        from functools import partial

        from repro.pipeline.jobs import run_block_job

        return self.map(partial(run_block_job, cache=cache), jobs)

    def describe(self) -> dict:
        """Telemetry fragment identifying this executor."""
        return {"executor": self.name}


class SerialExecutor(BlockExecutor):
    """In-line execution — the seed behavior and the fallback everywhere."""

    name = "serial"
    prefers_batched = True

    def map(self, fn: Callable, items: Iterable) -> list:
        return [fn(item) for item in items]


class _PoolBlockExecutor(BlockExecutor):
    """Shared sizing logic for the pool-backed executors."""

    def __init__(self, max_workers: int | None = None):
        if max_workers is None:
            max_workers = get_pipeline_config().max_workers
        self.max_workers = max_workers or os.cpu_count() or 1

    def describe(self) -> dict:
        return {"executor": self.name, "max_workers": self.max_workers}

    def _workers_for(self, count: int) -> int:
        return max(1, min(self.max_workers, count))


class ThreadPoolBlockExecutor(_PoolBlockExecutor):
    """Thread-pool dispatch sharing one in-memory pulse cache."""

    name = "thread"

    def map(self, fn: Callable, items: Iterable) -> list:
        items = list(items)
        if len(items) <= 1:
            return [fn(item) for item in items]
        with ThreadPoolExecutor(max_workers=self._workers_for(len(items))) as pool:
            return list(pool.map(fn, items))


class ProcessPoolBlockExecutor(_PoolBlockExecutor):
    """Process-pool dispatch for GIL-free parallel GRAPE."""

    name = "process"

    def map(self, fn: Callable, items: Iterable) -> list:
        items = list(items)
        if len(items) <= 1:
            return [fn(item) for item in items]
        # Fork (where available) inherits the loaded numpy state instead of
        # re-importing it per worker; spawn platforms fall back to default.
        context = None
        if "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(
            max_workers=self._workers_for(len(items)),
            mp_context=context,
            initializer=_init_process_worker,
            initargs=(pickle.dumps(fn),),
        ) as pool:
            return list(pool.map(_run_process_item, items))


def _run_persistent_chunk(payload: bytes, items: list) -> list:
    """Run one interleaved chunk of a persistent-pool map in a worker.

    The handler is unpickled once per *chunk* (≤ ``max_workers`` times per
    map — the same shipping cost as the one-shot pool's initializer), not
    once per item.  No worker-side memoization: real handlers embed
    mutable state (block compilers carry pulse-cache telemetry), so their
    pickle bytes differ between maps and a digest cache would never hit.
    """
    fn = pickle.loads(payload)
    return [fn(item) for item in items]


class _PersistentPoolMixin:
    """One lazily created pool, reused across every ``map`` call.

    Subclasses provide ``_make_pool()``.  ``pools_created`` / ``map_calls``
    make the amortization checkable: a pipeline run that issues N maps must
    end with ``pools_created == 1``.
    """

    def _init_persistent(self) -> None:
        self._pool = None
        # Shared instances (see resolve_executor) may be used from several
        # threads; the lock keeps pool creation/teardown race-free so a
        # lost race can never orphan a pool of live workers.
        self._pool_lock = threading.Lock()
        self.pools_created = 0
        self.map_calls = 0

    def _ensure_pool(self):
        pool = self._pool
        if pool is None:
            with self._pool_lock:
                pool = self._pool
                if pool is None:
                    pool = self._pool = self._make_pool()
                    self.pools_created += 1
                    get_perf_registry().count(
                        f"executor.{self.name}.pools_created"
                    )
        return pool

    def close(self) -> None:
        """Shut the pool down (joins workers).  ``map`` after close re-creates.

        Idempotent and race-tolerant by design: the pool is detached under
        the lock (so concurrent/repeated ``close`` calls see ``None`` and
        no-op), and the shutdown itself is shielded — the ``atexit`` hook
        can race an explicit teardown (test teardown then interpreter
        exit), where ``Executor.shutdown`` may raise on an interpreter
        already finalizing its thread machinery.
        """
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            try:
                pool.shutdown(wait=True)
            except Exception:
                # Late-interpreter shutdown debris; the workers die with the
                # process either way, and close() must never raise.
                pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # Neither the live pool nor the lock can cross a pickle boundary (e.g.
    # an executor that ends up inside a worker payload); the receiver
    # lazily re-creates both.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_pool"] = None
        del state["_pool_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._pool_lock = threading.Lock()

    def describe(self) -> dict:
        return {
            "executor": self.name,
            "max_workers": self.max_workers,
            "pools_created": self.pools_created,
            "map_calls": self.map_calls,
        }


class PersistentThreadPoolBlockExecutor(_PersistentPoolMixin, _PoolBlockExecutor):
    """Thread pool created once and reused across ``map`` calls."""

    name = "thread-persistent"

    def __init__(self, max_workers: int | None = None):
        super().__init__(max_workers)
        self._init_persistent()

    def _make_pool(self) -> ThreadPoolExecutor:
        return ThreadPoolExecutor(max_workers=self.max_workers)

    def map(self, fn: Callable, items: Iterable) -> list:
        items = list(items)
        self.map_calls += 1
        if len(items) <= 1:
            return [fn(item) for item in items]
        return list(self._ensure_pool().map(fn, items))


class PersistentProcessPoolBlockExecutor(_PersistentPoolMixin, _PoolBlockExecutor):
    """Process pool created once and reused across ``map`` calls.

    Tasks are dispatched as up-to-``max_workers`` interleaved chunks
    (``items[j::workers]``), which balances heterogeneous block costs and
    ships (and unpickles) the map function once per chunk rather than
    once per item.  Results are reassembled in input order.
    """

    name = "process-persistent"

    def __init__(self, max_workers: int | None = None):
        super().__init__(max_workers)
        self._init_persistent()

    def _make_pool(self) -> ProcessPoolExecutor:
        context = None
        if "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
        return ProcessPoolExecutor(max_workers=self.max_workers, mp_context=context)

    def map(self, fn: Callable, items: Iterable) -> list:
        items = list(items)
        self.map_calls += 1
        if len(items) <= 1:
            return [fn(item) for item in items]
        pool = self._ensure_pool()
        payload = pickle.dumps(fn)
        workers = self._workers_for(len(items))
        futures = [
            pool.submit(_run_persistent_chunk, payload, items[j::workers])
            for j in range(workers)
        ]
        results: list = [None] * len(items)
        for j, future in enumerate(futures):
            for offset, value in enumerate(future.result()):
                results[j + offset * workers] = value
        return results


class AutoExecutor(BlockExecutor):
    """Host-aware dispatch policy: serial, in-kernel batching, or a pool.

    The right executor depends on the host, not the workload author: on a
    1–2 CPU machine every pool loses to serial (pool startup and IPC with
    no cores to win back — the measured pipeline benches showed 0.88–0.96×
    for pools and speculation there), while on a many-core host the
    persistent thread pool wins for large maps.  ``auto`` decides per host
    and per map:

    * ``cpu_count() <= 2`` → *inline mode*: every map runs in the calling
      thread, the scheduler is told to prefer the cross-block **batched**
      GRAPE kernel (big GEMMs are the only parallelism that pays here),
      and speculative time-search probes are declined (they only trade
      extra GRAPE work for wall-clock when cores are free).
    * otherwise → maps of ≥3 items delegate to the shared
      ``thread-persistent`` pool (threads keep in-memory pulse-cache writes
      visible, unlike processes, so auto never silently changes caching
      semantics); tiny maps still run inline.

    Without an explicit ``max_workers`` the delegated pool is sized from
    *observed demand* rather than pinned to ``cpu_count`` up front: the
    first delegation grants a small pool, and the grant doubles toward
    ``min(cpu_count, largest map seen)`` as bigger maps arrive.  A
    many-core host compiling 4-block circuits keeps 4 threads, not 64;
    the first genuinely wide map grows the grant (each step resolves a
    larger shared pool from the persistent registry, so the growth cost
    is pool creation, paid at most ``log2`` times).
    """

    name = "auto"

    #: First worker grant on a delegating host (before demand is observed).
    INITIAL_GRANT = 4

    def __init__(self, max_workers: int | None = None):
        self.max_workers = max_workers
        self.cpu_count = os.cpu_count() or 1
        self.prefers_inline = self.cpu_count <= 2
        self.prefers_batched = self.prefers_inline
        self.speculation_helps = not self.prefers_inline
        self.inline_maps = 0
        self.delegated_maps = 0
        self.largest_map = 0
        self.granted_workers = max_workers
        self.pool_growths = 0

    def _grown_workers(self, count: int) -> int:
        """The worker grant for a delegated map of ``count`` items."""
        if self.max_workers is not None:
            return self.max_workers
        self.largest_map = max(self.largest_map, count)
        target = min(self.cpu_count, self.largest_map)
        granted = self.granted_workers or min(self.INITIAL_GRANT, self.cpu_count)
        while granted < target:
            granted = min(granted * 2, self.cpu_count)
            self.pool_growths += 1
        self.granted_workers = granted
        return granted

    def map(self, fn: Callable, items: Iterable) -> list:
        items = list(items)
        if self.prefers_inline or len(items) < 3:
            self.inline_maps += 1
            return [fn(item) for item in items]
        self.delegated_maps += 1
        workers = self._grown_workers(len(items))
        return resolve_executor("thread-persistent", workers).map(fn, items)

    def describe(self) -> dict:
        return {
            "executor": self.name,
            "cpu_count": self.cpu_count,
            "mode": "inline" if self.prefers_inline else "thread-persistent",
            "inline_maps": self.inline_maps,
            "delegated_maps": self.delegated_maps,
            "granted_workers": self.granted_workers,
            "largest_map": self.largest_map,
            "pool_growths": self.pool_growths,
        }


#: Process-wide persistent executors, keyed by (name, resolved workers).
#: Compilers re-resolve their executor spec on every ``compile`` call, so
#: persistent executors named by string / ``REPRO_EXECUTOR`` must resolve
#: to ONE shared instance — otherwise each variational iteration would
#: build (and leak) a fresh pool, defeating the amortization entirely.
_persistent_executors: dict = {}
_persistent_registry_lock = threading.Lock()
_PERSISTENT_CLASSES = {
    "thread-persistent": PersistentThreadPoolBlockExecutor,
    "process-persistent": PersistentProcessPoolBlockExecutor,
}


def persistent_executor_stats() -> list:
    """Telemetry for every shared persistent pool created so far.

    One ``describe()`` dict per registered executor (``pools_created`` /
    ``map_calls`` included), so CLI surfaces like ``cache-stats`` can show
    how well the pool amortization is working process-wide.
    """
    with _persistent_registry_lock:
        return [executor.describe() for executor in _persistent_executors.values()]


def shutdown_persistent_executors() -> None:
    """Close every shared persistent pool (they revive lazily if reused).

    Registered via ``atexit`` so named pools never outlive the process
    uncleanly; callers managing their own lifecycle can invoke it earlier.
    Idempotent: calling it twice (test teardown, then the ``atexit`` hook
    at interpreter exit) finds already-closed pools and does nothing, and
    one failing close never prevents the remaining pools from shutting
    down.
    """
    with _persistent_registry_lock:
        executors = list(_persistent_executors.values())
    for executor in executors:
        try:
            executor.close()
        except Exception:
            # close() itself shields shutdown errors; this guards against
            # exotic subclasses so the sweep always reaches every pool.
            pass


atexit.register(shutdown_persistent_executors)


def resolve_executor(
    spec: str | BlockExecutor | None = None, max_workers: int | None = None
) -> BlockExecutor:
    """Turn an executor spec into an executor instance.

    ``spec`` may be an executor instance (returned as-is), one of the names
    in :data:`repro.config.EXECUTOR_CHOICES`, or ``None`` to use the active
    pipeline configuration (``REPRO_EXECUTOR``, default serial).  The
    stateless names resolve to fresh instances; the ``*-persistent`` names
    resolve to one shared instance per (name, worker count) so the pool
    survives — and amortizes across — repeated ``compile`` calls.
    """
    if isinstance(spec, BlockExecutor):
        return spec
    if spec is None:
        spec = get_pipeline_config().executor
    if spec == "serial":
        return SerialExecutor()
    if spec == "auto":
        return AutoExecutor(max_workers)
    if spec == "thread":
        return ThreadPoolBlockExecutor(max_workers)
    if spec == "process":
        return ProcessPoolBlockExecutor(max_workers)
    if spec in _PERSISTENT_CLASSES:
        # Normalize the worker count before keying: ``None`` means "the
        # configured/default count *right now*", so an explicit request for
        # that same count aliases the same pool, and a later config change
        # resolves to a new key (new pool) instead of a stale one.
        if max_workers is None:
            workers = get_pipeline_config().max_workers or os.cpu_count() or 1
        else:
            workers = max_workers
        key = (spec, workers)
        with _persistent_registry_lock:
            executor = _persistent_executors.get(key)
            if executor is None:
                executor = _PERSISTENT_CLASSES[spec](workers)
                _persistent_executors[key] = executor
        return executor
    raise PipelineError(
        f"unknown executor {spec!r}; available: {EXECUTOR_CHOICES}"
    )
