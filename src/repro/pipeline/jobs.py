"""Serializable block-compilation jobs — dispatch as data, not closures.

The dispatch path historically handed *closures* to
:meth:`~repro.pipeline.executors.BlockExecutor.map`, which kept every bit
of work pinned to the service's address space.  :class:`BlockJob` is the
closure turned inside out: a picklable descriptor carrying everything a
bare process needs to compile one deduplicated block — the dedup/cache
key, the phase-canonical target unitary, the device (control context
source), GRAPE settings with the preset-deferred fields materialized,
time-search hyperparameters, and the resolved warm-start policy.

``run_block_job`` is the single execution function for every venue: the
in-process executors map it over jobs directly
(:meth:`~repro.pipeline.executors.BlockExecutor.dispatch_jobs`), process
pools pickle it once per worker, and the :mod:`repro.fleet` worker loop
calls it for jobs pulled off the file-backed queue.  GRAPE is
deterministic for a given (target, context, settings), so the same job
compiles to the same pulse bit-for-bit no matter which venue ran it.

This module also owns the JSON encoding of schedules, outcomes, and
cache entries (moved here from the scheduler): job results must cross
process boundaries through completion records, and JSON's repr-based
floats round-trip control samples bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _tuplify(obj):
    """Recursively turn JSON lists back into the tuples dedup keys use."""
    if isinstance(obj, list):
        return tuple(_tuplify(item) for item in obj)
    return obj


def _encode_schedule(schedule) -> dict:
    return {
        "qubits": list(schedule.qubits),
        "dt_ns": schedule.dt_ns,
        "controls_shape": list(schedule.controls.shape),
        # float(x) keeps each sample a Python float; json round-trips those
        # via repr, so reloaded controls are bit-identical.
        "controls": [float(x) for x in schedule.controls.ravel()],
        "channel_names": list(schedule.channel_names),
        "source": schedule.source,
    }


def _decode_schedule(data: dict):
    from repro.pulse.schedule import PulseSchedule as Schedule

    controls = np.array(data["controls"], dtype=float).reshape(
        tuple(data["controls_shape"])
    )
    return Schedule(
        qubits=tuple(data["qubits"]),
        dt_ns=data["dt_ns"],
        controls=controls,
        channel_names=tuple(data["channel_names"]),
        source=data["source"],
    )


def _encode_outcome(outcome) -> dict:
    return {
        "schedule": _encode_schedule(outcome.schedule),
        "duration_ns": outcome.duration_ns,
        "gate_based_ns": outcome.gate_based_ns,
        "iterations": outcome.iterations,
        "cache_hit": outcome.cache_hit,
        "used_grape": outcome.used_grape,
        "fidelity": outcome.fidelity,
    }


def _decode_outcome(data: dict):
    from repro.core.compiler import BlockCompileOutcome

    return BlockCompileOutcome(
        schedule=_decode_schedule(data["schedule"]),
        duration_ns=data["duration_ns"],
        gate_based_ns=data["gate_based_ns"],
        iterations=data["iterations"],
        cache_hit=data["cache_hit"],
        used_grape=data["used_grape"],
        fidelity=data["fidelity"],
    )


def _encode_cache_entry(entry) -> dict:
    return {
        "schedule": _encode_schedule(entry.schedule),
        "duration_ns": entry.duration_ns,
        "fidelity": entry.fidelity,
        "converged": entry.converged,
        "iterations": entry.iterations,
    }


def _decode_cache_entry(data: dict):
    from repro.core.cache import CacheEntry

    return CacheEntry(
        schedule=_decode_schedule(data["schedule"]),
        duration_ns=data["duration_ns"],
        fidelity=data["fidelity"],
        converged=data["converged"],
        iterations=data["iterations"],
    )


@dataclass(eq=False)
class BlockJob:
    """Everything one process needs to compile one deduplicated block.

    Attributes
    ----------
    key:
        The dedup/cache identity (phase-canonical unitary fingerprint plus
        control context) — exactly the pulse-cache key, so whoever runs
        the job hits and fills the same shared library slot.
    target:
        The block's target unitary on its local qubits.
    device_qubits:
        The device qubits behind each local index (sorted ascending).
    gate_based_ns:
        The block's gate-based critical path — the strictly-not-worse
        judgment threshold and the time-search upper bound.
    device:
        The device whose control context the job compiles against; the
        runner rebuilds the control set from it and ``device_qubits``.
    settings:
        GRAPE settings with the preset-deferred fields (``dt_ns``,
        ``target_fidelity``) materialized to concrete values, so a worker
        process cannot resolve them against a *different* active preset.
    hyperparameters:
        Time-search hyperparameters (learning rates, iteration budget).
    warm_start / warm_start_max_dist:
        The warm-start policy resolved to concrete values at job-build
        time — jobs never consult the builder's pipeline configuration.
    preset:
        The active preset name at job-build time.  Fleet workers apply it
        before compiling (it still controls ``time_search_precision_ns``);
        in-process dispatch inherits it from the running interpreter.
    cache_dir:
        Optional shared pulse-library directory.  Set by the fleet
        dispatcher before enqueueing so detached workers persist pulses
        where the service can see them; ``None`` means a private
        in-memory cache.
    """

    key: tuple
    target: np.ndarray
    device_qubits: tuple
    gate_based_ns: float
    device: object
    settings: object
    hyperparameters: object
    warm_start: bool
    warm_start_max_dist: float
    preset: str
    cache_dir: str | None = None

    @property
    def name(self) -> str:
        """A content-derived label (the cache entry's library file name)."""
        from repro.core.cache import _key_filename

        return _key_filename(self.key)


def run_block_job(job: BlockJob, cache=None):
    """Compile one :class:`BlockJob` to a ``BlockCompileOutcome``.

    ``cache`` lets in-process dispatch (and long-lived fleet workers)
    share one pulse cache across jobs; when ``None`` the job's
    ``cache_dir`` decides between a shared on-disk library and a private
    in-memory cache.  Runs the exact resolved-block path of
    :meth:`~repro.core.compiler.BlockPulseCompiler.compile_block`, so the
    result is bit-identical to compiling the block in-process.
    """
    from repro.core.cache import PersistentPulseCache, PulseCache
    from repro.core.compiler import BlockPulseCompiler

    if cache is None:
        if job.cache_dir:
            cache = PersistentPulseCache(job.cache_dir)
        else:
            cache = PulseCache()
    compiler = BlockPulseCompiler(
        job.device,
        job.settings,
        job.hyperparameters,
        cache,
        warm_start=job.warm_start,
        warm_start_max_dist=job.warm_start_max_dist,
    )
    return compiler.compile_job(job)
