"""Declarative pipeline configurations for the four compilation strategies.

Each factory returns a :class:`~repro.pipeline.pipeline.CompilationPipeline`
whose stage stack *is* the strategy — the compiler classes in
:mod:`repro.core` are thin wrappers that build one of these pipelines and
convert its context into result records:

==================  =====================================================
strategy            stages
==================  =====================================================
gate-based          [transpile?] → bind → gate-schedule → assemble
full GRAPE          [transpile?] → bind → block → pulse → assemble+fallback
strict precompile   block(isolate θ) → pulse(fixed ∥, θ→lookup plan)
flexible precompile block(θ-slices) → pulse(fixed ∥, θ→tuning)
==================  =====================================================

The pulse stage dispatches fixed blocks through the configured
:class:`~repro.pipeline.executors.BlockExecutor`, which is where the
independent per-block GRAPE searches parallelize.
"""

from __future__ import annotations

from functools import partial
from typing import Callable

from repro.pipeline.executors import BlockExecutor, resolve_executor
from repro.pipeline.pipeline import CompilationPipeline
from repro.pipeline.stages import (
    AssembleStage,
    BindStage,
    BlockingStage,
    BlockTask,
    GateScheduleStage,
    PulseStage,
    TranspileStage,
)


def compile_fixed_block(block_compiler, task: BlockTask):
    """Compile one bound block task (module-level so pools can pickle it)."""
    return block_compiler.compile_block(task.subcircuit, task.device_qubits)


def _prefix(pass_manager) -> list:
    return [TranspileStage(pass_manager)] if pass_manager is not None else []


def gate_based_pipeline(pass_manager=None) -> CompilationPipeline:
    """Lookup-table compilation: bind, ASAP-schedule, concatenate."""
    return CompilationPipeline(
        _prefix(pass_manager)
        + [BindStage(), GateScheduleStage(), AssembleStage(fallback=False)],
        name="gate",
    )


def full_grape_pipeline(
    block_compiler,
    max_width: int | None = None,
    executor: str | BlockExecutor | None = None,
    pass_manager=None,
) -> CompilationPipeline:
    """Blocked minimum-time GRAPE over the whole bound circuit."""
    return CompilationPipeline(
        _prefix(pass_manager)
        + [
            BindStage(),
            BlockingStage(max_width),
            PulseStage(
                partial(compile_fixed_block, block_compiler),
                executor=resolve_executor(executor),
                block_compiler=block_compiler,
            ),
            AssembleStage(fallback=True),
        ],
        name="grape",
    )


def strict_precompile_pipeline(
    block_compiler,
    parametrized_handler: Callable,
    max_width: int | None = None,
    executor: str | BlockExecutor | None = None,
) -> CompilationPipeline:
    """Strict partial precompilation: isolate θ-gates, GRAPE the rest.

    ``parametrized_handler`` maps an isolated ``Rz(θ)`` task to the
    strategy's runtime plan entry (a lookup pulse slot).
    """
    return CompilationPipeline(
        [
            BlockingStage(max_width, isolate_parametrized=True),
            PulseStage(
                partial(compile_fixed_block, block_compiler),
                executor=resolve_executor(executor),
                parametrized_handler=parametrized_handler,
                block_compiler=block_compiler,
            ),
        ],
        name="strict-precompile",
    )


def flexible_precompile_pipeline(
    block_compiler,
    parametrized_handler: Callable,
    slicer: Callable,
    max_width: int | None = None,
    executor: str | BlockExecutor | None = None,
) -> CompilationPipeline:
    """Flexible partial precompilation over single-θ slices.

    ``slicer`` cuts the symbolic circuit at parameter-group boundaries
    (:func:`repro.core.slicing.flexible_slices`); ``parametrized_handler``
    tunes hyperparameters and produces the warm-start entry for each
    single-θ block.
    """
    return CompilationPipeline(
        [
            BlockingStage(max_width, slicer=slicer),
            PulseStage(
                partial(compile_fixed_block, block_compiler),
                executor=resolve_executor(executor),
                parametrized_handler=parametrized_handler,
                block_compiler=block_compiler,
            ),
        ],
        name="flexible-precompile",
    )
