"""Content-addressed compilation plans.

Variational workloads compile one ansatz thousands of times.  The
GRAPE-side redundancy is handled by the pulse cache and the block
scheduler's dedup memory, but every call still re-ran the *blocking* pass —
aggregation, per-block subcircuit extraction, and per-block dedup-key
computation (a matrix build + SHA-256 per block) — because circuit identity
was object identity.

A :class:`CompilationPlan` captures the binding-independent part of that
work once per ansatz *content*:

* block boundaries (instruction indices and the sorted device-qubit order
  of each block) — :func:`repro.blocking.aggregate.aggregate_blocks`
  partitions on gate qubits only, never on angle values, so the partition
  is identical for every binding of one symbolic circuit;
* the dedup key of every θ-independent block — the expensive
  unitary-fingerprint + control-context hash, also binding-independent;
* a ``parametrized`` marker for blocks whose gates depend on a symbolic
  parameter: their unitary changes with θ, so replay recomputes their keys
  per binding (the scheduler does this when a task arrives without a key).

Plans live in a :class:`PlanCache` keyed by
:meth:`~repro.circuits.circuit.QuantumCircuit.content_fingerprint` plus
everything the blocking output depends on (block width, device geometry and
drive limits, GRAPE time step and fidelity target, and a caller scope).
Replaying a plan rebuilds each block's bound subcircuit directly from the
stored indices and hands the scheduler pre-keyed tasks — the hot
variational loop skips straight to dispatch.

Shared by :class:`repro.service.facade.CompilationService` (full-GRAPE
strategy) and :class:`repro.pipeline.session.VariationalSession`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.circuits.circuit import QuantumCircuit
from repro.pipeline.stages import BlockTask, PipelineContext


def device_token(device) -> tuple:
    """The plan-key component for a device: geometry plus drive limits.

    Everything :func:`~repro.pulse.control.build_control_set` folds into a
    block's control context must appear here — a plan's cached dedup keys
    embed per-block control contexts, so two devices with different tokens
    must never share a plan.
    """
    return (
        type(device).__name__,
        device.num_qubits,
        device.topology.edges,
        device.levels,
        float(device.max_charge).hex(),
        float(device.max_flux).hex(),
        float(device.max_coupling).hex(),
        float(device.anharmonicity).hex(),
    )


def plan_key(circuit: QuantumCircuit, max_width: int, block_compiler, scope: str = "") -> tuple:
    """The cache identity of a blocking plan.

    ``circuit`` is the *symbolic* (pre-binding) circuit — every binding of
    one ansatz shares its fingerprint and therefore its plan.  The rest of
    the key covers every input the blocking output depends on: block width,
    device, and the GRAPE settings baked into per-block dedup keys.
    """
    settings = block_compiler.settings
    return (
        scope,
        circuit.content_fingerprint(),
        int(max_width),
        device_token(block_compiler.device),
        float(settings.resolved_dt()).hex(),
        float(settings.resolved_target()).hex(),
    )


@dataclass(frozen=True)
class PlanBlock:
    """One block of a plan: where it lives and what its identity is.

    ``dedup_key`` is the precomputed scheduler/cache key for θ-independent
    blocks (``None`` for trivial zero-duration blocks); ``parametrized``
    blocks store no key — their unitary depends on the binding, so replay
    leaves key computation to the scheduler.
    """

    instruction_indices: tuple
    qubit_order: tuple
    local_index: int
    parametrized: bool
    dedup_key: tuple | None


@dataclass(frozen=True)
class CompilationPlan:
    """The reusable blocking output for one circuit content + config."""

    key: tuple
    num_qubits: int
    blocks: tuple

    def apply(self, context: PipelineContext) -> None:
        """Populate ``context.tasks`` from the plan, skipping aggregation.

        ``context`` must already hold a bound working circuit (the bind
        stage ran).  Rebuilds each block's local subcircuit exactly as
        :meth:`~repro.blocking.aggregate.BlockedCircuit.local_circuit`
        would, and pre-keys every θ-independent task so the scheduler
        skips its per-block fingerprinting too.
        """
        bound = context.working
        tasks = []
        for spec in self.blocks:
            local = {q: i for i, q in enumerate(spec.qubit_order)}
            sub = QuantumCircuit(
                len(spec.qubit_order),
                name=f"{bound.name}_block{spec.local_index}",
            )
            for idx in spec.instruction_indices:
                inst = bound[idx]
                sub.append(inst.gate, tuple(local[q] for q in inst.qubits))
            task = BlockTask(
                index=len(tasks),
                subcircuit=sub,
                device_qubits=spec.qubit_order,
                local_index=spec.local_index,
            )
            if not spec.parametrized:
                task.dedup_key = spec.dedup_key
                task.dedup_key_known = True
            tasks.append(task)
        context.tasks = tasks
        context.metadata["blocks"] = len(tasks)
        context.metadata["plan_cache"] = "hit"


def build_plan(
    key: tuple, circuit: QuantumCircuit, context: PipelineContext, block_compiler
) -> CompilationPlan:
    """Capture a freshly-blocked context as a reusable plan.

    ``circuit`` is the symbolic input circuit (block indices refer to its
    instruction order, which binding preserves); ``context`` has been
    through bind + plain blocking, so ``context.blocked[0].blocks`` aligns
    one-to-one with ``context.tasks``.  As a side effect every task gets
    its dedup key attached, so the cold pass's scheduler does not compute
    them a second time.
    """
    blocked = context.blocked[0]
    specs = []
    for task, block in zip(context.tasks, blocked.blocks):
        task.dedup_key = block_compiler.task_key(task.subcircuit, task.device_qubits)
        task.dedup_key_known = True
        parametrized = any(
            circuit[idx].parameters for idx in block.instruction_indices
        )
        specs.append(
            PlanBlock(
                instruction_indices=tuple(block.instruction_indices),
                qubit_order=tuple(task.device_qubits),
                local_index=task.local_index,
                parametrized=parametrized,
                dedup_key=None if parametrized else task.dedup_key,
            )
        )
    return CompilationPlan(
        key=key, num_qubits=circuit.num_qubits, blocks=tuple(specs)
    )


@dataclass
class PlanCache:
    """A bounded, thread-safe LRU of :class:`CompilationPlan` objects.

    Plans are tiny (indices and hash tuples, no pulse data), so the default
    bound is generous; LRU keeps the ansätze a long-lived service is
    actively iterating on.  All methods are safe to call concurrently —
    the cache is the shared rendezvous point for overlapping ``submit()``
    requests.
    """

    max_entries: int = 256
    plans: dict = field(default_factory=dict)  # key -> CompilationPlan, LRU order
    hits: int = 0
    misses: int = 0
    blocking_passes_skipped: int = 0
    evictions: int = 0

    def __post_init__(self):
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self.plans)

    def lookup(self, key) -> CompilationPlan | None:
        """The plan for ``key`` (refreshing its LRU position), or ``None``."""
        with self._lock:
            plan = self.plans.get(key)
            if plan is None:
                self.misses += 1
                return None
            del self.plans[key]
            self.plans[key] = plan
            self.hits += 1
            return plan

    def insert(self, key, plan: CompilationPlan) -> None:
        """Remember ``plan`` under ``key``, evicting LRU entries."""
        with self._lock:
            self.plans.pop(key, None)
            self.plans[key] = plan
            while len(self.plans) > self.max_entries:
                self.plans.pop(next(iter(self.plans)))
                self.evictions += 1

    def note_skip(self) -> None:
        """Count one blocking pass served from a plan instead of computed."""
        with self._lock:
            self.blocking_passes_skipped += 1

    def clear(self) -> None:
        with self._lock:
            self.plans.clear()

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "entries": len(self.plans),
                "plan_hits": self.hits,
                "plan_misses": self.misses,
                "blocking_passes_skipped": self.blocking_passes_skipped,
                "evictions": self.evictions,
            }
