"""Long-lived compilation sessions for variational workloads.

The paper's whole premise is that a variational driver recompiles *the
same ansatz* at every optimizer iteration.  :class:`BlockScheduler` dedups
blocks within one batch, but a fresh scheduler per ``compile`` call forgets
everything between iterations — exactly the reuse a VQE loop lives on.

:class:`VariationalSession` is the streaming counterpart: one long-lived
object owning one scheduler (with persistent
:class:`~repro.pipeline.scheduler.SchedulerState`), one block executor,
and one open pulse cache (in practice a
:class:`~repro.core.cache.PersistentPulseCache` over a sharded
:class:`~repro.library.PulseLibrary`).  Successive ``compile`` /
``compile_batch`` calls share dedup state, so iteration N+1 dispatches
GRAPE only for blocks the whole session has never seen — the θ-independent
bulk of a UCCSD ansatz compiles exactly once per *run*, not once per
iteration.

Usage::

    with VariationalSession(settings=settings) as session:
        for values in optimizer:
            compiled = session.compile_parametrized(ansatz, values)

A session also plugs straight into :class:`repro.vqe.VQEDriver` as its
``compiler`` hook (it exposes ``compile_parametrized``), which is how the
aggregate-latency experiments run their optimizer loop through one
session.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.circuits.circuit import QuantumCircuit
from repro.errors import PipelineError
from repro.perf import get_perf_registry
from repro.pipeline.executors import resolve_executor
from repro.pipeline.plan import PlanCache
from repro.pipeline.scheduler import SchedulerState
from repro.pipeline.strategies import full_grape_pipeline


class VariationalSession:
    """One scheduler, one executor, one open cache — across many compiles.

    Parameters mirror :class:`repro.core.FullGrapeCompiler`; ``device``
    defaults to a grid sized for the widest circuit seen so far (the
    pipeline is rebuilt if a wider circuit arrives, while the cache and the
    dedup state persist — their keys embed the physical control context, so
    stale reuse across device changes is impossible by construction).
    """

    method = "session"

    def __init__(
        self,
        device=None,
        settings=None,
        hyperparameters=None,
        max_block_width: int | None = None,
        cache=None,
        executor=None,
    ):
        from repro.core.cache import default_pulse_cache
        from repro.pulse.grape.engine import GrapeHyperparameters, GrapeSettings

        self.settings = settings or GrapeSettings()
        self.hyperparameters = hyperparameters or GrapeHyperparameters()
        self.max_block_width = max_block_width
        self.cache = cache if cache is not None else default_pulse_cache()
        self.executor = resolve_executor(executor)
        self.state = SchedulerState()
        # Blocking plans keyed by ansatz content: iteration N ≥ 2 of a
        # variational loop replays blocking instead of recomputing it.
        # Plan keys embed the device token, so the cache survives device
        # growth — stale plans simply stop hitting.
        self.plan_cache = PlanCache()
        self.compile_calls = 0
        self.circuits_compiled = 0
        self.total_blocks = 0
        self.dispatched_blocks = 0
        self.deduped_blocks = 0
        self.reused_blocks = 0
        self.batched_blocks = 0
        self._device = device
        self._explicit_device = device is not None
        self._block_compiler = None
        self._pipeline = None
        self._closed = False

    @property
    def device(self):
        return self._device

    @property
    def library(self):
        """The open :class:`~repro.library.PulseLibrary` (``None`` when the
        session's cache has no disk tier)."""
        return getattr(self.cache, "library", None)

    # -- plumbing ----------------------------------------------------------
    def _ensure_pipeline(self, circuits: Sequence[QuantumCircuit]) -> None:
        from repro.core.compiler import BlockPulseCompiler
        from repro.pulse.device import GmonDevice

        width = max(circuit.num_qubits for circuit in circuits)
        if self._device is None or (
            not self._explicit_device and self._device.num_qubits < width
        ):
            self._device = GmonDevice.grid_for(width)
            self._block_compiler = None
        if self._block_compiler is None:
            self._block_compiler = BlockPulseCompiler(
                self._device, self.settings, self.hyperparameters, self.cache
            )
            self._pipeline = full_grape_pipeline(
                self._block_compiler, self.max_block_width, self.executor
            )

    # -- compilation -------------------------------------------------------
    def compile_batch(self, circuits, values=None) -> list:
        """Compile a batch of circuits, reusing every block the session has
        ever compiled.

        Returns one :class:`~repro.core.results.CompiledPulse` per circuit,
        in order.  Each result's ``metadata["scheduler"]`` carries the batch
        accounting (``reused_blocks`` counts blocks served from earlier
        calls) and ``metadata["session"]`` the session-lifetime counters.
        As with :meth:`repro.core.FullGrapeCompiler.compile_many`, the
        batch compiles as one unit: ``runtime_latency_s`` is the shared
        batch wall time, not a per-circuit cost.
        """
        from repro.core.full_grape import result_from_context

        if self._closed:
            raise PipelineError("this VariationalSession is closed")
        circuits = list(circuits)
        if not circuits:
            return []
        self._ensure_pipeline(circuits)
        start = time.perf_counter()
        contexts, report = self._pipeline.run_many(
            circuits,
            values,
            state=self.state,
            plan_cache=self.plan_cache,
            plan_scope=self.method,
        )
        elapsed = time.perf_counter() - start
        self.compile_calls += 1
        self.circuits_compiled += len(circuits)
        if report is not None:
            self.total_blocks += report.total_blocks
            self.dispatched_blocks += report.dispatched_tasks
            self.deduped_blocks += report.deduped_blocks
            self.reused_blocks += report.reused_blocks
            self.batched_blocks += report.batched_blocks
        get_perf_registry().count("session.compile_calls")
        extra = {
            "scheduler": report.as_dict() if report is not None else None,
            "session": self.state.as_dict(),
            "batch_wall_time_s": elapsed,
        }
        # One stats snapshot for the whole batch: a disk-backed cache's
        # stats() sweeps the library, which must not repeat per circuit.
        cache_stats = self.cache.stats()
        return [
            result_from_context(
                self.method, context, elapsed, self.cache, extra, cache_stats
            )
            for context in contexts
        ]

    def compile(self, circuit: QuantumCircuit, values=None):
        """Compile one circuit (one variational iteration) through the
        session's shared scheduler state."""
        return self.compile_batch([circuit], [values])[0]

    def compile_parametrized(self, circuit: QuantumCircuit, values: Sequence[float]):
        """Bind ``values`` and compile — the :class:`repro.vqe.VQEDriver`
        compiler-hook signature, so a session drops into the VQE loop
        directly."""
        return self.compile(circuit, list(values))

    # -- lifecycle ---------------------------------------------------------
    def reset(self) -> None:
        """Forget the cross-call dedup state (the cache is untouched)."""
        self.state.clear()

    def stats(self) -> dict:
        """Session-lifetime telemetry: reuse counters, cache, executor."""
        return {
            "method": self.method,
            "compile_calls": self.compile_calls,
            "circuits_compiled": self.circuits_compiled,
            "total_blocks": self.total_blocks,
            "dispatched_blocks": self.dispatched_blocks,
            "deduped_blocks": self.deduped_blocks,
            "reused_blocks": self.reused_blocks,
            "batched_blocks": self.batched_blocks,
            "known_blocks": len(self.state),
            "plan_cache": self.plan_cache.as_dict(),
            "cache": self.cache.stats(),
            "executor": self.executor.describe(),
        }

    def close(self) -> None:
        """End the session: release the executor's workers (idempotent).

        The cache (and its on-disk library) stays valid — a later session
        pointed at the same directory starts warm.
        """
        if self._closed:
            return
        self._closed = True
        if hasattr(self.executor, "close"):
            self.executor.close()

    def __enter__(self) -> "VariationalSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"VariationalSession(compile_calls={self.compile_calls}, "
            f"known_blocks={len(self.state)}, reused_blocks={self.reused_blocks})"
        )
