"""Thread-safe timer/counter registry backing the perf harness.

Every speedup claim in this repository should be checkable, which needs
two things: lightweight instrumentation that the production code paths can
afford to leave on (this module), and a benchmark runner that turns the
numbers into machine-readable artifacts (``benchmarks/run_benchmarks.py``).

A :class:`PerfRegistry` holds named monotonic counters and named timer
statistics (count / total / min / max seconds).  Instrumented subsystems —
the block executors, the compilation pipeline's stage loop — record into
the process-global registry from :func:`get_perf_registry`; tests and the
benchmark harness snapshot or reset it around the region they measure.
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass


@dataclass
class TimerStats:
    """Accumulated wall-time statistics for one named timer."""

    count: int = 0
    total_s: float = 0.0
    min_s: float = math.inf
    max_s: float = 0.0

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        if seconds < self.min_s:
            self.min_s = seconds
        if seconds > self.max_s:
            self.max_s = seconds

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        """JSON-ready summary (used by ``BENCH_*.json`` artifacts)."""
        return {
            "count": self.count,
            "total_s": round(self.total_s, 9),
            "mean_s": round(self.mean_s, 9),
            "min_s": round(self.min_s, 9) if self.count else None,
            "max_s": round(self.max_s, 9),
        }


class PerfRegistry:
    """Named counters and timers, safe under the thread block executor."""

    def __init__(self, name: str = "default"):
        self.name = name
        self._lock = threading.Lock()
        self._counters: dict = {}
        self._timers: dict = {}

    # -- counters ----------------------------------------------------------
    def count(self, name: str, amount: int = 1) -> int:
        """Add ``amount`` to counter ``name`` and return the new value."""
        with self._lock:
            value = self._counters.get(name, 0) + amount
            self._counters[name] = value
            return value

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    # -- timers ------------------------------------------------------------
    def record_seconds(self, name: str, seconds: float) -> None:
        """Fold one measured duration into timer ``name``."""
        with self._lock:
            stats = self._timers.get(name)
            if stats is None:
                stats = self._timers[name] = TimerStats()
            stats.record(seconds)

    @contextmanager
    def timer(self, name: str):
        """Context manager timing its body into timer ``name``."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.record_seconds(name, time.perf_counter() - start)

    def timer_stats(self, name: str) -> TimerStats | None:
        """The accumulated stats for timer ``name`` (``None`` if unused)."""
        with self._lock:
            return self._timers.get(name)

    # -- lifecycle ---------------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-ready copy of every counter and timer."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "timers": {k: v.as_dict() for k, v in self._timers.items()},
            }

    def reset(self) -> None:
        """Clear all counters and timers (benchmark/test isolation)."""
        with self._lock:
            self._counters.clear()
            self._timers.clear()


_global_registry = PerfRegistry("global")


def get_perf_registry() -> PerfRegistry:
    """The process-global registry instrumented subsystems record into."""
    return _global_registry
