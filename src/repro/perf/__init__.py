"""Performance instrumentation and the benchmark-JSON harness.

* :mod:`repro.perf.registry` — :class:`PerfRegistry`, a thread-safe
  timer/counter registry with a process-global instance
  (:func:`get_perf_registry`) that the executors and pipeline record into.
* ``benchmarks/run_benchmarks.py`` — the runner that executes the GRAPE
  kernel microbench and the pipeline bench and writes ``BENCH_*.json``
  artifacts so perf trajectories accumulate across PRs.
"""

from repro.perf.registry import PerfRegistry, TimerStats, get_perf_registry

__all__ = ["PerfRegistry", "TimerStats", "get_perf_registry"]
