"""Pulse-level device model and control schedules.

Implements the gmon superconducting-qubit system of the paper's Appendix A:
per-qubit charge drives (Rx-type, |Ω| ≤ 2π·0.1 GHz), per-qubit flux drives
(Rz-type, |Ω| ≤ 2π·1.5 GHz — the 15x Z/X asymmetry GRAPE exploits), and a
tunable coupler per connected pair (|g| ≤ 2π·50 MHz, iSWAP-type).  Supports
the binary-qubit truncation and the 3-level qutrit truncation used for
leakage studies (paper section 8.3).
"""

from repro.pulse.device import GmonDevice, ControlChannel
from repro.pulse.hamiltonian import ControlSet, build_control_set, embed_target_unitary
from repro.pulse.schedule import PulseSchedule, PulseProgram
from repro.pulse.verify import BlockVerification, propagate_schedule, verify_block
from repro.pulse.assembly import (
    MicroinstructionTable,
    ParametricRzOp,
    PulseAssembly,
    PulseOp,
    assembly_from_strict_plan,
)

__all__ = [
    "MicroinstructionTable",
    "ParametricRzOp",
    "PulseAssembly",
    "PulseOp",
    "assembly_from_strict_plan",
    "ControlChannel",
    "ControlSet",
    "GmonDevice",
    "PulseProgram",
    "PulseSchedule",
    "BlockVerification",
    "propagate_schedule",
    "verify_block",
    "build_control_set",
    "embed_target_unitary",
]
