"""Block Hamiltonians for GRAPE.

Given a device and a block of qubits, builds the drift Hamiltonian and the
control operators on the block's (local) Hilbert space.  The block is
re-indexed to local qubits 0…k-1; GRAPE never sees the full chip, only the
block (paper section 5.2: circuits are partitioned into blocks of ≤4 qubits
before GRAPE).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import DeviceError
from repro.linalg.operators import (
    annihilation_operator,
    creation_operator,
    embed_operator,
    number_operator,
)
from repro.pulse.device import ControlChannel, GmonDevice


@dataclass
class ControlSet:
    """Drift + control operators for one GRAPE block.

    Attributes
    ----------
    qubits:
        The device qubits of the block (sorted); local index ``i`` of every
        operator corresponds to ``qubits[i]``.
    levels:
        Hilbert-space truncation per site (2 or 3).
    drift:
        Time-independent Hamiltonian (rad/ns).
    channels:
        The device control channels, aligned with ``operators``.
    operators:
        Array ``(n_controls, d, d)`` of Hermitian control operators.
    max_amplitudes:
        Per-channel drive bounds (rad/ns), aligned with ``operators``.
    """

    qubits: tuple
    levels: int
    drift: np.ndarray
    channels: list
    operators: np.ndarray
    max_amplitudes: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self):
        if self.max_amplitudes is None:
            self.max_amplitudes = np.array([c.max_amplitude for c in self.channels])

    @property
    def num_controls(self) -> int:
        return len(self.channels)

    @property
    def dim(self) -> int:
        return self.levels ** len(self.qubits)


def build_control_set(device: GmonDevice, qubits: Sequence[int]) -> ControlSet:
    """Construct the :class:`ControlSet` for a block of device qubits."""
    qubits = tuple(sorted(set(int(q) for q in qubits)))
    if not qubits:
        raise DeviceError("block must contain at least one qubit")
    n = len(qubits)
    levels = device.levels
    local = {q: i for i, q in enumerate(qubits)}

    lower = annihilation_operator(levels)
    raise_ = creation_operator(levels)
    x_like = lower + raise_
    number = number_operator(levels)

    channels = device.channels_for(qubits)
    operators = []
    for channel in channels:
        if channel.kind == "charge":
            op = embed_operator(x_like, (local[channel.qubits[0]],), n, levels)
        elif channel.kind == "flux":
            op = embed_operator(number, (local[channel.qubits[0]],), n, levels)
        elif channel.kind == "coupling":
            a, b = channel.qubits
            op = embed_operator(
                np.kron(x_like, x_like), (local[a], local[b]), n, levels
            )
        else:
            raise DeviceError(f"unknown channel kind {channel.kind!r}")
        operators.append(op)

    dim = levels**n
    drift = np.zeros((dim, dim), dtype=complex)
    if levels == 3:
        # Transmon anharmonicity: (α/2) n (n-1) per site keeps |2> detuned.
        anham = 0.5 * device.anharmonicity * (number @ number - number)
        for q in qubits:
            drift += embed_operator(anham, (local[q],), n, levels)

    return ControlSet(
        qubits=qubits,
        levels=levels,
        drift=drift,
        channels=channels,
        operators=np.array(operators),
    )


def computational_indices(num_qubits: int, levels: int) -> np.ndarray:
    """Indices of the 2^n computational basis states inside the levels^n
    space (big-endian digits restricted to {0, 1})."""
    if levels == 2:
        return np.arange(2**num_qubits)
    idx = []
    for b in range(2**num_qubits):
        value = 0
        for bit_pos in range(num_qubits):
            bit = (b >> (num_qubits - 1 - bit_pos)) & 1
            value = value * levels + bit
        idx.append(value)
    return np.array(idx)


def embed_target_unitary(target: np.ndarray, num_qubits: int, levels: int) -> np.ndarray:
    """Embed a 2^n x 2^n target into the levels^n space (identity elsewhere).

    GRAPE's qutrit cost only scores the overlap on the computational
    subspace (see :mod:`repro.pulse.grape.cost`), which implicitly penalizes
    leakage into |2>; the identity block here is inert.
    """
    dim_small = 2**num_qubits
    if target.shape != (dim_small, dim_small):
        raise DeviceError(
            f"target shape {target.shape} does not match {num_qubits} qubits"
        )
    if levels == 2:
        return np.asarray(target, dtype=complex)
    dim = levels**num_qubits
    out = np.eye(dim, dtype=complex)
    idx = computational_indices(num_qubits, levels)
    out[np.ix_(idx, idx)] = target
    return out
