"""The GRAPE optimization loop."""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.config import get_preset
from repro.errors import GrapeError
from repro.pulse.grape.adam import AdamOptimizer
from repro.pulse.grape.controls import clip_controls, envelope_window, initial_controls
from repro.pulse.grape.cost import GrapeCost, RegularizationSettings
from repro.pulse.hamiltonian import ControlSet
from repro.pulse.schedule import PulseSchedule


@dataclass(frozen=True)
class GrapeHyperparameters:
    """The optimizer knobs flexible partial compilation pre-tunes.

    ``learning_rate`` and ``decay_rate`` are exactly the hyperparameters of
    paper section 7.2 ("learning rate and learning rate decay").
    ``optimizer`` selects the update rule — the paper names "ADAM or
    L-BFGS-B"; both are implemented.
    """

    learning_rate: float = 0.03
    decay_rate: float = 0.002
    max_iterations: int | None = None  # None -> preset default
    optimizer: str = "adam"

    def __post_init__(self):
        if self.optimizer not in ("adam", "lbfgs"):
            raise GrapeError(
                f"unknown optimizer {self.optimizer!r}; use 'adam' or 'lbfgs'"
            )

    def resolved_iterations(self) -> int:
        """Iteration budget, falling back to the active preset."""
        if self.max_iterations is not None:
            return self.max_iterations
        return get_preset().max_iterations

    def with_iterations(self, max_iterations: int) -> "GrapeHyperparameters":
        """Copy with a different iteration budget."""
        return replace(self, max_iterations=max_iterations)

    def make_optimizer(self):
        """Instantiate the configured control-field optimizer."""
        if self.optimizer == "lbfgs":
            from repro.pulse.grape.lbfgs import LBFGSOptimizer

            return LBFGSOptimizer(self.learning_rate, self.decay_rate)
        return AdamOptimizer(self.learning_rate, self.decay_rate)


@dataclass(frozen=True)
class GrapeSettings:
    """Physical/numerical settings of a GRAPE run (not tuned per circuit)."""

    dt_ns: float | None = None  # None -> preset default
    target_fidelity: float | None = None  # None -> preset default
    regularization: RegularizationSettings = field(default_factory=RegularizationSettings)
    seed: int = 0
    plateau_patience: int = 60
    plateau_tolerance: float = 1e-6

    def resolved_dt(self) -> float:
        """Slice width (ns), falling back to the active preset."""
        return self.dt_ns if self.dt_ns is not None else get_preset().dt_ns

    def resolved_target(self) -> float:
        """Target fidelity, falling back to the active preset."""
        if self.target_fidelity is not None:
            return self.target_fidelity
        return get_preset().target_fidelity


@dataclass
class GrapeResult:
    """Outcome of one GRAPE optimization."""

    schedule: PulseSchedule
    fidelity: float
    converged: bool
    iterations: int
    wall_time_s: float
    fidelity_history: list
    target_fidelity: float

    @property
    def duration_ns(self) -> float:
        """Total pulse duration of the optimized schedule (ns)."""
        return self.schedule.duration_ns


def optimize_pulse(
    control_set: ControlSet,
    target: np.ndarray,
    num_steps: int,
    hyperparameters: GrapeHyperparameters | None = None,
    settings: GrapeSettings | None = None,
    initial: np.ndarray | None = None,
) -> GrapeResult:
    """Run GRAPE for a fixed pulse length of ``num_steps`` slices.

    Parameters
    ----------
    control_set:
        Drift + control operators of the block (see
        :func:`repro.pulse.hamiltonian.build_control_set`).
    target:
        The ``2^n x 2^n`` target unitary of the block.
    num_steps:
        Number of piecewise-constant slices (total time = steps · dt).
    hyperparameters:
        ADAM learning rate / decay / iteration budget.
    settings:
        Time step, fidelity target, regularization, seed.
    initial:
        Warm-start control array ``(n_controls, num_steps)``; random smooth
        fields when omitted.  Non-finite values or amplitudes beyond the
        device bounds raise :class:`ValueError` — a wrongly-scaled seed
        silently clipped into garbage is worse than a loud failure.
    """
    if num_steps < 1:
        raise GrapeError("num_steps must be >= 1")
    hyper = hyperparameters or GrapeHyperparameters()
    settings = settings or GrapeSettings()
    dt = settings.resolved_dt()
    target_fidelity = settings.resolved_target()
    max_iterations = hyper.resolved_iterations()

    cost_fn = GrapeCost(control_set, target, dt, settings.regularization)
    bounds = control_set.max_amplitudes

    if initial is None:
        controls = initial_controls(
            control_set.num_controls, num_steps, bounds, seed=settings.seed
        )
    else:
        controls = np.array(initial, dtype=float)
        if controls.shape != (control_set.num_controls, num_steps):
            raise GrapeError(
                f"initial controls shape {controls.shape} != "
                f"({control_set.num_controls}, {num_steps})"
            )
        if not np.all(np.isfinite(controls)):
            raise ValueError(
                "initial controls contain non-finite values (NaN or inf)"
            )
        peak = np.max(np.abs(controls), axis=1)
        limits = np.asarray(bounds, dtype=float)
        overdriven = peak > limits * (1.0 + 1e-6)
        if np.any(overdriven):
            worst = int(np.argmax(peak / limits))
            raise ValueError(
                "initial controls exceed channel amplitude bounds "
                f"(channel {worst}: |amp| {peak[worst]:.6g} > bound "
                f"{limits[worst]:.6g} rad/ns) — wrongly scaled warm start?"
            )
    window = (
        envelope_window(num_steps)
        if settings.regularization.enforce_envelope
        else None
    )
    if window is not None:
        controls = controls * window

    optimizer = hyper.make_optimizer()
    history: list[float] = []
    best_controls = controls
    best_fidelity = -1.0
    start = time.perf_counter()
    iterations_run = 0
    converged = False
    stall = 0

    for iteration in range(max_iterations):
        _, gradient, fidelity = cost_fn.cost_and_gradient(controls)
        iterations_run = iteration + 1
        history.append(fidelity)
        if fidelity > best_fidelity:
            if fidelity < best_fidelity + settings.plateau_tolerance:
                stall += 1
            else:
                stall = 0
            best_fidelity = fidelity
            best_controls = controls.copy()
        else:
            stall += 1
        if fidelity >= target_fidelity:
            converged = True
            break
        if stall >= settings.plateau_patience:
            break
        controls = optimizer.step(controls, gradient, scale=bounds)
        controls = clip_controls(controls, bounds)
        if window is not None:
            controls = controls * window

    elapsed = time.perf_counter() - start
    schedule = PulseSchedule(
        qubits=control_set.qubits,
        dt_ns=dt,
        controls=best_controls,
        channel_names=tuple(ch.name for ch in control_set.channels),
        source="grape",
    )
    return GrapeResult(
        schedule=schedule,
        fidelity=best_fidelity,
        converged=converged,
        iterations=iterations_run,
        wall_time_s=elapsed,
        fidelity_history=history,
        target_fidelity=target_fidelity,
    )
