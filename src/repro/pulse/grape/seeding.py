"""Analytic warm-start seeds for GRAPE and the warm-start telemetry.

Cold GRAPE starts from smooth random fields.  For a two-qubit block on the
standard gmon channel set (per-qubit charge ``X`` and flux ``N`` drives
plus one ``XX`` coupler) an *analytic* starting point exists: the Cartan
decomposition of :mod:`repro.transpile.kak` factors any target into

    ``U = e^{iφ} (A₀⊗A₁) · K(x, y, z) · (B₀⊗B₁)``,
    ``K = exp(i (x·XX + y·YY + z·ZZ))``,

and every factor maps directly onto the device's native interactions:

* ``YY`` and ``ZZ`` conjugate into the native ``XX`` through local
  Cliffords — ``Y = Rz(π/2) X Rz(-π/2)`` and ``Z = Ry(-π/2) X Ry(π/2)`` —
  so ``K`` becomes three coupler segments with fixed local layers between
  them;
* each local layer splits per qubit via ZYZ Euler angles into
  flux–charge–flux segments (``Ry(γ) = Rz(π/2) Rx(γ) Rz(-π/2)``, so only
  native ``Rz``-via-flux and ``Rx``-via-charge drives appear).

With the propagator convention ``U_k = exp(-i dt H_k)`` the channel areas
are ``∫u dt = -φ`` for a flux ``Rz(φ)`` (``exp(-iuτN) ≅ Rz(-uτ)`` up to
phase), ``∫u dt = θ/2`` for a charge ``Rx(θ)``, and ``∫u dt = -c`` for a
coupler ``exp(i c·XX)``.  The resulting piecewise-constant waveform is
time-dilated onto the requested pulse duration (areas preserved exactly:
durations scale by ``s``, amplitudes by ``1/s``) and rasterized
area-preservingly onto the uniform step grid.  Rasterization smearing and
amplitude clipping make this a *seed*, not a solution — GRAPE refines it,
and the compiler's best-of guard discards it if it ever loses to the cold
start.
"""

from __future__ import annotations

import math

import numpy as np

from repro.perf import get_perf_registry
from repro.pulse.grape.controls import clip_controls
from repro.pulse.hamiltonian import ControlSet
from repro.pulse.schedule import PulseSchedule

__all__ = ["kak_seed_controls", "kak_seed_schedule", "warm_start_telemetry"]

_EPS_ANGLE = 1e-9


def _wrap_pi(angle: float) -> float:
    """Wrap to (-π, π] so rotation segments take the short way around."""
    return -((-angle + math.pi) % (2 * math.pi) - math.pi)


def _channel_layout(control_set: ControlSet):
    """Per-qubit charge/flux channel indices plus the coupler index.

    Returns ``(charge, flux, coupling)`` with ``charge[i]``/``flux[i]`` the
    channel index driving local qubit ``i``; ``None`` when the block does
    not expose the full standard two-qubit layout.
    """
    if len(control_set.qubits) != 2 or control_set.levels != 2:
        return None
    local = {q: i for i, q in enumerate(control_set.qubits)}
    charge = [None, None]
    flux = [None, None]
    coupling = None
    for idx, channel in enumerate(control_set.channels):
        if channel.kind == "charge":
            charge[local[channel.qubits[0]]] = idx
        elif channel.kind == "flux":
            flux[local[channel.qubits[0]]] = idx
        elif channel.kind == "coupling":
            coupling = idx
    if None in charge or None in flux or coupling is None:
        return None
    return charge, flux, coupling


def _local_layer_segments(p0, p1, charge, flux, zyz):
    """Flux–charge–flux sub-segments realizing ``p0 ⊗ p1`` (global phase
    dropped: the GRAPE cost is phase-invariant)."""
    angles = [zyz(p0), zyz(p1)]  # (alpha, beta, gamma, delta) per qubit
    first_rz = [_wrap_pi(a[3] - math.pi / 2) for a in angles]
    rx = [a[2] for a in angles]
    last_rz = [_wrap_pi(a[1] + math.pi / 2) for a in angles]
    segments = []
    for layer, channels, area_of in (
        (first_rz, flux, lambda phi: -phi),
        (rx, charge, lambda theta: theta / 2.0),
        (last_rz, flux, lambda phi: -phi),
    ):
        areas = {
            channels[q]: area_of(layer[q])
            for q in (0, 1)
            if abs(area_of(layer[q])) > _EPS_ANGLE
        }
        if areas:
            segments.append(areas)
    return segments


def kak_seed_controls(
    control_set: ControlSet, target: np.ndarray, num_steps: int, dt_ns: float
) -> np.ndarray | None:
    """An analytic control array seeding GRAPE for a two-qubit target.

    Returns ``(n_controls, num_steps)`` controls whose propagator
    approximates ``target`` (exactly, up to rasterization smearing, when
    the requested duration can fit the decomposition within the amplitude
    bounds), or ``None`` when the block lacks the standard two-qubit
    channel layout or the decomposition fails.
    """
    layout = _channel_layout(control_set)
    if layout is None or num_steps < 1:
        return None
    charge, flux, coupling = layout
    target = np.asarray(target, dtype=complex)
    if target.shape != (4, 4):
        return None
    try:
        from repro.transpile.kak import kak_decompose, zyz_angles

        decomp = kak_decompose(target)
    except Exception:
        return None

    rz_half = np.array(
        [[np.exp(-0.25j * math.pi), 0], [0, np.exp(0.25j * math.pi)]]
    )
    c = math.cos(math.pi / 4)
    ry_half = np.array([[c, -c], [c, c]], dtype=complex)

    # Time order (rightmost factor of U acts first):
    #   (Ry(π/2)·B) locals, XX(z), (Rz(-π/2)Ry(-π/2)) locals, XX(y),
    #   Rz(π/2) locals, XX(x), A locals.
    segments: list = []  # each: {channel_index: required area u·τ}
    segments += _local_layer_segments(
        ry_half @ decomp.k2_q0, ry_half @ decomp.k2_q1, charge, flux, zyz_angles
    )
    mid = rz_half.conj().T @ ry_half.conj().T
    for coeff, locals_after in (
        (decomp.z, (mid, mid)),
        (decomp.y, (rz_half, rz_half)),
        (decomp.x, (decomp.k1_q0, decomp.k1_q1)),
    ):
        if abs(coeff) > _EPS_ANGLE:
            segments.append({coupling: -coeff})
        segments += _local_layer_segments(
            locals_after[0], locals_after[1], charge, flux, zyz_angles
        )

    bounds = np.asarray(control_set.max_amplitudes, dtype=float)
    controls = np.zeros((control_set.num_controls, num_steps))
    timed = []  # (min_duration, areas)
    for areas in segments:
        min_duration = max(abs(a) / bounds[ch] for ch, a in areas.items())
        if min_duration > _EPS_ANGLE:
            timed.append((min_duration, areas))
    if not timed:
        return controls  # target is (locally) trivial: a zero seed is exact
    natural = sum(d for d, _ in timed)
    total = num_steps * dt_ns
    # Dilate onto the requested duration; areas are preserved exactly.  A
    # duration shorter than the decomposition's natural length compresses
    # amplitudes past their bounds — the final clip degrades the seed
    # gracefully instead of failing.
    scale = total / natural
    t = 0.0
    for min_duration, areas in timed:
        duration = min_duration * scale
        t_end = t + duration
        # Area-preserving rasterization: each grid cell integrates the
        # piecewise-constant waveform overlapping it.
        k0 = int(t / dt_ns)
        k1 = min(num_steps - 1, int((t_end - 1e-12) / dt_ns))
        for ch, area in areas.items():
            amp = area / duration
            for k in range(k0, k1 + 1):
                overlap = min(t_end, (k + 1) * dt_ns) - max(t, k * dt_ns)
                if overlap > 0:
                    controls[ch, k] += amp * overlap / dt_ns
        t = t_end
    return clip_controls(controls, bounds)


def kak_seed_schedule(
    control_set: ControlSet, target: np.ndarray, num_steps: int, dt_ns: float
) -> PulseSchedule | None:
    """:func:`kak_seed_controls` wrapped as a :class:`PulseSchedule`."""
    controls = kak_seed_controls(control_set, target, num_steps, dt_ns)
    if controls is None:
        return None
    return PulseSchedule(
        qubits=control_set.qubits,
        dt_ns=dt_ns,
        controls=controls,
        channel_names=tuple(ch.name for ch in control_set.channels),
        source="kak-seed",
    )


def warm_start_telemetry() -> dict:
    """JSON-ready snapshot of the ``grape.warm_start.*`` perf counters."""
    perf = get_perf_registry()
    seeded = perf.counter("grape.warm_start.seeded_iterations")
    cold = perf.counter("grape.warm_start.cold_rerun_iterations")
    return {
        "lookups": perf.counter("grape.warm_start.lookups"),
        "neighbor_seeds": perf.counter("grape.warm_start.neighbor_seeds"),
        "kak_seeds": perf.counter("grape.warm_start.kak_seeds"),
        "no_seed": perf.counter("grape.warm_start.no_seed"),
        "accepted": perf.counter("grape.warm_start.accepted"),
        "rejected": perf.counter("grape.warm_start.rejected"),
        "seeded_iterations": seeded,
        "cold_rerun_iterations": cold,
        "healed_entries": perf.counter("grape.warm_start.healed"),
    }
