"""GRAPE — GRadient Ascent Pulse Engineering, from scratch.

Follows the methodology of the paper's section 5 (after Leung et al. 2017):
piecewise-constant control fields, exact analytic gradients (here via the
eigenbasis Fréchet derivative rather than autodiff), an ADAM optimizer whose
learning rate and decay are the hyperparameters flexible partial compilation
tunes, and a binary search for the minimum pulse time (section 5.3).
"""

from repro.pulse.grape.adam import AdamOptimizer
from repro.pulse.grape.lbfgs import LBFGSOptimizer
from repro.pulse.grape.controls import initial_controls
from repro.pulse.grape.cost import GrapeCost, RegularizationSettings
from repro.pulse.grape.engine import (
    GrapeHyperparameters,
    GrapeResult,
    GrapeSettings,
    optimize_pulse,
)
from repro.pulse.grape.time_search import MinimumTimeResult, minimum_time_pulse
from repro.pulse.grape.batched import (
    BatchedGrapeCost,
    batch_telemetry,
    minimum_time_pulse_batch,
    optimize_pulse_batch,
)

__all__ = [
    "AdamOptimizer",
    "LBFGSOptimizer",
    "BatchedGrapeCost",
    "GrapeCost",
    "GrapeHyperparameters",
    "GrapeResult",
    "GrapeSettings",
    "MinimumTimeResult",
    "RegularizationSettings",
    "batch_telemetry",
    "initial_controls",
    "minimum_time_pulse",
    "minimum_time_pulse_batch",
    "optimize_pulse",
    "optimize_pulse_batch",
]
