"""ADAM optimizer with learning-rate decay.

The two knobs flexible partial compilation pre-tunes per subcircuit are
exactly this optimizer's ``learning_rate`` and ``decay_rate`` (paper
section 7.2).  The step size is expressed as a *fraction of each channel's
amplitude bound*, which makes one learning rate meaningful across charge
(0.63 rad/ns) and flux (9.4 rad/ns) channels simultaneously.
"""

from __future__ import annotations

import numpy as np


class AdamOptimizer:
    """Standard ADAM with ``lr_t = lr / (1 + decay · t)`` scheduling."""

    def __init__(
        self,
        learning_rate: float,
        decay_rate: float = 0.0,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ):
        self.learning_rate = float(learning_rate)
        self.decay_rate = float(decay_rate)
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m: np.ndarray | None = None
        self._v: np.ndarray | None = None
        self._t = 0

    def reset(self) -> None:
        """Clear the moment estimates and step counter."""
        self._m = None
        self._v = None
        self._t = 0

    def step(self, params: np.ndarray, gradient: np.ndarray, scale: np.ndarray | float = 1.0) -> np.ndarray:
        """One descent update; returns the new parameters.

        ``scale`` multiplies the step per row (per control channel); passing
        the amplitude bounds makes the learning rate dimensionless.
        """
        if self._m is None:
            self._m = np.zeros_like(params)
            self._v = np.zeros_like(params)
        self._t += 1
        self._m = self.beta1 * self._m + (1 - self.beta1) * gradient
        self._v = self.beta2 * self._v + (1 - self.beta2) * gradient**2
        m_hat = self._m / (1 - self.beta1**self._t)
        v_hat = self._v / (1 - self.beta2**self._t)
        lr = self.learning_rate / (1.0 + self.decay_rate * self._t)
        direction = m_hat / (np.sqrt(v_hat) + self.epsilon)
        if isinstance(scale, np.ndarray):
            scale = scale[:, None]
        return params - lr * scale * direction
