"""Cross-block batched GRAPE: optimize N same-shape blocks as one tensor.

The scheduler routinely collects many unique same-dimension blocks per
batch (see :class:`repro.pipeline.scheduler.BlockScheduler`), yet the
per-block kernel optimizes them one at a time — hundreds of numpy calls
per iteration per block, each over matrices far too small to amortize the
call overhead.  This module stacks ``B`` problems that share a shape
``(dim, n_controls, n_steps)`` along a leading batch axis and runs every
hot contraction of :class:`~repro.pulse.grape.cost.GrapeCost` — the
step-Hamiltonian GEMM, the stacked ``eigh``/``expm``, the blocked
propagator scans, the divided-differences gradient, and the per-control
``K_k`` contraction — as single batched calls over *blocks × steps*
matrices, so one optimizer sweep advances all stacked blocks at once.

Equivalence contract
--------------------
Batched results are bit-identical to running the per-block path serially
(asserted at ≤1e-10 in the regression tests, observed exact):

* every per-slice operation (GEMM, ``eigh``, Loewner mask) runs the same
  BLAS/LAPACK kernel per matrix whether the leading axis is ``(S,)`` or
  ``(B, S)``;
* the blocked scan chunks by ``n_steps`` only, so batched and per-block
  scans reassociate identically;
* each block keeps its **own** optimizer instance (ADAM moments or the
  L-BFGS curvature pairs never mix across blocks), its own best/stall
  bookkeeping, and its own convergence test;
* a block that converges or plateaus is *frozen out*: it leaves the
  active stack (shrinking every subsequent batched call) while the
  remaining blocks continue unperturbed — exactly the iterations the
  serial loop would have run.

:func:`minimum_time_pulse_batch` lifts the batching through the
minimum-time search: each block advances its own trial → doubling →
binary-search state machine (mirroring
:func:`~repro.pulse.grape.time_search.minimum_time_pulse`'s sequential
path decision-for-decision), and every round the driver groups the
active probes by step count and dispatches each group as one batched
GRAPE run.
"""

from __future__ import annotations

import time

import numpy as np

from repro.errors import GrapeError
from repro.linalg.expm import _divided_differences, expm_hermitian_factorized
from repro.linalg.scan import backward_partial_products, forward_partial_products
from repro.perf import get_perf_registry
from repro.pulse.grape.controls import clip_controls, envelope_window, initial_controls
from repro.pulse.grape.cost import GrapeCost
from repro.pulse.grape.engine import (
    GrapeHyperparameters,
    GrapeResult,
    GrapeSettings,
    optimize_pulse,
)
from repro.pulse.grape.time_search import MinimumTimeResult, minimum_time_pulse
from repro.pulse.schedule import PulseSchedule

#: Default cap on how many blocks one batched group stacks (bounds the
#: working-set of the stacked scans: ~3·B·S·d² complex temporaries).
DEFAULT_MAX_GROUP = 16


class BatchedGrapeCost:
    """The stacked twin of :class:`~repro.pulse.grape.cost.GrapeCost`.

    Built from ``B`` per-block cost objects sharing ``(dim, n_controls)``,
    time step, and regularization; evaluates cost/gradient/fidelity for a
    ``(B, n_controls, n_steps)`` control stack in one pass of batched
    GEMMs.  ``indices`` selects a sub-batch, which is how the optimizer
    loop freezes converged blocks out of the active stack.
    """

    def __init__(self, costs: list):
        if not costs:
            raise GrapeError("need at least one cost object to batch")
        first = costs[0]
        for cost in costs[1:]:
            if cost.control_set.dim != first.control_set.dim:
                raise GrapeError(
                    "batched blocks must share the Hilbert dimension; got "
                    f"{cost.control_set.dim} != {first.control_set.dim}"
                )
            if cost.control_set.num_controls != first.control_set.num_controls:
                raise GrapeError(
                    "batched blocks must share the control count; got "
                    f"{cost.control_set.num_controls} != "
                    f"{first.control_set.num_controls}"
                )
            if cost.dt_ns != first.dt_ns:
                raise GrapeError("batched blocks must share dt")
            if cost.regularization != first.regularization:
                raise GrapeError("batched blocks must share regularization")
        self.costs = list(costs)
        self.dt_ns = first.dt_ns
        self.dim = first.control_set.dim
        self.num_controls = first.control_set.num_controls
        self._dim_comp = first._dim_comp
        # Stacked contraction plans: (B, c, d²) flattened operators,
        # (B, d, d) drifts and folded targets.
        self._ops_flat = np.stack([cost._ops_flat for cost in costs])
        self._drift = np.stack(
            [np.asarray(cost.control_set.drift, dtype=complex) for cost in costs]
        )
        self._e_dag = np.stack([cost._e_dag for cost in costs])

    def cost_and_gradient(self, controls: np.ndarray, indices=None) -> tuple:
        """Return ``(costs, gradients, fidelities)`` for a control stack.

        ``controls`` has shape ``(A, n_controls, n_steps)`` where ``A`` is
        the active sub-batch selected by ``indices`` (all blocks when
        ``None``).  Results are arrays batched over the same axis.
        """
        if indices is None:
            indices = range(len(self.costs))
        indices = list(indices)
        ops_flat = self._ops_flat[indices]
        e_dag = self._e_dag[indices]
        batch, n_controls, n_steps = controls.shape
        dim = self.dim
        dt = self.dt_ns

        # Step Hamiltonians for every block × slice: one batched GEMM.
        hams = np.matmul(controls.transpose(0, 2, 1), ops_flat).reshape(
            batch, n_steps, dim, dim
        )
        hams += self._drift[indices][:, None, :, :]
        eigvals, eigvecs, phases, props = expm_hermitian_factorized(hams, dt)

        forward = forward_partial_products(props)
        bwd = backward_partial_products(props, e_dag)

        total = forward[:, -1]
        # Per-block overlap traces, written exactly as the per-block kernel
        # computes them so accumulation order matches bit-for-bit.
        overlap = (
            np.stack(
                [
                    np.einsum("ij,ji->", e_dag[b], total[b])
                    for b in range(batch)
                ]
            )
            / self._dim_comp
        )
        fidelity = np.abs(overlap) ** 2

        g_mats = np.matmul(forward[:, :-1], bwd)
        gammas = _divided_differences(eigvals, phases, dt)
        vecs_t = np.swapaxes(eigvecs, -1, -2)
        vecs_conj = eigvecs.conj()
        g_eig_t = np.matmul(
            vecs_t, np.matmul(np.swapaxes(g_mats, -1, -2), vecs_conj)
        )
        np.multiply(g_eig_t, gammas, out=g_eig_t)
        k_mats = np.matmul(vecs_conj, np.matmul(g_eig_t, vecs_t))
        overlap_grad = (
            np.matmul(
                ops_flat,
                np.swapaxes(k_mats.reshape(batch, n_steps, dim * dim), -1, -2),
            )
            / self._dim_comp
        )
        grad_fidelity = 2.0 * np.real(
            np.conj(overlap)[:, None, None] * overlap_grad
        )
        costs = 1.0 - fidelity
        gradients = -grad_fidelity

        # Regularization is elementwise and cheap; the per-block call keeps
        # it literally the serial code path.
        for pos, b in enumerate(indices):
            reg_cost, reg_grad = self.costs[b]._regularization_terms(
                controls[pos]
            )
            costs[pos] += reg_cost
            gradients[pos] += reg_grad
        return costs, gradients, fidelity


def optimize_pulse_batch(
    control_sets: list,
    targets: list,
    num_steps: int,
    hyperparameters: GrapeHyperparameters | None = None,
    settings: GrapeSettings | None = None,
    initials: list | None = None,
) -> list:
    """Run GRAPE for ``B`` same-shape blocks in one stacked optimizer loop.

    The batched twin of :func:`~repro.pulse.grape.engine.optimize_pulse`:
    returns one :class:`~repro.pulse.grape.engine.GrapeResult` per block,
    bit-identical to running the per-block function on each ``(control_set,
    target, initial)`` triple serially.  Blocks that converge (or plateau)
    early are frozen out of the active stack and stop costing work.
    """
    if num_steps < 1:
        raise GrapeError("num_steps must be >= 1")
    if len(control_sets) != len(targets):
        raise GrapeError(
            f"got {len(control_sets)} control sets but {len(targets)} targets"
        )
    batch = len(control_sets)
    if batch == 0:
        return []
    hyper = hyperparameters or GrapeHyperparameters()
    settings = settings or GrapeSettings()
    dt = settings.resolved_dt()
    target_fidelity = settings.resolved_target()
    max_iterations = hyper.resolved_iterations()
    if initials is None:
        initials = [None] * batch
    if len(initials) != batch:
        raise GrapeError(f"got {batch} blocks but {len(initials)} warm starts")

    costs = [
        GrapeCost(control_set, target, dt, settings.regularization)
        for control_set, target in zip(control_sets, targets)
    ]
    batched = BatchedGrapeCost(costs)
    window = (
        envelope_window(num_steps)
        if settings.regularization.enforce_envelope
        else None
    )

    bounds = [control_set.max_amplitudes for control_set in control_sets]
    controls: list = []
    for b, initial in enumerate(initials):
        if initial is None:
            fields = initial_controls(
                control_sets[b].num_controls,
                num_steps,
                bounds[b],
                seed=settings.seed,
            )
        else:
            fields = np.array(initial, dtype=float)
            if fields.shape != (control_sets[b].num_controls, num_steps):
                raise GrapeError(
                    f"initial controls shape {fields.shape} != "
                    f"({control_sets[b].num_controls}, {num_steps})"
                )
        if window is not None:
            fields = fields * window
        controls.append(fields)

    perf = get_perf_registry()
    perf.count("grape.batch.stacked_calls")
    # GEMM-size telemetry: how many d×d matrices each stacked hot
    # contraction fuses (the whole point of batching).
    perf.record_seconds("grape.batch.gemm_matrices", float(batch * num_steps))

    optimizers = [hyper.make_optimizer() for _ in range(batch)]
    history: list = [[] for _ in range(batch)]
    best_controls = [fields for fields in controls]
    best_fidelity = [-1.0] * batch
    stall = [0] * batch
    iterations_run = [0] * batch
    converged = [False] * batch
    elapsed = [0.0] * batch
    start = time.perf_counter()

    active = list(range(batch))
    for _ in range(max_iterations):
        if not active:
            break
        stack = np.stack([controls[b] for b in active])
        _, gradients, fidelities = batched.cost_and_gradient(
            stack, indices=active
        )
        still_active = []
        for pos, b in enumerate(active):
            fidelity = float(fidelities[pos])
            iterations_run[b] += 1
            history[b].append(fidelity)
            if fidelity > best_fidelity[b]:
                if fidelity < best_fidelity[b] + settings.plateau_tolerance:
                    stall[b] += 1
                else:
                    stall[b] = 0
                best_fidelity[b] = fidelity
                best_controls[b] = stack[pos].copy()
            else:
                stall[b] += 1
            if fidelity >= target_fidelity:
                converged[b] = True
                elapsed[b] = time.perf_counter() - start
                continue  # freeze-out: converged
            if stall[b] >= settings.plateau_patience:
                elapsed[b] = time.perf_counter() - start
                continue  # freeze-out: plateaued
            fields = optimizers[b].step(stack[pos], gradients[pos], scale=bounds[b])
            fields = clip_controls(fields, bounds[b])
            if window is not None:
                fields = fields * window
            controls[b] = fields
            still_active.append(b)
        active = still_active
    total_elapsed = time.perf_counter() - start
    for b in active:
        elapsed[b] = total_elapsed

    results = []
    for b in range(batch):
        schedule = PulseSchedule(
            qubits=control_sets[b].qubits,
            dt_ns=dt,
            controls=best_controls[b],
            channel_names=tuple(ch.name for ch in control_sets[b].channels),
            source="grape",
        )
        results.append(
            GrapeResult(
                schedule=schedule,
                fidelity=best_fidelity[b],
                converged=converged[b],
                iterations=iterations_run[b],
                wall_time_s=elapsed[b],
                fidelity_history=history[b],
                target_fidelity=target_fidelity,
            )
        )
    return results


class _SearchState:
    """One block's minimum-time search, re-expressed as a state machine.

    Replays the decision sequence of the *sequential*
    :func:`~repro.pulse.grape.time_search.minimum_time_pulse` path
    (``probe_executor=None``) exactly: trial probes at the bound and its
    half, lazy feasibility doublings, then the binary search, each probe
    warm-started from the same schedule the sequential code would use.
    ``next_probe``/``feed`` split the loop so a driver can interleave many
    blocks' probes and batch the ones that share a step count.
    """

    def __init__(
        self,
        control_set,
        target,
        upper_bound_ns: float,
        dt: float,
        precision_ns: float,
        lower_bound_ns: float,
        max_doublings: int,
    ):
        if upper_bound_ns <= 0:
            raise GrapeError(
                f"upper bound must be positive, got {upper_bound_ns}"
            )
        self.control_set = control_set
        self.target = target
        self.dt = dt
        self.trials = [upper_bound_ns, 0.5 * upper_bound_ns]
        self.doublings = [
            upper_bound_ns * 2.0**k for k in range(1, max_doublings + 1)
        ]
        self.lower_bound_ns = lower_bound_ns
        self.min_width = max(precision_ns, dt)
        self.phase = "trial"
        self.index = 0
        self.best: GrapeResult | None = None
        self.feasible: GrapeResult | None = None
        self.low = 0.0
        self.high = 0.0
        self.total_iterations = 0
        self.grape_calls = 0
        self.probes: list = []
        self.done = False
        self._converged = False
        self._probe_steps: int | None = None
        self._pending_mid = 0.0
        self._start = time.perf_counter()
        self._wall_time_s = 0.0

    def _spec(self, duration_ns: float, warm: PulseSchedule | None) -> tuple:
        steps = max(1, int(round(duration_ns / self.dt)))
        initial = warm.resampled(steps).controls if warm is not None else None
        self._probe_steps = steps
        return steps, initial

    def _finish(self, converged: bool) -> None:
        self.done = True
        self._converged = converged
        self._wall_time_s = time.perf_counter() - self._start

    def _enter_binary(self) -> None:
        self.feasible = self.best
        self.low = max(self.lower_bound_ns, 0.0)
        self.high = self.feasible.schedule.duration_ns
        self.phase = "binary"

    def next_probe(self) -> tuple | None:
        """The next ``(steps, initial)`` to run, or ``None`` when done."""
        while not self.done:
            if self.phase == "trial":
                if self.index >= len(self.trials):
                    if not self.doublings:
                        self._finish(converged=False)
                        return None
                    self.phase = "doubling"
                    self.index = 0
                    continue
                warm = self.best.schedule if self.best is not None else None
                return self._spec(self.trials[self.index], warm)
            if self.phase == "doubling":
                if self.index >= len(self.doublings):
                    self._finish(converged=False)
                    return None
                return self._spec(self.doublings[self.index], self.best.schedule)
            # binary
            if self.high - self.low <= self.min_width:
                self._finish(converged=True)
                return None
            mid = 0.5 * (self.low + self.high)
            steps = max(1, int(round(mid / self.dt)))
            mid_snapped = steps * self.dt
            if mid_snapped >= self.high or mid_snapped <= self.low:
                self._finish(converged=True)
                return None
            self._pending_mid = mid_snapped
            return self._spec(mid_snapped, self.feasible.schedule)
        return None

    def feed(self, result: GrapeResult) -> None:
        """Fold one probe's outcome into the search state."""
        self.total_iterations += result.iterations
        self.grape_calls += 1
        self.probes.append(
            (self._probe_steps * self.dt, result.fidelity, result.converged)
        )
        if self.phase in ("trial", "doubling"):
            if result.converged:
                self.best = result
                self._enter_binary()
            else:
                if self.best is None or result.fidelity > self.best.fidelity:
                    self.best = result
                self.index += 1
        else:  # binary
            if result.converged:
                self.feasible = result
                self.high = self._pending_mid
            else:
                self.low = self._pending_mid

    def result(self) -> MinimumTimeResult:
        winner = self.feasible if self._converged else self.best
        return MinimumTimeResult(
            schedule=winner.schedule,
            fidelity=winner.fidelity,
            duration_ns=winner.schedule.duration_ns,
            converged=self._converged,
            total_iterations=self.total_iterations,
            grape_calls=self.grape_calls,
            wall_time_s=self._wall_time_s,
            probes=self.probes,
        )


def minimum_time_pulse_batch(
    control_sets: list,
    targets: list,
    upper_bounds_ns: list,
    hyperparameters: GrapeHyperparameters | None = None,
    settings: GrapeSettings | None = None,
    precision_ns: float | None = None,
    lower_bound_ns: float = 0.0,
    max_doublings: int = 3,
    max_group: int | None = None,
) -> list:
    """Minimum-time searches for ``B`` same-shape blocks, batched lock-step.

    Each block runs its own search state machine; every round the driver
    collects the pending probes, groups the ones that share a step count,
    and dispatches each group (capped at ``max_group`` blocks) through
    :func:`optimize_pulse_batch` — singleton probes take the per-block
    :func:`~repro.pulse.grape.time_search.minimum_time_pulse` kernel
    directly.  Results are bit-identical to the sequential per-block
    search because every probe sees the same warm start and the same
    kernel numerics either way.
    """
    if not (len(control_sets) == len(targets) == len(upper_bounds_ns)):
        raise GrapeError(
            "control_sets, targets, and upper_bounds_ns must align; got "
            f"{len(control_sets)}/{len(targets)}/{len(upper_bounds_ns)}"
        )
    settings = settings or GrapeSettings()
    hyper = hyperparameters or GrapeHyperparameters()
    dt = settings.resolved_dt()
    if precision_ns is None:
        from repro.config import get_preset

        precision_ns = get_preset().time_search_precision_ns
    if max_group is None:
        max_group = DEFAULT_MAX_GROUP
    max_group = max(1, int(max_group))

    states = [
        _SearchState(
            control_set,
            target,
            upper_bound,
            dt,
            precision_ns,
            lower_bound_ns,
            max_doublings,
        )
        for control_set, target, upper_bound in zip(
            control_sets, targets, upper_bounds_ns
        )
    ]
    perf = get_perf_registry()
    while True:
        pending = []
        for i, state in enumerate(states):
            if state.done:
                continue
            spec = state.next_probe()
            if spec is not None:
                pending.append((i, spec))
        if not pending:
            break
        by_steps: dict = {}
        for i, (steps, initial) in pending:
            by_steps.setdefault(steps, []).append((i, initial))
        for steps in sorted(by_steps):
            members = by_steps[steps]
            for offset in range(0, len(members), max_group):
                chunk = members[offset : offset + max_group]
                perf.record_seconds(
                    "grape.batch.blocks_per_group", float(len(chunk))
                )
                if len(chunk) == 1:
                    i, initial = chunk[0]
                    perf.count("grape.batch.singleton_probes")
                    states[i].feed(
                        optimize_pulse(
                            states[i].control_set,
                            states[i].target,
                            steps,
                            hyper,
                            settings,
                            initial=initial,
                        )
                    )
                    continue
                perf.count("grape.batch.groups")
                perf.count("grape.batch.batched_blocks", len(chunk))
                results = optimize_pulse_batch(
                    [states[i].control_set for i, _ in chunk],
                    [states[i].target for i, _ in chunk],
                    steps,
                    hyper,
                    settings,
                    initials=[initial for _, initial in chunk],
                )
                for (i, _), result in zip(chunk, results):
                    states[i].feed(result)
    return [state.result() for state in states]


def batch_telemetry() -> dict:
    """JSON-ready snapshot of the batched-kernel perf counters."""
    perf = get_perf_registry()
    per_group = perf.timer_stats("grape.batch.blocks_per_group")
    gemm = perf.timer_stats("grape.batch.gemm_matrices")
    return {
        "groups": perf.counter("grape.batch.groups"),
        "batched_blocks": perf.counter("grape.batch.batched_blocks"),
        "singleton_probes": perf.counter("grape.batch.singleton_probes"),
        "stacked_calls": perf.counter("grape.batch.stacked_calls"),
        "blocks_per_group": per_group.as_dict() if per_group else None,
        "gemm_matrices": gemm.as_dict() if gemm else None,
    }


# minimum_time_pulse is re-exported so callers batching opportunistically
# (the scheduler's batched dispatch) import one module for both paths.
__all__ = [
    "BatchedGrapeCost",
    "DEFAULT_MAX_GROUP",
    "batch_telemetry",
    "minimum_time_pulse",
    "minimum_time_pulse_batch",
    "optimize_pulse_batch",
]
