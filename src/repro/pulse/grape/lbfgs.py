"""Limited-memory BFGS optimizer for GRAPE control fields.

The paper notes the control fields may be updated "with an optimizer such
as ADAM or L-BFGS-B" (section 7.2).  This is the second of those: a
two-loop-recursion L-BFGS with the same stateful ``step`` interface as
:class:`repro.pulse.grape.adam.AdamOptimizer`, so the engine can swap
optimizers through ``GrapeHyperparameters.optimizer``.

Instead of a full Wolfe line search (which would need extra cost
evaluations per iteration — expensive, since each costs a full time
propagation), the quasi-Newton direction is applied with the same decayed
learning-rate schedule ADAM uses; amplitude bounds are enforced by the
engine's clipping, mirroring the "-B" box constraints.
"""

from __future__ import annotations

from collections import deque

import numpy as np


class LBFGSOptimizer:
    """L-BFGS with ``lr_t = lr / (1 + decay · t)`` scheduling.

    Parameters
    ----------
    learning_rate:
        Step length applied to the quasi-Newton direction, as a fraction
        of each channel's amplitude bound (identical semantics to ADAM's
        learning rate so one tuned value is meaningful for both).
    decay_rate:
        Hyperbolic learning-rate decay per step.
    memory:
        Number of curvature pairs kept for the two-loop recursion.
    """

    def __init__(
        self,
        learning_rate: float,
        decay_rate: float = 0.0,
        memory: int = 12,
    ):
        self.learning_rate = float(learning_rate)
        self.decay_rate = float(decay_rate)
        self.memory = int(memory)
        self._pairs: deque = deque(maxlen=self.memory)
        self._prev_params: np.ndarray | None = None
        self._prev_gradient: np.ndarray | None = None
        self._t = 0

    def reset(self) -> None:
        """Clear the curvature-pair memory and step counter."""
        self._pairs.clear()
        self._prev_params = None
        self._prev_gradient = None
        self._t = 0

    def _direction(self, gradient: np.ndarray) -> np.ndarray:
        """Two-loop recursion: approximate ``H · g`` (descent direction)."""
        q = gradient.copy()
        alphas = []
        for s, y, rho in reversed(self._pairs):
            alpha = rho * (s @ q)
            q -= alpha * y
            alphas.append(alpha)
        if self._pairs:
            s, y, _ = self._pairs[-1]
            gamma = (s @ y) / (y @ y)
        else:
            # First step: scale so the initial move has gradient-descent
            # magnitude comparable to ADAM's unit-normalized step.
            norm = np.linalg.norm(gradient)
            gamma = 1.0 / norm if norm > 0 else 1.0
        r = gamma * q
        for (s, y, rho), alpha in zip(self._pairs, reversed(alphas)):
            beta = rho * (y @ r)
            r += s * (alpha - beta)
        return r

    def step(
        self,
        params: np.ndarray,
        gradient: np.ndarray,
        scale: np.ndarray | float = 1.0,
    ) -> np.ndarray:
        """One quasi-Newton update; returns the new parameters.

        ``scale`` carries the per-channel amplitude bounds (same semantics
        as the ADAM optimizer).  Internally the recursion runs in the
        bound-normalized space ``x = params / scale`` — per-row scaling of
        the raw direction would break the curvature-pair geometry.
        """
        if isinstance(scale, np.ndarray):
            scale = scale[:, None]
        x = (params / scale).ravel().astype(float)
        # Chain rule: d/dx = scale · d/dparams.
        g = (gradient * scale).ravel().astype(float)
        if self._prev_params is not None:
            s = x - self._prev_params
            y = g - self._prev_gradient
            sy = s @ y
            # Keep only pairs satisfying the curvature condition, so the
            # implicit Hessian approximation stays positive definite.
            if sy > 1e-12:
                self._pairs.append((s, y, 1.0 / sy))
        self._prev_params = x
        self._prev_gradient = g
        self._t += 1

        direction = self._direction(g).reshape(params.shape)
        lr = self.learning_rate / (1.0 + self.decay_rate * self._t)
        return (x.reshape(params.shape) - lr * direction) * scale
