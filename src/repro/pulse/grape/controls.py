"""Control-field initialization and constraints."""

from __future__ import annotations

import numpy as np

from repro.errors import GrapeError


def initial_controls(
    num_controls: int,
    num_steps: int,
    max_amplitudes: np.ndarray,
    seed: int | np.random.Generator | None = 0,
    scale: float = 0.25,
    harmonics: int = 4,
) -> np.ndarray:
    """Smooth random initial control fields.

    Each channel is a random low-frequency Fourier series scaled to at most
    ``scale`` of its amplitude bound.  Smooth starts converge far more
    reliably than white noise, and seeding keeps benchmark runs
    reproducible (the paper: "we fixed randomization seeds when
    appropriate").
    """
    if num_steps < 1:
        raise GrapeError("need at least one time step")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    t = np.linspace(0.0, np.pi, num_steps)
    controls = np.zeros((num_controls, num_steps))
    for c in range(num_controls):
        wave = np.zeros(num_steps)
        for h in range(1, harmonics + 1):
            a, b = rng.normal(size=2) / h
            wave += a * np.sin(h * t) + b * np.cos(h * t)
        peak = np.abs(wave).max()
        if peak > 1e-12:
            wave *= scale * max_amplitudes[c] / peak
        controls[c] = wave
    return controls


def clip_controls(controls: np.ndarray, max_amplitudes: np.ndarray) -> np.ndarray:
    """Project controls onto the amplitude box ``|u_c| ≤ max_amplitudes[c]``."""
    bounds = np.asarray(max_amplitudes)[:, None]
    return np.clip(controls, -bounds, bounds)


def envelope_window(num_steps: int, ramp_fraction: float = 0.1) -> np.ndarray:
    """A smooth rise/fall window forcing pulses to start and end near zero.

    Used by the "realistic" GRAPE mode (paper section 8.3: pulses must
    "follow a Gaussian envelope and have smooth 1st and 2nd derivatives").
    The window is flat in the middle with raised-cosine ramps at both ends.
    """
    if num_steps < 1:
        raise GrapeError("need at least one time step")
    window = np.ones(num_steps)
    ramp = max(1, int(round(ramp_fraction * num_steps)))
    if 2 * ramp >= num_steps:
        # Entire pulse is one raised-cosine bump.
        return 0.5 * (1 - np.cos(2 * np.pi * np.arange(num_steps) / max(1, num_steps - 1)))
    rise = 0.5 * (1 - np.cos(np.pi * np.arange(ramp) / ramp))
    window[:ramp] = rise
    window[-ramp:] = rise[::-1]
    return window
