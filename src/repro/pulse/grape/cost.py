"""The GRAPE cost function and its exact gradient.

The objective is the gate infidelity

    ``C = 1 - |Tr(E† U_total)|² / d²  (+ regularization penalties)``

where ``E`` is the target unitary restricted to the computational subspace
(zero rows/columns on leakage levels, so qutrit leakage is automatically
penalized: amplitude that leaks out of the 2^n block simply does not count
toward the overlap).

Gradients are exact: the derivative of each step propagator
``U_k = exp(-i dt H_k)`` along each control operator comes from the
eigenbasis Fréchet formula (see :mod:`repro.linalg.expm`), and the chain
rule through the product ``U_N … U_1`` uses the standard forward/backward
partial products.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GrapeError
from repro.linalg.expm import _divided_differences
from repro.pulse.hamiltonian import ControlSet, embed_target_unitary


@dataclass(frozen=True)
class RegularizationSettings:
    """Penalty weights for the "realistic pulses" mode (paper section 8.3).

    Attributes
    ----------
    amplitude_weight:
        L2 penalty on drive amplitudes (relative to each bound).
    slope_weight:
        L2 penalty on first differences — smooth first derivatives.
    curvature_weight:
        L2 penalty on second differences — smooth second derivatives.
    enforce_envelope:
        Force pulses to rise from and return to zero through a
        raised-cosine window (Gaussian-envelope-like shaping).
    """

    amplitude_weight: float = 0.0
    slope_weight: float = 0.0
    curvature_weight: float = 0.0
    enforce_envelope: bool = False

    @classmethod
    def realistic(cls) -> "RegularizationSettings":
        """The aggressive shaping used for Table 5's 'more realistic' rows."""
        return cls(
            amplitude_weight=1e-3,
            slope_weight=5e-3,
            curvature_weight=1e-3,
            enforce_envelope=True,
        )


class GrapeCost:
    """Evaluates the cost and gradient for fixed block/target/timestep."""

    def __init__(
        self,
        control_set: ControlSet,
        target: np.ndarray,
        dt_ns: float,
        regularization: RegularizationSettings | None = None,
    ):
        self.control_set = control_set
        self.dt_ns = float(dt_ns)
        if self.dt_ns <= 0:
            raise GrapeError(f"dt must be positive, got {dt_ns}")
        self.regularization = regularization or RegularizationSettings()

        n_qubits = len(control_set.qubits)
        dim_comp = 2**n_qubits
        if target.shape != (dim_comp, dim_comp):
            raise GrapeError(
                f"target shape {target.shape} does not match block of "
                f"{n_qubits} qubits"
            )
        # E: the target embedded with *zeros* outside the computational
        # subspace, so Tr(E† U) only scores the qubit block.
        embedded = embed_target_unitary(target, n_qubits, control_set.levels)
        if control_set.levels != 2:
            from repro.pulse.hamiltonian import computational_indices

            mask = np.zeros_like(embedded)
            idx = computational_indices(n_qubits, control_set.levels)
            mask[np.ix_(idx, idx)] = embedded[np.ix_(idx, idx)]
            embedded = mask
        self._target_embedded = embedded
        self._dim_comp = dim_comp

    # -- fidelity only (cheap path used for final verification) -----------
    def propagate(self, controls: np.ndarray) -> np.ndarray:
        """Total unitary produced by ``controls`` (shape (n_controls, n_steps))."""
        hams = self._step_hamiltonians(controls)
        eigvals, eigvecs = np.linalg.eigh(hams)
        phases = np.exp(-1j * self.dt_ns * eigvals)
        props = np.einsum(
            "kij,kj,klj->kil", eigvecs, phases, eigvecs.conj(), optimize=True
        )
        total = np.eye(hams.shape[-1], dtype=complex)
        for k in range(props.shape[0]):
            total = props[k] @ total
        return total

    def fidelity(self, controls: np.ndarray) -> float:
        overlap = np.trace(self._target_embedded.conj().T @ self.propagate(controls))
        return float(np.abs(overlap) ** 2 / self._dim_comp**2)

    # -- full cost + gradient ----------------------------------------------
    def cost_and_gradient(self, controls: np.ndarray) -> tuple:
        """Return ``(cost, gradient, fidelity)``.

        ``gradient`` has the same shape as ``controls``.
        """
        ops = self.control_set.operators
        n_controls, n_steps = controls.shape
        if n_controls != self.control_set.num_controls:
            raise GrapeError(
                f"controls rows {n_controls} != channels {self.control_set.num_controls}"
            )
        dt = self.dt_ns
        dim = self.control_set.dim

        hams = self._step_hamiltonians(controls)
        eigvals, eigvecs = np.linalg.eigh(hams)
        phases = np.exp(-1j * dt * eigvals)
        props = np.einsum(
            "kij,kj,klj->kil", eigvecs, phases, eigvecs.conj(), optimize=True
        )

        # Forward partial products A_k = U_k … U_1 (A[0] = identity).
        forward = np.empty((n_steps + 1, dim, dim), dtype=complex)
        forward[0] = np.eye(dim)
        for k in range(n_steps):
            forward[k + 1] = props[k] @ forward[k]
        # Backward partial products B_k = U_{N-1} … U_{k+1} (B[N-1] = identity).
        backward = np.empty((n_steps, dim, dim), dtype=complex)
        backward[n_steps - 1] = np.eye(dim)
        for k in range(n_steps - 2, -1, -1):
            backward[k] = backward[k + 1] @ props[k + 1]

        total = forward[n_steps]
        e_dag = self._target_embedded.conj().T
        overlap = np.trace(e_dag @ total) / self._dim_comp
        fidelity = float(np.abs(overlap) ** 2)

        # dz/du_ck = Tr(G_k · dU_k/du_ck) / d_comp with
        # G_k = A_{k-1} E† B_k   (z = Tr(E† B_k U_k A_{k-1}) / d_comp).
        g_mats = np.einsum(
            "kij,jl,klm->kim", forward[:-1], e_dag, backward, optimize=True
        )
        # Move everything to the per-step eigenbasis.
        gammas = np.empty((n_steps, dim, dim), dtype=complex)
        for k in range(n_steps):
            gammas[k] = _divided_differences(eigvals[k], phases[k], dt)
        g_eig = np.einsum(
            "kji,kjl,klm->kim", eigvecs.conj(), g_mats, eigvecs, optimize=True
        )
        ops_eig = np.einsum(
            "kji,cjl,klm->ckim", eigvecs.conj(), ops, eigvecs, optimize=True
        )
        # Tr(G_k dU_kc) = Σ_ij (G_eig)^T ∘ Γ ∘ W_c  summed over entries.
        mask = np.transpose(g_eig, (0, 2, 1)) * gammas
        overlap_grad = (
            np.einsum("kij,ckij->ck", mask, ops_eig, optimize=True) / self._dim_comp
        )
        grad_fidelity = 2.0 * np.real(np.conj(overlap) * overlap_grad)
        cost = 1.0 - fidelity
        gradient = -grad_fidelity

        reg_cost, reg_grad = self._regularization_terms(controls)
        return cost + reg_cost, gradient + reg_grad, fidelity

    # -- helpers ------------------------------------------------------------
    def _step_hamiltonians(self, controls: np.ndarray) -> np.ndarray:
        drift = self.control_set.drift
        return drift[None, :, :] + np.einsum(
            "ck,cij->kij", controls, self.control_set.operators, optimize=True
        )

    def _regularization_terms(self, controls: np.ndarray) -> tuple:
        reg = self.regularization
        cost = 0.0
        grad = np.zeros_like(controls)
        bounds = self.control_set.max_amplitudes[:, None]
        if reg.amplitude_weight > 0:
            rel = controls / bounds
            cost += reg.amplitude_weight * float(np.mean(rel**2))
            grad += 2 * reg.amplitude_weight * rel / bounds / rel.size
        if reg.slope_weight > 0 and controls.shape[1] > 1:
            diff = np.diff(controls, axis=1) / bounds
            cost += reg.slope_weight * float(np.mean(diff**2))
            back = np.zeros_like(controls)
            back[:, :-1] -= diff
            back[:, 1:] += diff
            grad += 2 * reg.slope_weight * back / bounds / diff.size
        if reg.curvature_weight > 0 and controls.shape[1] > 2:
            curv = np.diff(controls, n=2, axis=1) / bounds
            cost += reg.curvature_weight * float(np.mean(curv**2))
            back = np.zeros_like(controls)
            back[:, :-2] += curv
            back[:, 1:-1] -= 2 * curv
            back[:, 2:] += curv
            grad += 2 * reg.curvature_weight * back / bounds / curv.size
        return cost, grad
