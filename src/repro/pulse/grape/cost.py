"""The GRAPE cost function and its exact gradient.

The objective is the gate infidelity

    ``C = 1 - |Tr(E† U_total)|² / d²  (+ regularization penalties)``

where ``E`` is the target unitary restricted to the computational subspace
(zero rows/columns on leakage levels, so qutrit leakage is automatically
penalized: amplitude that leaks out of the 2^n block simply does not count
toward the overlap).

Gradients are exact: the derivative of each step propagator
``U_k = exp(-i dt H_k)`` along each control operator comes from the
eigenbasis Fréchet formula (see :mod:`repro.linalg.expm`), and the chain
rule through the product ``U_N … U_1`` uses the standard forward/backward
partial products.

Kernel layout
-------------
``cost_and_gradient`` is the hot path of the whole reproduction — every
GRAPE iteration of every block runs it once — so it is written as a
batched kernel rather than a per-step Python loop:

* all step Hamiltonians, eigendecompositions, propagators, and Loewner
  (divided-difference) matrices are produced in single stacked calls;
* the target ``E†`` is folded into the backward scan, so the gradient
  contraction ``G_k = A_{k-1} E† B_k`` costs one batched matmul instead
  of two;
* both propagator scans run through the blocked prefix-product scan of
  :mod:`repro.linalg.scan` — ``≈ 2√S`` batched GEMMs instead of ``S``
  sequential ones — and ``propagate`` reuses the same code path, so there
  is exactly one way a pulse is propagated anywhere in the package;
* the per-control contraction is fused through the kernel matrix
  ``K_k = V̄_k (Γ_k ∘ (V_k† G_k V_k)ᵀ) V_kᵀ`` so the expensive ``O(d³)``
  transforms happen once per *step* instead of once per *step × control*,
  and the per-control reduction collapses to one GEMM against the
  pre-flattened control operators;
* contraction plans — pre-reshaped operand layouts that turn every hot
  contraction into a batched BLAS matmul — are prepared in ``__init__``,
  and the forward/backward scan buffers are preallocated and reused
  across iterations, so the optimizer's inner loop does no einsum path
  planning and a minimal amount of allocation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GrapeError
from repro.linalg.expm import (
    _divided_differences,
    expm_hermitian,
    expm_hermitian_factorized,
)
from repro.linalg.scan import backward_partial_products, forward_partial_products
from repro.pulse.hamiltonian import ControlSet, embed_target_unitary


@dataclass(frozen=True)
class RegularizationSettings:
    """Penalty weights for the "realistic pulses" mode (paper section 8.3).

    Attributes
    ----------
    amplitude_weight:
        L2 penalty on drive amplitudes (relative to each bound).
    slope_weight:
        L2 penalty on first differences — smooth first derivatives.
    curvature_weight:
        L2 penalty on second differences — smooth second derivatives.
    enforce_envelope:
        Force pulses to rise from and return to zero through a
        raised-cosine window (Gaussian-envelope-like shaping).
    """

    amplitude_weight: float = 0.0
    slope_weight: float = 0.0
    curvature_weight: float = 0.0
    enforce_envelope: bool = False

    @classmethod
    def realistic(cls) -> "RegularizationSettings":
        """The aggressive shaping used for Table 5's 'more realistic' rows."""
        return cls(
            amplitude_weight=1e-3,
            slope_weight=5e-3,
            curvature_weight=1e-3,
            enforce_envelope=True,
        )


class GrapeCost:
    """Evaluates the cost and gradient for fixed block/target/timestep."""

    def __init__(
        self,
        control_set: ControlSet,
        target: np.ndarray,
        dt_ns: float,
        regularization: RegularizationSettings | None = None,
    ):
        self.control_set = control_set
        self.dt_ns = float(dt_ns)
        if self.dt_ns <= 0:
            raise GrapeError(f"dt must be positive, got {dt_ns}")
        self.regularization = regularization or RegularizationSettings()

        n_qubits = len(control_set.qubits)
        dim_comp = 2**n_qubits
        if target.shape != (dim_comp, dim_comp):
            raise GrapeError(
                f"target shape {target.shape} does not match block of "
                f"{n_qubits} qubits"
            )
        # E: the target embedded with *zeros* outside the computational
        # subspace, so Tr(E† U) only scores the qubit block.
        embedded = embed_target_unitary(target, n_qubits, control_set.levels)
        if control_set.levels != 2:
            from repro.pulse.hamiltonian import computational_indices

            mask = np.zeros_like(embedded)
            idx = computational_indices(n_qubits, control_set.levels)
            mask[np.ix_(idx, idx)] = embedded[np.ix_(idx, idx)]
            embedded = mask
        self._target_embedded = embedded
        self._dim_comp = dim_comp

        # -- contraction plans, prepared once per cost object --------------
        # Control operators in the layouts the kernel consumes: a contiguous
        # complex stack for Hamiltonian assembly and a pre-flattened (c, d²)
        # matrix so the per-control gradient reduction is a single GEMM.
        # With these fixed layouts every hot contraction compiles to a
        # batched BLAS matmul, so no einsum path planning survives in the
        # iteration loop at all (the seed re-planned several per call).
        dim = control_set.dim
        self._ops = np.ascontiguousarray(control_set.operators, dtype=complex)
        self._ops_flat = self._ops.reshape(self._ops.shape[0], dim * dim)
        self._e_dag = np.ascontiguousarray(embedded.conj().T)
        #: forward/backward scan buffers keyed by (n_steps, dim).
        self._scan_buffers: dict = {}

    def _buffers(self, n_steps: int, dim: int) -> tuple:
        """Reusable forward/backward scan buffers for this problem size.

        The ADAM/L-BFGS loop calls ``cost_and_gradient`` hundreds of times
        with an unchanged shape; reusing the scan arrays keeps the inner
        loop allocation-free where it matters most.
        """
        key = (n_steps, dim)
        buffers = self._scan_buffers.get(key)
        if buffers is None:
            forward = np.empty((n_steps + 1, dim, dim), dtype=complex)
            bwd = np.empty((n_steps, dim, dim), dtype=complex)
            buffers = (forward, bwd)
            # One shape dominates per optimization run; evict stale sizes
            # (minimum-time search probes several pulse lengths).
            if len(self._scan_buffers) >= 4:
                self._scan_buffers.clear()
            self._scan_buffers[key] = buffers
        return buffers

    # -- fidelity only (cheap path used for final verification) -----------
    def propagate(self, controls: np.ndarray) -> np.ndarray:
        """Total unitary produced by ``controls`` (shape (n_controls, n_steps))."""
        props = expm_hermitian(self._step_hamiltonians(controls), self.dt_ns)
        return forward_partial_products(props)[-1]

    def fidelity(self, controls: np.ndarray) -> float:
        overlap = np.trace(self._target_embedded.conj().T @ self.propagate(controls))
        return float(np.abs(overlap) ** 2 / self._dim_comp**2)

    # -- full cost + gradient ----------------------------------------------
    def cost_and_gradient(self, controls: np.ndarray) -> tuple:
        """Return ``(cost, gradient, fidelity)``.

        ``gradient`` has the same shape as ``controls``.
        """
        n_controls, n_steps = controls.shape
        if n_controls != self.control_set.num_controls:
            raise GrapeError(
                f"controls rows {n_controls} != channels {self.control_set.num_controls}"
            )
        dt = self.dt_ns
        dim = self.control_set.dim

        # One shared propagator code path with ``propagate``: diagonalize
        # and exponentiate every time slice in a single stacked call.
        eigvals, eigvecs, phases, props = expm_hermitian_factorized(
            self._step_hamiltonians(controls), dt
        )

        forward, bwd = self._buffers(n_steps, dim)
        # Forward partial products A_k = U_k … U_1 (A[0] = identity) and the
        # backward partial products with the target folded in — bwd[k] = E† B_k
        # where B_k = U_{N-1} … U_{k+1} (so bwd[N-1] = E†) — via the shared
        # blocked prefix-product scan (~2√S batched GEMMs instead of S).
        e_dag = self._e_dag
        forward_partial_products(props, out=forward)
        backward_partial_products(props, e_dag, out=bwd)

        total = forward[n_steps]
        overlap = np.einsum("ij,ji->", e_dag, total) / self._dim_comp
        fidelity = float(np.abs(overlap) ** 2)

        # dz/du_ck = Tr(G_k · dU_k/du_ck) / d_comp with
        # G_k = A_{k-1} E† B_k   (z = Tr(E† B_k U_k A_{k-1}) / d_comp).
        g_mats = np.matmul(forward[:-1], bwd)
        # All Loewner (divided-difference) matrices in one broadcasted call.
        gammas = _divided_differences(eigvals, phases, dt)

        # Fused per-control contraction.  With M_k = Γ_k ∘ (V_k† G_k V_k)ᵀ
        # the gradient overlap is Σ_ab (Op_c)_ab (K_k)_ab for the kernel
        # matrix K_k = V̄_k M_k V_kᵀ: the O(d³) transforms run once per step
        # (not per step × control) as batched GEMMs, and the per-control
        # reduction is one GEMM against the pre-flattened operators.
        vecs_t = np.swapaxes(eigvecs, -1, -2)
        vecs_conj = eigvecs.conj()
        # (V† G V)ᵀ = Vᵀ Gᵀ V̄, built directly in transposed form.
        g_eig_t = np.matmul(vecs_t, np.matmul(np.swapaxes(g_mats, -1, -2), vecs_conj))
        np.multiply(g_eig_t, gammas, out=g_eig_t)  # M_k, in place
        k_mats = np.matmul(vecs_conj, np.matmul(g_eig_t, vecs_t))
        overlap_grad = (
            self._ops_flat @ k_mats.reshape(n_steps, dim * dim).T
        ) / self._dim_comp
        grad_fidelity = 2.0 * np.real(np.conj(overlap) * overlap_grad)
        cost = 1.0 - fidelity
        gradient = -grad_fidelity

        reg_cost, reg_grad = self._regularization_terms(controls)
        return cost + reg_cost, gradient + reg_grad, fidelity

    # -- helpers ------------------------------------------------------------
    def _step_hamiltonians(self, controls: np.ndarray) -> np.ndarray:
        """Stack of per-slice Hamiltonians ``H_k = H_drift + Σ_c u_ck Op_c``.

        One GEMM against the pre-flattened control operators replaces the
        seed's 3-index einsum (which re-planned its path every call).
        """
        drift = self.control_set.drift
        dim = self.control_set.dim
        hams = (controls.T @ self._ops_flat).reshape(-1, dim, dim)
        hams += drift
        return hams

    def _regularization_terms(self, controls: np.ndarray) -> tuple:
        reg = self.regularization
        cost = 0.0
        grad = np.zeros_like(controls)
        bounds = self.control_set.max_amplitudes[:, None]
        if reg.amplitude_weight > 0:
            rel = controls / bounds
            cost += reg.amplitude_weight * float(np.mean(rel**2))
            grad += 2 * reg.amplitude_weight * rel / bounds / rel.size
        if reg.slope_weight > 0 and controls.shape[1] > 1:
            diff = np.diff(controls, axis=1) / bounds
            cost += reg.slope_weight * float(np.mean(diff**2))
            back = np.zeros_like(controls)
            back[:, :-1] -= diff
            back[:, 1:] += diff
            grad += 2 * reg.slope_weight * back / bounds / diff.size
        if reg.curvature_weight > 0 and controls.shape[1] > 2:
            curv = np.diff(controls, n=2, axis=1) / bounds
            cost += reg.curvature_weight * float(np.mean(curv**2))
            back = np.zeros_like(controls)
            back[:, :-2] += curv
            back[:, 1:-1] -= 2 * curv
            back[:, 2:] += curv
            grad += 2 * reg.curvature_weight * back / bounds / curv.size
        return cost, grad
