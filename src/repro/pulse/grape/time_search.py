"""Binary search for the minimum pulse time (paper section 5.3).

Rather than weighting a time-penalty term against fidelity — which the paper
found brittle — the pulse length itself is searched: find the shortest
``total_time`` at which GRAPE still reaches the target fidelity, to a
precision of 0.3 ns.  Each probe warm-starts from the best feasible pulse
found so far (resampled to the new step count), which substantially reduces
the iterations per probe.

The search has two phases with different parallelism structure.  The
*binary search* is sequential by design: each probe's outcome decides the
next interval.  The *feasibility-doubling* probes are not — once the
initial bound (and its half) fail, the candidate doubled durations are
independent GRAPE runs, so passing ``probe_executor`` dispatches them
speculatively in parallel and keeps the shortest converged one.  The
speculative path costs extra GRAPE iterations (every doubling runs instead
of stopping at the first success) in exchange for wall-clock latency — the
right trade inside flexible partial compilation's precompute phase, where
hard blocks otherwise serialize three doublings back to back.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import GrapeError
from repro.pulse.grape.engine import (
    GrapeHyperparameters,
    GrapeResult,
    GrapeSettings,
    optimize_pulse,
)
from repro.pulse.hamiltonian import ControlSet
from repro.pulse.schedule import PulseSchedule


@dataclass
class MinimumTimeResult:
    """Outcome of the minimum-time search.

    ``total_iterations`` counts every ADAM step across every probe — the
    hardware-independent compilation-latency measure used in the Figure 7
    reproduction.
    """

    schedule: PulseSchedule
    fidelity: float
    duration_ns: float
    converged: bool
    total_iterations: int
    grape_calls: int
    wall_time_s: float
    probes: list = field(default_factory=list)  # (duration_ns, fidelity, converged)

    @property
    def best_result_duration(self) -> float:
        return self.duration_ns


def _resolve_probe_executor(spec):
    """Turn the ``probe_executor`` argument into an executor, or ``None``.

    Unlike :func:`repro.pipeline.executors.resolve_executor`, a ``None``
    spec stays ``None`` — speculative probing is opt-in per call site, not
    inherited from ``REPRO_EXECUTOR`` (the block-level executor config
    would otherwise silently multiply GRAPE work inside every block).
    """
    if spec is None:
        return None
    from repro.pipeline.executors import resolve_executor

    executor = resolve_executor(spec)
    # An executor that declares speculation unhelpful (auto on a 1–2 CPU
    # host: no spare cores to hide the extra probes behind) degrades to the
    # lazy sequential doubling path, which does strictly less GRAPE work.
    if not getattr(executor, "speculation_helps", True):
        return None
    return executor


def _feasibility_probe(
    control_set: ControlSet,
    target: np.ndarray,
    hyper: GrapeHyperparameters,
    settings: GrapeSettings,
    dt: float,
    warm: PulseSchedule | None,
    duration_ns: float,
) -> GrapeResult:
    """One independent feasibility probe (module-level so pools can pickle)."""
    steps = max(1, int(round(duration_ns / dt)))
    initial = warm.resampled(steps).controls if warm is not None else None
    return optimize_pulse(control_set, target, steps, hyper, settings, initial=initial)


def minimum_time_pulse(
    control_set: ControlSet,
    target: np.ndarray,
    upper_bound_ns: float,
    hyperparameters: GrapeHyperparameters | None = None,
    settings: GrapeSettings | None = None,
    precision_ns: float | None = None,
    lower_bound_ns: float = 0.0,
    max_doublings: int = 3,
    probe_executor=None,
    warm_start: PulseSchedule | None = None,
) -> MinimumTimeResult:
    """Find the shortest pulse that realizes ``target`` at the set fidelity.

    Parameters
    ----------
    upper_bound_ns:
        Initial feasible-time guess — typically the gate-based duration of
        the block, which GRAPE should beat.  Doubled up to ``max_doublings``
        times if infeasible.
    precision_ns:
        Binary-search stopping width (preset default: paper uses 0.3 ns).
    probe_executor:
        Optional :class:`~repro.pipeline.executors.BlockExecutor` (or
        executor name) for the feasibility-doubling probes.  ``None`` (the
        default) keeps the lazy sequential behavior: doublings run one at a
        time, stopping at the first success.  With an executor, all
        doubling candidates run speculatively — in parallel for the pool
        executors — and the shortest converged one wins; total iteration
        counts include every speculative probe.  Because every speculative
        probe warm-starts from the same pre-doubling best (instead of the
        sequential path's chained warm starts), the feasible duration found
        can differ slightly between the two modes; a first-probe success is
        identical either way.  The binary search itself always stays
        sequential (each probe decides the next interval).
    warm_start:
        Optional seed schedule (a cached neighbor's pulse or an analytic
        KAK seed).  Probes that have no in-search best yet start from it
        (resampled to the probe's step count) instead of random fields, and
        the seed's own duration is tried *first* when it undercuts the
        upper bound — a near-miss neighbor's minimum time is an excellent
        guess for this block's, letting the search open already close to
        the answer.
    """
    settings = settings or GrapeSettings()
    hyper = hyperparameters or GrapeHyperparameters()
    dt = settings.resolved_dt()
    if precision_ns is None:
        from repro.config import get_preset

        precision_ns = get_preset().time_search_precision_ns
    if upper_bound_ns <= 0:
        raise GrapeError(f"upper bound must be positive, got {upper_bound_ns}")

    start = time.perf_counter()
    total_iterations = 0
    grape_calls = 0
    probes: list[tuple] = []

    def run(duration_ns: float, warm: PulseSchedule | None) -> GrapeResult:
        nonlocal total_iterations, grape_calls
        steps = max(1, int(round(duration_ns / dt)))
        initial = warm.resampled(steps).controls if warm is not None else None
        result = optimize_pulse(
            control_set, target, steps, hyper, settings, initial=initial
        )
        total_iterations += result.iterations
        grape_calls += 1
        probes.append((steps * dt, result.fidelity, result.converged))
        return result

    # Establish a feasible duration.  Over-long pulses are often *harder*
    # to converge than moderately short ones (far more parameters for the
    # same descent budget), so after a failed first probe the search also
    # tries half the bound before resorting to doubling.
    trial_times = [upper_bound_ns, 0.5 * upper_bound_ns]
    seed_first = False
    if warm_start is not None:
        seed_duration = warm_start.duration_ns
        if 0.0 < seed_duration <= upper_bound_ns * (1.0 + 1e-9):
            # Try the seed's own duration first — for a near-miss neighbor
            # it is the best minimum-time guess available.  Dedupe trials
            # that snap to the same step count.
            snapped = {max(1, int(round(t / dt))) for t in (seed_duration,)}
            trial_times = [seed_duration] + [
                t
                for t in trial_times
                if max(1, int(round(t / dt))) not in snapped
            ]
            seed_first = True
    doubling_times = [upper_bound_ns * 2.0**k for k in range(1, max_doublings + 1)]
    best: GrapeResult | None = None
    for trial in trial_times:
        result = run(trial, best.schedule if best else warm_start)
        if result.converged:
            best = result
            break
        if best is None or result.fidelity > best.fidelity:
            best = result

    executor = _resolve_probe_executor(probe_executor)
    if not best.converged and doubling_times:
        if executor is not None and len(doubling_times) > 1:
            # Speculative phase: every doubling candidate probes at once
            # from the same warm start; keep the shortest converged one.
            from functools import partial

            worker = partial(
                _feasibility_probe,
                control_set,
                target,
                hyper,
                settings,
                dt,
                best.schedule,
            )
            results = executor.map(worker, doubling_times)
            for duration, result in zip(doubling_times, results):
                total_iterations += result.iterations
                grape_calls += 1
                steps = max(1, int(round(duration / dt)))
                probes.append((steps * dt, result.fidelity, result.converged))
            converged = [r for r in results if r.converged]
            if converged:
                # Ascending durations: the first converged is the shortest.
                best = converged[0]
            else:
                best = max([best, *results], key=lambda r: r.fidelity)
        else:
            for trial in doubling_times:
                result = run(trial, best.schedule)
                if result.converged:
                    best = result
                    break
                if result.fidelity > best.fidelity:
                    best = result

    if best is None or not best.converged:
        # Infeasible even after doubling; report the best attempt.
        return MinimumTimeResult(
            schedule=best.schedule,
            fidelity=best.fidelity,
            duration_ns=best.schedule.duration_ns,
            converged=False,
            total_iterations=total_iterations,
            grape_calls=grape_calls,
            wall_time_s=time.perf_counter() - start,
            probes=probes,
        )

    feasible = best
    low = max(lower_bound_ns, 0.0)
    high = feasible.schedule.duration_ns
    # Binary search down to the requested precision (at least one dt).
    min_width = max(precision_ns, dt)
    # When the search opened by converging at the *seed's* duration, that
    # duration is a near-miss neighbor's own minimum time — the strongest
    # prior available for this block's.  Binary-searching [0, D] from here
    # wastes full-budget failing probes in the infeasible region below the
    # answer, so descend one step at a time instead: converged probes are
    # cheap (each warm-starts from the last), and the first failure closes
    # the window to one step, ending the search with the same precision
    # guarantee.  A small budget bounds the descent for loose seeds; any
    # leftover window falls through to the ordinary binary search.
    descend_budget = 4 if seed_first and best.converged and grape_calls == 1 else 0
    while descend_budget and high - low > min_width:
        steps = max(1, int(round(high / dt))) - 1
        candidate = steps * dt
        if steps < 1 or candidate <= low:
            break
        descend_budget -= 1
        result = run(candidate, feasible.schedule)
        if result.converged:
            feasible = result
            high = candidate
        else:
            low = candidate
            break
    while high - low > min_width:
        mid = 0.5 * (low + high)
        steps = max(1, int(round(mid / dt)))
        mid_snapped = steps * dt
        if mid_snapped >= high or mid_snapped <= low:
            break
        result = run(mid_snapped, feasible.schedule)
        if result.converged:
            feasible = result
            high = mid_snapped
        else:
            low = mid_snapped

    return MinimumTimeResult(
        schedule=feasible.schedule,
        fidelity=feasible.fidelity,
        duration_ns=feasible.schedule.duration_ns,
        converged=True,
        total_iterations=total_iterations,
        grape_calls=grape_calls,
        wall_time_s=time.perf_counter() - start,
        probes=probes,
    )
