"""eQASM-style pulse assembly for precompiled partial-compilation programs.

Paper section 6: "These static precompiled pulse sequences can be defined
as microinstructions in a low-level assembly such as eQASM".  This module
is that assembly layer:

* a :class:`MicroinstructionTable` names each precompiled pulse waveform
  once (Fixed blocks repeat heavily in UCCSD circuits, so the table
  deduplicates them),
* a :class:`PulseAssembly` is the program — a sequence of
  ``pulse <name>`` micro-ops and parametric ``rz`` slots whose angles are
  linear forms over the variational parameters,
* :meth:`PulseAssembly.link` resolves a concrete parametrization into a
  flat :class:`~repro.pulse.schedule.PulseProgram` — the zero-GRAPE runtime
  step of strict partial compilation,
* :meth:`PulseAssembly.to_json` / :meth:`PulseAssembly.from_json` give the
  on-disk format a control computer would load.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.config import GATE_DURATIONS_NS
from repro.errors import PulseError
from repro.pulse.schedule import PulseProgram, PulseSchedule, lookup_schedule

__all__ = [
    "MicroinstructionTable",
    "ParametricRzOp",
    "PulseAssembly",
    "PulseOp",
    "assembly_from_strict_plan",
]


class MicroinstructionTable:
    """Named precompiled pulse waveforms, deduplicated by content."""

    def __init__(self):
        self._schedules: dict = {}
        self._by_fingerprint: dict = {}

    def __len__(self) -> int:
        return len(self._schedules)

    def __contains__(self, name: str) -> bool:
        return name in self._schedules

    @property
    def names(self) -> tuple:
        """Defined microinstruction names, in definition order."""
        return tuple(self._schedules)

    def define(self, name: str, schedule: PulseSchedule) -> str:
        """Register ``schedule`` under ``name``; rejects redefinition."""
        if name in self._schedules:
            raise PulseError(f"microinstruction {name!r} already defined")
        self._schedules[name] = schedule
        self._by_fingerprint.setdefault(self._fingerprint(schedule), name)
        return name

    def intern(self, schedule: PulseSchedule) -> str:
        """Return the name of ``schedule``, defining ``u<k>`` if new.

        Identical waveforms (same qubits, dt, and samples) share one entry —
        this is what makes the table small for UCCSD circuits, whose Fixed
        blocks repeat across excitation terms.
        """
        fingerprint = self._fingerprint(schedule)
        name = self._by_fingerprint.get(fingerprint)
        if name is None:
            name = f"u{len(self._schedules)}"
            self.define(name, schedule)
        return name

    def get(self, name: str) -> PulseSchedule:
        """The schedule registered under ``name``; raises if undefined."""
        try:
            return self._schedules[name]
        except KeyError:
            raise PulseError(f"undefined microinstruction {name!r}") from None

    @staticmethod
    def _fingerprint(schedule: PulseSchedule) -> tuple:
        samples = np.round(schedule.controls, decimals=9)
        return (
            schedule.qubits,
            round(schedule.dt_ns, 9),
            samples.shape,
            samples.tobytes(),
        )


@dataclass(frozen=True)
class PulseOp:
    """``pulse <name>`` — play one precompiled microinstruction."""

    name: str


@dataclass(frozen=True)
class ParametricRzOp:
    """A run-time ``rz`` slot with a linear-form angle.

    ``angle = Σ coefficients[param_name] · θ[param_name] + offset``; the
    pulse itself is the calibrated lookup ``Rz`` (0.4 ns in Table 1) — its
    duration is independent of the angle, which is why linking costs no
    GRAPE time.
    """

    qubits: tuple
    gate_name: str
    coefficients: tuple  # ((param_name, coefficient), ...)
    offset: float

    def angle(self, values: dict) -> float:
        """Evaluate the linear form at ``values`` (name → angle mapping)."""
        total = self.offset
        for name, coefficient in self.coefficients:
            try:
                total += coefficient * float(values[name])
            except KeyError:
                raise PulseError(f"missing value for parameter {name!r}") from None
        return total


@dataclass
class PulseAssembly:
    """An eQASM-style pulse program over a microinstruction table."""

    table: MicroinstructionTable
    ops: list = field(default_factory=list)
    parameter_names: tuple = ()

    def append_pulse(self, schedule: PulseSchedule) -> None:
        """Append a ``pulse`` op, interning ``schedule`` into the table."""
        self.ops.append(PulseOp(self.table.intern(schedule)))

    def append_rz(
        self,
        qubits,
        gate_name: str,
        coefficients,
        offset: float = 0.0,
    ) -> None:
        """Append a parametric ``rz`` slot (see :class:`ParametricRzOp`)."""
        self.ops.append(
            ParametricRzOp(
                qubits=tuple(qubits),
                gate_name=gate_name,
                coefficients=tuple(coefficients),
                offset=float(offset),
            )
        )

    # -- linking -------------------------------------------------------------
    def link(self, values) -> PulseProgram:
        """Resolve a parametrization into a flat pulse program.

        ``values`` is a mapping from parameter name to angle, or a sequence
        aligned with ``parameter_names``.  Linking is pure concatenation —
        the zero-latency runtime step of strict partial compilation.
        """
        if not isinstance(values, dict):
            values = dict(zip(self.parameter_names, values))
        missing = [n for n in self.parameter_names if n not in values]
        if missing:
            raise PulseError(f"missing values for parameters {missing}")
        schedules = []
        for op in self.ops:
            if isinstance(op, PulseOp):
                schedules.append(self.table.get(op.name))
            else:
                op.angle(values)  # validates the binding
                duration = GATE_DURATIONS_NS.get(
                    op.gate_name, GATE_DURATIONS_NS["rz"]
                )
                schedules.append(lookup_schedule(op.qubits, duration))
        return PulseProgram.sequence(schedules)

    # -- rendering -------------------------------------------------------------
    def format(self) -> str:
        """Human-readable eQASM-style listing."""
        lines = [".table"]
        for name in self.table.names:
            schedule = self.table.get(name)
            lines.append(
                f"  {name}: qubits={schedule.qubits} steps={schedule.num_steps} "
                f"dt={schedule.dt_ns:.4g}ns source={schedule.source}"
            )
        lines.append(".program")
        for op in self.ops:
            if isinstance(op, PulseOp):
                lines.append(f"  pulse {op.name}")
            else:
                terms = " + ".join(
                    f"{coefficient:g}*{name}" for name, coefficient in op.coefficients
                )
                if op.offset or not terms:
                    terms = f"{terms} + {op.offset:g}" if terms else f"{op.offset:g}"
                qubits = ", ".join(f"q{q}" for q in op.qubits)
                lines.append(f"  {op.gate_name} {qubits}, {terms}")
        return "\n".join(lines)

    # -- serialization ---------------------------------------------------------
    def to_json(self) -> str:
        """Serialize table + program to the versioned JSON wire format."""
        table = {
            name: _schedule_to_dict(self.table.get(name)) for name in self.table.names
        }
        ops = []
        for op in self.ops:
            if isinstance(op, PulseOp):
                ops.append({"op": "pulse", "name": op.name})
            else:
                ops.append(
                    {
                        "op": "rz",
                        "qubits": list(op.qubits),
                        "gate": op.gate_name,
                        "coefficients": [[n, c] for n, c in op.coefficients],
                        "offset": op.offset,
                    }
                )
        return json.dumps(
            {
                "format": "repro-pulse-assembly/1",
                "parameters": list(self.parameter_names),
                "table": table,
                "program": ops,
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "PulseAssembly":
        """Parse :meth:`to_json` output; raises :class:`PulseError` on bad input."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise PulseError(f"invalid assembly JSON: {exc}") from exc
        if payload.get("format") != "repro-pulse-assembly/1":
            raise PulseError(f"unknown assembly format {payload.get('format')!r}")
        table = MicroinstructionTable()
        for name, entry in payload["table"].items():
            table.define(name, _schedule_from_dict(entry))
        assembly = cls(
            table=table, parameter_names=tuple(payload.get("parameters", ()))
        )
        for op in payload["program"]:
            if op["op"] == "pulse":
                assembly.ops.append(PulseOp(op["name"]))
            elif op["op"] == "rz":
                assembly.ops.append(
                    ParametricRzOp(
                        qubits=tuple(op["qubits"]),
                        gate_name=op["gate"],
                        coefficients=tuple((n, float(c)) for n, c in op["coefficients"]),
                        offset=float(op["offset"]),
                    )
                )
            else:
                raise PulseError(f"unknown assembly op {op['op']!r}")
        return assembly


def _schedule_to_dict(schedule: PulseSchedule) -> dict:
    return {
        "qubits": list(schedule.qubits),
        "dt_ns": schedule.dt_ns,
        "controls": schedule.controls.tolist(),
        "channels": list(schedule.channel_names),
        "source": schedule.source,
    }


def _schedule_from_dict(entry: dict) -> PulseSchedule:
    return PulseSchedule(
        qubits=tuple(entry["qubits"]),
        dt_ns=float(entry["dt_ns"]),
        controls=np.asarray(entry["controls"], dtype=float),
        channel_names=tuple(entry.get("channels", ())),
        source=entry.get("source", "grape"),
    )


def assembly_from_strict_plan(compiler) -> PulseAssembly:
    """Export a :class:`~repro.core.strict.StrictPartialCompiler` plan.

    The strict compiler's plan is exactly an assembly program: Fixed-block
    schedules become (deduplicated) microinstructions, parameter-dependent
    gates become parametric ``rz`` slots.  ``assembly.link(values)`` then
    reproduces ``compiler.compile(values)``'s pulse program (before the
    strictly-better fallback check).
    """
    assembly = PulseAssembly(
        table=MicroinstructionTable(),
        parameter_names=tuple(p.name for p in compiler.parameters),
    )
    from repro.circuits.parameters import Parameter, ParameterExpression

    for entry in compiler._plan:
        if entry[0] == "pulse":
            assembly.append_pulse(entry[1])
        else:
            _, qubits, gate_name, expr = entry
            if isinstance(expr, Parameter):
                expr = ParameterExpression({expr: 1.0})
            elif not isinstance(expr, ParameterExpression):
                expr = ParameterExpression({}, float(expr))
            coefficients = tuple(
                (p.name, expr.coefficient(p))
                for p in sorted(expr.parameters, key=lambda p: p.name)
            )
            assembly.append_rz(qubits, gate_name, coefficients, expr.constant)
    return assembly
