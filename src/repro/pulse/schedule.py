"""Pulse schedules and block-level pulse programs.

A :class:`PulseSchedule` is the piecewise-constant control waveform GRAPE
produces for one block.  A :class:`PulseProgram` sequences many block
schedules over a full circuit, overlapping blocks that touch disjoint
qubits — the pulse-level analogue of the ASAP gate scheduler, so pulse
durations in the results are critical-path times, comparable with the
gate-based runtimes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.errors import PulseError


@dataclass
class PulseSchedule:
    """Piecewise-constant controls for one block.

    Attributes
    ----------
    qubits:
        Device qubits the block drives.
    dt_ns:
        Slice width in nanoseconds.
    controls:
        Array ``(n_controls, n_steps)`` of drive amplitudes (rad/ns).
    channel_names:
        Human-readable channel labels aligned with ``controls`` rows.
    source:
        Provenance tag: ``"grape"``, ``"lookup"``, ``"cache"``, …
    """

    qubits: tuple
    dt_ns: float
    controls: np.ndarray
    channel_names: tuple = ()
    source: str = "grape"

    def __post_init__(self):
        self.controls = np.asarray(self.controls, dtype=float)
        if self.controls.ndim != 2:
            raise PulseError(f"controls must be 2-D, got shape {self.controls.shape}")
        if self.dt_ns <= 0:
            raise PulseError(f"dt must be positive, got {self.dt_ns}")
        self.qubits = tuple(self.qubits)

    @property
    def num_steps(self) -> int:
        return self.controls.shape[1]

    @property
    def duration_ns(self) -> float:
        return self.num_steps * self.dt_ns

    def max_amplitude(self) -> float:
        if self.controls.size == 0:
            return 0.0
        return float(np.abs(self.controls).max())

    def resampled(self, num_steps: int) -> "PulseSchedule":
        """Linearly resample the waveform onto ``num_steps`` slices.

        Used to warm-start GRAPE at a different total time in the
        minimum-time binary search.
        """
        if num_steps < 1:
            raise PulseError("need at least one step")
        if self.num_steps == 0:
            controls = np.zeros((self.controls.shape[0], num_steps))
        else:
            old = np.linspace(0.0, 1.0, self.num_steps)
            new = np.linspace(0.0, 1.0, num_steps)
            controls = np.vstack(
                [np.interp(new, old, row) for row in self.controls]
            )
        return PulseSchedule(
            qubits=self.qubits,
            dt_ns=self.dt_ns,
            controls=controls,
            channel_names=self.channel_names,
            source=self.source,
        )


@dataclass(frozen=True)
class _Placed:
    start_ns: float
    schedule: PulseSchedule

    @property
    def end_ns(self) -> float:
        return self.start_ns + self.schedule.duration_ns


@dataclass
class PulseProgram:
    """An ASAP-sequenced series of block pulse schedules."""

    placed: list = field(default_factory=list)

    @classmethod
    def sequence(cls, schedules: Iterable[PulseSchedule]) -> "PulseProgram":
        """Place ``schedules`` in order, each starting as soon as all of its
        qubits are free (blocks on disjoint qubits overlap)."""
        program = cls()
        ready: dict[int, float] = {}
        for sched in schedules:
            start = max((ready.get(q, 0.0) for q in sched.qubits), default=0.0)
            program.placed.append(_Placed(start, sched))
            for q in sched.qubits:
                ready[q] = start + sched.duration_ns
        return program

    @property
    def duration_ns(self) -> float:
        """Critical-path duration of the program."""
        return max((p.end_ns for p in self.placed), default=0.0)

    @property
    def schedules(self) -> tuple:
        return tuple(p.schedule for p in self.placed)

    def __len__(self) -> int:
        return len(self.placed)


def lookup_schedule(
    qubits: Sequence[int], duration_ns: float, dt_ns: float = 0.05, source: str = "lookup"
) -> PulseSchedule:
    """An opaque fixed-duration placeholder schedule for lookup-table gates.

    Gate-based compilation concatenates pre-calibrated pulses; only their
    duration matters for the paper's comparisons, so the waveform is stored
    as a zero array of the right length.
    """
    steps = max(1, int(round(duration_ns / dt_ns)))
    return PulseSchedule(
        qubits=tuple(qubits),
        dt_ns=duration_ns / steps,
        controls=np.zeros((1, steps)),
        channel_names=("lookup",),
        source=source,
    )
