"""The gmon device model (paper Appendix A).

Drive amplitudes are angular frequencies in rad/ns (1 GHz · 2π = 2π rad/ns):

* charge drive  ``H_c,j = Ω_c,j(t) (a†_j + a_j)``, ``|Ω_c| ≤ 2π·0.1``
* flux drive    ``H_f,j = Ω_f,j(t) (a†_j a_j)``,  ``|Ω_f| ≤ 2π·1.5``
* coupler       ``H_j,k = g(t) (a†_j + a_j)(a†_k + a_k)``, ``|g| ≤ 2π·0.05``

The 15x asymmetry between flux (Z-axis) and charge (X-axis) drives is the
"Control Field Asymmetries" speedup source of section 5.1.  For qutrit
simulations, the transmon anharmonicity gives the drift term
``(α/2)·n(n-1)`` per qubit, pushing the leakage level off resonance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import DeviceError
from repro.transpile.topology import Topology, nearly_square_grid

TWO_PI = 2.0 * math.pi

#: Paper Appendix A drive limits, in rad/ns.
MAX_CHARGE_AMP = TWO_PI * 0.1
MAX_FLUX_AMP = TWO_PI * 1.5
MAX_COUPLING_AMP = TWO_PI * 0.05

#: Representative transmon anharmonicity (rad/ns); only matters for levels=3.
DEFAULT_ANHARMONICITY = -TWO_PI * 0.2


@dataclass(frozen=True)
class ControlChannel:
    """One drivable control line.

    ``kind`` is ``"charge"``, ``"flux"``, or ``"coupling"``;  ``qubits`` are
    the device qubits it touches; ``max_amplitude`` is the drive bound in
    rad/ns.
    """

    kind: str
    qubits: tuple
    max_amplitude: float

    @property
    def name(self) -> str:
        inner = ",".join(str(q) for q in self.qubits)
        return f"{self.kind}[{inner}]"


class GmonDevice:
    """A gmon chip: topology + drive limits + level truncation."""

    def __init__(
        self,
        topology: Topology,
        levels: int = 2,
        max_charge: float = MAX_CHARGE_AMP,
        max_flux: float = MAX_FLUX_AMP,
        max_coupling: float = MAX_COUPLING_AMP,
        anharmonicity: float = DEFAULT_ANHARMONICITY,
    ):
        if levels not in (2, 3):
            raise DeviceError(f"levels must be 2 (qubit) or 3 (qutrit), got {levels}")
        self.topology = topology
        self.levels = levels
        self.max_charge = float(max_charge)
        self.max_flux = float(max_flux)
        self.max_coupling = float(max_coupling)
        self.anharmonicity = float(anharmonicity)

    @classmethod
    def grid_for(cls, num_qubits: int, levels: int = 2) -> "GmonDevice":
        """The default device: the most-square grid covering ``num_qubits``."""
        return cls(nearly_square_grid(num_qubits), levels=levels)

    @property
    def num_qubits(self) -> int:
        return self.topology.num_qubits

    def channels_for(self, qubits: Sequence[int]) -> list:
        """Control channels available within the block ``qubits``.

        One charge + one flux channel per qubit, one coupler per edge of the
        induced connectivity subgraph.  If the block is not connected in the
        device graph (possible after loose blocking), consecutive qubits in
        sorted order are bridged so GRAPE always has an entangling resource —
        the substitution is logged in the channel list itself (couplers only
        exist between the listed pairs).
        """
        qubits = sorted(set(int(q) for q in qubits))
        for q in qubits:
            if q < 0 or q >= self.num_qubits:
                raise DeviceError(f"qubit {q} outside device of size {self.num_qubits}")
        channels = []
        for q in qubits:
            channels.append(ControlChannel("charge", (q,), self.max_charge))
            channels.append(ControlChannel("flux", (q,), self.max_flux))
        edges = list(self.topology.subgraph_edges(qubits))
        if len(qubits) > 1 and not self.topology.is_connected_subset(qubits):
            existing = set(edges)
            for a, b in zip(qubits, qubits[1:]):
                if (a, b) not in existing:
                    edges.append((a, b))
        for a, b in sorted(edges):
            channels.append(ControlChannel("coupling", (a, b), self.max_coupling))
        return channels

    def __repr__(self) -> str:
        return (
            f"GmonDevice({self.topology.name}, levels={self.levels}, "
            f"qubits={self.num_qubits})"
        )
