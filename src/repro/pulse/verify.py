"""End-to-end pulse-program verification.

Propagates compiled pulse schedules through the device Hamiltonian and
reports the achieved fidelity against a target circuit — the check that
the whole compilation stack (slicing → blocking → GRAPE → concatenation)
actually realizes the unitary it claims to.  Lookup-table schedules are
trusted (they model pre-calibrated pulses and carry no waveform), so
verification covers exactly the GRAPE-generated blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.errors import PulseError
from repro.linalg.unitaries import trace_fidelity
from repro.pulse.device import GmonDevice
from repro.pulse.hamiltonian import build_control_set
from repro.pulse.schedule import PulseSchedule
from repro.sim.unitary import circuit_unitary


@dataclass
class BlockVerification:
    """Fidelity of one GRAPE block pulse against its subcircuit."""

    qubits: tuple
    fidelity: float
    duration_ns: float
    source: str


def propagate_schedule(device: GmonDevice, schedule: PulseSchedule) -> np.ndarray:
    """Evolve the identity through ``schedule`` on ``device``.

    Returns the realized unitary on the block's local Hilbert space.
    """
    control_set = build_control_set(device, schedule.qubits)
    if schedule.controls.shape[0] != control_set.num_controls:
        raise PulseError(
            f"schedule has {schedule.controls.shape[0]} control rows but the "
            f"block exposes {control_set.num_controls} channels"
        )
    from repro.pulse.grape.cost import GrapeCost

    # Reuse the cost propagator with a dummy identity target.
    dim = 2 ** len(schedule.qubits)
    cost = GrapeCost(control_set, np.eye(dim, dtype=complex), schedule.dt_ns)
    return cost.propagate(schedule.controls)


def verify_block(
    device: GmonDevice,
    schedule: PulseSchedule,
    subcircuit: QuantumCircuit,
) -> BlockVerification:
    """Fidelity of ``schedule`` against the bound ``subcircuit`` it encodes."""
    target = circuit_unitary(subcircuit)
    realized = propagate_schedule(device, schedule)
    if device.levels != 2:
        from repro.pulse.hamiltonian import computational_indices

        idx = computational_indices(len(schedule.qubits), device.levels)
        realized = realized[np.ix_(idx, idx)]
    return BlockVerification(
        qubits=schedule.qubits,
        fidelity=trace_fidelity(target, realized),
        duration_ns=schedule.duration_ns,
        source=schedule.source,
    )
