"""Command-line interface: ``python -m repro <command>``.

Small utilities for poking at the reproduction without writing a script:

* ``molecules`` — the VQE-UCCSD benchmark registry (paper Table 2).
* ``gate-table`` — the compiler's basis gate set and pulse durations
  (paper Table 1).
* ``qaoa-info`` — circuit statistics for one QAOA MAXCUT benchmark.
* ``compile`` — run one benchmark through a chosen compilation strategy at
  a random parametrization and report pulse duration + runtime latency.
  ``--executor``/``--jobs`` parallelize the independent per-block GRAPE
  searches; ``--cache-dir`` persists GRAPE results on disk so a second
  invocation starts warm (pulse-cache telemetry is printed either way).
* ``compile-batch`` — batch-compile one benchmark at several random
  parametrizations through the cross-circuit block scheduler, reporting
  how many blocks deduplicated across the batch.  With ``--rounds N`` the
  batches stream through one long-lived ``VariationalSession``, so later
  rounds reuse every block an earlier round compiled (cross-call dedup).
* ``cache-stats`` — inspect a persistent pulse-cache directory: shard
  occupancy, index size, evictions, prefetch counters, plus persistent
  worker-pool telemetry.  A directory that does not exist yet reports an
  empty cache (and is not created).
* ``library stats`` / ``library gc`` — operate directly on the sharded
  pulse library (occupancy report; LRU eviction down to a size budget).

Every command prints plain text and returns a process exit code, so the
module is equally usable from tests (``main([...])``) and the shell.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.analysis.tables import format_table
from repro.config import GATE_DURATIONS_NS

__all__ = ["build_parser", "main"]


def _cmd_molecules(_args) -> int:
    from repro.vqe.molecules import MOLECULES

    rows = [
        (
            spec.name,
            spec.num_qubits,
            spec.num_parameters,
            f"{spec.paper_gate_runtime_ns:g}",
        )
        for spec in MOLECULES.values()
    ]
    print(
        format_table(
            ("molecule", "qubits", "#params", "paper runtime (ns)"),
            rows,
            title="VQE-UCCSD benchmarks (paper Table 2)",
        )
    )
    return 0


def _cmd_gate_table(_args) -> int:
    rows = [(name, f"{ns:g}") for name, ns in sorted(GATE_DURATIONS_NS.items())]
    print(
        format_table(
            ("gate", "pulse duration (ns)"),
            rows,
            title="Gate-based compilation lookup table (paper Table 1)",
        )
    )
    return 0


def _cmd_qaoa_info(args) -> int:
    from repro.qaoa import maxcut_problem, qaoa_circuit
    from repro.transpile import transpile
    from repro.transpile.schedule import asap_schedule

    problem = maxcut_problem(args.kind, args.nodes, seed=args.seed)
    circuit = transpile(qaoa_circuit(problem, args.p))
    schedule = asap_schedule(circuit.bind_parameters([0.5] * len(circuit.parameters)))
    rows = [
        ("graph", problem.name),
        ("edges", len(problem.edges)),
        ("optimal cut", problem.optimal_cut),
        ("qubits", circuit.num_qubits),
        ("parameters", len(circuit.parameters)),
        ("gates", len(circuit)),
        ("gate-based runtime (ns)", f"{schedule.duration_ns:.1f}"),
    ]
    print(format_table(("property", "value"), rows, title=f"QAOA p={args.p}"))
    return 0


def _benchmark_circuit(spec: str):
    from repro.qaoa import maxcut_problem, qaoa_circuit
    from repro.transpile import transpile
    from repro.vqe import get_molecule

    parts = spec.split(":")
    if parts[0] == "vqe" and len(parts) == 2:
        return transpile(get_molecule(parts[1]).ansatz())
    if parts[0] == "qaoa" and len(parts) == 4:
        kind, nodes, p = parts[1], int(parts[2]), int(parts[3])
        return transpile(qaoa_circuit(maxcut_problem(kind, nodes), p))
    raise ValueError(
        f"bad benchmark spec {spec!r}; use vqe:<molecule> or qaoa:<kind>:<nodes>:<p>"
    )


def _cmd_compile(args) -> int:
    from repro.core import (
        FlexiblePartialCompiler,
        FullGrapeCompiler,
        GateBasedCompiler,
        PersistentPulseCache,
        StrictPartialCompiler,
        default_device_for,
        default_pulse_cache,
    )
    from repro.pipeline import resolve_executor
    from repro.pulse.grape import GrapeHyperparameters, GrapeSettings

    try:
        circuit = _benchmark_circuit(args.benchmark)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    settings = GrapeSettings(dt_ns=args.dt, target_fidelity=args.fidelity)
    hyper = GrapeHyperparameters(0.05, 0.002, max_iterations=args.iterations)
    rng = np.random.default_rng(args.seed)
    values = list(rng.uniform(-np.pi / 2, np.pi / 2, size=len(circuit.parameters)))
    device = default_device_for(circuit)
    # --cache-dir wins; otherwise honor REPRO_CACHE_DIR via the config.
    cache = (
        PersistentPulseCache(args.cache_dir)
        if args.cache_dir
        else default_pulse_cache()
    )
    executor = resolve_executor(args.executor, args.jobs)
    if args.jobs and executor.name == "serial":
        print(
            "note: --jobs has no effect with the serial executor; "
            "pass --executor thread|process",
            file=sys.stderr,
        )

    try:
        if args.method == "gate":
            compiler = GateBasedCompiler()
            compiled = compiler.compile_parametrized(circuit, values)
            precompute = "0 s (lookup table)"
        elif args.method == "grape":
            compiler = FullGrapeCompiler(
                device=device,
                settings=settings,
                hyperparameters=hyper,
                max_block_width=args.block_width,
                cache=cache,
                executor=executor,
            )
            compiled = compiler.compile_parametrized(circuit, values, use_cache=True)
            precompute = "0 s (all work at runtime)"
        elif args.method == "strict":
            compiler = StrictPartialCompiler.precompile(
                circuit,
                device=device,
                settings=settings,
                hyperparameters=hyper,
                max_block_width=args.block_width,
                cache=cache,
                executor=executor,
            )
            compiled = compiler.compile(values)
            precompute = f"{compiler.report.wall_time_s:.1f} s"
        else:  # flexible
            compiler = FlexiblePartialCompiler.precompile(
                circuit,
                device=device,
                settings=settings,
                hyperparameters=hyper,
                max_block_width=args.block_width,
                cache=cache,
                tuning_samples=1,
                executor=executor,
            )
            compiled = compiler.compile(values)
            precompute = f"{compiler.report.wall_time_s:.1f} s"
    finally:
        # Persistent-pool executors hold live workers; release them even if
        # the compile failed (harmless no-op for the stateless executors).
        if hasattr(executor, "close"):
            executor.close()

    stats = cache.stats()
    rows = [
        ("benchmark", args.benchmark),
        ("method", args.method),
        ("qubits", circuit.num_qubits),
        ("pulse duration (ns)", f"{compiled.pulse_duration_ns:.1f}"),
        ("runtime latency (s)", f"{compiled.runtime_latency_s:.3f}"),
        ("runtime GRAPE iterations", compiled.runtime_iterations),
        ("precompute", precompute),
        ("executor", executor.name),
        ("cache backend", stats["backend"]),
        # Block-level hits travel back from executor workers with the
        # outcomes, so they stay accurate even under the process pool
        # (whose workers mutate forked cache copies, not this one).
        ("block cache hits", compiled.cache_hits),
        ("cache hits / misses", f"{stats['hits']} / {stats['misses']}"),
    ]
    if "disk_hits" in stats:
        rows.append(("cache disk hits", stats["disk_hits"]))
        rows.append(("cache persisted entries", stats["persisted_entries"]))
    print(format_table(("property", "value"), rows, title="compile result"))
    return 0


def _cmd_compile_batch(args) -> int:
    from repro.core import (
        PersistentPulseCache,
        default_device_for,
        default_pulse_cache,
    )
    from repro.pipeline import VariationalSession, resolve_executor
    from repro.pulse.grape import GrapeHyperparameters, GrapeSettings

    if args.batch < 1:
        print(f"error: --batch must be >= 1, got {args.batch}", file=sys.stderr)
        return 2
    if args.rounds < 1:
        print(f"error: --rounds must be >= 1, got {args.rounds}", file=sys.stderr)
        return 2
    try:
        circuit = _benchmark_circuit(args.benchmark)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    settings = GrapeSettings(dt_ns=args.dt, target_fidelity=args.fidelity)
    hyper = GrapeHyperparameters(0.05, 0.002, max_iterations=args.iterations)
    rng = np.random.default_rng(args.seed)
    cache = (
        PersistentPulseCache(args.cache_dir)
        if args.cache_dir
        else default_pulse_cache()
    )
    executor = resolve_executor(args.executor, args.jobs)
    # All rounds stream through ONE long-lived session, so round r+1 pays
    # only for blocks (θ-dependent ones, typically) it has never seen.
    session = VariationalSession(
        device=default_device_for(circuit),
        settings=settings,
        hyperparameters=hyper,
        max_block_width=args.block_width,
        cache=cache,
        executor=executor,
    )
    round_rows = []
    try:
        for round_index in range(args.rounds):
            values_list = [
                list(
                    rng.uniform(
                        -np.pi / 2, np.pi / 2, size=len(circuit.parameters)
                    )
                )
                for _ in range(args.batch)
            ]
            results = session.compile_batch(
                [circuit.bind_parameters(values) for values in values_list]
            )
            scheduler = results[0].metadata["scheduler"] or {}
            round_rows.append(
                (
                    f"round {round_index}",
                    f"dispatched={scheduler.get('dispatched_tasks')} "
                    f"deduped={scheduler.get('deduped_blocks')} "
                    f"reused={scheduler.get('reused_blocks')}",
                )
            )
    finally:
        session.close()

    stats = session.stats()
    shared = stats["deduped_blocks"] + stats["reused_blocks"]
    rows = [
        ("benchmark", args.benchmark),
        ("batch size", args.batch),
        ("rounds", args.rounds),
        ("qubits", circuit.num_qubits),
        ("total blocks", stats["total_blocks"]),
        ("unique blocks compiled", stats["dispatched_blocks"]),
        ("deduplicated blocks", stats["deduped_blocks"]),
        ("reused blocks (cross-call)", stats["reused_blocks"]),
        (
            "dedup ratio",
            round(shared / stats["total_blocks"], 4) if stats["total_blocks"] else 0.0,
        ),
        ("executor", executor.name),
        *round_rows,
        (
            "pulse durations (ns, last round)",
            ", ".join(f"{r.pulse_duration_ns:.1f}" for r in results),
        ),
        (
            "GRAPE iterations (last round)",
            ", ".join(str(r.runtime_iterations) for r in results),
        ),
    ]
    print(format_table(("property", "value"), rows, title="batch compile result"))
    return 0


def _pool_rows() -> list:
    from repro.pipeline import persistent_executor_stats

    rows = []
    for stats in persistent_executor_stats():
        label = f"pool {stats['executor']}×{stats['max_workers']}"
        rows.append(
            (
                label,
                f"pools_created={stats['pools_created']} "
                f"map_calls={stats['map_calls']}",
            )
        )
    return rows


def _cache_stats_rows(directory, stats, size_kib: float) -> list:
    """One row set for both the live and the never-created cache paths,
    so the two reports cannot drift apart."""
    library = stats["library"]
    return [
        ("directory", str(directory)),
        ("persisted entries", stats["persisted_entries"]),
        ("size (KiB)", f"{size_kib:.1f}"),
        ("schema version", stats["schema_version"]),
        ("hits / misses", f"{stats['hits']} / {stats['misses']}"),
        ("shards", library["shards"]),
        ("nonempty shards", library["nonempty_shards"]),
        ("max entries per shard", library["max_shard_entries"]),
        ("index size (KiB)", f"{library['index_bytes'] / 1024:.1f}"),
        ("evictions", library["evictions"]),
        ("migrated legacy entries", library["migrated_entries"]),
        (
            "prefetches / prefetch hits",
            f"{library['prefetches']} / {library['prefetch_hits']}",
        ),
    ]


def _cmd_cache_stats(args) -> int:
    from pathlib import Path

    from repro.core import PersistentPulseCache
    from repro.core.cache import CACHE_SCHEMA_VERSION
    from repro.library import PulseLibrary

    if not Path(args.dir).is_dir():
        # A cache directory that was never written to is an *empty cache*,
        # not an error: report zeros without creating the directory.
        stats = {
            "persisted_entries": 0,
            "schema_version": CACHE_SCHEMA_VERSION,
            "hits": 0,
            "misses": 0,
            "library": PulseLibrary.empty_stats(args.dir),
        }
        rows = _cache_stats_rows(args.dir, stats, size_kib=0.0)
        title = "persistent pulse cache (empty — not created yet)"
    else:
        cache = PersistentPulseCache(args.dir)
        rows = _cache_stats_rows(
            cache.directory, cache.stats(), cache.persisted_bytes() / 1024
        )
        title = "persistent pulse cache"
    rows.extend(_pool_rows())
    print(format_table(("property", "value"), rows, title=title))
    return 0


def _cmd_library_stats(args) -> int:
    from pathlib import Path

    from repro.library import PulseLibrary

    if not Path(args.dir).is_dir():
        # Same contract as cache-stats: a never-created library is empty,
        # and inspecting it must not create it.  ``empty_stats`` mirrors
        # the live ``stats()`` schema exactly.
        stats = PulseLibrary.empty_stats(args.dir)
        title = "pulse library (empty — not created yet)"
    else:
        stats = PulseLibrary(args.dir).stats()
        title = "pulse library"
    rows = [(key, stats[key]) for key in sorted(stats)]
    print(format_table(("property", "value"), rows, title=title))
    return 0


def _cmd_library_gc(args) -> int:
    from pathlib import Path

    from repro.library import PulseLibrary

    if not Path(args.dir).is_dir():
        print(f"error: no library directory at {args.dir}", file=sys.stderr)
        return 2
    report = PulseLibrary(args.dir).gc(args.budget_mb)
    rows = [(key, value) for key, value in sorted(report.as_dict().items())]
    print(format_table(("property", "value"), rows, title="pulse library gc"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for the ``repro`` CLI (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Partial compilation of variational algorithms (MICRO '19 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("molecules", help="list the VQE benchmark molecules").set_defaults(
        func=_cmd_molecules
    )
    sub.add_parser("gate-table", help="print the Table-1 gate durations").set_defaults(
        func=_cmd_gate_table
    )

    qaoa = sub.add_parser("qaoa-info", help="stats for one QAOA benchmark")
    qaoa.add_argument("--kind", choices=("3regular", "erdosrenyi"), default="3regular")
    qaoa.add_argument("--nodes", type=int, default=6)
    qaoa.add_argument("--p", type=int, default=1)
    qaoa.add_argument("--seed", type=int, default=0)
    qaoa.set_defaults(func=_cmd_qaoa_info)

    compile_ = sub.add_parser("compile", help="compile one benchmark")
    compile_.add_argument(
        "--benchmark",
        required=True,
        help="vqe:<molecule> or qaoa:<kind>:<nodes>:<p>, e.g. vqe:H2",
    )
    compile_.add_argument(
        "--method",
        choices=("gate", "strict", "flexible", "grape"),
        default="gate",
    )
    compile_.add_argument("--dt", type=float, default=0.5, help="GRAPE slice (ns)")
    compile_.add_argument("--fidelity", type=float, default=0.95)
    compile_.add_argument("--iterations", type=int, default=150)
    compile_.add_argument("--block-width", type=int, default=2)
    compile_.add_argument("--seed", type=int, default=0)
    from repro.config import EXECUTOR_CHOICES

    compile_.add_argument(
        "--executor",
        choices=EXECUTOR_CHOICES,
        default=None,
        help="dispatch of independent per-block GRAPE searches; the "
        "*-persistent variants keep one worker pool warm across every "
        "map of the run (default: REPRO_EXECUTOR or serial)",
    )
    compile_.add_argument(
        "--jobs", type=int, default=None, help="worker count for parallel executors"
    )
    compile_.add_argument(
        "--cache-dir",
        default=None,
        help="persist GRAPE pulses here; a second run starts warm",
    )
    compile_.set_defaults(func=_cmd_compile)

    batch = sub.add_parser(
        "compile-batch",
        help="batch-compile one benchmark at several parametrizations "
        "through the cross-circuit block dedup scheduler",
    )
    batch.add_argument(
        "--benchmark",
        required=True,
        help="vqe:<molecule> or qaoa:<kind>:<nodes>:<p>, e.g. vqe:H2",
    )
    batch.add_argument(
        "--batch", type=int, default=3, help="number of parametrizations"
    )
    batch.add_argument(
        "--rounds",
        type=int,
        default=1,
        help="feed this many successive batches through ONE long-lived "
        "VariationalSession: later rounds reuse every block an earlier "
        "round compiled (cross-call dedup)",
    )
    batch.add_argument("--dt", type=float, default=0.5, help="GRAPE slice (ns)")
    batch.add_argument("--fidelity", type=float, default=0.95)
    batch.add_argument("--iterations", type=int, default=150)
    batch.add_argument("--block-width", type=int, default=2)
    batch.add_argument("--seed", type=int, default=0)
    batch.add_argument("--executor", choices=EXECUTOR_CHOICES, default=None)
    batch.add_argument("--jobs", type=int, default=None)
    batch.add_argument("--cache-dir", default=None)
    batch.set_defaults(func=_cmd_compile_batch)

    cache_ = sub.add_parser(
        "cache-stats", help="inspect a persistent pulse-cache directory"
    )
    cache_.add_argument("--dir", required=True, help="cache directory to inspect")
    cache_.set_defaults(func=_cmd_cache_stats)

    library = sub.add_parser(
        "library", help="operate on a sharded pulse library directory"
    )
    library_sub = library.add_subparsers(dest="library_command", required=True)
    lib_stats = library_sub.add_parser(
        "stats", help="layout, occupancy, and index telemetry"
    )
    lib_stats.add_argument("--dir", required=True, help="library directory")
    lib_stats.set_defaults(func=_cmd_library_stats)
    lib_gc = library_sub.add_parser(
        "gc", help="reconcile the index and evict LRU entries to a size budget"
    )
    lib_gc.add_argument("--dir", required=True, help="library directory")
    lib_gc.add_argument(
        "--budget-mb",
        type=float,
        default=None,
        help="evict least-recently-used entries until under this many MiB "
        "(default: REPRO_CACHE_BUDGET_MB, else reconcile only)",
    )
    lib_gc.set_defaults(func=_cmd_library_gc)
    return parser


def main(argv=None) -> int:
    """Parse ``argv`` (default ``sys.argv[1:]``) and run the command."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
