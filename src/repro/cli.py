"""Command-line interface: ``python -m repro <command>``.

Small utilities for poking at the reproduction without writing a script:

* ``molecules`` — the VQE-UCCSD benchmark registry (paper Table 2).
* ``gate-table`` — the compiler's basis gate set and pulse durations
  (paper Table 1).
* ``qaoa-info`` — circuit statistics for one QAOA MAXCUT benchmark.
* ``compile`` — run one benchmark through a chosen compilation strategy
  (each ``--method`` maps to a ``repro.service`` registry key) at a random
  parametrization and report pulse duration + runtime latency.
  ``--executor``/``--jobs`` parallelize the independent per-block GRAPE
  searches; ``--cache-dir`` persists GRAPE results on disk so a second
  invocation starts warm (pulse-cache telemetry is printed either way).
* ``compile-batch`` — batch-compile one benchmark at several random
  parametrizations through the cross-circuit block scheduler, reporting
  how many blocks deduplicated across the batch.  With ``--rounds N`` the
  batches stream through one long-lived ``CompilationService``, so later
  rounds reuse every block an earlier round compiled (cross-call dedup).
* ``config show`` — the fully resolved ``ServiceConfig``: every field with
  its value and provenance (default / env / CLI), so debugging ``REPRO_*``
  environment variables never requires a source dive.
* ``worker`` — run one fleet worker against a file-backed work queue:
  claim leased ``BlockJob``\\ s, compile them, write completion records.
  SIGTERM drains the in-flight job before exit; ``--max-jobs`` and
  ``--idle-exit`` bound a worker's lifetime for tests and batch runs;
  ``--announce`` publishes a registration record and ``--host-label``
  simulates a distinct host on one box.
* ``fleet status`` — inspect a fleet queue directory: pending/leased job
  counts, per-lease age and staleness, worker heartbeats grouped by
  host; ``--json`` emits the machine-readable snapshot.
* ``serve`` — run the HTTP compilation frontend
  (:mod:`repro.server`): ``POST /v1/compile`` over one
  ``CompilationService``, with SIGTERM draining in-flight requests
  (new compiles get 503) before exit.
* ``remote-compile`` — compile one benchmark against a running server
  over HTTP; ``--verify-local`` recompiles in-process and checks the
  returned pulses are bit-identical.
* ``cache-stats`` — inspect a persistent pulse-cache directory: shard
  occupancy, index size, evictions, prefetch counters, plus persistent
  worker-pool telemetry.  A directory that does not exist yet reports an
  empty cache (and is not created).
* ``library stats`` / ``library gc`` — operate directly on the sharded
  pulse library (occupancy report; LRU eviction down to a size budget).

Every command prints plain text and returns a process exit code, so the
module is equally usable from tests (``main([...])``) and the shell.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.analysis.tables import format_table
from repro.config import GATE_DURATIONS_NS

__all__ = ["build_parser", "main"]


def _cmd_molecules(_args) -> int:
    from repro.vqe.molecules import MOLECULES

    rows = [
        (
            spec.name,
            spec.num_qubits,
            spec.num_parameters,
            f"{spec.paper_gate_runtime_ns:g}",
        )
        for spec in MOLECULES.values()
    ]
    print(
        format_table(
            ("molecule", "qubits", "#params", "paper runtime (ns)"),
            rows,
            title="VQE-UCCSD benchmarks (paper Table 2)",
        )
    )
    return 0


def _cmd_gate_table(_args) -> int:
    rows = [(name, f"{ns:g}") for name, ns in sorted(GATE_DURATIONS_NS.items())]
    print(
        format_table(
            ("gate", "pulse duration (ns)"),
            rows,
            title="Gate-based compilation lookup table (paper Table 1)",
        )
    )
    return 0


def _cmd_qaoa_info(args) -> int:
    from repro.qaoa import maxcut_problem, qaoa_circuit
    from repro.transpile import transpile
    from repro.transpile.schedule import asap_schedule

    problem = maxcut_problem(args.kind, args.nodes, seed=args.seed)
    circuit = transpile(qaoa_circuit(problem, args.p))
    schedule = asap_schedule(circuit.bind_parameters([0.5] * len(circuit.parameters)))
    rows = [
        ("graph", problem.name),
        ("edges", len(problem.edges)),
        ("optimal cut", problem.optimal_cut),
        ("qubits", circuit.num_qubits),
        ("parameters", len(circuit.parameters)),
        ("gates", len(circuit)),
        ("gate-based runtime (ns)", f"{schedule.duration_ns:.1f}"),
    ]
    print(format_table(("property", "value"), rows, title=f"QAOA p={args.p}"))
    return 0


def _benchmark_circuit(spec: str):
    from repro.qaoa import maxcut_problem, qaoa_circuit
    from repro.transpile import transpile
    from repro.vqe import get_molecule

    parts = spec.split(":")
    if parts[0] == "vqe" and len(parts) == 2:
        return transpile(get_molecule(parts[1]).ansatz())
    if parts[0] == "qaoa" and len(parts) == 4:
        kind, nodes, p = parts[1], int(parts[2]), int(parts[3])
        return transpile(qaoa_circuit(maxcut_problem(kind, nodes), p))
    raise ValueError(
        f"bad benchmark spec {spec!r}; use vqe:<molecule> or qaoa:<kind>:<nodes>:<p>"
    )


#: CLI ``--method`` name → service strategy registry key.
METHOD_STRATEGIES = {
    "gate": "gate",
    "step": "step-function",
    "strict": "strict-partial",
    "flexible": "flexible-partial",
    "grape": "full-grape",
}


def _service_config_from_args(args):
    """The resolved ServiceConfig: environment first, CLI flags override."""
    from repro.service import ServiceConfig

    config = ServiceConfig.from_env()
    overrides = {}
    if getattr(args, "executor", None):
        overrides["executor"] = args.executor
    if getattr(args, "jobs", None):
        overrides["max_workers"] = args.jobs
    if getattr(args, "cache_dir", None):
        overrides["cache_dir"] = args.cache_dir
    if getattr(args, "dispatcher", None):
        overrides["dispatcher"] = args.dispatcher
    if getattr(args, "fleet_dir", None):
        overrides["fleet_dir"] = args.fleet_dir
    if getattr(args, "fleet_workers", None) is not None:
        overrides["fleet_workers"] = args.fleet_workers
    if getattr(args, "queue_depth", None) is not None:
        overrides["queue_depth"] = args.queue_depth
    if getattr(args, "fleet_autoscale", None) is not None:
        overrides["fleet_autoscale"] = args.fleet_autoscale
    if getattr(args, "fleet_min_workers", None) is not None:
        overrides["fleet_min_workers"] = args.fleet_min_workers
    if getattr(args, "fleet_max_workers", None) is not None:
        overrides["fleet_max_workers"] = args.fleet_max_workers
    return config.replace(**overrides) if overrides else config


def _cmd_compile(args) -> int:
    from repro.core import default_device_for
    from repro.pulse.grape import GrapeHyperparameters, GrapeSettings
    from repro.service import CompilationService, CompileRequest

    try:
        circuit = _benchmark_circuit(args.benchmark)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    settings = GrapeSettings(dt_ns=args.dt, target_fidelity=args.fidelity)
    hyper = GrapeHyperparameters(0.05, 0.002, max_iterations=args.iterations)
    rng = np.random.default_rng(args.seed)
    values = list(rng.uniform(-np.pi / 2, np.pi / 2, size=len(circuit.parameters)))
    config = _service_config_from_args(args)
    if args.jobs and config.executor == "serial":
        print(
            "note: --jobs has no effect with the serial executor; "
            "pass --executor thread|process",
            file=sys.stderr,
        )

    strategy = METHOD_STRATEGIES[args.method]
    options = {"tuning_samples": 1} if args.method == "flexible" else {}
    with CompilationService(
        config=config,
        device=default_device_for(circuit),
        settings=settings,
        hyperparameters=hyper,
    ) as service:
        result = service.compile(
            CompileRequest(
                circuit=circuit,
                values=values,
                strategy=strategy,
                max_block_width=args.block_width,
                options=options,
            )
        )
        stats = service.cache.stats()
        executor_name = service.executor.name

    if result.precompile_report is not None:
        precompute = f"{result.precompile_report.wall_time_s:.1f} s"
    elif args.method == "grape":
        precompute = "0 s (all work at runtime)"
    else:
        precompute = "0 s (lookup table)"
    compiled = result.compiled
    rows = [
        ("benchmark", args.benchmark),
        ("method", args.method),
        ("strategy", strategy),
        ("qubits", circuit.num_qubits),
        ("pulse duration (ns)", f"{compiled.pulse_duration_ns:.1f}"),
        ("runtime latency (s)", f"{compiled.runtime_latency_s:.3f}"),
        ("runtime GRAPE iterations", compiled.runtime_iterations),
        ("precompute", precompute),
        ("executor", executor_name),
        ("cache backend", stats["backend"]),
        # Block-level hits travel back from executor workers with the
        # outcomes, so they stay accurate even under the process pool
        # (whose workers mutate forked cache copies, not this one).
        ("block cache hits", compiled.cache_hits),
        ("cache hits / misses", f"{stats['hits']} / {stats['misses']}"),
    ]
    if "disk_hits" in stats:
        rows.append(("cache disk hits", stats["disk_hits"]))
        rows.append(("cache persisted entries", stats["persisted_entries"]))
    print(format_table(("property", "value"), rows, title="compile result"))
    return 0


def _cmd_compile_batch(args) -> int:
    from repro.core import default_device_for
    from repro.pulse.grape import GrapeHyperparameters, GrapeSettings
    from repro.service import CompilationService, CompileRequest

    if args.batch < 1:
        print(f"error: --batch must be >= 1, got {args.batch}", file=sys.stderr)
        return 2
    if args.rounds < 1:
        print(f"error: --rounds must be >= 1, got {args.rounds}", file=sys.stderr)
        return 2
    try:
        circuit = _benchmark_circuit(args.benchmark)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    settings = GrapeSettings(dt_ns=args.dt, target_fidelity=args.fidelity)
    hyper = GrapeHyperparameters(0.05, 0.002, max_iterations=args.iterations)
    rng = np.random.default_rng(args.seed)
    # All rounds stream through ONE long-lived service, so round r+1 pays
    # only for blocks (θ-dependent ones, typically) it has never seen.
    totals = {"total": 0, "dispatched": 0, "deduped": 0, "reused": 0}
    round_rows = []
    with CompilationService(
        config=_service_config_from_args(args),
        device=default_device_for(circuit),
        settings=settings,
        hyperparameters=hyper,
    ) as service:
        for round_index in range(args.rounds):
            values_list = [
                list(
                    rng.uniform(
                        -np.pi / 2, np.pi / 2, size=len(circuit.parameters)
                    )
                )
                for _ in range(args.batch)
            ]
            results = service.compile_batch(
                [
                    CompileRequest(
                        circuit=circuit,
                        values=values,
                        strategy="full-grape",
                        max_block_width=args.block_width,
                    )
                    for values in values_list
                ]
            )
            scheduler = results[0].metadata["scheduler"] or {}
            totals["total"] += scheduler.get("total_blocks", 0)
            totals["dispatched"] += scheduler.get("dispatched_tasks", 0)
            totals["deduped"] += scheduler.get("deduped_blocks", 0)
            totals["reused"] += scheduler.get("reused_blocks", 0)
            round_rows.append(
                (
                    f"round {round_index}",
                    f"dispatched={scheduler.get('dispatched_tasks')} "
                    f"deduped={scheduler.get('deduped_blocks')} "
                    f"reused={scheduler.get('reused_blocks')}",
                )
            )
        executor_name = service.executor.name
        plan_stats = service.stats()["plan_cache"]

    shared = totals["deduped"] + totals["reused"]
    rows = [
        ("benchmark", args.benchmark),
        ("batch size", args.batch),
        ("rounds", args.rounds),
        ("qubits", circuit.num_qubits),
        ("total blocks", totals["total"]),
        ("unique blocks compiled", totals["dispatched"]),
        ("deduplicated blocks", totals["deduped"]),
        ("reused blocks (cross-call)", totals["reused"]),
        (
            "dedup ratio",
            round(shared / totals["total"], 4) if totals["total"] else 0.0,
        ),
        ("executor", executor_name),
        ("plan hits", plan_stats["plan_hits"]),
        ("plan misses", plan_stats["plan_misses"]),
        ("blocking passes skipped", plan_stats["blocking_passes_skipped"]),
        *round_rows,
        (
            "pulse durations (ns, last round)",
            ", ".join(f"{r.pulse_duration_ns:.1f}" for r in results),
        ),
        (
            "GRAPE iterations (last round)",
            ", ".join(str(r.runtime_iterations) for r in results),
        ),
    ]
    print(format_table(("property", "value"), rows, title="batch compile result"))
    return 0


def _cmd_config_show(args) -> int:
    """Print the fully resolved ServiceConfig with per-field provenance."""
    from repro.errors import ReproError
    from repro.service import ServiceConfig

    config, sources = ServiceConfig.from_env_with_sources()
    overrides = {}
    for field_name, arg_name in (
        ("executor", "executor"),
        ("max_workers", "jobs"),
        ("submit_workers", "submit_workers"),
        ("cache_dir", "cache_dir"),
        ("cache_shards", "cache_shards"),
        ("cache_budget_mb", "cache_budget_mb"),
        ("preset", "preset"),
        ("scheduler_state_path", "scheduler_state"),
        ("grape_batch_size", "grape_batch_size"),
        ("warm_start_max_dist", "warm_start_max_dist"),
        ("scan_block", "scan_block"),
        ("dispatcher", "dispatcher"),
        ("fleet_dir", "fleet_dir"),
        ("fleet_workers", "fleet_workers"),
        ("queue_depth", "queue_depth"),
        ("fleet_lease_ttl_s", "fleet_lease_ttl"),
        ("fleet_heartbeat_s", "fleet_heartbeat"),
        ("fleet_min_workers", "fleet_min_workers"),
        ("fleet_max_workers", "fleet_max_workers"),
        ("server_host", "server_host"),
        ("server_port", "server_port"),
        ("server_max_body_mb", "server_max_body_mb"),
        ("server_ticket_ttl_s", "server_ticket_ttl"),
    ):
        value = getattr(args, arg_name, None)
        if value is not None:
            overrides[field_name] = value
            sources[field_name] = "CLI"
    if getattr(args, "prefetch", None) is not None:
        overrides["prefetch"] = args.prefetch
        sources["prefetch"] = "CLI"
    if getattr(args, "fleet_autoscale", None) is not None:
        overrides["fleet_autoscale"] = args.fleet_autoscale
        sources["fleet_autoscale"] = "CLI"
    if getattr(args, "grape_batch", None) is not None:
        overrides["grape_batch"] = args.grape_batch
        sources["grape_batch"] = "CLI"
    if getattr(args, "warm_start", None) is not None:
        overrides["warm_start"] = args.warm_start
        sources["warm_start"] = "CLI"
    try:
        config = config.replace(**overrides) if overrides else config
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rows = [
        (name, "(unset)" if value is None else value, sources[name])
        for name, value in config.as_dict().items()
    ]
    print(
        format_table(
            ("field", "value", "source"),
            rows,
            title="resolved ServiceConfig (env < CLI)",
        )
    )
    return 0


def _pool_rows() -> list:
    from repro.pipeline import persistent_executor_stats

    rows = []
    for stats in persistent_executor_stats():
        label = f"pool {stats['executor']}×{stats['max_workers']}"
        rows.append(
            (
                label,
                f"pools_created={stats['pools_created']} "
                f"map_calls={stats['map_calls']}",
            )
        )
    return rows


def _cache_stats_rows(directory, stats, size_kib: float) -> list:
    """One row set for both the live and the never-created cache paths,
    so the two reports cannot drift apart."""
    library = stats["library"]
    return [
        ("directory", str(directory)),
        ("persisted entries", stats["persisted_entries"]),
        ("size (KiB)", f"{size_kib:.1f}"),
        ("schema version", stats["schema_version"]),
        ("hits / misses", f"{stats['hits']} / {stats['misses']}"),
        ("shards", library["shards"]),
        ("nonempty shards", library["nonempty_shards"]),
        ("max entries per shard", library["max_shard_entries"]),
        ("index size (KiB)", f"{library['index_bytes'] / 1024:.1f}"),
        ("evictions", library["evictions"]),
        ("migrated legacy entries", library["migrated_entries"]),
        (
            "prefetches / prefetch hits",
            f"{library['prefetches']} / {library['prefetch_hits']}",
        ),
    ]


def _cmd_cache_stats(args) -> int:
    from pathlib import Path

    from repro.core import PersistentPulseCache
    from repro.core.cache import CACHE_SCHEMA_VERSION
    from repro.library import PulseLibrary

    if not Path(args.dir).is_dir():
        # A cache directory that was never written to is an *empty cache*,
        # not an error: report zeros without creating the directory.
        stats = {
            "persisted_entries": 0,
            "schema_version": CACHE_SCHEMA_VERSION,
            "hits": 0,
            "misses": 0,
            "library": PulseLibrary.empty_stats(args.dir),
        }
        rows = _cache_stats_rows(args.dir, stats, size_kib=0.0)
        title = "persistent pulse cache (empty — not created yet)"
    else:
        cache = PersistentPulseCache(args.dir)
        rows = _cache_stats_rows(
            cache.directory, cache.stats(), cache.persisted_bytes() / 1024
        )
        title = "persistent pulse cache"
    rows.extend(_pool_rows())
    print(format_table(("property", "value"), rows, title=title))
    return 0


def _cmd_library_stats(args) -> int:
    from pathlib import Path

    from repro.library import PulseLibrary

    if not Path(args.dir).is_dir():
        # Same contract as cache-stats: a never-created library is empty,
        # and inspecting it must not create it.  ``empty_stats`` mirrors
        # the live ``stats()`` schema exactly.
        stats = PulseLibrary.empty_stats(args.dir)
        title = "pulse library (empty — not created yet)"
    else:
        stats = PulseLibrary(args.dir).stats()
        title = "pulse library"
    rows = [(key, stats[key]) for key in sorted(stats)]
    print(format_table(("property", "value"), rows, title=title))
    return 0


def _cmd_library_gc(args) -> int:
    from pathlib import Path

    from repro.library import PulseLibrary

    if not Path(args.dir).is_dir():
        print(f"error: no library directory at {args.dir}", file=sys.stderr)
        return 2
    report = PulseLibrary(args.dir).gc(args.budget_mb)
    rows = [(key, value) for key, value in sorted(report.as_dict().items())]
    print(format_table(("property", "value"), rows, title="pulse library gc"))
    return 0


def _cmd_worker(args) -> int:
    from repro.errors import ReproError
    from repro.fleet import FleetWorker

    try:
        worker = FleetWorker(
            args.fleet_dir,
            cache_dir=args.cache_dir,
            lease_ttl_s=args.lease_ttl,
            poll_s=args.poll,
            heartbeat_s=args.heartbeat,
            max_jobs=args.max_jobs,
            idle_exit_s=args.idle_exit,
            worker_id=args.worker_id,
            host_label=args.host_label,
            announce=args.announce,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    worker.install_signal_handlers()
    print(
        f"worker {worker.worker_id} pulling from {args.fleet_dir}",
        file=sys.stderr,
    )
    return worker.run()


def _empty_fleet_status(directory: str) -> dict:
    """The ``status()`` shape for a queue directory nobody created yet."""
    return {
        "directory": directory,
        "pending_jobs": 0,
        "leased_jobs": 0,
        "completed_results": 0,
        "leases": [],
        "workers": [],
        "hosts": {},
    }


def _cmd_fleet_status(args) -> int:
    import json
    from pathlib import Path

    from repro.fleet import FleetQueue

    if not Path(args.dir).is_dir():
        # Same contract as cache-stats: a queue directory nobody has
        # written to is an *empty queue*, and inspecting it must not
        # create it.
        status = _empty_fleet_status(args.dir)
        title = "fleet queue (empty — not created yet)"
    else:
        status = FleetQueue(args.dir).status()
        title = "fleet queue"
    if args.json:
        # The machine-readable snapshot the autoscaler tests and the
        # /v1/stats handler consume — one JSON object, nothing else.
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    rows = [
        ("directory", status["directory"]),
        ("pending jobs", status["pending_jobs"]),
        ("leased jobs", status["leased_jobs"]),
        ("completed results", status["completed_results"]),
    ]
    for host, group in sorted(status["hosts"].items()):
        rows.append(
            (
                f"host {host}",
                f"workers={group['workers']} active={group['active']} "
                f"leases={group['leases']} jobs_done={group['jobs_done']}",
            )
        )
    for lease in status["leases"]:
        state = "STALE" if lease["stale"] else "live"
        rows.append(
            (
                f"lease {lease['job_id']}",
                f"worker={lease['worker']} host={lease.get('host')} "
                f"age={lease['age_s']:.1f}s "
                f"heartbeat={lease['heartbeat_age_s']:.1f}s "
                f"reclaims={lease['reclaims']} {state}",
            )
        )
    for worker in status["workers"]:
        announced = " announced" if worker.get("announced") else ""
        rows.append(
            (
                f"worker {worker['worker']}",
                f"pid={worker['pid']} host={worker.get('host')} "
                f"state={worker['state']} "
                f"jobs_done={worker['jobs_done']} "
                f"heartbeat={worker['heartbeat_age_s']:.1f}s{announced}",
            )
        )
    print(format_table(("property", "value"), rows, title=title))
    return 0


def _cmd_serve(args) -> int:
    import signal
    import threading

    from repro.server.http import CompilationServer
    from repro.service import CompilationService

    config = _service_config_from_args(args)
    host = args.host if args.host is not None else config.server_host
    port = args.port if args.port is not None else config.server_port
    service = CompilationService(config=config)
    server = CompilationServer(
        service,
        host=host,
        port=port,
        max_body_bytes=int(config.server_max_body_mb * 1024 * 1024),
        ticket_ttl_s=config.server_ticket_ttl_s,
    )
    stop = threading.Event()

    def _on_signal(signum, frame):
        # Flip to draining immediately (new compiles get 503) and let the
        # main loop run the graceful shutdown.
        server.begin_drain()
        stop.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    server.start()
    print(f"serving on {server.url} (SIGTERM drains)", file=sys.stderr)
    try:
        while not stop.wait(0.2):
            pass
    finally:
        print("draining in-flight requests ...", file=sys.stderr)
        drained = server.drain(grace_s=args.grace)
        server.close()
        # Close the service last: accepted ticket futures finish compiling
        # on its submit pool during this drain.
        service.close()
        if not drained:
            print(
                f"drain exceeded {args.grace:.0f}s grace; exited anyway",
                file=sys.stderr,
            )
    return 0


def _pulses_identical(a, b) -> bool:
    """Bit-exact comparison of two compiled pulses' programs."""
    if len(a.program.schedules) != len(b.program.schedules):
        return False
    for left, right in zip(a.program.schedules, b.program.schedules):
        if (
            left.qubits != right.qubits
            or left.dt_ns != right.dt_ns
            or left.channel_names != right.channel_names
            or left.controls.shape != right.controls.shape
            or not np.array_equal(left.controls, right.controls)
        ):
            return False
    return True


def _cmd_remote_compile(args) -> int:
    from repro.pulse.grape import GrapeHyperparameters, GrapeSettings
    from repro.server.client import ServerClient
    from repro.service import CompileRequest

    try:
        circuit = _benchmark_circuit(args.benchmark)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rng = np.random.default_rng(args.seed)
    values = list(
        rng.uniform(-np.pi / 2, np.pi / 2, size=len(circuit.parameters))
    )
    request = CompileRequest(
        circuit=circuit,
        values=values,
        strategy=METHOD_STRATEGIES[args.method],
        settings=GrapeSettings(dt_ns=args.dt, target_fidelity=args.fidelity),
        hyperparameters=GrapeHyperparameters(
            0.05, 0.002, max_iterations=args.iterations
        ),
        max_block_width=args.block_width,
    )
    client = ServerClient(args.url, timeout_s=args.timeout)
    if args.ticket:
        ticket = client.submit(request)
        print(f"ticket {ticket}", file=sys.stderr)
        result = client.result(
            ticket, request=request, timeout_s=args.timeout
        )
    else:
        result = client.compile(request)
    compiled = result.compiled
    rows = [
        ("server", args.url),
        ("benchmark", args.benchmark),
        ("method", args.method),
        ("strategy", request.strategy),
        ("mode", "ticket" if args.ticket else "sync"),
        ("pulse duration (ns)", f"{compiled.pulse_duration_ns:.1f}"),
        ("runtime latency (s)", f"{compiled.runtime_latency_s:.3f}"),
        ("runtime GRAPE iterations", compiled.runtime_iterations),
        ("server wall time (s)", f"{result.wall_time_s:.3f}"),
    ]
    verified = None
    if args.verify_local:
        from repro.service import CompilationService

        # Recompile in-process with the local environment's config, minus
        # anything non-local: the in-process run must not route through a
        # fleet or read a warm on-disk cache the server also writes.
        config = _service_config_from_args(args).replace(
            dispatcher="executor", fleet_dir=None, cache_dir=None
        )
        with CompilationService(config=config) as service:
            local = service.compile(request)
        verified = _pulses_identical(compiled, local.compiled)
        rows.append(("bit-identical to local compile", verified))
    print(format_table(("property", "value"), rows, title="remote compile"))
    if verified is False:
        print("error: remote pulses differ from local compile", file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for the ``repro`` CLI (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Partial compilation of variational algorithms (MICRO '19 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("molecules", help="list the VQE benchmark molecules").set_defaults(
        func=_cmd_molecules
    )
    sub.add_parser("gate-table", help="print the Table-1 gate durations").set_defaults(
        func=_cmd_gate_table
    )

    qaoa = sub.add_parser("qaoa-info", help="stats for one QAOA benchmark")
    qaoa.add_argument("--kind", choices=("3regular", "erdosrenyi"), default="3regular")
    qaoa.add_argument("--nodes", type=int, default=6)
    qaoa.add_argument("--p", type=int, default=1)
    qaoa.add_argument("--seed", type=int, default=0)
    qaoa.set_defaults(func=_cmd_qaoa_info)

    compile_ = sub.add_parser("compile", help="compile one benchmark")
    compile_.add_argument(
        "--benchmark",
        required=True,
        help="vqe:<molecule> or qaoa:<kind>:<nodes>:<p>, e.g. vqe:H2",
    )
    compile_.add_argument(
        "--method",
        choices=tuple(METHOD_STRATEGIES),
        default="gate",
        help="compilation strategy (each maps to a service registry key)",
    )
    compile_.add_argument("--dt", type=float, default=0.5, help="GRAPE slice (ns)")
    compile_.add_argument("--fidelity", type=float, default=0.95)
    compile_.add_argument("--iterations", type=int, default=150)
    compile_.add_argument("--block-width", type=int, default=2)
    compile_.add_argument("--seed", type=int, default=0)
    from repro.config import EXECUTOR_CHOICES

    compile_.add_argument(
        "--executor",
        choices=EXECUTOR_CHOICES,
        default=None,
        help="dispatch of independent per-block GRAPE searches; the "
        "*-persistent variants keep one worker pool warm across every "
        "map of the run (default: REPRO_EXECUTOR or serial)",
    )
    compile_.add_argument(
        "--jobs", type=int, default=None, help="worker count for parallel executors"
    )
    compile_.add_argument(
        "--cache-dir",
        default=None,
        help="persist GRAPE pulses here; a second run starts warm",
    )
    compile_.set_defaults(func=_cmd_compile)

    batch = sub.add_parser(
        "compile-batch",
        help="batch-compile one benchmark at several parametrizations "
        "through the cross-circuit block dedup scheduler",
    )
    batch.add_argument(
        "--benchmark",
        required=True,
        help="vqe:<molecule> or qaoa:<kind>:<nodes>:<p>, e.g. vqe:H2",
    )
    batch.add_argument(
        "--batch", type=int, default=3, help="number of parametrizations"
    )
    batch.add_argument(
        "--rounds",
        type=int,
        default=1,
        help="feed this many successive batches through ONE long-lived "
        "VariationalSession: later rounds reuse every block an earlier "
        "round compiled (cross-call dedup)",
    )
    batch.add_argument("--dt", type=float, default=0.5, help="GRAPE slice (ns)")
    batch.add_argument("--fidelity", type=float, default=0.95)
    batch.add_argument("--iterations", type=int, default=150)
    batch.add_argument("--block-width", type=int, default=2)
    batch.add_argument("--seed", type=int, default=0)
    batch.add_argument("--executor", choices=EXECUTOR_CHOICES, default=None)
    batch.add_argument("--jobs", type=int, default=None)
    batch.add_argument("--cache-dir", default=None)
    from repro.service.config import DISPATCHER_CHOICES

    batch.add_argument(
        "--dispatcher",
        choices=DISPATCHER_CHOICES,
        default=None,
        help="'queue' routes fixed blocks through a multi-process fleet "
        "(default: REPRO_DISPATCHER or executor)",
    )
    batch.add_argument(
        "--fleet-dir",
        default=None,
        dest="fleet_dir",
        help="fleet queue directory for --dispatcher queue "
        "(default: REPRO_FLEET_DIR, else <cache-dir>/fleet)",
    )
    batch.add_argument(
        "--fleet-workers",
        type=int,
        default=None,
        dest="fleet_workers",
        help="local worker processes the queue dispatcher spawns "
        "(default: REPRO_FLEET_WORKERS; 0 compiles inline)",
    )
    batch.add_argument(
        "--queue-depth",
        type=int,
        default=None,
        dest="queue_depth",
        help="bound concurrent service submissions; further submit() "
        "calls block (default: REPRO_QUEUE_DEPTH, else unbounded)",
    )
    batch.set_defaults(func=_cmd_compile_batch)

    worker = sub.add_parser(
        "worker",
        help="run one fleet worker: claim queued BlockJobs, compile, "
        "write completion records (SIGTERM drains the in-flight job)",
    )
    worker.add_argument(
        "--fleet-dir",
        required=True,
        dest="fleet_dir",
        help="fleet queue directory shared with the dispatcher",
    )
    worker.add_argument(
        "--cache-dir",
        default=None,
        dest="cache_dir",
        help="persistent pulse cache for compiled blocks (default: the "
        "per-job cache_dir stamped by the dispatcher, else in-memory)",
    )
    worker.add_argument(
        "--lease-ttl",
        type=float,
        default=30.0,
        dest="lease_ttl",
        help="seconds without a heartbeat before another worker may "
        "reclaim this worker's lease",
    )
    worker.add_argument(
        "--poll",
        type=float,
        default=0.2,
        help="idle sleep between queue polls (seconds)",
    )
    worker.add_argument(
        "--max-jobs",
        type=int,
        default=None,
        dest="max_jobs",
        help="exit after completing this many jobs (default: run forever)",
    )
    worker.add_argument(
        "--idle-exit",
        type=float,
        default=None,
        dest="idle_exit",
        help="exit after this many consecutive idle seconds "
        "(default: keep polling)",
    )
    worker.add_argument(
        "--worker-id",
        default=None,
        dest="worker_id",
        help="identity used in leases and heartbeats (default: host-pid)",
    )
    worker.add_argument(
        "--heartbeat",
        type=float,
        default=None,
        help="lease-renewal interval in seconds while compiling "
        "(default: lease-ttl / 3; must be shorter than --lease-ttl)",
    )
    worker.add_argument(
        "--host-label",
        default=None,
        dest="host_label",
        help="hostname written into leases/heartbeats instead of the real "
        "one (simulated multi-host testing; disables same-host pid probes)",
    )
    worker.add_argument(
        "--announce",
        action="store_true",
        help="publish a registration record (start time, knobs, version) "
        "in this worker's heartbeat, shown by fleet status",
    )
    worker.set_defaults(func=_cmd_worker)

    fleet = sub.add_parser(
        "fleet", help="operate on a fleet work-queue directory"
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)
    fleet_status = fleet_sub.add_parser(
        "status",
        help="queue depth, leases (with staleness), and worker heartbeats",
    )
    fleet_status.add_argument("--dir", required=True, help="fleet queue directory")
    fleet_status.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable status snapshot as JSON",
    )
    fleet_status.set_defaults(func=_cmd_fleet_status)

    serve = sub.add_parser(
        "serve",
        help="run the HTTP compilation frontend over one "
        "CompilationService (SIGTERM drains in-flight requests)",
    )
    serve.add_argument(
        "--host",
        default=None,
        help="bind address (default: REPRO_SERVER_HOST, else 127.0.0.1)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=None,
        help="bind port; 0 picks an ephemeral one "
        "(default: REPRO_SERVER_PORT, else 8642)",
    )
    serve.add_argument(
        "--grace",
        type=float,
        default=30.0,
        help="seconds to wait for in-flight requests on shutdown",
    )
    serve.add_argument("--executor", choices=EXECUTOR_CHOICES, default=None)
    serve.add_argument(
        "--jobs", type=int, default=None, help="max_workers override"
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        dest="cache_dir",
        help="persistent pulse cache shared with fleet workers",
    )
    serve.add_argument(
        "--dispatcher", choices=DISPATCHER_CHOICES, default=None
    )
    serve.add_argument("--fleet-dir", default=None, dest="fleet_dir")
    serve.add_argument(
        "--fleet-workers", type=int, default=None, dest="fleet_workers"
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=None,
        dest="queue_depth",
        help="bounded admission; a full queue answers 429",
    )
    serve.add_argument(
        "--autoscale",
        action=argparse.BooleanOptionalAction,
        default=None,
        dest="fleet_autoscale",
        help="scale fleet workers from queue depth instead of a fixed "
        "count (default: REPRO_FLEET_AUTOSCALE)",
    )
    serve.add_argument(
        "--min-workers",
        type=int,
        default=None,
        dest="fleet_min_workers",
        help="autoscaler floor (default: REPRO_FLEET_MIN_WORKERS)",
    )
    serve.add_argument(
        "--max-workers",
        type=int,
        default=None,
        dest="fleet_max_workers",
        help="autoscaler ceiling (default: REPRO_FLEET_MAX_WORKERS)",
    )
    serve.set_defaults(func=_cmd_serve)

    remote = sub.add_parser(
        "remote-compile",
        help="compile one benchmark against a running repro server "
        "over HTTP",
    )
    remote.add_argument(
        "--url", required=True, help="server base URL, e.g. http://host:8642"
    )
    remote.add_argument(
        "--benchmark",
        required=True,
        help="vqe:<molecule> or qaoa:<kind>:<nodes>:<p>, e.g. vqe:H2",
    )
    remote.add_argument(
        "--method", choices=tuple(METHOD_STRATEGIES), default="grape"
    )
    remote.add_argument("--dt", type=float, default=0.5, help="GRAPE slice (ns)")
    remote.add_argument("--fidelity", type=float, default=0.95)
    remote.add_argument("--iterations", type=int, default=150)
    remote.add_argument("--block-width", type=int, default=2)
    remote.add_argument("--seed", type=int, default=0)
    remote.add_argument(
        "--ticket",
        action="store_true",
        help="use the async ticket mode and poll /v1/jobs for the result",
    )
    remote.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        help="HTTP round-trip (and ticket-poll) timeout in seconds",
    )
    remote.add_argument(
        "--verify-local",
        action="store_true",
        dest="verify_local",
        help="also compile in-process and fail unless the remote pulses "
        "are bit-identical",
    )
    remote.set_defaults(func=_cmd_remote_compile)

    cache_ = sub.add_parser(
        "cache-stats", help="inspect a persistent pulse-cache directory"
    )
    cache_.add_argument("--dir", required=True, help="cache directory to inspect")
    cache_.set_defaults(func=_cmd_cache_stats)

    library = sub.add_parser(
        "library", help="operate on a sharded pulse library directory"
    )
    library_sub = library.add_subparsers(dest="library_command", required=True)
    lib_stats = library_sub.add_parser(
        "stats", help="layout, occupancy, and index telemetry"
    )
    lib_stats.add_argument("--dir", required=True, help="library directory")
    lib_stats.set_defaults(func=_cmd_library_stats)
    lib_gc = library_sub.add_parser(
        "gc", help="reconcile the index and evict LRU entries to a size budget"
    )
    lib_gc.add_argument("--dir", required=True, help="library directory")
    lib_gc.add_argument(
        "--budget-mb",
        type=float,
        default=None,
        help="evict least-recently-used entries until under this many MiB "
        "(default: REPRO_CACHE_BUDGET_MB, else reconcile only)",
    )
    lib_gc.set_defaults(func=_cmd_library_gc)

    config_ = sub.add_parser(
        "config", help="inspect the resolved service configuration"
    )
    config_sub = config_.add_subparsers(dest="config_command", required=True)
    show = config_sub.add_parser(
        "show",
        help="print the fully resolved ServiceConfig with per-field "
        "provenance (default / env / CLI)",
    )
    show.add_argument("--executor", choices=EXECUTOR_CHOICES, default=None)
    show.add_argument("--jobs", type=int, default=None, help="max_workers override")
    show.add_argument(
        "--submit-workers",
        type=int,
        default=None,
        dest="submit_workers",
        help="submit_workers override (service submit() thread pool size)",
    )
    show.add_argument("--cache-dir", default=None)
    from repro.config import CACHE_SHARD_CHOICES

    show.add_argument(
        "--cache-shards", type=int, choices=CACHE_SHARD_CHOICES, default=None
    )
    show.add_argument("--cache-budget-mb", type=float, default=None)
    show.add_argument(
        "--prefetch",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="--prefetch / --no-prefetch override",
    )
    show.add_argument("--preset", default=None)
    show.add_argument(
        "--scheduler-state",
        default=None,
        help="scheduler_state_path override",
    )
    show.add_argument(
        "--grape-batch",
        action=argparse.BooleanOptionalAction,
        default=None,
        dest="grape_batch",
        help="--grape-batch / --no-grape-batch override (cross-block "
        "batched GRAPE kernel)",
    )
    show.add_argument(
        "--grape-batch-size",
        type=int,
        default=None,
        dest="grape_batch_size",
        help="grape_batch_size override (blocks per batched group)",
    )
    show.add_argument(
        "--warm-start",
        action=argparse.BooleanOptionalAction,
        default=None,
        dest="warm_start",
        help="--warm-start / --no-warm-start override (seed GRAPE from "
        "the nearest cached pulse or the analytic KAK decomposition)",
    )
    show.add_argument(
        "--warm-start-max-dist",
        type=float,
        default=None,
        dest="warm_start_max_dist",
        help="warm_start_max_dist override (neighbor acceptance "
        "threshold, phase-invariant trace distance in (0, 1])",
    )
    show.add_argument(
        "--scan-block",
        type=int,
        default=None,
        dest="scan_block",
        help="scan_block override (blocked propagator-scan chunk length; "
        "unset keeps the auto sqrt heuristic)",
    )
    show.add_argument(
        "--dispatcher",
        choices=DISPATCHER_CHOICES,
        default=None,
        help="dispatcher override ('executor' in-process, 'queue' fleet)",
    )
    show.add_argument(
        "--fleet-dir",
        default=None,
        dest="fleet_dir",
        help="fleet_dir override (fleet work-queue directory)",
    )
    show.add_argument(
        "--fleet-workers",
        type=int,
        default=None,
        dest="fleet_workers",
        help="fleet_workers override (local workers the queue "
        "dispatcher spawns)",
    )
    show.add_argument(
        "--queue-depth",
        type=int,
        default=None,
        dest="queue_depth",
        help="queue_depth override (bounded submit() admission)",
    )
    show.add_argument(
        "--fleet-lease-ttl",
        type=float,
        default=None,
        dest="fleet_lease_ttl",
        help="fleet_lease_ttl_s override (seconds before a silent lease "
        "is reclaimed)",
    )
    show.add_argument(
        "--fleet-heartbeat",
        type=float,
        default=None,
        dest="fleet_heartbeat",
        help="fleet_heartbeat_s override (lease-renewal interval; must "
        "be shorter than the lease TTL)",
    )
    show.add_argument(
        "--fleet-autoscale",
        action=argparse.BooleanOptionalAction,
        default=None,
        dest="fleet_autoscale",
        help="--fleet-autoscale / --no-fleet-autoscale override "
        "(queue-depth worker scaling)",
    )
    show.add_argument(
        "--fleet-min-workers",
        type=int,
        default=None,
        dest="fleet_min_workers",
        help="fleet_min_workers override (autoscaler floor)",
    )
    show.add_argument(
        "--fleet-max-workers",
        type=int,
        default=None,
        dest="fleet_max_workers",
        help="fleet_max_workers override (autoscaler ceiling)",
    )
    show.add_argument(
        "--server-host",
        default=None,
        dest="server_host",
        help="server_host override (HTTP frontend bind address)",
    )
    show.add_argument(
        "--server-port",
        type=int,
        default=None,
        dest="server_port",
        help="server_port override (HTTP frontend bind port)",
    )
    show.add_argument(
        "--server-max-body-mb",
        type=float,
        default=None,
        dest="server_max_body_mb",
        help="server_max_body_mb override (largest accepted request body)",
    )
    show.add_argument(
        "--server-ticket-ttl",
        type=float,
        default=None,
        dest="server_ticket_ttl",
        help="server_ticket_ttl_s override (async ticket retention)",
    )
    show.set_defaults(func=_cmd_config_show)
    return parser


def main(argv=None) -> int:
    """Parse ``argv`` (default ``sys.argv[1:]``) and run the command."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
